//! Smoke coverage for the examples: everything under `examples/`
//! compiles, and the two cheap entry points (`quickstart`,
//! `device_query`) actually run and print something.
//!
//! The test shells out to the same `cargo` that is running the test
//! suite (the `CARGO` env var), always with `--offline` — the examples
//! must build and run without touching a registry.

use std::process::Command;

fn cargo() -> Command {
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
}

#[test]
fn every_example_compiles_offline() {
    let out = cargo()
        .args(["build", "--offline", "--examples"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        out.status.success(),
        "`cargo build --examples` failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn quickstart_and_device_query_run() {
    for example in ["quickstart", "device_query"] {
        let out = cargo()
            .args(["run", "--offline", "--example", example])
            .output()
            .expect("failed to spawn cargo");
        assert!(
            out.status.success(),
            "example `{example}` exited nonzero:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.lines().count() > 3,
            "example `{example}` printed almost nothing:\n{stdout}"
        );
    }
}

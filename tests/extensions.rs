//! Integration tests for the future-work extensions (§VII): Frontier
//! projection, sparse/ML projections, power model, collectives, policy
//! exploration, host suite — everything beyond the paper's published
//! elements still has to be self-consistent with the core models.

use pvc_arch::frontier::{frontier_node, mi250x_gpu};
use pvc_arch::{power, Precision, System};
use pvc_fabric::collectives::{ring_allreduce, tree_broadcast};
use pvc_fabric::StackId;
use pvc_kernels::spmv::synthetic_sparse;
use pvc_memsim::policy::{miss_curve, Replacement};
use pvc_microbench::host::{run_host_suite, HostConfig};
use pvc_microbench::stats::jittered_runs;

/// Frontier's GCD beats the JLSE MI250's GCD on every bound metric the
/// paper uses (more CUs, measured-at-80% stream), so any bound-based
/// projection must order them that way.
#[test]
fn frontier_dominates_jlse_mi250_per_gcd() {
    let fx = mi250x_gpu();
    let mi = System::JlseMi250.node().gpu;
    assert!(
        fx.vector_peak_per_partition(Precision::Fp64, 1)
            > mi.vector_peak_per_partition(Precision::Fp64, 1)
    );
    // Stream per GCD is ~1.3 TB/s on both parts (Table IV vs the MI250
    // spec at 80%); the MI250X advantage is compute, not bandwidth.
    let ratio = fx.stream_bandwidth_per_partition() / mi.stream_bandwidth_per_partition();
    assert!((ratio - 1.0).abs() < 0.05, "stream ratio {ratio:.3}");
}

/// Frontier vs the paper's systems: its stream per GCD (1.3 TB/s,
/// Table IV) exceeds a PVC stack's 1 TB/s — so a CloverLeaf projection
/// must favour Frontier per partition, exactly what §IV-B3 implies.
#[test]
fn frontier_cloverleaf_projection_consistent_with_table_iv() {
    let f = frontier_node();
    let a = System::Aurora.node();
    let ratio =
        f.gpu.stream_bandwidth_per_partition() / a.gpu.stream_bandwidth_per_partition();
    assert!((ratio - 1.3).abs() < 0.02, "stream ratio {ratio:.2}");
}

/// The power model, the governor and the Table II peaks must agree:
/// flops/W ordering at FP64 follows peak/cap.
#[test]
fn power_model_consistent_with_peaks() {
    for sys in System::ALL {
        let node = sys.node();
        let fpw = power::flops_per_watt(&node, Precision::Fp64);
        // Sanity band: real HPC GPUs sit between 5 and 160 GF/W FP64.
        assert!(
            (5e9..160e9).contains(&fpw),
            "{sys:?}: {fpw:.2e} flop/W out of band"
        );
        // Energy for a fixed workload is inversely proportional to
        // efficiency.
        let e = power::kernel_energy(&node, Precision::Fp64, 1e15);
        assert!((e - 1e15 / fpw).abs() / e < 1e-9);
    }
}

/// Collectives built on the flow network agree with the analytic
/// allreduce estimate used by mini-GAMESS within the latency budget.
#[test]
fn collective_simulation_matches_analytic_estimate() {
    let sys = System::Aurora;
    let node = sys.node();
    let comm = pvc_fabric::Comm::new(sys, 12);
    let ranks: Vec<StackId> = comm.all_stacks();
    let bytes = 1e9;
    let analytic = comm.allreduce_time(&ranks, bytes);
    let simulated = ring_allreduce(&node, &ranks, bytes).time;
    // The simulated rounds serialise on the slowest link like the
    // analytic model; they differ by per-round latency and fair-share
    // detail only.
    let ratio = simulated / analytic;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio:.2}");
}

/// Tree broadcast (log n rounds of the full payload) beats the ring
/// allgather (n−1 rounds of the full payload); the chunked ring
/// allreduce beats the naive full-payload tree despite doing 2(n−1)
/// rounds — the classic bandwidth-optimality result, reproduced by the
/// flow simulation.
#[test]
fn collective_algorithm_ordering() {
    use pvc_fabric::collectives::ring_allgather;
    let node = System::Dawn.node();
    let ranks: Vec<StackId> = (0..4)
        .flat_map(|g| (0..2).map(move |s| StackId::new(g, s)))
        .collect();
    let bcast = tree_broadcast(&node, &ranks, 1e9);
    let gather = ring_allgather(&node, &ranks, 1e9);
    let reduce = ring_allreduce(&node, &ranks, 1e9);
    assert!(bcast.time < gather.time, "{} vs {}", bcast.time, gather.time);
    assert!(reduce.time < bcast.time * 2.0, "chunked ring is competitive");
    assert!(bcast.bytes_moved < reduce.bytes_moved);
}

/// The replacement-policy probe distinguishes LRU from random at 1.5x
/// capacity — the signature a real lats campaign would look for.
#[test]
fn policy_probe_separates_lru_from_random() {
    let size = 512 * 1024u64; // one Xe-Core L1
    let fp = size * 3 / 2;
    let lru = miss_curve(size, 64, 8, Replacement::Lru, &[fp], 3)[0].1;
    let rnd = miss_curve(size, 64, 8, Replacement::Random(9), &[fp], 3)[0].1;
    assert!(lru > 0.99, "LRU thrashes cyclic over-capacity: {lru}");
    assert!(rnd < 0.9, "random keeps a resident fraction: {rnd}");
}

/// SpMV projection endpoints: perfect gather = streaming bound; zero
/// gather = latency bound; both finite and ordered.
#[test]
fn spmv_projection_endpoints() {
    let m = synthetic_sparse::<f64>(50_000, 12, 4);
    for sys in System::ALL {
        let hi = pvc_apps::sparse::spmv_nnz_rate(sys, &m, 1.0);
        let lo = pvc_apps::sparse::spmv_nnz_rate(sys, &m, 0.0);
        assert!(hi > lo, "{sys:?}");
        assert!(lo > 0.0 && hi.is_finite());
    }
}

/// The host suite runs end to end on this machine (tiny sizes) — the
/// kernels the simulator counts are demonstrably executable.
#[test]
fn host_suite_smoke() {
    let cfg = HostConfig {
        fma_lanes: 512,
        triad_elems: 1 << 15,
        gemm_n: 96,
        fft_n: 1 << 11,
        chase_slots: 1 << 13,
        reps: 2,
    };
    let results = run_host_suite(&cfg);
    assert_eq!(results.len(), 5);
    assert!(results.iter().all(|r| r.rate > 0.0));
}

/// The best-of-N estimator's convergence claim (§IV-A methodology).
#[test]
fn best_of_n_methodology_validates() {
    let (best, mean) = jittered_runs(2.0, 0.3, 200, 42);
    assert!(best < 2.0 * 1.02, "best-of-200 near truth: {best}");
    assert!(mean > 2.0 * 1.2, "mean keeps the bias: {mean}");
}

//! Cross-crate pipeline invariants: the simulation layers must agree
//! with each other, not just with the paper.

use pvc_arch::{Precision, System};
use pvc_engine::Engine;
use pvc_fabric::comm::{Comm, Transfer};
use pvc_fabric::StackId;
use pvc_kernels::fma;
use pvc_memsim::roofline;
use pvc_microbench::{membw, peakflops};
use pvc_miniapps::{cloverleaf, ScaleLevel};
use pvc_predict::{fom, AppKind};

/// The microbenchmark layer and the raw engine layer must report the
/// same peaks (no drift between views of the same model).
#[test]
fn microbench_agrees_with_engine() {
    for sys in System::PVC {
        let engine = Engine::new(sys);
        for p in [Precision::Fp64, Precision::Fp32] {
            let bench = peakflops::run(sys, p).rates.one_stack;
            let raw = engine.vector_peak(p, 1);
            assert_eq!(bench, raw);
        }
        assert_eq!(
            membw::run(sys).bandwidth.one_stack,
            engine.stream_bandwidth(1)
        );
    }
}

/// A kernel profile built from the *real* FMA kernel's reported op count
/// runs at the modelled peak.
#[test]
fn real_kernel_counts_drive_the_engine() {
    let engine = Engine::new(System::Dawn);
    let work_items = 1 << 20;
    let result = fma::paper_kernel::<f32>(64); // verification run
    assert!(result.checksum.is_finite());
    let flops_at_scale =
        (work_items as u64 * 2 * fma::FMA_PER_WORK_ITEM) as f64;
    let profile = pvc_engine::KernelProfile::compute(flops_at_scale, Precision::Fp32);
    let t = engine.kernel_time(&profile, 1);
    let achieved = flops_at_scale / t;
    let peak = engine.vector_peak(Precision::Fp32, 1);
    assert!((achieved - peak).abs() / peak < 1e-9);
}

/// CloverLeaf's FOM is consistent with the roofline: the per-stack FOM
/// equals achievable bandwidth divided by the modelled per-cell traffic.
#[test]
fn cloverleaf_fom_consistent_with_bandwidth() {
    for sys in System::PVC {
        let f = fom(AppKind::CloverLeaf, sys, ScaleLevel::OneStack).unwrap();
        let node = sys.node();
        let implied_bw =
            f * 1e6 * cloverleaf::BYTES_PER_CELL_STEP * cloverleaf::BENCH_STEPS;
        // Within the app's bandwidth fraction of spec (0.6-0.7 on PVC).
        let frac = implied_bw / node.gpu.partition.memory.spec_bandwidth;
        assert!((0.55..0.72).contains(&frac), "{sys:?}: fraction {frac:.2}");
    }
}

/// Transfers submitted through Comm and paths probed through NodeFabric
/// see the same bottlenecks.
#[test]
fn comm_and_fabric_views_agree() {
    let comm = Comm::new(System::Aurora, 1);
    let s = StackId::new(2, 0);
    let via_comm = comm.run_transfers(&[Transfer::H2d(s)], 1e9).per_flow[0];
    let fabric = pvc_fabric::NodeFabric::with_active(&System::Aurora.node(), 1);
    let via_fabric = fabric.isolated_bandwidth(fabric.h2d_path(s));
    assert!((via_comm - via_fabric).abs() / via_fabric < 0.01);
}

/// Roofline ridge points order the systems the way the architecture
/// says they should: H100 (high peak, high BW) has a higher FP64 ridge
/// than a PVC stack.
#[test]
fn ridge_points_are_architecturally_ordered() {
    let pvc = roofline::ridge_point(&System::Aurora.node().gpu, Precision::Fp64, 1);
    let h100 = roofline::ridge_point(&System::JlseH100.node().gpu, Precision::Fp64, 1);
    assert!(pvc > 10.0 && pvc < 25.0, "PVC ridge {pvc:.1}");
    assert!(h100 > pvc * 0.5, "H100 ridge {h100:.1}");
}

/// End-to-end determinism: two full Table VI regenerations bit-match.
#[test]
fn full_pipeline_is_deterministic() {
    let a: Vec<Option<f64>> = AppKind::ALL
        .iter()
        .flat_map(|&app| {
            System::ALL
                .iter()
                .flat_map(move |&sys| ScaleLevel::ALL.map(move |l| fom(app, sys, l)))
        })
        .collect();
    let b: Vec<Option<f64>> = AppKind::ALL
        .iter()
        .flat_map(|&app| {
            System::ALL
                .iter()
                .flat_map(move |&sys| ScaleLevel::ALL.map(move |l| fom(app, sys, l)))
        })
        .collect();
    assert_eq!(a, b);
}

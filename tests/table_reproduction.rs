//! Integration: regenerate Tables II, III and VI end-to-end and compare
//! every published cell against the simulation, at the tolerances
//! recorded in EXPERIMENTS.md.

use pvc_report::tables;

/// Table II: all 84 cells exist and sit within 5% of print.
#[test]
fn table2_within_five_percent() {
    let rows = tables::table2();
    assert_eq!(rows.len(), 14);
    let mut worst = (0.0f64, String::new());
    for row in &rows {
        assert_eq!(row.cells.len(), 6);
        for (i, cell) in row.cells.iter().enumerate() {
            let err = cell.rel_err().expect("Table II has no dashes");
            if err > worst.0 {
                worst = (err, format!("{} col {}", row.label, i));
            }
            assert!(err < 0.05, "{} col {i}: {:.2}%", row.label, err * 100.0);
        }
    }
    eprintln!("Table II worst cell: {} at {:.2}%", worst.1, worst.0 * 100.0);
}

/// Table III: the 12 published cells within 8%; Dawn remote stays dash.
#[test]
fn table3_within_eight_percent() {
    let rows = tables::table3();
    assert_eq!(rows.len(), 4);
    let mut compared = 0;
    for row in &rows {
        for cell in &row.cells {
            if let Some(err) = cell.rel_err() {
                compared += 1;
                assert!(err < 0.08, "{}: {:.2}%", row.label, err * 100.0);
            }
        }
    }
    assert_eq!(compared, 12, "the paper prints 12 point-to-point cells");
}

/// Table VI: every one of the 33 published FOMs within 6%, and every
/// printed dash reproduced as a dash.
#[test]
fn table6_within_six_percent_with_matching_dashes() {
    let rows = tables::table6();
    assert_eq!(rows.len(), 6);
    let mut compared = 0;
    for row in &rows {
        assert_eq!(row.cells.len(), 10);
        for (i, cell) in row.cells.iter().enumerate() {
            match (cell.published, cell.simulated) {
                (Some(_), Some(_)) => {
                    compared += 1;
                    let err = cell.rel_err().unwrap();
                    assert!(
                        err < 0.06,
                        "{} col {i}: {:.2}%",
                        row.label,
                        err * 100.0
                    );
                }
                // A printed dash may be either unmodelled (None) or a
                // prediction for a cell the paper did not measure (e.g.
                // OpenMC on Dawn); both are acceptable. What is NOT
                // acceptable is a missing simulation for a printed value.
                (Some(p), None) => {
                    panic!("{} col {i}: published {p} but not simulated", row.label)
                }
                _ => {}
            }
        }
    }
    // 4 (miniBUDE) + 10 (CloverLeaf) + 10 (miniQMC) + 8 (mini-GAMESS)
    // + 3 (OpenMC) + 4 (HACC) published values.
    assert_eq!(compared, 39, "the paper prints 39 FOM values in Table VI");
}

/// The scaling-efficiency narrative of §IV-B1 holds in the regenerated
/// table: FP64 node scaling ≈95% on Aurora and ≈88% on Dawn, triad 100%.
#[test]
fn scaling_efficiencies_track_section_iv() {
    let rows = tables::table2();
    let fp64 = &rows[0];
    let aurora_eff = fp64.cells[2].simulated.unwrap() / (12.0 * fp64.cells[0].simulated.unwrap());
    let dawn_eff = fp64.cells[5].simulated.unwrap() / (8.0 * fp64.cells[3].simulated.unwrap());
    assert!((0.92..0.97).contains(&aurora_eff), "Aurora {aurora_eff:.3}");
    assert!((0.85..0.92).contains(&dawn_eff), "Dawn {dawn_eff:.3}");
    let triad = &rows[2];
    let triad_eff = triad.cells[2].simulated.unwrap() / (12.0 * triad.cells[0].simulated.unwrap());
    assert!((triad_eff - 1.0).abs() < 1e-9);
}

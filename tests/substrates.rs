//! Cross-crate substrate integration: the newer building blocks (PM
//! gravity, event transport, occupancy, decomposition, prefetcher) must
//! compose with the original stack, not just pass their unit tests.

use pvc_apps::event_transport::run_event_based;
use pvc_apps::hacc::Particle;
use pvc_apps::openmc::MultigroupXs;
use pvc_apps::pm::PmSolver;
use pvc_apps::xs_lookup::Material;
use pvc_arch::{Precision, System};
use pvc_engine::occupancy::{launch_efficiency, Launch};
use pvc_memsim::prefetch::chase_with_prefetcher;
use pvc_miniapps::decomposition::Decomposition;
use pvc_miniapps::minibude::{sweep_tunings, tuning_efficiency, Tuning};

/// PM forces and the direct O(N²) kernel agree in direction for a
/// clustered configuration (the long/short-range halves of P³M see the
/// same large-scale field).
#[test]
fn pm_and_direct_forces_correlate() {
    let pm = PmSolver::new(32);
    // Two clusters: direct force on each particle should point toward
    // the other cluster; PM must agree in sign for most particles.
    let mut ps: Vec<Particle> = Vec::new();
    for i in 0..8 {
        let dx = (i % 2) as f32 * 0.02;
        let dy = (i / 2 % 2) as f32 * 0.02;
        ps.push(Particle {
            pos: [0.3 + dx, 0.5 + dy, 0.5],
            vel: [0.0; 3],
            mass: 1.0,
        });
        ps.push(Particle {
            pos: [0.7 + dx, 0.5 + dy, 0.5],
            vel: [0.0; 3],
            mass: 1.0,
        });
    }
    let pm_f = pm.forces(&ps);
    let direct = pvc_apps::hacc::accelerations(&ps);
    // Intra-cluster forces cancel in the per-cluster sum, leaving the
    // inter-cluster attraction — the component PM must reproduce.
    let mut pm_left = 0.0;
    let mut pm_right = 0.0;
    let mut d_left = 0.0f64;
    let mut d_right = 0.0f64;
    for (i, p) in ps.iter().enumerate() {
        if p.pos[0] < 0.5 {
            pm_left += pm_f[i][0];
            d_left += direct[i][0] as f64;
        } else {
            pm_right += pm_f[i][0];
            d_right += direct[i][0] as f64;
        }
    }
    assert!(pm_left > 0.0 && d_left > 0.0, "left cluster pulled right: PM {pm_left:.3}, direct {d_left:.3}");
    assert!(pm_right < 0.0 && d_right < 0.0, "right cluster pulled left: PM {pm_right:.3}, direct {d_right:.3}");
}

/// Event-based and history-based transport agree on physics while the
/// XS-lookup substrate supplies a consistent macroscopic picture.
#[test]
fn transport_models_and_lookup_substrate_cohere() {
    let xs = MultigroupXs::two_group_fuel();
    let det = xs.k_inf_deterministic();
    let ev = run_event_based(&xs, 40_000, 11);
    assert!((ev.k_eff - det).abs() / det < 0.03);

    // The lookup substrate's macroscopic XS is positive, finite, and
    // absorption < total at every probe energy.
    let mat = Material::depleted_fuel(20, 2_000);
    for e in [1e-3, 1.0, 1e3, 1e6] {
        let (t, a) = mat.macroscopic(e);
        assert!(t.is_finite() && t > 0.0);
        assert!(a > 0.0 && a < t, "at {e} eV: a={a}, t={t}");
    }
    // 4 probes x 20 nuclides of lookups were counted.
    assert_eq!(mat.lookup_count(), 80);
}

/// The occupancy model reproduces the shape of the miniBUDE tuning
/// sweep: the best (ppwi=8) configuration also maximises the occupancy
/// model's launch efficiency over the same grid.
#[test]
fn occupancy_model_agrees_with_tuning_sweep() {
    let gpu = System::Aurora.node().gpu;
    let (best_tuning, _) = sweep_tunings();
    // Map the tuning sweep's register model into launch shapes.
    let eff_for = |ppwi: u32| {
        let launch = Launch {
            global_size: 983_040 / ppwi as u64,
            work_group: 128,
            regs_per_item: 32 + 12 * ppwi,
            sub_group: 16,
        };
        // Multiply the launch efficiency (occupancy/tail) by the reuse
        // term the tuning model credits.
        launch_efficiency(&gpu, &launch) * (ppwi as f64 / (ppwi as f64 + 1.0))
    };
    let best_by_occupancy = [1u32, 2, 4, 8, 16, 32]
        .into_iter()
        .max_by(|&a, &b| eff_for(a).partial_cmp(&eff_for(b)).unwrap())
        .unwrap();
    assert_eq!(best_by_occupancy, best_tuning.ppwi);
    // And both punish the register-starved extreme.
    assert!(eff_for(32) < eff_for(8));
    assert!(
        tuning_efficiency(Tuning { ppwi: 32, work_group: 128 })
            < tuning_efficiency(best_tuning)
    );
}

/// Decomposition halo traffic feeds the fabric's halo-exchange time and
/// stays negligible at paper scale — the quantitative form of §V-A2's
/// problem-size claim.
#[test]
fn halo_traffic_is_negligible_at_paper_scale() {
    use pvc_fabric::Comm;
    let sys = System::Aurora;
    let comm = Comm::new(sys, 12);
    let d = Decomposition::most_square(12, 15_360, 2);
    let halo_bytes = d.halo_bytes_per_field(4) * 15; // 15 exchanged fields
    let ranks = comm.all_stacks();
    let t_halo = comm.halo_exchange_time(&ranks, halo_bytes as f64);
    // Step compute time: 15360^2 cells x 480 B at 1 TB/s.
    let t_step = 15_360.0f64 * 15_360.0 * 480.0 / 1e12;
    assert!(
        t_halo < 0.05 * t_step,
        "halo {t_halo:.2e} s vs step {t_step:.2e} s"
    );
}

/// The prefetcher model and the cache hierarchy compose: sequential
/// traffic inside L1 is fast either way; the random ring in the L2
/// region is prefetch-immune (the lats design assumption, end to end).
#[test]
fn prefetch_model_composes_with_hierarchy() {
    let gpu = System::Dawn.node().gpu;
    // L1-resident: both orders, both prefetch settings ≈ L1 latency.
    for seq in [true, false] {
        for pf in [true, false] {
            let lat = chase_with_prefetcher(&gpu.partition, 128 << 10, seq, pf);
            assert!((lat - 64.0).abs() < 10.0, "L1 region: {lat}");
        }
    }
    // L2-region random ring: prefetch-immune; matches Figure 1's value.
    let lat = chase_with_prefetcher(&gpu.partition, 8 << 20, false, true);
    assert!((lat - 390.0).abs() < 40.0, "L2 region: {lat}");
}

/// Everything above is precision-agnostic plumbing; make sure Precision
/// stays consistent across crates (regression guard for the facade).
#[test]
fn precision_enum_is_shared_across_crates() {
    let p = Precision::Fp32;
    let engine = pvc_engine::Engine::new(System::Dawn);
    let peak = engine.vector_peak(p, 1);
    let metric = pvc_predict::bound_metric(
        System::Dawn,
        pvc_engine::BoundKind::Compute(p),
        pvc_miniapps::ScaleLevel::OneStack,
    )
    .unwrap();
    assert_eq!(peak, metric);
}

//! Integration: regenerate Figures 1–4 and check the claims the paper
//! makes about them.

use pvc_memsim::LatsConfig;
use pvc_microbench::latsbench;
use pvc_miniapps::ScaleLevel;
use pvc_predict::{figure2, figure3, figure4, AppKind};

fn cfg() -> LatsConfig {
    LatsConfig {
        min_bytes: 64 * 1024,
        max_bytes: 1 << 29,
        points_per_octave: 1,
        steps: 1 << 13,
    }
}

/// Figure 1: four series, staircase shape, PVC's L1 plateau widest, and
/// the §IV-B6 cross-architecture latency ratios at the plateaus.
#[test]
fn figure1_staircase_and_ratios() {
    let series = latsbench::figure1(&cfg());
    assert_eq!(series.len(), 4);

    let plateau = |label_frag: &str, footprint: u64| -> f64 {
        let s = series
            .iter()
            .find(|s| s.label.contains(label_frag))
            .unwrap();
        s.points
            .iter()
            .min_by_key(|p| p.footprint_bytes.abs_diff(footprint))
            .unwrap()
            .cycles
    };

    // L1 plateau at 128 KiB, HBM plateau at 512 MiB.
    let pvc_l1 = plateau("Aurora", 128 << 10);
    let h100_l1 = plateau("H100", 128 << 10);
    let mi250_hbm = plateau("MI250", 512 << 20);
    let pvc_hbm = plateau("Aurora", 512 << 20);
    let h100_hbm = plateau("H100", 512 << 20);

    // §IV-B6: "The L1 cache has 90% higher latency than the H100".
    assert!(
        (pvc_l1 / h100_l1 - 1.9).abs() < 0.2,
        "L1 ratio {:.2}",
        pvc_l1 / h100_l1
    );
    // "HBM2e on PVC shows 23% and 44% higher access latency."
    assert!((pvc_hbm / h100_hbm - 1.23).abs() < 0.08);
    assert!((pvc_hbm / mi250_hbm - 1.44).abs() < 0.10);

    // Dawn and Aurora within 2% everywhere (§IV-B6).
    let aurora = series.iter().find(|s| s.label.contains("Aurora")).unwrap();
    let dawn = series.iter().find(|s| s.label.contains("Dawn")).unwrap();
    for (a, d) in aurora.points.iter().zip(dawn.points.iter()) {
        assert!((a.cycles - d.cycles).abs() / d.cycles < 0.02);
    }
}

/// Figure 2: "in general the black expected performance bars are close
/// to the columns" — for the three predicted mini-apps, measured within
/// 12% of expected at the single-partition level.
#[test]
fn figure2_bars_close_to_columns() {
    for bar in figure2() {
        if bar.level != ScaleLevel::OneStack {
            continue;
        }
        if let (Some(m), Some(e)) = (bar.measured, bar.expected) {
            assert!(
                (m - e).abs() / e < 0.12,
                "{:?}: measured {m:.2} vs expected {e:.2}",
                bar.app
            );
        }
    }
}

/// Figure 3: the abstract's single-GPU range (0.6–1.8×) and the
/// identification of CloverLeaf as lowest, miniQMC as highest.
#[test]
fn figure3_range_and_extremes() {
    let bars = figure3();
    let gpu_bars: Vec<_> = bars
        .iter()
        .filter(|b| b.level == ScaleLevel::OneGpu && b.measured.is_some())
        .collect();
    let lowest = gpu_bars
        .iter()
        .min_by(|a, b| a.measured.partial_cmp(&b.measured).unwrap())
        .unwrap();
    let highest = gpu_bars
        .iter()
        .max_by(|a, b| a.measured.partial_cmp(&b.measured).unwrap())
        .unwrap();
    assert_eq!(lowest.app, AppKind::CloverLeaf, "lowest: {lowest:?}");
    assert_eq!(highest.app, AppKind::MiniQmc, "highest: {highest:?}");
    assert!((0.55..0.70).contains(&lowest.measured.unwrap()));
    assert!((1.5..1.9).contains(&highest.measured.unwrap()));
}

/// Figure 3 node level: "the lowest relative performance is 0.6x
/// (Cloverleaf) and the highest is 1.3x (miniQMC)".
#[test]
fn figure3_node_range() {
    let bars = figure3();
    let node: Vec<f64> = bars
        .iter()
        .filter(|b| b.level == ScaleLevel::FullNode)
        .filter_map(|b| b.measured)
        .collect();
    let min = node.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = node.iter().cloned().fold(0.0f64, f64::max);
    assert!((0.55..0.70).contains(&min), "min {min:.2}");
    assert!((1.15..1.45).contains(&max), "max {max:.2}");
}

/// Figure 4: the abstract's per-stack range (0.8–7.5×) and the
/// node-level upper end (~18x, miniQMC vs MI250).
#[test]
fn figure4_ranges() {
    let bars = figure4();
    let stack: Vec<f64> = bars
        .iter()
        .filter(|b| b.level == ScaleLevel::OneStack)
        .filter_map(|b| b.measured)
        .collect();
    let min = stack.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = stack.iter().cloned().fold(0.0f64, f64::max);
    assert!((0.7..0.95).contains(&min), "stack min {min:.2}");
    assert!((6.5..8.0).contains(&max), "stack max {max:.2}");

    let node_max = bars
        .iter()
        .filter(|b| b.level == ScaleLevel::FullNode)
        .filter_map(|b| b.measured)
        .fold(0.0f64, f64::max);
    assert!((15.0..20.0).contains(&node_max), "node max {node_max:.1}");
}

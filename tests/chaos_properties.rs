//! Chaos property suite: for random (scenario × fault-spec) samples,
//! degradation is monotone — a fault overlay can never *improve* a
//! figure of merit — and the overlay machinery itself is exact
//! (empty spec is the identity, repeated runs are bit-identical, and
//! composed overlays are no better than the worse single overlay).
//!
//! Companion to `flow_equivalence`: that suite proves the solver is
//! exact against a reference implementation; this one proves the fault
//! model sits on the right side of every FOM's direction. Runs under
//! the deterministic [`pvc_core::check`] harness — failures print a
//! replayable seed, and `PVC_CHECK_CASES` scales the sample count.

use pvc_core::check::{check, Gen};
use pvc_report::scenarios::registry;
use pvc_scenario::{run_overlaid, ChaosSpec, Fom, FomKind, Outcome, ScenarioError};
use std::collections::HashMap;

/// One grid cell eligible for fault injection: every registered
/// scenario whose FOM has a direction. The figure pipelines report
/// [`Fom::Ratio`] (model/published agreement), which a fault overlay
/// legitimately moves in either direction, so they are property-exempt
/// (but still covered by the identity test below).
fn directed_cells() -> Vec<(String, pvc_arch::System)> {
    registry()
        .iter()
        .filter(|s| !matches!(s.fom_kind(), FomKind::Ratio))
        .map(|s| (s.id().slug(), s.id().system))
        .collect()
}

/// All cells, Ratio included.
fn all_cells() -> Vec<(String, pvc_arch::System)> {
    registry()
        .iter()
        .map(|s| (s.id().slug(), s.id().system))
        .collect()
}

/// One random fault token in the published grammar. Roughly half the
/// Xe-Link samples kill the plane outright (factor 0) — the stranded
/// path is where monotonicity is easiest to get wrong.
fn fault_token(g: &mut Gen) -> String {
    match g.usize_in(0..5) {
        0 => {
            let plane = g.usize_in(0..2);
            let factor = if g.bool() { 0.0 } else { g.f64_in(0.2..0.95) };
            format!("xelink:{plane}:{factor}")
        }
        1 => {
            let gen = *g.choose(&[2u8, 3, 4]);
            let lanes = *g.choose(&[2u8, 4, 8, 16]);
            format!("pcie:{gen}x{lanes}")
        }
        2 => format!("clock:{}", g.f64_in(0.4..1.5)),
        3 => format!("stackdown:{}", g.usize_in(1..3)),
        _ => format!("hbm:{}", g.f64_in(0.2..0.95)),
    }
}

/// A random non-empty spec of one or two faults.
fn spec(g: &mut Gen) -> ChaosSpec {
    let n = g.usize_in(1..3);
    let tokens: Vec<String> = (0..n).map(|_| fault_token(g)).collect();
    ChaosSpec::parse(&tokens.join("+")).expect("generated tokens are grammatical")
}

/// Direction-aware "no better", with a relative tolerance for float
/// noise. Infinities fall out naturally: a stranded transfer drives a
/// latency to +inf, which is `>=` any finite baseline.
fn no_better(kind: FomKind, baseline: f64, degraded: f64) -> bool {
    let tol = 1e-12 * baseline.abs().max(1.0);
    if kind.higher_is_better() {
        degraded <= baseline + tol
    } else {
        degraded >= baseline - tol
    }
}

fn fom_raw(fom: &Fom) -> f64 {
    fom.raw()
}

/// Baseline outcomes, computed once per cell across all samples.
struct Baselines {
    cache: HashMap<(String, pvc_arch::System), Outcome>,
}

impl Baselines {
    fn new() -> Self {
        Baselines {
            cache: HashMap::new(),
        }
    }

    fn get(&mut self, slug: &str, system: pvc_arch::System) -> &Outcome {
        self.cache
            .entry((slug.to_string(), system))
            .or_insert_with(|| registry().run(slug, system).expect("registered cell"))
    }
}

/// A degraded run, or `None` when the spec was (correctly) rejected
/// with a typed error for this system — e.g. a PCIe "downgrade" that
/// would be an upgrade, or dropping more stacks than the part has.
/// Any other error is a property failure.
fn degraded(
    slug: &str,
    system: pvc_arch::System,
    spec: &ChaosSpec,
) -> Result<Option<Outcome>, String> {
    match run_overlaid(registry(), slug, system, spec) {
        Ok(out) => Ok(Some(out)),
        Err(ScenarioError::BadRequest(_)) => Ok(None),
        Err(e) => Err(format!("unexpected error for {slug}@{system:?}: {e}")),
    }
}

/// THE headline property: across random (scenario × spec) samples, a
/// fault overlay never improves the figure of merit, in the FOM's own
/// direction (bandwidths may only drop, latencies may only rise).
#[test]
fn chaos_degradation_never_improves() {
    let cells = directed_cells();
    let mut baselines = Baselines::new();
    check("chaos_degradation_never_improves", 200, |g| {
        let (slug, system) = g.choose(&cells).clone();
        let spec = spec(g);
        let Some(deg) = degraded(&slug, system, &spec)? else {
            return Ok(()); // typed rejection is a valid outcome
        };
        let base = baselines.get(&slug, system);
        let kind = base.fom.kind();
        let (b, d) = (fom_raw(&base.fom), fom_raw(&deg.fom));
        if !no_better(kind, b, d) {
            return Err(format!(
                "{slug}@{system:?} under '{spec}': degraded {d} beats baseline {b} ({kind:?})"
            ));
        }
        Ok(())
    });
}

/// Composition is monotone too: overlay `a+b` is no better than the
/// worse of `a` alone and `b` alone. (If the composition is rejected —
/// e.g. the second PCIe token would re-upgrade the first — the typed
/// rejection is the correct outcome.)
#[test]
fn chaos_composition_no_better_than_worse_single() {
    let cells = directed_cells();
    check("chaos_composition_no_better_than_worse_single", 64, |g| {
        let (slug, system) = g.choose(&cells).clone();
        let a = spec(g);
        let b = spec(g);
        let (Some(da), Some(db)) = (degraded(&slug, system, &a)?, degraded(&slug, system, &b)?)
        else {
            return Ok(());
        };
        let Some(dab) = degraded(&slug, system, &a.then(&b))? else {
            return Ok(());
        };
        let kind = da.fom.kind();
        let (ra, rb, rab) = (fom_raw(&da.fom), fom_raw(&db.fom), fom_raw(&dab.fom));
        // The worse of the two singles, in the FOM's own direction.
        let worse = if kind.higher_is_better() {
            ra.min(rb)
        } else {
            ra.max(rb)
        };
        if !no_better(kind, worse, rab) {
            return Err(format!(
                "{slug}@{system:?}: '{a}'+'{b}' gives {rab}, better than worse single {worse}"
            ));
        }
        Ok(())
    });
}

/// The empty spec is the identity: bit-identical FOM and detail vector
/// against a plain registry run, on every cell including the Ratio
/// figure pipelines.
#[test]
fn chaos_empty_spec_is_identity() {
    let cells = all_cells();
    let mut baselines = Baselines::new();
    check("chaos_empty_spec_is_identity", 32, |g| {
        let (slug, system) = g.choose(&cells).clone();
        let overlaid = run_overlaid(registry(), &slug, system, &ChaosSpec::empty())
            .map_err(|e| e.to_string())?;
        let base = baselines.get(&slug, system);
        if base.fom.raw().to_bits() != overlaid.fom.raw().to_bits() {
            return Err(format!(
                "{slug}@{system:?}: empty overlay changed the FOM ({} -> {})",
                base.fom, overlaid.fom
            ));
        }
        if base.detail != overlaid.detail {
            return Err(format!(
                "{slug}@{system:?}: empty overlay changed the detail vector"
            ));
        }
        Ok(())
    });
}

/// Degraded runs are deterministic: the same (cell, spec) twice gives
/// bit-identical FOM and detail — the invariant the serve layer's
/// response cache and the ci double-run gate lean on.
#[test]
fn chaos_runs_are_deterministic() {
    let cells = directed_cells();
    check("chaos_runs_are_deterministic", 32, |g| {
        let (slug, system) = g.choose(&cells).clone();
        let spec = spec(g);
        let (Some(first), Some(second)) = (
            degraded(&slug, system, &spec)?,
            degraded(&slug, system, &spec)?,
        ) else {
            return Ok(());
        };
        if first.fom.raw().to_bits() != second.fom.raw().to_bits() || first.detail != second.detail
        {
            return Err(format!(
                "{slug}@{system:?} under '{spec}': two runs disagree ({} vs {})",
                first.fom, second.fom
            ));
        }
        Ok(())
    });
}

//! Failure-injection and degenerate-input integration tests: the
//! simulation substrate must fail loudly or degrade gracefully, never
//! silently corrupt results.

use pvc_arch::{ChaosError, ChaosSpec, System};
use pvc_fabric::{NodeFabric, RouteVia, StackId};
use pvc_kernels::fft::{fft, Complex, Direction};
use pvc_kernels::gemm::{gemm, test_matrix};
use pvc_memsim::cache::CacheSim;
use pvc_simrt::{FlowError, FlowNetwork, FlowSpec, Time};

/// A dead Xe-Link leaves same-card traffic unharmed but strands the
/// remote pair.
#[test]
fn dead_link_strands_only_its_flows() {
    let node = System::Aurora.node();
    let fabric = NodeFabric::new(&node);
    let mut net = fabric.net.clone_resources();

    let local = net.add_flow(FlowSpec {
        start: Time::ZERO,
        bytes: 1e9,
        path: fabric.d2d_path(StackId::new(0, 0), StackId::new(0, 1), RouteVia::Auto),
        latency: 0.0,
    });
    let remote_path = fabric.d2d_path(StackId::new(0, 0), StackId::new(1, 1), RouteVia::Auto);
    // Kill the first resource of the remote path (the Xe-Link direction).
    net.disable_resource(remote_path[0]);
    let remote = net.add_flow(FlowSpec {
        start: Time::ZERO,
        bytes: 1e9,
        path: remote_path,
        latency: 0.0,
    });

    let done = net.run();
    assert!(done.contains_key(&local), "local traffic unaffected");
    assert!(!done.contains_key(&remote), "remote flow stranded");
}

/// Degenerate flow-network inputs come back as typed [`FlowError`]s —
/// the caller sees *which* argument was garbage, not a panic message.
#[test]
fn flow_network_rejects_garbage_with_typed_errors() {
    let mut net = FlowNetwork::new();
    assert!(matches!(
        net.try_add_resource(f64::NAN),
        Err(FlowError::NonPositiveCapacity(c)) if c.is_nan()
    ));
    assert!(matches!(
        net.try_add_resource(0.0),
        Err(FlowError::NonPositiveCapacity(c)) if c == 0.0
    ));
    let r = net.try_add_resource(1.0).expect("positive capacity admits");
    assert!(matches!(
        net.try_add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: -5.0,
            path: vec![r],
            latency: 0.0,
        }),
        Err(FlowError::NonPositiveBytes(b)) if b == -5.0
    ));
    assert!(matches!(
        net.try_add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: 1.0,
            path: Vec::new(),
            latency: 0.0,
        }),
        Err(FlowError::EmptyPath)
    ));
    assert!(matches!(
        net.try_add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: 1.0,
            path: vec![r],
            latency: -1.0,
        }),
        Err(FlowError::NegativeLatency(l)) if l == -1.0
    ));
    // Rejected inputs leave the network usable.
    let ok = net.try_add_flow(FlowSpec {
        start: Time::ZERO,
        bytes: 8.0,
        path: vec![r],
        latency: 0.0,
    });
    assert!(ok.is_ok());
    assert!(net.run().contains_key(&ok.unwrap()));
}

/// Malformed chaos specs are typed [`ChaosError`]s, never NaN FOMs or
/// panics: the grammar rejects them before any overlay is installed.
#[test]
fn chaos_specs_reject_garbage_with_typed_errors() {
    assert!(matches!(
        ChaosSpec::parse("xelink:0:"),
        Err(ChaosError::BadArgs { fault: "xelink", .. })
    ));
    assert!(matches!(
        ChaosSpec::parse("xelink:0:1.5"),
        Err(ChaosError::NotADegradation { fault: "xelink", .. })
    ));
    assert!(matches!(
        ChaosSpec::parse("hbm:0"),
        Err(ChaosError::BadArgs { fault: "hbm", .. })
    ));
    assert!(matches!(
        ChaosSpec::parse("hbm:1.5"),
        Err(ChaosError::NotADegradation { fault: "hbm", .. })
    ));
    assert!(matches!(
        ChaosSpec::parse("hbm:NaN"),
        Err(ChaosError::BadArgs { fault: "hbm", .. })
    ));
    assert!(matches!(
        ChaosSpec::parse("warp-core:0.5"),
        Err(ChaosError::UnknownFault { .. })
    ));
    assert!(matches!(
        ChaosSpec::parse("hbm:0.5++hbm:0.5"),
        Err(ChaosError::EmptyFault)
    ));
    // Valid-grammar specs can still be invalid for a concrete part:
    // Aurora's PVC has two stacks per GPU, so dropping twelve is typed.
    let spec = ChaosSpec::parse("stackdown:12").expect("grammatical");
    assert!(matches!(
        spec.apply(System::Aurora.node()),
        Err(ChaosError::InvalidForSystem { fault: "stackdown", .. })
    ));
}

/// Disabling a resource *after* flows were admitted strands exactly the
/// flows whose path crosses it — mid-simulation failure, not admission
/// rejection — and the incremental solver agrees with the reference
/// implementation bit for bit.
#[test]
fn late_resource_failure_strands_admitted_flows() {
    let build = || {
        let mut net = FlowNetwork::new();
        let healthy = net.add_resource(100.0);
        let doomed = net.add_resource(50.0);
        let survivor = net.add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: 1e6,
            path: vec![healthy],
            latency: 0.0,
        });
        let stranded = net.add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: 1e6,
            path: vec![healthy, doomed],
            latency: 0.0,
        });
        // Both flows are admitted; the failure happens afterwards.
        net.disable_resource(doomed);
        (net, survivor, stranded)
    };

    let (mut net, survivor, stranded) = build();
    let done = net.run();
    assert!(done.contains_key(&survivor), "survivor completes");
    assert!(!done.contains_key(&stranded), "stranded flow never finishes");
    // With the stranded flow gone, the survivor owns the full capacity.
    let t = done[&survivor].finished.as_secs() - done[&survivor].began.as_secs();
    assert!((t - 1e6 / 100.0).abs() < 1e-9, "survivor unaffected: {t}");

    let (mut reference, _, _) = build();
    let ref_done = reference.run_reference();
    assert_eq!(done.len(), ref_done.len());
    for (id, out) in &done {
        let r = &ref_done[id];
        assert_eq!(out.began.as_secs().to_bits(), r.began.as_secs().to_bits());
        assert_eq!(
            out.finished.as_secs().to_bits(),
            r.finished.as_secs().to_bits()
        );
    }
}

/// Tiny caches and single-line working sets behave sensibly.
#[test]
fn degenerate_cache_geometries() {
    // Minimal legal cache: one set, one way.
    let mut c = CacheSim::new(64, 64, 1);
    assert!(!c.access(0));
    assert!(c.access(32)); // same line
    assert!(!c.access(64)); // evicts
    assert!(!c.access(0)); // and misses again

    // Cache smaller than one set must panic.
    assert!(std::panic::catch_unwind(|| CacheSim::new(32, 64, 2)).is_err());
}

/// Size-1 and size-0 edge cases of the numeric kernels.
#[test]
fn kernel_degenerate_sizes() {
    // 1x1 GEMM.
    let a = vec![3.0f64];
    let b = vec![4.0f64];
    let mut c = vec![0.0f64];
    gemm(1, &a, &b, &mut c);
    assert_eq!(c[0], 12.0);

    // Length-1 and length-2 FFTs.
    let mut x = vec![Complex::new(5.0f64, 0.0)];
    fft(&mut x, Direction::Forward);
    assert_eq!(x[0].re, 5.0);
    let mut y = vec![Complex::new(1.0f64, 0.0), Complex::new(2.0, 0.0)];
    fft(&mut y, Direction::Forward);
    assert!((y[0].re - 3.0).abs() < 1e-12);
    assert!((y[1].re + 1.0).abs() < 1e-12);
}

/// Mismatched GEMM buffers fail fast.
#[test]
fn gemm_shape_mismatch_panics() {
    let a = test_matrix::<f64>(4, 1);
    let b = test_matrix::<f64>(4, 2);
    let mut c = vec![0.0f64; 9]; // wrong size
    assert!(std::panic::catch_unwind(move || gemm(4, &a, &b, &mut c)).is_err());
}

/// Transfers between a stack and itself are rejected (a model bug, not a
/// measurement).
#[test]
fn self_transfer_rejected() {
    let node = System::Dawn.node();
    let fabric = NodeFabric::new(&node);
    let s = StackId::new(0, 0);
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        fabric.d2d_path(s, s, RouteVia::Auto)
    }))
    .is_err());
}

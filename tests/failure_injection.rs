//! Failure-injection and degenerate-input integration tests: the
//! simulation substrate must fail loudly or degrade gracefully, never
//! silently corrupt results.

use pvc_arch::System;
use pvc_fabric::{NodeFabric, RouteVia, StackId};
use pvc_kernels::fft::{fft, Complex, Direction};
use pvc_kernels::gemm::{gemm, test_matrix};
use pvc_memsim::cache::CacheSim;
use pvc_simrt::{FlowNetwork, FlowSpec, Time};

/// A dead Xe-Link leaves same-card traffic unharmed but strands the
/// remote pair.
#[test]
fn dead_link_strands_only_its_flows() {
    let node = System::Aurora.node();
    let fabric = NodeFabric::new(&node);
    let mut net = fabric.net.clone_resources();

    let local = net.add_flow(FlowSpec {
        start: Time::ZERO,
        bytes: 1e9,
        path: fabric.d2d_path(StackId::new(0, 0), StackId::new(0, 1), RouteVia::Auto),
        latency: 0.0,
    });
    let remote_path = fabric.d2d_path(StackId::new(0, 0), StackId::new(1, 1), RouteVia::Auto);
    // Kill the first resource of the remote path (the Xe-Link direction).
    net.disable_resource(remote_path[0]);
    let remote = net.add_flow(FlowSpec {
        start: Time::ZERO,
        bytes: 1e9,
        path: remote_path,
        latency: 0.0,
    });

    let done = net.run();
    assert!(done.contains_key(&local), "local traffic unaffected");
    assert!(!done.contains_key(&remote), "remote flow stranded");
}

/// Degenerate flow-network inputs are rejected loudly.
#[test]
fn flow_network_rejects_garbage() {
    use std::panic::catch_unwind;
    assert!(catch_unwind(|| {
        let mut net = FlowNetwork::new();
        net.add_resource(f64::NAN);
    })
    .is_err());
    assert!(catch_unwind(|| {
        let mut net = FlowNetwork::new();
        let r = net.add_resource(1.0);
        net.add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: -5.0,
            path: vec![r],
            latency: 0.0,
        });
    })
    .is_err());
}

/// Tiny caches and single-line working sets behave sensibly.
#[test]
fn degenerate_cache_geometries() {
    // Minimal legal cache: one set, one way.
    let mut c = CacheSim::new(64, 64, 1);
    assert!(!c.access(0));
    assert!(c.access(32)); // same line
    assert!(!c.access(64)); // evicts
    assert!(!c.access(0)); // and misses again

    // Cache smaller than one set must panic.
    assert!(std::panic::catch_unwind(|| CacheSim::new(32, 64, 2)).is_err());
}

/// Size-1 and size-0 edge cases of the numeric kernels.
#[test]
fn kernel_degenerate_sizes() {
    // 1x1 GEMM.
    let a = vec![3.0f64];
    let b = vec![4.0f64];
    let mut c = vec![0.0f64];
    gemm(1, &a, &b, &mut c);
    assert_eq!(c[0], 12.0);

    // Length-1 and length-2 FFTs.
    let mut x = vec![Complex::new(5.0f64, 0.0)];
    fft(&mut x, Direction::Forward);
    assert_eq!(x[0].re, 5.0);
    let mut y = vec![Complex::new(1.0f64, 0.0), Complex::new(2.0, 0.0)];
    fft(&mut y, Direction::Forward);
    assert!((y[0].re - 3.0).abs() < 1e-12);
    assert!((y[1].re + 1.0).abs() < 1e-12);
}

/// Mismatched GEMM buffers fail fast.
#[test]
fn gemm_shape_mismatch_panics() {
    let a = test_matrix::<f64>(4, 1);
    let b = test_matrix::<f64>(4, 2);
    let mut c = vec![0.0f64; 9]; // wrong size
    assert!(std::panic::catch_unwind(move || gemm(4, &a, &b, &mut c)).is_err());
}

/// Transfers between a stack and itself are rejected (a model bug, not a
/// measurement).
#[test]
fn self_transfer_rejected() {
    let node = System::Dawn.node();
    let fabric = NodeFabric::new(&node);
    let s = StackId::new(0, 0);
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        fabric.d2d_path(s, s, RouteVia::Auto)
    }))
    .is_err());
}

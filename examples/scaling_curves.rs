//! Scaling curves: Table VI generalised to every rank count, including
//! two model predictions the paper's three-point tables cannot show —
//! miniQMC's odd-rank sawtooth (unbalanced sockets) and Dawn's
//! peak-before-full-node behaviour.
//!
//! ```text
//! cargo run --release --example scaling_curves
//! ```

use pvc_repro::miniapps::scaling::{
    cloverleaf_series, minigamess_series, miniqmc_series, ScalingPoint,
};
use pvc_repro::prelude::*;

fn plot(name: &str, series: &[ScalingPoint]) {
    let max = series.iter().map(|p| p.fom).fold(0.0f64, f64::max);
    println!("{name}:");
    for p in series {
        let bar = "#".repeat((p.fom / max * 40.0) as usize);
        println!(
            "  {:>2} ranks {:>8.2} ({:>4.0}%) {bar}",
            p.ranks,
            p.fom,
            p.efficiency * 100.0
        );
    }
}

fn main() {
    for sys in System::PVC {
        println!("===== {} =====", sys.label());
        plot("miniQMC (weak, host-congestion model)", &miniqmc_series(sys));
        plot("mini-GAMESS (strong, Amdahl + allreduce)", &minigamess_series(sys));
        plot("CloverLeaf (weak, halo overhead)", &cloverleaf_series(sys));
        println!();
    }

    let dawn = miniqmc_series(System::Dawn);
    let best = dawn
        .iter()
        .max_by(|a, b| a.fom.partial_cmp(&b.fom).unwrap())
        .unwrap();
    println!(
        "Model prediction beyond the paper: Dawn's miniQMC throughput peaks at\n\
         {} ranks ({:.2}) — its published 8-rank configuration ({:.2}) slightly\n\
         overfills the sockets. Aurora's shallower congestion keeps growing to 12.",
        best.ranks,
        best.fom,
        dawn.last().unwrap().fom
    );
}

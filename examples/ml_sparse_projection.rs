//! Future-work extension (§VII): machine-learning and sparse-data
//! projections from the microbenchmarks, plus a real SpMV run.
//!
//! ```text
//! cargo run --release --example ml_sparse_projection
//! ```

use pvc_repro::apps::sparse::{spmv_nnz_rate, TransformerLayer};
use pvc_repro::kernels::spmv::synthetic_sparse;
use pvc_repro::prelude::*;
use std::time::Instant;

fn main() {
    // --- Real SpMV on the host, correctness + host throughput. ---
    let n = 200_000;
    let a = synthetic_sparse::<f64>(n, 16, 7);
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut y = vec![0.0; n];
    let t0 = Instant::now();
    let reps = 20;
    for _ in 0..reps {
        a.spmv(&x, &mut y);
    }
    let dt = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "host SpMV: n={n}, nnz={} ({:.1}/row): {:.2} GNnz/s, checksum {:.3}",
        a.nnz(),
        a.nnz() as f64 / n as f64,
        a.nnz() as f64 / dt / 1e9,
        y.iter().sum::<f64>()
    );

    // --- Device projections. ---
    println!("\nProjected SpMV throughput (GNnz/s per partition):");
    println!("{:<14} {:>12} {:>12} {:>12}", "", "hit=1.0", "hit=0.9", "hit=0.5");
    for sys in System::ALL {
        let r = |h| spmv_nnz_rate(sys, &a, h) / 1e9;
        println!(
            "{:<14} {:>12.2} {:>12.2} {:>12.2}",
            sys.label(),
            r(1.0),
            r(0.9),
            r(0.5)
        );
    }
    println!("(at poor gather locality the ranking flips to the OpenMC ordering —");
    println!(" concurrency/latency, not bandwidth, decides)");

    // --- Transformer-layer projection from the BF16GEMM row. ---
    let layer = TransformerLayer {
        tokens: 2048,
        d_model: 4096,
    };
    println!(
        "\nTransformer layer (T={}, d={}): {:.1} Gflop per forward pass",
        layer.tokens,
        layer.d_model,
        layer.flops() / 1e9
    );
    for sys in System::ALL {
        println!(
            "  {:<14} {:>8.1} layers/s per partition (BF16 matrix units)",
            sys.label(),
            layer.layers_per_second(sys)
        );
    }
}

//! Particle-transport scenario (the OpenMC workload of §VI-A1): a real
//! multigroup Monte Carlo eigenvalue run, verified against the
//! deterministic multigroup answer, followed by the node-level Table VI
//! FOMs from the latency-bound throughput model.
//!
//! ```text
//! cargo run --release --example reactor_transport
//! ```

use pvc_repro::apps::openmc::{fom_node, run_transport, MultigroupXs};
use pvc_repro::prelude::*;

fn main() {
    let xs = MultigroupXs::two_group_fuel();
    println!("Two-group depleted-fuel-like medium:");
    println!("  sigma_t = {:?}", xs.total);
    println!("  k_inf (deterministic power iteration) = {:.5}", xs.k_inf_deterministic());

    for particles in [1_000usize, 10_000, 100_000] {
        let t = run_transport(&xs, particles, 10, 2024);
        println!(
            "  MC with {:>6} particles/batch x 10: k = {:.5} +/- {:.5}",
            particles, t.k_eff, t.k_std
        );
    }

    let t = run_transport(&xs, 20_000, 10, 7);
    let total_flux: f64 = t.flux.iter().sum();
    println!(
        "  flux spectrum: fast {:.3}, thermal {:.3} (collision estimator)",
        t.flux[0] / total_flux,
        t.flux[1] / total_flux
    );

    println!("\nNode-level FOMs (active-phase, thousands of particles/s):");
    for sys in System::ALL {
        let engine = Engine::new(sys);
        println!(
            "  {:<14} {:7.0} kparticles/s  (HBM latency {:5.0} ns, {} partitions)",
            sys.label(),
            fom_node(sys),
            engine.node().gpu.memory_latency_secs() * 1e9,
            engine.node().partitions()
        );
    }
    println!(
        "\nAurora/H100 = {:.2}x — §VI-B1's \"1.7x the performance of the JLSE 4x H100 node\".",
        fom_node(System::Aurora) / fom_node(System::JlseH100)
    );
}

//! Future-work extension (§VII): project the paper's mini-app FOMs onto
//! a Frontier (MI250X) node, using only the bound classification of
//! Table V and Frontier's published microbenchmark numbers — exactly the
//! methodology the paper validates on Aurora/Dawn/H100/MI250.
//!
//! ```text
//! cargo run --release --example frontier_projection
//! ```

use pvc_repro::arch::frontier::frontier_node;
use pvc_repro::prelude::*;

fn main() {
    let frontier = frontier_node();
    let aurora = System::Aurora.node();

    println!("Frontier node: {} x {} ({} GCDs, single socket)", frontier.gpus, frontier.gpu.name, frontier.partitions());

    // Per-partition bound metrics.
    let f_bw = frontier.gpu.stream_bandwidth_per_partition();
    let a_bw = aurora.gpu.stream_bandwidth_per_partition();
    let f_fp32 = frontier.gpu.vector_peak_per_partition(Precision::Fp32, 1);
    let a_fp32 = aurora.gpu.vector_peak_per_partition(Precision::Fp32, 1);

    println!("\nPer-partition bound metrics (Frontier GCD vs Aurora stack):");
    println!("  stream bandwidth: {:.2} vs {:.2} TB/s  (ratio {:.2})", f_bw / 1e12, a_bw / 1e12, f_bw / a_bw);
    println!("  FP32 vector peak: {:.1} vs {:.1} TFlop/s (ratio {:.2})", f_fp32 / 1e12, a_fp32 / 1e12, f_fp32 / a_fp32);

    // Project the two cleanly-bound mini-apps from Aurora's simulated
    // FOMs by the metric ratios (the black-bar arithmetic):
    let bude_aurora = fom(AppKind::MiniBude, System::Aurora, ScaleLevel::OneStack).unwrap();
    // miniBUDE kernel efficiency on CDNA2 is the paper's 26% (measured
    // on the MI250 sibling), vs 41% on Aurora's PVC.
    let bude_frontier = bude_aurora * (f_fp32 / a_fp32) * (0.2736 / 0.4077);
    let clover_aurora = fom(AppKind::CloverLeaf, System::Aurora, ScaleLevel::OneStack).unwrap();
    let clover_frontier = clover_aurora * (f_bw / a_bw);

    println!("\nProjected per-partition FOMs on Frontier:");
    println!("  miniBUDE   ~{bude_frontier:6.1} GInteractions/s (vs {bude_aurora:.1} on an Aurora stack)");
    println!("  CloverLeaf ~{clover_frontier:6.1} Mcells/s       (vs {clover_aurora:.1})");

    // Node-level OpenMC projection from the latency model.
    let lookups = pvc_repro::apps::openmc::LOOKUPS_PER_PARTICLE;
    let rate = frontier.gpu.partition.memory.random_access_rate(frontier.gpu.clock.max_hz());
    let openmc_node = rate / lookups * frontier.partitions() as f64 / 1e3;
    println!("  OpenMC     ~{openmc_node:6.0} kparticles/s per node (vs 2032 on Aurora, 729 on JLSE-MI250)");

    println!("\nHost-side warning from the miniQMC lesson (§V-B1): Frontier hangs");
    println!("all {} GCDs off ONE socket ({} per socket vs Aurora's 6), so CPU-", frontier.partitions(), frontier.partitions_per_socket());
    println!("congestion-bound codes like miniQMC will scale worse than any");
    println!("system in the paper unless their host work is eliminated.");
}

//! Compressible-hydrodynamics scenario (the CloverLeaf workload of
//! §V-A2): runs the real Lagrangian-Eulerian solver on the classic
//! dense-corner shock problem, reports conservation diagnostics, then
//! shows the weak-scaled Table VI FOMs.
//!
//! ```text
//! cargo run --release --example hydro_shock
//! ```

use pvc_repro::prelude::*;
use pvc_miniapps::cloverleaf::Grid;

fn main() {
    let n = 192;
    let mut grid = Grid::shock_tube(n, n);
    let m0 = grid.total_mass();
    let e0 = grid.total_internal_energy();
    println!("CloverLeaf-style shock on a {n}x{n} grid");
    println!("initial:  mass {m0:.6}  internal energy {e0:.6}");

    let mut time = 0.0;
    for step in 1..=200 {
        let dt = grid.step();
        time += dt;
        if step % 50 == 0 {
            println!(
                "step {step:>4}  t={time:.4}  dt={dt:.2e}  mass drift {:+.2e}  max rho {:.3}",
                (grid.total_mass() - m0) / m0,
                grid.density.iter().cloned().fold(0.0f64, f64::max),
            );
        }
    }
    println!(
        "final:    mass {:.6} (conserved to {:.1e})",
        grid.total_mass(),
        ((grid.total_mass() - m0) / m0).abs()
    );

    println!("\nWeak-scaled FOMs at the paper's 15360^2-per-rank size:");
    println!("{:<14} {:>9} {:>9} {:>9}", "", "1 part", "1 GPU", "node");
    for sys in System::ALL {
        let f = |l| pvc_repro::predict::fom(AppKind::CloverLeaf, sys, l);
        println!(
            "{:<14} {:>9.2} {:>9.2} {:>9.2}",
            sys.label(),
            f(ScaleLevel::OneStack).unwrap(),
            f(ScaleLevel::OneGpu).unwrap(),
            f(ScaleLevel::FullNode).unwrap(),
        );
    }
    let pvc = pvc_repro::predict::fom(AppKind::CloverLeaf, System::Aurora, ScaleLevel::OneGpu).unwrap();
    let h100 = pvc_repro::predict::fom(AppKind::CloverLeaf, System::JlseH100, ScaleLevel::OneGpu).unwrap();
    println!(
        "\none PVC / one H100 = {:.2} — the paper's lowest relative FOM (0.6x),\n\
         expected from the bandwidth ratio 2 TB/s / 3.35 TB/s = 0.60",
        pvc / h100
    );
}

//! Contention timeline: watch the max–min fair-share allocator react as
//! transfers arrive and finish on an Aurora socket — the §IV-B4
//! root-complex story frame by frame.
//!
//! ```text
//! cargo run --release --example contention_timeline
//! ```

use pvc_repro::fabric::NodeFabric;
use pvc_repro::prelude::*;
use pvc_repro::simrt::FlowSpec;

fn main() {
    let node = System::Aurora.node();
    let fabric = NodeFabric::with_active(&node, 6);
    let mut net = fabric.net.clone_resources();

    // Three cards of socket 0 start staggered 5 GB D2H transfers.
    println!("Three staggered 5 GB D2H transfers on Aurora socket 0:");
    let mut ids = Vec::new();
    for (i, g) in [0u32, 1, 2].iter().enumerate() {
        let s = StackId::new(*g, 0);
        let id = net.add_flow(FlowSpec {
            start: Time::from_secs(i as f64 * 0.02),
            bytes: 5e9,
            path: fabric.d2h_path(s),
            latency: 0.0,
        });
        println!("  flow {i}: card {g}, starts at t = {:.0} ms", i as f64 * 20.0);
        ids.push(id);
    }

    let (done, trace) = net.run_traced();

    println!("\nPiecewise-constant rate schedule (the fluid allocator's output):");
    println!("{:<8} {:>10} {:>10} {:>12}", "flow", "from (ms)", "to (ms)", "rate (GB/s)");
    for seg in &trace {
        let idx = ids.iter().position(|&id| id == seg.flow).unwrap();
        println!(
            "flow {:<3} {:>10.1} {:>10.1} {:>12.1}",
            idx,
            seg.from.as_secs() * 1e3,
            seg.to.as_secs() * 1e3,
            seg.rate / 1e9
        );
    }

    println!("\nOutcomes:");
    for (i, id) in ids.iter().enumerate() {
        let o = &done[id];
        println!(
            "  flow {i}: finished at {:>6.1} ms, average {:.1} GB/s",
            o.finished.as_secs() * 1e3,
            o.bandwidth() / 1e9
        );
    }
    println!(
        "\nWith one card active each flow gets its 53 GB/s adapter rate; as the\n\
         second and third join, the socket's 132 GB/s D2H root complex caps the\n\
         aggregate — the same mechanism that turns 12 x 53 GB/s of demand into\n\
         Table II's 264 GB/s full-node figure."
    );
}

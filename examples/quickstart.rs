//! Quickstart: a five-minute tour of the reproduction library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pvc_repro::prelude::*;
use pvc_microbench::{membw, peakflops};

fn main() {
    println!("== Systems of the study (paper §III) ==");
    for sys in System::ALL {
        let node = sys.node();
        println!(
            "{:<14} {} x {} ({} partitions/node, {:.0} W cap)",
            sys.label(),
            node.gpus,
            node.gpu.name,
            node.partitions(),
            node.gpu_power_cap_w,
        );
    }

    println!("\n== Peak flops, Table II style (simulated) ==");
    for sys in System::PVC {
        for p in [Precision::Fp64, Precision::Fp32] {
            let r = peakflops::run(sys, p).rates;
            println!(
                "{:<14} {p}: one stack {:5.1}  one PVC {:5.1}  node {:6.1} TFlop/s",
                sys.label(),
                r.one_stack / 1e12,
                r.one_pvc / 1e12,
                r.full_node / 1e12,
            );
        }
    }

    println!("\n== Memory bandwidth (triad) ==");
    for sys in System::PVC {
        let r = membw::run(sys).bandwidth;
        println!(
            "{:<14} one stack {:.2} TB/s, node {:.1} TB/s",
            sys.label(),
            r.one_stack / 1e12,
            r.full_node / 1e12
        );
    }

    println!("\n== A Table VI figure of merit ==");
    for sys in System::ALL {
        if let Some(f) = fom(AppKind::CloverLeaf, sys, ScaleLevel::FullNode) {
            println!("CloverLeaf node FOM on {:<14} {f:7.2} Mcells/s", sys.label());
        }
    }

    println!("\n== And the paper's headline comparison ==");
    let pvc = fom(AppKind::MiniQmc, System::Dawn, ScaleLevel::OneGpu).unwrap();
    let h100 = fom(AppKind::MiniQmc, System::JlseH100, ScaleLevel::OneGpu).unwrap();
    println!(
        "miniQMC, one Dawn PVC vs one H100: {:.2}x (the abstract's upper 1.8x)",
        pvc / h100
    );
}

//! Runs the real microbenchmark kernels on THIS machine's CPU with the
//! paper's best-of-N methodology (§IV-A) — a fifth "system" column to
//! set the modelled GPU numbers against.
//!
//! ```text
//! cargo run --release --example host_microbench
//! ```

use pvc_repro::microbench::host::{run_host_suite, HostConfig};

fn main() {
    let cfg = HostConfig::default();
    println!(
        "Host microbenchmark suite (best of {} after warm-up, §IV-A methodology):\n",
        cfg.reps
    );
    let results = run_host_suite(&cfg);
    println!(
        "{:<28} {:>12} {:<12} {:>10} {:>10}",
        "benchmark", "best rate", "unit", "spread", "reps"
    );
    for r in &results {
        println!(
            "{:<28} {:>12.2} {:<12} {:>9.1}% {:>10}",
            r.name,
            r.rate,
            r.unit,
            r.stats.spread() * 100.0,
            r.stats.reps
        );
    }
    println!(
        "\nFor scale: one modelled PVC stack sustains 1000 GB/s triad and\n\
         17,000 FP64 GFlop/s (Table II) — the gap to the host is the point\n\
         of the GPUs."
    );
}

//! Cosmology scenario (the CRK-HACC workload of §VI-A2): a real N-body
//! run — collapse of a jittered particle cube under self-gravity with
//! energy diagnostics and an SPH density estimate — followed by the
//! node-level Table VI FOM comparison.
//!
//! ```text
//! cargo run --release --example cosmology
//! ```

use pvc_repro::apps::hacc::{
    fom_node, leapfrog_step, particle_cube, sph_density, total_energy,
};
use pvc_repro::prelude::*;

fn main() {
    let n = 12; // 12^3 = 1728 particles
    let mut particles = particle_cube(n, 42);
    println!(
        "N-body collapse: {} particles, leapfrog dt = 5e-4",
        particles.len()
    );
    let e0 = total_energy(&particles);
    println!("t=0      E = {e0:+.6}");
    for step in 1..=100 {
        leapfrog_step(&mut particles, 5e-4);
        if step % 25 == 0 {
            let e = total_energy(&particles);
            println!(
                "step {step:>3}  E = {e:+.6}  (drift {:+.2e})",
                (e - e0) / e0.abs()
            );
        }
    }

    let rho = sph_density(&particles, 0.15);
    let mean = rho.iter().sum::<f32>() / rho.len() as f32;
    let max = rho.iter().cloned().fold(0.0f32, f32::max);
    println!("SPH density after collapse: mean {mean:.2}, max {max:.2} (clustering!)");

    println!("\nNode-level CRK-HACC FOMs (N_p x N_steps / time):");
    for sys in System::ALL {
        println!("  {:<14} {:6.2}", sys.label(), fom_node(sys));
    }
    println!(
        "\nAll four systems within {:.0}% of each other — §VI-B2's scaled-performance\n\
         observation that GPU compute, CPU threads and host bandwidth all matter.",
        (fom_node(System::Aurora) / fom_node(System::JlseMi250) - 1.0) * 100.0
    );
}

//! Device query: a clinfo/nvidia-smi-style dump of every modelled GPU —
//! the §II architecture walk, in table form.
//!
//! ```text
//! cargo run --release --example device_query
//! ```

use pvc_repro::arch::frontier::mi250x_gpu;
use pvc_repro::arch::power;
use pvc_repro::prelude::*;

fn dump(gpu: &pvc_repro::arch::GpuModel) {
    let p = &gpu.partition;
    println!("{}", gpu.name);
    println!("  partitions/device      : {} x {}", gpu.partitions, p.kind);
    println!("  compute units/partition: {}", p.compute_units);
    println!(
        "  vector engines         : {} ({} per CU)",
        p.vector_engines(),
        p.vector_engines_per_cu
    );
    println!(
        "  matrix engines         : {} ({} per CU)",
        p.matrix_engines(),
        p.matrix_engines_per_cu
    );
    println!(
        "  clocks                 : max {:.2} GHz, FP64 sustained {:.2} GHz",
        gpu.clock.max_ghz, gpu.clock.fp64_vector_ghz
    );
    for prec in [Precision::Fp64, Precision::Fp32, Precision::Bf16, Precision::Int8] {
        let v = gpu.vector_peak_per_partition(prec, 1);
        let m = gpu.matrix_peak_per_partition(prec, 1);
        println!(
            "  {prec:<5} peak/partition   : vector {:>7.1} {}  matrix {:>7.1} {}",
            v / 1e12,
            prec.throughput_unit(),
            m / 1e12,
            prec.throughput_unit(),
        );
    }
    for (i, c) in p.caches.iter().enumerate() {
        println!(
            "  {} ({})               : {:>8.0} KiB {} , {}-way, {} B lines, {:.0} cycles",
            c.name,
            if c.per_compute_unit { "per-CU" } else { "shared" },
            c.size_bytes as f64 / 1024.0,
            if i == 0 { "" } else { " " },
            c.associativity,
            c.line_bytes,
            c.latency_cycles
        );
    }
    let mem = &p.memory;
    println!(
        "  HBM/partition          : {:.0} GiB, spec {:.2} TB/s, stream {:.2} TB/s, {:.0} cycles, MLP {:.0}",
        mem.capacity_bytes as f64 / (1u64 << 30) as f64,
        mem.spec_bandwidth / 1e12,
        mem.stream_bandwidth() / 1e12,
        mem.latency_cycles,
        mem.random_concurrency
    );
    println!();
}

fn main() {
    println!("== Modelled devices (§II / §III / Table IV) ==\n");
    for sys in System::ALL {
        dump(&sys.node().gpu);
    }
    println!("== Extension device ==\n");
    dump(&mi250x_gpu());

    println!("== Node power & efficiency (extension) ==");
    println!(
        "{:<14} {:>8} {:>14} {:>14}",
        "", "cap W", "FP64 GF/W", "FP32 GF/W"
    );
    for sys in System::ALL {
        let node = sys.node();
        println!(
            "{:<14} {:>8.0} {:>14.1} {:>14.1}",
            sys.label(),
            node.gpu_power_cap_w,
            power::flops_per_watt(&node, Precision::Fp64) / 1e9,
            power::flops_per_watt(&node, Precision::Fp32) / 1e9,
        );
    }
}

//! Virtual screening scenario (the miniBUDE workload of §V-A1).
//!
//! Runs a *real* docking screen — pose generation, pairwise
//! ligand-protein energy evaluation, ranking — on a synthetic NDM-1-like
//! deck, then evaluates the Table VI FOM model on all four systems.
//!
//! ```text
//! cargo run --release --example virtual_screening
//! ```

use pvc_repro::prelude::*;
use pvc_miniapps::minibude::{
    self, synthetic_molecule, synthetic_poses, Deck, FLOPS_PER_INTERACTION,
};
use std::time::Instant;

fn main() {
    // Reduced-scale deck; same shape as the paper's input (2672 x 2672
    // atoms x 983040 poses), scaled down for a host run.
    let deck = Deck {
        ligand_atoms: 64,
        protein_atoms: 256,
        poses: 8192,
    };
    let ligand = synthetic_molecule(deck.ligand_atoms, 1);
    let protein = synthetic_molecule(deck.protein_atoms, 2);
    let poses = synthetic_poses(deck.poses, 3);

    println!(
        "Screening {} poses x {} x {} atoms ({} M interactions)...",
        deck.poses,
        deck.ligand_atoms,
        deck.protein_atoms,
        deck.interactions() / 1e6
    );
    let t0 = Instant::now();
    let energies = minibude::screen(&ligand, &protein, &poses);
    let dt = t0.elapsed().as_secs_f64();

    // Rank the best poses, as BUDE's docking phase would.
    let mut ranked: Vec<(usize, f32)> = energies.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!("host run: {:.2} s, {:.2} Ginteractions/s", dt, deck.interactions() / dt / 1e9);
    println!("best poses:");
    for (idx, e) in ranked.iter().take(5) {
        println!("  pose {idx:>6}  energy {e:10.3}");
    }

    println!("\nTable VI FOMs at paper scale (simulated devices):");
    for sys in System::ALL {
        let f = pvc_repro::predict::fom(AppKind::MiniBude, sys, ScaleLevel::OneStack).unwrap();
        let eff = minibude::kernel_efficiency(sys);
        println!(
            "  {:<14} {f:7.2} GInteractions/s  ({:.0}% of FP32 peak, {:.0} flops/interaction)",
            sys.label(),
            eff * 100.0,
            FLOPS_PER_INTERACTION
        );
    }

    let a = pvc_repro::predict::fom(AppKind::MiniBude, System::Aurora, ScaleLevel::OneStack).unwrap();
    let d = pvc_repro::predict::fom(AppKind::MiniBude, System::Dawn, ScaleLevel::OneStack).unwrap();
    println!(
        "\nAurora/Dawn ratio {:.2} vs expected 0.88 (Figure 2's black bar)",
        a / d
    );
}

//! Node-contention scenario: the §IV-B4 and §IV-B7 stories, live.
//!
//! Shows (1) how full-node PCIe traffic saturates the per-socket root
//! complexes on Aurora while Dawn's two-cards-per-socket layout stays
//! clean, and (2) the two-plane Xe-Link topology, including the
//! cross-plane two-hop routes of §IV-A4.
//!
//! ```text
//! cargo run --release --example node_contention
//! ```

use pvc_repro::fabric::comm::Transfer;
use pvc_repro::fabric::plane::plane_of;
use pvc_repro::fabric::{NodeFabric, RouteVia};
use pvc_repro::prelude::*;

fn main() {
    println!("== PCIe: per-rank D2H bandwidth as the node fills up ==");
    for sys in System::PVC {
        let node = sys.node();
        println!("{}:", sys.label());
        for active in [1u32, 2, node.partitions() / 2, node.partitions()] {
            let comm = Comm::new(sys, active);
            let stacks = comm.all_stacks();
            let ts: Vec<Transfer> = stacks
                .iter()
                .take(active as usize)
                .map(|&s| Transfer::D2h(s))
                .collect();
            let r = comm.run_transfers(&ts, 500e6);
            println!(
                "  {active:>2} ranks: aggregate {:6.1} GB/s  ({:5.1} GB/s per rank)",
                r.aggregate_bandwidth() / 1e9,
                r.aggregate_bandwidth() / 1e9 / active as f64
            );
        }
    }
    println!("(Aurora saturates its 2 x 132 GB/s D2H root-complex pools — the 40% of §IV-B4.)");

    println!("\n== Xe-Link planes on Aurora (§IV-A4) ==");
    let aurora = System::Aurora.node();
    for plane in 0..2 {
        let members: Vec<String> = (0..aurora.gpus)
            .flat_map(|g| (0..2).map(move |s| StackId::new(g, s)))
            .filter(|&id| plane_of(System::Aurora, id) == plane)
            .map(|id| id.to_string())
            .collect();
        println!("plane {plane}: {}", members.join(", "));
    }

    println!("\n== Routing 0.0 -> 1.0 (cross-plane, two candidate paths) ==");
    let fabric = NodeFabric::new(&aurora);
    let a = StackId::new(0, 0);
    let b = StackId::new(1, 0);
    for (name, via) in [
        ("via source sibling (0.0->0.1->1.0)", RouteVia::SourceSibling),
        ("via dest sibling   (0.0->1.1->1.0)", RouteVia::DestSibling),
    ] {
        let bw = fabric.isolated_bandwidth(fabric.d2d_path(a, b, via));
        println!("  {name}: {:.1} GB/s", bw / 1e9);
    }
    let one_hop = fabric.isolated_bandwidth(fabric.d2d_path(a, StackId::new(1, 1), RouteVia::Auto));
    let mdfi = fabric.isolated_bandwidth(fabric.d2d_path(a, StackId::new(0, 1), RouteVia::Auto));
    println!("  same-plane one hop (0.0->1.1): {:.1} GB/s", one_hop / 1e9);
    println!("  on-card MDFI       (0.0->0.1): {:.1} GB/s", mdfi / 1e9);
    println!(
        "\nXe-Link ({:.0} GB/s) is slower than PCIe H2D ({:.0} GB/s) — §IV-B7.",
        one_hop / 1e9,
        aurora.pcie.per_card_h2d / 1e9
    );
}

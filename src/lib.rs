//! Top-level reproduction harness crate.
//!
//! This crate exists to host the workspace-wide integration tests in
//! `tests/` and the runnable examples in `examples/`. The actual library
//! surface lives in [`pvc_core`] and the per-subsystem crates it
//! re-exports.

pub use pvc_core as core;

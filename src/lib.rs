//! # pvc-repro — facade for the PVC single-node benchmarking reproduction
//!
//! One-stop public API for the reproduction of *"Ponte Vecchio Across the
//! Atlantic: Single-Node Benchmarking of Two Intel GPU Systems"* (SC 2024).
//!
//! ```
//! use pvc_repro::prelude::*;
//!
//! // Pick a system and ask the models anything the paper measures:
//! let aurora = System::Aurora.node();
//! assert_eq!(aurora.partitions(), 12);
//!
//! // Peak FP64 flops of one stack (Table II row 1, col 1): ~17 TFlop/s.
//! let peak = aurora.gpu.vector_peak_per_partition(Precision::Fp64, 1);
//! assert!((peak / 1e12 - 17.0).abs() < 0.5);
//!
//! // A full Table VI cell:
//! let fom = pvc_repro::predict::fom(AppKind::CloverLeaf, System::Dawn, ScaleLevel::OneStack);
//! assert!((fom.unwrap() - 22.46).abs() < 0.5);
//! ```
//!
//! The subsystem crates are re-exported under their short names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | pvc-core | hermetic substrate: rng / par / json / check |
//! | [`arch`] | pvc-arch | machine models (§II, §III, Table IV) |
//! | [`simrt`] | pvc-simrt | discrete-event runtime, max–min flows |
//! | [`memsim`] | pvc-memsim | cache simulation, `lats` (Figure 1) |
//! | [`fabric`] | pvc-fabric | PCIe/MDFI/Xe-Link graph, MPI-like Comm |
//! | [`kernels`] | pvc-kernels | real FMA/triad/GEMM/FFT/chase kernels |
//! | [`engine`] | pvc-engine | kernel-to-time performance engine |
//! | [`microbench`] | pvc-microbench | the seven benchmarks (Tables I–III) |
//! | [`miniapps`] | pvc-miniapps | miniBUDE, CloverLeaf, miniQMC, mini-GAMESS |
//! | [`apps`] | pvc-apps | OpenMC-like transport, CRK-HACC-like N-body |
//! | [`predict`] | pvc-predict | expected-ratio model (Figures 2–4) |
//! | [`scenario`] | pvc-scenario | typed workload × system registry |
//! | [`report`] | pvc-report | table/figure regeneration |
//! | [`serve`] | pvc-serve | batching/caching query service core |
//! | [`store`] | pvc-store | persistent content-addressed result store |
//! | [`validate`] | pvc-validate | golden conformance + metamorphic suites |

pub use pvc_apps as apps;
pub use pvc_arch as arch;
pub use pvc_core as core;
pub use pvc_engine as engine;
pub use pvc_fabric as fabric;
pub use pvc_kernels as kernels;
pub use pvc_memsim as memsim;
pub use pvc_microbench as microbench;
pub use pvc_miniapps as miniapps;
pub use pvc_predict as predict;
pub use pvc_report as report;
pub use pvc_scenario as scenario;
pub use pvc_serve as serve;
pub use pvc_simrt as simrt;
pub use pvc_store as store;
pub use pvc_validate as validate;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use pvc_arch::{GpuModel, NodeModel, Precision, System};
    pub use pvc_core::SimRng;
    pub use pvc_engine::{BoundKind, Engine, KernelProfile};
    pub use pvc_fabric::{Comm, NodeFabric, StackId};
    pub use pvc_miniapps::ScaleLevel;
    pub use pvc_predict::{fom, AppKind};
    pub use pvc_scenario::{Fom, Registry, Scenario, ScenarioId, Workload};
    pub use pvc_simrt::{EventSim, FlowNetwork, FlowSpec, Time};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_pipeline_end_to_end() {
        // microbenchmark -> prediction -> mini-app FOM, all reachable
        // through the facade.
        let engine = Engine::new(System::Aurora);
        let bw = engine.stream_bandwidth(1);
        assert!((bw / 1e12 - 1.0).abs() < 0.05);

        let bar = pvc_predict::figure2()
            .into_iter()
            .find(|b| b.app == AppKind::MiniBude && b.level == ScaleLevel::OneStack)
            .unwrap();
        assert!(bar.measured.is_some() && bar.expected.is_some());
    }

    #[test]
    fn facade_exposes_the_scenario_registry() {
        // The same dispatch layer the tables, profiles, serve executor
        // and conformance use, reachable from the prelude.
        let reg = Registry::standard();
        let out = reg.run("stream-triad", System::Aurora).unwrap();
        // Table II row 3, Aurora 6 PVC: ~12 TB/s.
        assert!((out.fom.value() / 1e3 - 12.0).abs() < 1.0, "{}", out.fom);
    }
}

//! On-disk framing for the append-only segment file.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header  := MAGIC (8 bytes) | fingerprint u64
//! record  := key u64 | text_len u32 | value_len u32 | text | value | checksum u64
//! segment := header record*
//! ```
//!
//! The checksum is FNV-1a 64 over everything in the frame before it
//! (key, lengths, text, value), so any bit flip or truncation inside a
//! record is detected. Length fields are sanity-capped before any
//! allocation happens, so a corrupt length can never ask for gigabytes.

/// Segment file magic: identifies the format and its version. Bump the
/// trailing digit on any incompatible layout change — an old file then
/// reads as malformed and the store resets, same as a fingerprint miss.
pub const MAGIC: [u8; 8] = *b"PVCSTOR1";

/// Bytes before the first record: magic + fingerprint.
pub const HEADER_LEN: usize = 16;

/// Fixed bytes of a record frame around the variable text/value.
pub(crate) const FRAME_OVERHEAD: usize = 8 + 4 + 4 + 8;

/// Caps applied to length fields before allocating. Canonical requests
/// are small; responses are rendered tables/figures/JSON, comfortably
/// under these.
const MAX_TEXT_LEN: u32 = 1 << 20; // 1 MiB
const MAX_VALUE_LEN: u32 = 1 << 28; // 256 MiB

/// FNV-1a, 64-bit: the frame checksum and the content hash convention
/// shared with `pvc-serve` request addressing. Deterministic,
/// allocation-free and endianness-independent.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Why a frame failed to decode. Every variant means "stop scanning
/// here and truncate to the last good frame" — after an append-only
/// write tore, nothing past the tear is trustworthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes remain than the fixed frame overhead.
    TruncatedHeader,
    /// A length field exceeds its sanity cap.
    LengthOverflow,
    /// The declared payload extends past the end of the file.
    TruncatedPayload,
    /// The checksum over the frame does not match the stored one.
    ChecksumMismatch,
    /// The text payload is not valid UTF-8.
    BadText,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TruncatedHeader => write!(f, "truncated frame header"),
            FrameError::LengthOverflow => write!(f, "frame length exceeds sanity cap"),
            FrameError::TruncatedPayload => write!(f, "frame payload truncated"),
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            FrameError::BadText => write!(f, "frame text is not UTF-8"),
        }
    }
}

/// A decoded record borrowed from the segment bytes.
pub(crate) struct Frame<'a> {
    pub key: u64,
    pub text: &'a str,
    pub value: &'a [u8],
    /// Total encoded length of this frame in the segment.
    pub len: usize,
}

/// Encodes the segment header for `fingerprint`.
pub(crate) fn encode_header(fingerprint: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&MAGIC);
    h[8..].copy_from_slice(&fingerprint.to_le_bytes());
    h
}

/// Decodes a segment header, returning its fingerprint. `None` means
/// the bytes are not a store of this format version.
pub(crate) fn decode_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < HEADER_LEN || bytes[..8] != MAGIC {
        return None;
    }
    let mut fp = [0u8; 8];
    fp.copy_from_slice(&bytes[8..HEADER_LEN]);
    Some(u64::from_le_bytes(fp))
}

/// Encodes one record frame.
pub(crate) fn encode_frame(key: u64, text: &str, value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + text.len() + value.len());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value.len() as u32).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
    out.extend_from_slice(value);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes the frame starting at `bytes[0]`.
pub(crate) fn decode_frame(bytes: &[u8]) -> Result<Frame<'_>, FrameError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(FrameError::TruncatedHeader);
    }
    let mut u64buf = [0u8; 8];
    let mut u32buf = [0u8; 4];
    u64buf.copy_from_slice(&bytes[0..8]);
    let key = u64::from_le_bytes(u64buf);
    u32buf.copy_from_slice(&bytes[8..12]);
    let text_len = u32::from_le_bytes(u32buf);
    u32buf.copy_from_slice(&bytes[12..16]);
    let value_len = u32::from_le_bytes(u32buf);
    if text_len > MAX_TEXT_LEN || value_len > MAX_VALUE_LEN {
        return Err(FrameError::LengthOverflow);
    }
    let payload = text_len as usize + value_len as usize;
    let total = FRAME_OVERHEAD + payload;
    if bytes.len() < total {
        return Err(FrameError::TruncatedPayload);
    }
    let body = &bytes[..16 + payload];
    u64buf.copy_from_slice(&bytes[16 + payload..total]);
    let stored = u64::from_le_bytes(u64buf);
    if fnv1a64(body) != stored {
        return Err(FrameError::ChecksumMismatch);
    }
    let text = std::str::from_utf8(&bytes[16..16 + text_len as usize])
        .map_err(|_| FrameError::BadText)?;
    let value = &bytes[16 + text_len as usize..16 + payload];
    Ok(Frame { key, text, value, len: total })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn frame_round_trips() {
        let enc = encode_frame(42, "req text", b"value bytes");
        let f = decode_frame(&enc).expect("decodes");
        assert_eq!(f.key, 42);
        assert_eq!(f.text, "req text");
        assert_eq!(f.value, b"value bytes");
        assert_eq!(f.len, enc.len());
    }

    #[test]
    fn empty_value_and_text_are_legal() {
        let enc = encode_frame(7, "", b"");
        let f = decode_frame(&enc).expect("decodes");
        assert_eq!(f.text, "");
        assert_eq!(f.value, b"");
        assert_eq!(f.len, FRAME_OVERHEAD);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let enc = encode_frame(9, "k", b"v");
        for byte in 0..enc.len() {
            for bit in 0..8u8 {
                let mut bad = enc.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let enc = encode_frame(9, "key text", b"some value");
        for cut in 0..enc.len() {
            assert!(decode_frame(&enc[..cut]).is_err(), "cut at {cut} undetected");
        }
    }

    #[test]
    fn header_round_trips_and_rejects_foreign_bytes() {
        let h = encode_header(0xdead_beef_cafe_f00d);
        assert_eq!(decode_header(&h), Some(0xdead_beef_cafe_f00d));
        assert_eq!(decode_header(b"not a store head"), None);
        assert_eq!(decode_header(&h[..HEADER_LEN - 1]), None);
    }

    #[test]
    fn insane_lengths_fail_before_allocating() {
        let mut enc = encode_frame(1, "t", b"v");
        // Claim a 4 GiB value; must fail on the cap, not on allocation.
        enc[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_frame(&enc), Err(FrameError::LengthOverflow)));
    }
}

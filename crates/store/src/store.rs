//! The store: open/scan/truncate, indexed lookups, atomic appends.

use crate::segment::{
    decode_frame, decode_header, encode_frame, encode_header, FrameError, HEADER_LEN,
};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// How [`Store::open`] found the segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenStatus {
    /// No usable file existed; a fresh empty store was created.
    Created,
    /// The file carried the expected fingerprint; its records loaded.
    Loaded,
    /// The file existed but its fingerprint (or header) did not match
    /// the expected build fingerprint: the store was reset to empty.
    /// `found` is the stale fingerprint (`None` for a malformed header).
    Invalidated {
        /// The fingerprint the stale file carried, when readable.
        found: Option<u64>,
    },
}

/// What [`Store::open`] did, for logging and counter export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenReport {
    /// How the segment file was treated.
    pub status: OpenStatus,
    /// Records serving after the open (the valid prefix).
    pub records: usize,
    /// Bytes dropped from a corrupt or torn tail (0 on a clean open).
    pub dropped_bytes: u64,
    /// The frame error that ended the scan, if the tail was dropped.
    pub tail_error: Option<FrameError>,
}

impl OpenReport {
    /// True when a corrupt/torn tail was truncated away.
    pub fn tail_corrupt(&self) -> bool {
        self.dropped_bytes > 0
    }

    /// True when a stale fingerprint reset the store.
    pub fn invalidated(&self) -> bool {
        matches!(self.status, OpenStatus::Invalidated { .. })
    }
}

/// One indexed record: text and value live in the arena.
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    text_off: usize,
    text_len: usize,
    value_off: usize,
    value_len: usize,
}

/// A persistent content-addressed result store over one segment file.
///
/// All reads are served from the in-memory index built at open; all
/// writes append one checksummed frame and update the index. The store
/// never overwrites: a key/text pair, once written, is immutable (a
/// second [`Store::put`] with the same pair is a no-op, which is what
/// makes double-run warm passes produce byte-identical files).
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    file: File,
    fingerprint: u64,
    /// Text and value payload bytes of every live record.
    arena: Vec<u8>,
    entries: Vec<Entry>,
    /// key → indices into `entries` with that hash (collision chain).
    index: HashMap<u64, Vec<usize>>,
    /// Total value bytes held (for introspection/telemetry).
    value_bytes: u64,
}

impl Store {
    /// Opens (or creates) the store at `path` for build `fingerprint`.
    ///
    /// * Missing or empty file → fresh store ([`OpenStatus::Created`]).
    /// * Valid header, same fingerprint → records stream in; a corrupt
    ///   or torn tail is truncated off and reported
    ///   ([`OpenStatus::Loaded`]).
    /// * Anything else — foreign bytes, old format, different
    ///   fingerprint — resets the file to an empty store for the new
    ///   fingerprint ([`OpenStatus::Invalidated`]).
    pub fn open(path: impl AsRef<Path>, fingerprint: u64) -> std::io::Result<(Store, OpenReport)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut store = Store {
            path,
            file,
            fingerprint,
            arena: Vec::new(),
            entries: Vec::new(),
            index: HashMap::new(),
            value_bytes: 0,
        };

        if bytes.is_empty() {
            store.reset_file()?;
            let report = OpenReport {
                status: OpenStatus::Created,
                records: 0,
                dropped_bytes: 0,
                tail_error: None,
            };
            return Ok((store, report));
        }

        match decode_header(&bytes) {
            Some(found) if found == fingerprint => {
                let (valid_len, tail_error) = store.load_records(&bytes);
                let dropped = bytes.len() as u64 - valid_len as u64;
                if dropped > 0 {
                    store.file.set_len(valid_len as u64)?;
                }
                store.file.seek(SeekFrom::End(0))?;
                let report = OpenReport {
                    status: OpenStatus::Loaded,
                    records: store.entries.len(),
                    dropped_bytes: dropped,
                    tail_error,
                };
                Ok((store, report))
            }
            found => {
                store.reset_file()?;
                let report = OpenReport {
                    status: OpenStatus::Invalidated { found },
                    records: 0,
                    dropped_bytes: 0,
                    tail_error: None,
                };
                Ok((store, report))
            }
        }
    }

    /// Truncates the file and writes a fresh header.
    fn reset_file(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&encode_header(self.fingerprint))?;
        self.file.flush()?;
        self.arena.clear();
        self.entries.clear();
        self.index.clear();
        self.value_bytes = 0;
        Ok(())
    }

    /// Streams records out of `bytes`, stopping at the first bad frame.
    /// Returns the byte length of the valid prefix and the error (if
    /// any) that ended the scan.
    fn load_records(&mut self, bytes: &[u8]) -> (usize, Option<FrameError>) {
        let mut pos = HEADER_LEN;
        let mut tail_error = None;
        while pos < bytes.len() {
            match decode_frame(&bytes[pos..]) {
                Ok(frame) => {
                    self.insert_entry(frame.key, frame.text, frame.value);
                    pos += frame.len;
                }
                Err(e) => {
                    tail_error = Some(e);
                    break;
                }
            }
        }
        (pos, tail_error)
    }

    /// Indexes one record, copying its payloads into the arena. A
    /// duplicate key/text pair (possible only from a file written by
    /// something other than this store) keeps the first record — the
    /// append-only contract says a pair, once written, never changes.
    fn insert_entry(&mut self, key: u64, text: &str, value: &[u8]) {
        if self.lookup(key, text).is_some() {
            return;
        }
        let text_off = self.arena.len();
        self.arena.extend_from_slice(text.as_bytes());
        let value_off = self.arena.len();
        self.arena.extend_from_slice(value);
        let entry = Entry {
            key,
            text_off,
            text_len: text.len(),
            value_off,
            value_len: value.len(),
        };
        self.index.entry(key).or_default().push(self.entries.len());
        self.entries.push(entry);
        self.value_bytes += value.len() as u64;
    }

    fn lookup(&self, key: u64, text: &str) -> Option<&Entry> {
        self.index.get(&key)?.iter().map(|&i| &self.entries[i]).find(|e| {
            e.key == key
                && &self.arena[e.text_off..e.text_off + e.text_len] == text.as_bytes()
        })
    }

    /// Looks up the stored value for `(key, text)`. The text compare
    /// guards against hash collisions — a collision is a miss, never a
    /// wrong value.
    pub fn get(&self, key: u64, text: &str) -> Option<&[u8]> {
        self.lookup(key, text)
            .map(|e| &self.arena[e.value_off..e.value_off + e.value_len])
    }

    /// True when `(key, text)` is stored.
    pub fn contains(&self, key: u64, text: &str) -> bool {
        self.lookup(key, text).is_some()
    }

    /// Persists `(key, text) → value` if absent: appends one frame to
    /// the segment (a single write syscall, so a crash tears at most
    /// the tail) and indexes it. Returns `true` when a record was
    /// written, `false` when the pair was already stored (the existing
    /// record is kept — values are immutable once written).
    pub fn put(&mut self, key: u64, text: &str, value: &[u8]) -> std::io::Result<bool> {
        if self.contains(key, text) {
            return Ok(false);
        }
        let frame = encode_frame(key, text, value);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.insert_entry(key, text, value);
        Ok(true)
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total stored value bytes.
    pub fn value_bytes(&self) -> u64 {
        self.value_bytes
    }

    /// The build fingerprint this store is bound to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch path per test invocation; no tempfile crate.
    fn scratch(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "pvc-store-test-{}-{n}-{name}.bin",
            std::process::id()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    const FP: u64 = 0x1234_5678_9abc_def0;

    fn filled(path: &Path) -> Store {
        let (mut s, r) = Store::open(path, FP).unwrap();
        assert_eq!(r.status, OpenStatus::Created);
        assert!(s.put(1, "req-one", b"value-one").unwrap());
        assert!(s.put(2, "req-two", b"value-two").unwrap());
        assert!(s.put(3, "req-three", b"value-three").unwrap());
        s
    }

    #[test]
    fn put_get_reopen_round_trip() {
        let path = scratch("roundtrip");
        let _c = Cleanup(path.clone());
        let s = filled(&path);
        assert_eq!(s.get(2, "req-two"), Some(&b"value-two"[..]));
        assert_eq!(s.get(2, "other text"), None, "collision guard");
        assert_eq!(s.get(9, "req-two"), None);
        drop(s);
        let (s, r) = Store::open(&path, FP).unwrap();
        assert_eq!(r.status, OpenStatus::Loaded);
        assert_eq!(r.records, 3);
        assert!(!r.tail_corrupt());
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(3, "req-three"), Some(&b"value-three"[..]));
        assert_eq!(s.value_bytes(), 9 + 9 + 11);
    }

    #[test]
    fn put_is_idempotent_and_file_stable() {
        let path = scratch("idempotent");
        let _c = Cleanup(path.clone());
        let mut s = filled(&path);
        let before = std::fs::read(&path).unwrap();
        assert!(!s.put(1, "req-one", b"value-one").unwrap());
        // Even a conflicting value for an existing pair is a no-op:
        // records are immutable once written.
        assert!(!s.put(1, "req-one", b"DIFFERENT").unwrap());
        assert_eq!(s.get(1, "req-one"), Some(&b"value-one"[..]));
        assert_eq!(std::fs::read(&path).unwrap(), before, "file untouched");
    }

    #[test]
    fn same_puts_produce_byte_identical_files() {
        let pa = scratch("identical-a");
        let pb = scratch("identical-b");
        let (_ca, _cb) = (Cleanup(pa.clone()), Cleanup(pb.clone()));
        filled(&pa);
        filled(&pb);
        assert_eq!(std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    }

    #[test]
    fn fingerprint_mismatch_invalidates_whole_store() {
        let path = scratch("fingerprint");
        let _c = Cleanup(path.clone());
        filled(&path);
        let (s, r) = Store::open(&path, FP ^ 1).unwrap();
        assert_eq!(r.status, OpenStatus::Invalidated { found: Some(FP) });
        assert!(r.invalidated());
        assert_eq!(r.records, 0);
        assert!(s.is_empty(), "stale results must never serve");
        drop(s);
        // The reset persisted: reopening with the new fingerprint loads
        // an empty store, reopening with the old one invalidates again.
        let (_, r) = Store::open(&path, FP ^ 1).unwrap();
        assert_eq!(r.status, OpenStatus::Loaded);
        assert_eq!(r.records, 0);
    }

    #[test]
    fn foreign_bytes_invalidate_with_unreadable_fingerprint() {
        let path = scratch("foreign");
        let _c = Cleanup(path.clone());
        std::fs::write(&path, b"this is not a store file at all").unwrap();
        let (s, r) = Store::open(&path, FP).unwrap();
        assert_eq!(r.status, OpenStatus::Invalidated { found: None });
        assert!(s.is_empty());
    }

    #[test]
    fn truncated_tail_record_degrades_to_valid_prefix() {
        let path = scratch("truncated");
        let _c = Cleanup(path.clone());
        drop(filled(&path));
        let bytes = std::fs::read(&path).unwrap();
        // Tear the last record: cut 5 bytes off the file.
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (s, r) = Store::open(&path, FP).unwrap();
        assert_eq!(r.status, OpenStatus::Loaded);
        assert_eq!(r.records, 2, "valid prefix survives");
        assert!(r.tail_corrupt());
        assert!(r.dropped_bytes > 0);
        assert_eq!(s.get(1, "req-one"), Some(&b"value-one"[..]));
        assert_eq!(s.get(2, "req-two"), Some(&b"value-two"[..]));
        assert_eq!(s.get(3, "req-three"), None, "torn record is gone");
        // The truncation persisted: the next open is clean.
        drop(s);
        let (_, r) = Store::open(&path, FP).unwrap();
        assert_eq!(r.records, 2);
        assert!(!r.tail_corrupt());
    }

    #[test]
    fn checksum_corrupt_tail_is_skipped_and_appends_resume_cleanly() {
        let path = scratch("bitflip");
        let _c = Cleanup(path.clone());
        drop(filled(&path));
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit inside the last record's value payload.
        let n = bytes.len();
        bytes[n - 12] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (mut s, r) = Store::open(&path, FP).unwrap();
        assert_eq!(r.records, 2);
        assert!(r.tail_corrupt());
        assert_eq!(r.tail_error, Some(FrameError::ChecksumMismatch));
        // Re-append the lost record plus a new one; everything reloads.
        assert!(s.put(3, "req-three", b"value-three").unwrap());
        assert!(s.put(4, "req-four", b"value-four").unwrap());
        drop(s);
        let (s, r) = Store::open(&path, FP).unwrap();
        assert_eq!(r.records, 4);
        assert!(!r.tail_corrupt());
        assert_eq!(s.get(3, "req-three"), Some(&b"value-three"[..]));
        assert_eq!(s.get(4, "req-four"), Some(&b"value-four"[..]));
    }

    #[test]
    fn corruption_mid_file_drops_everything_after_it() {
        // Framing cannot resync past a bad frame; the valid prefix is
        // whatever decodes before the first corrupt byte.
        let path = scratch("midfile");
        let _c = Cleanup(path.clone());
        drop(filled(&path));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[HEADER_LEN + 2] ^= 0xff; // inside the first record
        std::fs::write(&path, &bytes).unwrap();
        let (s, r) = Store::open(&path, FP).unwrap();
        assert_eq!(r.records, 0);
        assert!(r.tail_corrupt());
        assert!(s.is_empty());
    }

    #[test]
    fn empty_values_store_and_load() {
        let path = scratch("empty-value");
        let _c = Cleanup(path.clone());
        let (mut s, _) = Store::open(&path, FP).unwrap();
        assert!(s.put(5, "empty", b"").unwrap());
        assert_eq!(s.get(5, "empty"), Some(&b""[..]));
        drop(s);
        let (s, _) = Store::open(&path, FP).unwrap();
        assert_eq!(s.get(5, "empty"), Some(&b""[..]));
    }

    #[test]
    fn colliding_keys_with_different_text_both_serve() {
        let path = scratch("collision");
        let _c = Cleanup(path.clone());
        let (mut s, _) = Store::open(&path, FP).unwrap();
        assert!(s.put(7, "text A", b"A").unwrap());
        assert!(s.put(7, "text B", b"B").unwrap());
        assert_eq!(s.get(7, "text A"), Some(&b"A"[..]));
        assert_eq!(s.get(7, "text B"), Some(&b"B"[..]));
        drop(s);
        let (s, r) = Store::open(&path, FP).unwrap();
        assert_eq!(r.records, 2);
        assert_eq!(s.get(7, "text B"), Some(&b"B"[..]));
    }
}

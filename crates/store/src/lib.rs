//! # pvc-store — persistent content-addressed result store
//!
//! A disk-backed second cache tier for deterministic results: every
//! record maps a content address (the FNV-1a 64 hash of a canonical
//! request, plus the canonical text itself as a collision guard) to the
//! byte-exact response. The design is the smallest thing that survives
//! crashes and model drift:
//!
//! * **Append-only segment file.** Records are only ever appended, each
//!   framed with its lengths and an FNV-1a 64 checksum over the whole
//!   frame. A torn write (crash mid-append) corrupts only the tail;
//!   [`Store::open`] detects the first bad frame, truncates the file
//!   back to the valid prefix, and keeps serving everything before it.
//! * **Streamed index.** Opening a store reads the segment once, front
//!   to back, building an in-memory key → record index over a byte
//!   arena. Lookups are O(1) hash probes plus a text compare; a hash
//!   collision degrades to a miss, never a wrong answer.
//! * **Fingerprint invalidation.** The file header binds the store to a
//!   build fingerprint — a hash over the model constants and scenario
//!   grid supplied by the caller. Opening with a different fingerprint
//!   resets the store to empty automatically: results computed by an
//!   older model can never be served by a newer one.
//!
//! The crate is deliberately dependency-free and domain-agnostic: keys
//! and values are bytes. `pvc-serve` layers it under its LRU cache
//! (LRU → store → compute) and `pvc-report` ships the `reproduce warm`
//! command that precomputes the whole catalog grid into one.

mod segment;
mod store;

pub use segment::{fnv1a64, FrameError, HEADER_LEN, MAGIC};
pub use store::{OpenReport, OpenStatus, Store};

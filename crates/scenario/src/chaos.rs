//! Running scenarios under chaos overlays: degraded execution, the
//! baseline/degraded delta, and bottleneck attribution from the trace.
//!
//! The overlay mechanism lives in [`pvc_arch::chaos`]; this module binds
//! it to the registry so any [`ScenarioId`] cell — microbenchmark,
//! mini-app, figure pipeline — runs degraded through the exact code path
//! a healthy run uses. Bottleneck attribution reads the per-resource
//! `util:{label}` gauges the flow network already records, so the report
//! needs no new instrumentation.

use crate::error::ScenarioError;
use crate::registry::Registry;
use crate::scenario::{Ctx, Outcome};
use pvc_arch::chaos::{with_overlay, ChaosSpec};
use pvc_arch::System;
use pvc_obs::trace::Record;

/// Runs one cell under `spec` with tracing off — the serve-atom and
/// property-suite path. Lookup failures and invalid specs both surface
/// as typed [`ScenarioError`]s.
pub fn run_overlaid(
    reg: &Registry,
    slug: &str,
    system: System,
    spec: &ChaosSpec,
) -> Result<Outcome, ScenarioError> {
    let scenario = reg.get(slug, system)?;
    with_overlay(system, spec, || scenario.run(&mut Ctx::quiet())).map_err(|e| {
        ScenarioError::bad_request(format!(
            "chaos spec '{}' rejected for {slug}@{}: {e}",
            spec.canonical(),
            system.cli_name()
        ))
    })
}

/// A baseline/degraded pair for one cell, with the busiest resource of
/// each run (from the trace's utilization gauges).
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// The overlay that produced `degraded`.
    pub spec: ChaosSpec,
    /// The healthy run.
    pub baseline: Outcome,
    /// The run under `spec`.
    pub degraded: Outcome,
    /// Busiest resource label of the healthy run, if the scenario
    /// touched the flow network.
    pub baseline_bottleneck: Option<String>,
    /// Busiest resource label of the degraded run.
    pub degraded_bottleneck: Option<String>,
}

impl ChaosRun {
    /// Signed relative FOM change `(degraded - baseline) / baseline`,
    /// or `None` when the ratio is undefined (zero or non-finite
    /// endpoints — e.g. a killed link driving a latency to infinity).
    pub fn delta_fraction(&self) -> Option<f64> {
        let b = self.baseline.fom.raw();
        let d = self.degraded.fom.raw();
        (b != 0.0 && b.is_finite() && d.is_finite()).then(|| (d - b) / b)
    }

    /// Direction-aware monotonicity: true when the degraded FOM is no
    /// better than the baseline (higher-is-better FOMs may only drop,
    /// latencies may only rise).
    pub fn degraded_no_better(&self) -> bool {
        let b = self.baseline.fom.raw();
        let d = self.degraded.fom.raw();
        if self.baseline.fom.kind().higher_is_better() {
            d <= b
        } else {
            d >= b
        }
    }
}

/// Runs one cell twice — healthy, then under `spec` — with recording
/// tracers, and attributes the bottleneck of each run. The delta-report
/// path behind `reproduce chaos`.
pub fn run_with_chaos(
    reg: &Registry,
    slug: &str,
    system: System,
    spec: &ChaosSpec,
) -> Result<ChaosRun, ScenarioError> {
    let scenario = reg.get(slug, system)?;
    let mut base_ctx = Ctx::recording();
    let baseline = scenario.run(&mut base_ctx);
    let baseline_bottleneck = bottleneck(&base_ctx.tracer.records());
    let mut deg_ctx = Ctx::recording();
    let degraded = with_overlay(system, spec, || scenario.run(&mut deg_ctx)).map_err(|e| {
        ScenarioError::bad_request(format!(
            "chaos spec '{}' rejected for {slug}@{}: {e}",
            spec.canonical(),
            system.cli_name()
        ))
    })?;
    let degraded_bottleneck = bottleneck(&deg_ctx.tracer.records());
    Ok(ChaosRun {
        spec: spec.clone(),
        baseline,
        degraded,
        baseline_bottleneck,
        degraded_bottleneck,
    })
}

/// The label of the highest-valued `util:{label}` gauge in `records`.
/// Ties keep the first maximum, so attribution is deterministic.
fn bottleneck(records: &[Record]) -> Option<String> {
    let mut best: Option<(String, f64)> = None;
    for rec in records {
        if let Record::Sample { name, value, .. } = rec {
            if let Some(label) = name.strip_prefix("util:") {
                let beats = best.as_ref().is_none_or(|(_, v)| *value > *v);
                if beats {
                    best = Some((label.to_string(), *value));
                }
            }
        }
    }
    best.map(|(label, _)| label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fom::Fom;
    use crate::registry::Registry;

    #[test]
    fn bottleneck_picks_first_maximum() {
        let tracer = pvc_obs::Tracer::recording();
        tracer.sample(pvc_obs::Layer::Simrt, "util:pcie.h2d[g0]", 0.0, 0.9);
        tracer.sample(pvc_obs::Layer::Simrt, "util:rc.h2d[s0]", 0.0, 0.4);
        tracer.sample(pvc_obs::Layer::Simrt, "util:pcie.h2d[g1]", 0.0, 0.9);
        assert_eq!(bottleneck(&tracer.records()).as_deref(), Some("pcie.h2d[g0]"));
        assert_eq!(bottleneck(&[]), None);
    }

    #[test]
    fn run_overlaid_empty_spec_matches_plain_run() {
        let reg = Registry::standard();
        let plain = reg.run("stream-triad", System::Aurora).unwrap();
        let overlaid =
            run_overlaid(&reg, "stream-triad", System::Aurora, &ChaosSpec::empty()).unwrap();
        assert_eq!(plain.fom.raw().to_bits(), overlaid.fom.raw().to_bits());
        assert_eq!(plain.detail, overlaid.detail);
    }

    #[test]
    fn run_overlaid_rejects_bad_spec_with_typed_error() {
        let reg = Registry::standard();
        let spec = ChaosSpec::parse("stackdown:12").unwrap();
        let err = run_overlaid(&reg, "stream-triad", System::Aurora, &spec).unwrap_err();
        assert!(
            matches!(err, ScenarioError::BadRequest(ref m) if m.contains("stackdown")),
            "{err:?}"
        );
        let missing = run_overlaid(&reg, "no-such", System::Aurora, &spec).unwrap_err();
        assert!(matches!(missing, ScenarioError::UnknownWorkload { .. }));
    }

    #[test]
    fn chaos_run_reports_direction_aware_delta() {
        let reg = Registry::standard();
        let spec = ChaosSpec::parse("hbm:0.5").unwrap();
        let run = run_with_chaos(&reg, "stream-triad", System::Aurora, &spec).unwrap();
        assert!(run.degraded_no_better());
        let delta = run.delta_fraction().unwrap();
        assert!((delta + 0.5).abs() < 1e-9, "triad tracks HBM: {delta}");
        // Latency direction: a clock cap slows the pointer chase, the
        // latency rises, and that still counts as "no better".
        let cap = ChaosSpec::parse("clock:0.8").unwrap();
        let lat = run_with_chaos(&reg, "lats", System::Aurora, &cap).unwrap();
        assert!(matches!(lat.degraded.fom, Fom::Latency(_)));
        assert!(lat.degraded.fom.raw() > lat.baseline.fom.raw());
        assert!(lat.degraded_no_better());
    }

    #[test]
    fn delta_fraction_none_on_infinite_degradation() {
        let reg = Registry::standard();
        let spec = ChaosSpec::parse("xelink:0:0+xelink:1:0").unwrap();
        let run = run_with_chaos(&reg, "allreduce", System::Aurora, &spec).unwrap();
        assert!(run.degraded.fom.raw().is_infinite(), "{:?}", run.degraded.fom);
        assert!(run.degraded_no_better());
        assert_eq!(run.delta_fraction(), None);
    }
}

//! Typed errors for scenario lookup and execution, mirroring the
//! `FlowError` precedent in `pvc-simrt`: every "unknown name" variant
//! carries the valid catalog so frontends can echo it verbatim.

use pvc_arch::UnknownSystem;
use std::fmt;

/// Why a scenario lookup or a scenario-backed request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The workload slug matched no registered family.
    UnknownWorkload {
        /// The slug that failed to resolve.
        got: String,
        /// Every registered workload slug, registry order.
        catalog: Vec<String>,
    },
    /// The profile name matched no registered profile workload.
    UnknownProfile {
        /// The name that failed to resolve.
        got: String,
        /// Every profile workload name, catalog order.
        catalog: Vec<String>,
    },
    /// The system name matched none of the four systems.
    UnknownSystem(UnknownSystem),
    /// The workload exists but is not registered on this system (e.g.
    /// Table II microbenchmarks on the non-PVC comparison nodes).
    Unregistered {
        /// The workload slug.
        workload: String,
        /// The system it was requested on.
        system: String,
        /// Systems the workload IS registered on.
        available: Vec<&'static str>,
    },
    /// A malformed request field outside the scenario namespace (kept
    /// here so `report::serve` has a single error type end to end).
    BadRequest(String),
}

impl ScenarioError {
    /// Convenience constructor used at serve/CLI boundaries.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        ScenarioError::BadRequest(msg.into())
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownWorkload { got, catalog } => write!(
                f,
                "unknown workload '{got}'; expected one of: {}",
                catalog.join(", ")
            ),
            ScenarioError::UnknownProfile { got, catalog } => write!(
                f,
                "unknown profile workload '{got}'; expected one of: {}",
                catalog.join(", ")
            ),
            ScenarioError::UnknownSystem(e) => write!(f, "{e}"),
            ScenarioError::Unregistered {
                workload,
                system,
                available,
            } => write!(
                f,
                "workload '{workload}' is not registered on system '{system}'; available on: {}",
                available.join(", ")
            ),
            ScenarioError::BadRequest(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<UnknownSystem> for ScenarioError {
    fn from(e: UnknownSystem) -> Self {
        ScenarioError::UnknownSystem(e)
    }
}

/// `pvc-serve`'s `Executor` trait speaks `Result<_, String>`; this keeps
/// the typed enum inside the report/scenario layers and converts once at
/// that boundary.
impl From<ScenarioError> for String {
    fn from(e: ScenarioError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_variants_carry_the_catalog() {
        let e = ScenarioError::UnknownProfile {
            got: "bogus".into(),
            catalog: vec!["pcie-h2d".into(), "allreduce".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("unknown profile workload 'bogus'"));
        assert!(msg.contains("pcie-h2d"));
        assert!(msg.contains("allreduce"));
    }

    #[test]
    fn system_errors_convert_and_stringify() {
        let e: ScenarioError = "polaris".parse::<pvc_arch::System>().unwrap_err().into();
        let s: String = e.into();
        assert!(s.contains("unknown system 'polaris'"));
        assert!(s.contains("mi250"));
    }
}

//! The global scenario registry: every workload × system pair the paper
//! runs, registered once and dispatched everywhere (tables, figures,
//! profiles, serving, conformance, CLI).

use crate::error::ScenarioError;
use crate::fom::{Fom, FomKind};
use crate::id::{Params, ScenarioId, Workload};
use crate::scenario::{Ctx, Outcome, Scenario};
use pvc_arch::{Precision, System};
use pvc_engine::fft_model::FftDim;
use pvc_fabric::comm::{Comm, Transfer};
use pvc_fabric::{RouteVia, StackId};
use pvc_microbench::p2p::{self, PairKind};
use pvc_microbench::pcie::{self, PcieMode};
use pvc_microbench::{fftbench, gemmbench, latsbench, membw, peakflops};
use pvc_miniapps::profile as miniprof;
use pvc_miniapps::ScaleLevel;
use pvc_obs::Tracer;
use pvc_predict::fomsource::{fom, AppKind};

/// The payload a scenario run produces: headline figure of merit plus
/// named detail values (scaling levels, plateaus, pair counts).
type RunResult = (Fom, Vec<(&'static str, f64)>);

/// A registry-owned scenario implemented by a function pointer over its
/// own [`ScenarioId`]. All 61 built-in grid cells use this shape; crates
/// higher in the stack (e.g. `pvc-report`'s figure pipeline) register
/// their own [`Scenario`] impls on top.
pub struct Builtin {
    id: ScenarioId,
    kind: FomKind,
    unit: &'static str,
    citation: &'static str,
    description: &'static str,
    profile: Option<&'static str>,
    runner: fn(&ScenarioId, &Tracer) -> RunResult,
}

impl Scenario for Builtin {
    fn id(&self) -> ScenarioId {
        self.id
    }
    fn fom_kind(&self) -> FomKind {
        self.kind
    }
    fn unit(&self) -> &'static str {
        self.unit
    }
    fn citation(&self) -> &'static str {
        self.citation
    }
    fn description(&self) -> &'static str {
        self.description
    }
    fn profile_name(&self) -> Option<&'static str> {
        self.profile
    }
    fn run(&self, ctx: &mut Ctx) -> Outcome {
        let (fom, detail) = ctx.observe(|| (self.runner)(&self.id, &ctx.tracer));
        Outcome {
            id: self.id,
            fom,
            detail,
        }
    }
}

/// The one dispatch layer. Holds every registered scenario in
/// registration order (table order of the paper).
#[derive(Default)]
pub struct Registry {
    scenarios: Vec<Box<dyn Scenario>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The standard grid: every workload × system pair the paper runs
    /// (Tables I–III, VI; Figures 1–4), minus report-layer extensions
    /// like the figure-render pipeline which register themselves on top.
    pub fn standard() -> Self {
        let mut r = Registry::new();
        register_microbenchmarks(&mut r);
        register_fabric(&mut r);
        register_apps(&mut r);
        r
    }

    /// Registers one scenario. Panics if its id is already taken — a
    /// duplicate registration is a programming error, not a runtime
    /// condition.
    pub fn register(&mut self, s: Box<dyn Scenario>) {
        let id = s.id();
        assert!(
            !self.scenarios.iter().any(|e| e.id() == id),
            "duplicate scenario registration: {id}"
        );
        self.scenarios.push(s);
    }

    /// Every scenario, registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.scenarios.iter().map(|s| s.as_ref())
    }

    /// Number of registered scenarios (the grid size).
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Unique workload slugs, registration order.
    pub fn slugs(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for s in self.iter() {
            let slug = s.id().slug();
            if !out.contains(&slug) {
                out.push(slug);
            }
        }
        out
    }

    /// Unique profile workload names, registration order.
    pub fn profile_names(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for s in self.iter() {
            if let Some(name) = s.profile_name() {
                if !out.contains(&name) {
                    out.push(name);
                }
            }
        }
        out
    }

    /// Looks up the scenario for `slug` on `system`. Distinguishes "no
    /// such workload" (carries the slug catalog) from "workload exists
    /// but not on this system" (carries the systems it IS on).
    pub fn get(&self, slug: &str, system: System) -> Result<&dyn Scenario, ScenarioError> {
        let mut available: Vec<&'static str> = Vec::new();
        for s in self.iter() {
            let id = s.id();
            if id.slug() == slug {
                if id.system == system {
                    return Ok(s);
                }
                available.push(id.system.cli_name());
            }
        }
        if available.is_empty() {
            Err(ScenarioError::UnknownWorkload {
                got: slug.to_string(),
                catalog: self.slugs(),
            })
        } else {
            Err(ScenarioError::Unregistered {
                workload: slug.to_string(),
                system: system.cli_name().to_string(),
                available,
            })
        }
    }

    /// Looks up a profile workload by catalog name on `system`.
    pub fn profile(&self, name: &str, system: System) -> Result<&dyn Scenario, ScenarioError> {
        let mut available: Vec<&'static str> = Vec::new();
        for s in self.iter() {
            if s.profile_name() == Some(name) {
                if s.id().system == system {
                    return Ok(s);
                }
                available.push(s.id().system.cli_name());
            }
        }
        if available.is_empty() {
            Err(ScenarioError::UnknownProfile {
                got: name.to_string(),
                catalog: self.profile_names().iter().map(|n| n.to_string()).collect(),
            })
        } else {
            Err(ScenarioError::Unregistered {
                workload: name.to_string(),
                system: system.cli_name().to_string(),
                available,
            })
        }
    }

    /// Every profile workload registered on `system`, catalog order.
    pub fn profiles(&self, system: System) -> Vec<&dyn Scenario> {
        self.iter()
            .filter(|s| s.profile_name().is_some() && s.id().system == system)
            .collect()
    }

    /// Resolves and runs `slug` on `system` with tracing off.
    pub fn run(&self, slug: &str, system: System) -> Result<Outcome, ScenarioError> {
        Ok(self.get(slug, system)?.run(&mut Ctx::quiet()))
    }
}

/// Triplet detail entries shared by every Table II scenario.
fn triplet_detail(t: pvc_microbench::ScaleTriplet) -> Vec<(&'static str, f64)> {
    vec![
        ("one_stack", t.one_stack),
        ("one_pvc", t.one_pvc),
        ("full_node", t.full_node),
    ]
}

fn run_peakflops(id: &ScenarioId, tracer: &Tracer) -> (Fom, Vec<(&'static str, f64)>) {
    let Params::Prec(prec) = id.params else {
        unreachable!("peakflops registered with a precision")
    };
    let r = peakflops::run_traced(id.system, prec, tracer);
    (Fom::Throughput(r.rates.full_node), triplet_detail(r.rates))
}

fn run_stream_triad(id: &ScenarioId, _tracer: &Tracer) -> (Fom, Vec<(&'static str, f64)>) {
    let r = membw::run(id.system);
    (
        Fom::Bandwidth(r.bandwidth.full_node),
        triplet_detail(r.bandwidth),
    )
}

fn run_pcie(id: &ScenarioId, tracer: &Tracer) -> (Fom, Vec<(&'static str, f64)>) {
    let Params::Mode(mode) = id.params else {
        unreachable!("pcie registered with a mode")
    };
    let r = pcie::run_traced(id.system, mode, tracer);
    (
        Fom::Bandwidth(r.bandwidth.full_node),
        triplet_detail(r.bandwidth),
    )
}

fn run_gemm(id: &ScenarioId, _tracer: &Tracer) -> (Fom, Vec<(&'static str, f64)>) {
    let Params::Prec(prec) = id.params else {
        unreachable!("gemm registered with a precision")
    };
    let r = gemmbench::run(id.system, prec);
    (Fom::Throughput(r.rates.full_node), triplet_detail(r.rates))
}

fn run_fft(id: &ScenarioId, _tracer: &Tracer) -> (Fom, Vec<(&'static str, f64)>) {
    let Params::Dim(dim) = id.params else {
        unreachable!("fft registered with a dimension")
    };
    let r = fftbench::run(id.system, dim);
    (Fom::Throughput(r.rates.full_node), triplet_detail(r.rates))
}

fn run_p2p(id: &ScenarioId, tracer: &Tracer) -> (Fom, Vec<(&'static str, f64)>) {
    let Params::Pair(kind) = id.params else {
        unreachable!("p2p registered with a pair kind")
    };
    let r = p2p::run(id.system, kind);
    if tracer.enabled() {
        // The profile view traces one representative 500 MB transfer
        // through the flow network (same call `reproduce profile` always
        // made); the Table III numbers above come from the untraced
        // sweep and are unaffected.
        let comm = Comm::new(id.system, 2);
        let dst = match kind {
            PairKind::LocalStack => StackId::new(0, 1),
            PairKind::RemoteStack => StackId::new(1, 1),
        };
        comm.run_transfers_traced(
            &[Transfer::D2d(StackId::new(0, 0), dst, RouteVia::Auto)],
            500e6,
            tracer,
            0.0,
        );
    }
    (
        Fom::Bandwidth(r.all_pairs_bidi),
        vec![
            ("one_pair_uni", r.one_pair_uni),
            ("one_pair_bidi", r.one_pair_bidi),
            ("all_pairs_uni", r.all_pairs_uni),
            ("all_pairs_bidi", r.all_pairs_bidi),
            ("pair_count", r.pair_count as f64),
        ],
    )
}

/// Quick `lats` sweep: enough footprints to cross every cache level
/// without paying for the full Figure 1 curve. The reported plateaus are
/// properties of the hierarchy, independent of the sweep config.
fn lats_quick_config() -> pvc_memsim::LatsConfig {
    pvc_memsim::LatsConfig {
        min_bytes: 64 * 1024,
        max_bytes: 16 << 20,
        points_per_octave: 1,
        steps: 1 << 12,
    }
}

fn run_lats(id: &ScenarioId, _tracer: &Tracer) -> (Fom, Vec<(&'static str, f64)>) {
    let series = latsbench::run(id.system, &lats_quick_config());
    let gpu = id.system.node().gpu;
    let clock_hz = gpu.clock.max_hz();
    let mut detail: Vec<(&'static str, f64)> = gpu
        .partition
        .caches
        .iter()
        .zip(&series.plateaus)
        .map(|(c, &cycles)| (c.name, cycles))
        .collect();
    let hbm_cycles = *series.plateaus.last().expect("memory plateau");
    detail.push(("HBM", hbm_cycles));
    // Headline: device-memory access latency in seconds at max clock.
    (Fom::Latency(hbm_cycles / clock_hz), detail)
}

fn run_allreduce(id: &ScenarioId, tracer: &Tracer) -> (Fom, Vec<(&'static str, f64)>) {
    let node = id.system.node();
    let comm = Comm::new(id.system, node.partitions());
    let bytes = 1e9;
    let secs = comm.allreduce_time_traced(&comm.all_stacks(), bytes, tracer, 0.0);
    (
        Fom::Latency(secs),
        vec![("bytes", bytes), ("ranks", comm.all_stacks().len() as f64)],
    )
}

/// The [`AppKind`] behind an app workload, if any.
pub fn app_kind(workload: Workload) -> Option<AppKind> {
    match workload {
        Workload::MiniBude => Some(AppKind::MiniBude),
        Workload::CloverLeaf => Some(AppKind::CloverLeaf),
        Workload::MiniQmc => Some(AppKind::MiniQmc),
        Workload::MiniGamess => Some(AppKind::MiniGamess),
        Workload::OpenMc => Some(AppKind::OpenMc),
        Workload::Hacc => Some(AppKind::Hacc),
        _ => None,
    }
}

fn run_app(id: &ScenarioId, tracer: &Tracer) -> (Fom, Vec<(&'static str, f64)>) {
    let app = app_kind(id.workload).expect("app workload");
    let Params::Level(headline) = id.params else {
        unreachable!("apps registered with a headline level")
    };
    if tracer.enabled() {
        // The two profiled apps trace their step pipelines exactly as
        // `reproduce profile` always did.
        match app {
            AppKind::CloverLeaf => {
                miniprof::cloverleaf_profile(id.system, tracer);
            }
            AppKind::MiniQmc => {
                miniprof::miniqmc_profile(id.system, tracer);
            }
            _ => {}
        }
    }
    let mut detail = Vec::new();
    for (key, level) in [
        ("stack", ScaleLevel::OneStack),
        ("gpu", ScaleLevel::OneGpu),
        ("node", ScaleLevel::FullNode),
    ] {
        if let Some(v) = fom(app, id.system, level) {
            detail.push((key, v));
        }
    }
    let headline_fom = fom(app, id.system, headline)
        .unwrap_or_else(|| panic!("{id}: headline level has no FOM"));
    (Fom::FomRate(headline_fom), detail)
}

fn register_microbenchmarks(r: &mut Registry) {
    for sys in System::PVC {
        for prec in [Precision::Fp64, Precision::Fp32] {
            r.register(Box::new(Builtin {
                id: ScenarioId::new(Workload::PeakFlops, Params::Prec(prec), sys),
                kind: FomKind::Throughput,
                unit: FomKind::Throughput.unit(),
                citation: "Table II, §IV-B2",
                description: "chain-of-FMA peak compute sweep with governor throttling",
                profile: (prec == Precision::Fp64).then_some("peakflops"),
                runner: run_peakflops,
            }));
        }
    }
    for sys in System::PVC {
        r.register(Box::new(Builtin {
            id: ScenarioId::new(Workload::StreamTriad, Params::None, sys),
            kind: FomKind::Bandwidth,
            unit: FomKind::Bandwidth.unit(),
            citation: "Table II, §IV-B3",
            description: "STREAM triad HBM bandwidth at the three scaling levels",
            profile: None,
            runner: run_stream_triad,
        }));
    }
    for sys in System::PVC {
        for (mode, profile, desc) in [
            (
                PcieMode::H2d,
                "pcie-h2d",
                "host-to-device PCIe sweep over the three scaling levels",
            ),
            (
                PcieMode::D2h,
                "pcie-d2h",
                "device-to-host PCIe sweep over the three scaling levels",
            ),
            (
                PcieMode::Bidirectional,
                "pcie-bidir",
                "bidirectional PCIe sweep (1.4x duplex factor)",
            ),
        ] {
            r.register(Box::new(Builtin {
                id: ScenarioId::new(Workload::Pcie, Params::Mode(mode), sys),
                kind: FomKind::Bandwidth,
                unit: FomKind::Bandwidth.unit(),
                citation: "Table II, §IV-B4",
                description: desc,
                profile: Some(profile),
                runner: run_pcie,
            }));
        }
    }
    for sys in System::PVC {
        for (kind, profile, desc) in [
            (
                PairKind::LocalStack,
                "p2p-local",
                "MDFI stack-to-stack transfer inside one card",
            ),
            (
                PairKind::RemoteStack,
                "p2p-remote",
                "Xe-Link stack-to-stack transfer between cards",
            ),
        ] {
            r.register(Box::new(Builtin {
                id: ScenarioId::new(Workload::P2p, Params::Pair(kind), sys),
                kind: FomKind::Bandwidth,
                unit: FomKind::Bandwidth.unit(),
                citation: "Table III, §IV-B7",
                description: desc,
                profile: Some(profile),
                runner: run_p2p,
            }));
        }
    }
    for sys in System::PVC {
        for prec in Precision::GEMM_ORDER {
            r.register(Box::new(Builtin {
                id: ScenarioId::new(Workload::Gemm, Params::Prec(prec), sys),
                kind: FomKind::Throughput,
                unit: prec.throughput_unit(),
                citation: "Table II, §IV-B5",
                description: "oneMKL-style N=20480 GEMM throughput",
                profile: None,
                runner: run_gemm,
            }));
        }
    }
    for sys in System::PVC {
        for dim in [FftDim::OneD, FftDim::TwoD] {
            r.register(Box::new(Builtin {
                id: ScenarioId::new(Workload::Fft, Params::Dim(dim), sys),
                kind: FomKind::Throughput,
                unit: FomKind::Throughput.unit(),
                citation: "Table II, §IV-B5",
                description: "oneMKL-style complex FFT throughput (5 N log2 N)",
                profile: None,
                runner: run_fft,
            }));
        }
    }
    // `lats` runs on all four systems: Figure 1 compares the hierarchies.
    for sys in System::ALL {
        r.register(Box::new(Builtin {
            id: ScenarioId::new(Workload::Lats, Params::None, sys),
            kind: FomKind::Latency,
            unit: FomKind::Latency.unit(),
            citation: "Figure 1, §IV-B6",
            description: "pointer-chase latency staircase; headline is the HBM plateau",
            profile: None,
            runner: run_lats,
        }));
    }
}

fn register_fabric(r: &mut Registry) {
    for sys in System::PVC {
        r.register(Box::new(Builtin {
            id: ScenarioId::new(Workload::Allreduce, Params::None, sys),
            kind: FomKind::Latency,
            unit: FomKind::Latency.unit(),
            citation: "§IV-A4",
            description: "full-node 1 GB ring allreduce (reduce-scatter + allgather)",
            profile: Some("allreduce"),
            runner: run_allreduce,
        }));
    }
}

/// Headline scaling level for an app on a system: the widest level the
/// model (like the paper) has a value for.
fn headline_level(app: AppKind, sys: System) -> Option<ScaleLevel> {
    [ScaleLevel::FullNode, ScaleLevel::OneGpu, ScaleLevel::OneStack]
        .into_iter()
        .find(|&l| fom(app, sys, l).is_some())
}

fn register_apps(r: &mut Registry) {
    for (workload, desc) in [
        (
            Workload::MiniBude,
            "miniBUDE molecular docking FOM (GFInst/s-style rate)",
        ),
        (
            Workload::CloverLeaf,
            "CloverLeaf weak-scaled hydro steps: compute + halo + reduction",
        ),
        (
            Workload::MiniQmc,
            "miniQMC DMC steps with H2D/compute/D2H overlap and host congestion",
        ),
        (Workload::MiniGamess, "mini-GAMESS RI-MP2 correlation energy rate"),
        (Workload::OpenMc, "OpenMC depleted-fuel inactive-batch neutron rate"),
        (Workload::Hacc, "CRK-HACC particle-mesh + short-range force steps"),
    ] {
        let app = app_kind(workload).expect("app table");
        let profile = match workload {
            Workload::CloverLeaf => Some("cloverleaf"),
            Workload::MiniQmc => Some("miniqmc"),
            _ => None,
        };
        for sys in System::ALL {
            // Register only cells the model has any value for —
            // mini-GAMESS never built on MI250 (§V-B3), so that cell is
            // absent from the grid just as it is dashed in Table VI.
            let Some(level) = headline_level(app, sys) else {
                continue;
            };
            r.register(Box::new(Builtin {
                id: ScenarioId::new(workload, Params::Level(level), sys),
                kind: FomKind::FomRate,
                unit: FomKind::FomRate.unit(),
                citation: "Table VI, §V-B",
                description: desc,
                profile,
                runner: run_app,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_grid_has_the_expected_size() {
        let r = Registry::standard();
        // 4 peakflops + 2 triad + 6 pcie + 4 p2p + 12 gemm + 4 fft
        // + 4 lats + 2 allreduce + 23 app cells (minigamess skips MI250).
        assert_eq!(r.len(), 61);
    }

    #[test]
    fn lookups_distinguish_unknown_from_unregistered() {
        let r = Registry::standard();
        assert!(r.get("stream-triad", System::Aurora).is_ok());
        match r.get("bogus", System::Aurora) {
            Err(ScenarioError::UnknownWorkload { got, catalog }) => {
                assert_eq!(got, "bogus");
                assert!(catalog.iter().any(|s| s == "stream-triad"));
            }
            other => panic!("expected UnknownWorkload, got {other:?}", other = other.err()),
        }
        match r.get("stream-triad", System::JlseH100) {
            Err(ScenarioError::Unregistered { available, .. }) => {
                assert_eq!(available, vec!["aurora", "dawn"]);
            }
            other => panic!("expected Unregistered, got {other:?}", other = other.err()),
        }
    }

    #[test]
    fn minigamess_is_dashed_on_mi250() {
        let r = Registry::standard();
        assert!(r.get("minigamess", System::JlseMi250).is_err());
        assert!(r.get("minigamess", System::JlseH100).is_ok());
    }

    #[test]
    fn duplicate_registration_panics() {
        let mut r = Registry::standard();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            register_fabric(&mut r);
        }));
        assert!(result.is_err(), "duplicate allreduce must panic");
    }

    #[test]
    fn outcomes_are_deterministic_and_typed() {
        let r = Registry::standard();
        let a = r.run("stream-triad", System::Aurora).unwrap();
        let b = r.run("stream-triad", System::Aurora).unwrap();
        assert_eq!(a.fom, b.fom);
        assert_eq!(a.detail, b.detail);
        assert!(matches!(a.fom, Fom::Bandwidth(v) if v > 0.0));
        assert!(a.detail("one_stack").unwrap() <= a.detail("full_node").unwrap());
    }

    #[test]
    fn runs_attribute_simrt_work_to_the_context_metrics() {
        let r = Registry::standard();
        let s = r.get("allreduce", System::Aurora).unwrap();
        let mut ctx = Ctx::quiet();
        let a = s.run(&mut ctx);
        // The ring allreduce drives the flow solver, so its work lands
        // in this context's registry via the ambient sink.
        assert!(ctx.metrics.counter("simrt.flow.runs") > 0);
        assert!(ctx.metrics.counter("simrt.flow.segments") > 0);
        // Attribution is observation only: outcome is bit-identical to
        // an unobserved run.
        let b = r.run("allreduce", System::Aurora).unwrap();
        assert_eq!(a.fom, b.fom);
        assert_eq!(a.detail, b.detail);
    }

    #[test]
    fn lats_headline_is_lower_on_h100_than_aurora() {
        // Figure 1 / §IV-B6: PVC HBM latency is ~23% higher than H100's.
        let r = Registry::standard();
        let pvc = r.run("lats", System::Aurora).unwrap();
        let h100 = r.run("lats", System::JlseH100).unwrap();
        assert!(!pvc.fom.kind().higher_is_better());
        assert!(pvc.fom.value() > h100.fom.value());
    }
}

//! # pvc-scenario — the typed scenario registry
//!
//! The paper's whole argument is a *grid*: seven microbenchmarks, four
//! mini-apps and two applications, each run on up to four systems
//! (Tables I–III and VI, Figures 1–4). This crate makes that grid a
//! first-class value instead of five parallel dispatch tables:
//!
//! - [`ScenarioId`] — the typed (workload, params, system) identity every
//!   layer keys on: serve-atom coalescing, profile runs, conformance
//!   bindings, CLI verbs.
//! - [`Scenario`] — one runnable grid cell: how to run it, what [`Fom`]
//!   it reports (with unit and direction), where the paper cites it, and
//!   whether it answers to a `reproduce profile` name.
//! - [`Registry`] — the enumeration of every registered pair.
//!   [`Registry::standard`] builds the paper's grid; higher layers (the
//!   report crate's figure pipeline) register extensions on top.
//! - [`ScenarioError`] — typed lookup failures that carry the valid
//!   catalog, mirroring the `FlowError` precedent.
//!
//! Adding a workload or a system is one registration here; tables,
//! figures, profiles, the query service and the conformance harness pick
//! it up without edits.

pub mod chaos;
pub mod error;
pub mod fom;
pub mod id;
pub mod registry;
pub mod scenario;

pub use chaos::{run_overlaid, run_with_chaos, ChaosRun};
pub use error::ScenarioError;
pub use pvc_arch::chaos::{ChaosError, ChaosFault, ChaosSpec};
pub use fom::{Fom, FomKind};
pub use id::{precision_tag, Params, ScenarioId, Workload};
pub use registry::{app_kind, Registry};
pub use scenario::{Ctx, Outcome, Scenario};

//! Typed figures of merit.
//!
//! Every scenario reports exactly one headline [`Fom`]; the unit, the
//! display scale and the "which way is better" direction travel with the
//! value instead of living in each renderer's head.

use std::fmt;

/// The kind of figure of merit a scenario reports, without a value.
/// Lets `reproduce list` print units and directions without running
/// anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FomKind {
    /// Transfer or memory bandwidth, reported in GB/s (SI, ÷1e9).
    Bandwidth,
    /// Compute throughput, reported in TFLOP/s (÷1e12). Int8 GEMM
    /// overrides the printed unit to TIop/s via [`crate::Scenario::unit`].
    Throughput,
    /// Access or operation latency, reported in µs; lower is better.
    Latency,
    /// Application figure of merit per second (Table VI's unit).
    FomRate,
    /// Dimensionless ratio (relative-performance figures).
    Ratio,
}

impl FomKind {
    /// Default unit string for this kind.
    pub fn unit(self) -> &'static str {
        match self {
            FomKind::Bandwidth => "GB/s",
            FomKind::Throughput => "TFlop/s",
            FomKind::Latency => "us",
            FomKind::FomRate => "FOM/s",
            FomKind::Ratio => "ratio",
        }
    }

    /// True when a larger value is the better result (false only for
    /// latency).
    pub fn higher_is_better(self) -> bool {
        !matches!(self, FomKind::Latency)
    }
}

/// A figure of merit with its value. Raw values are stored in base SI
/// units (bytes/s, flop/s, seconds); [`Fom::value`] applies the display
/// scale the paper's tables use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fom {
    /// Bandwidth in bytes/s.
    Bandwidth(f64),
    /// Throughput in flop/s (or iop/s for integer GEMM).
    Throughput(f64),
    /// Latency in seconds.
    Latency(f64),
    /// Application FOM per second.
    FomRate(f64),
    /// Dimensionless ratio.
    Ratio(f64),
}

impl Fom {
    /// The kind, without the value.
    pub fn kind(self) -> FomKind {
        match self {
            Fom::Bandwidth(_) => FomKind::Bandwidth,
            Fom::Throughput(_) => FomKind::Throughput,
            Fom::Latency(_) => FomKind::Latency,
            Fom::FomRate(_) => FomKind::FomRate,
            Fom::Ratio(_) => FomKind::Ratio,
        }
    }

    /// The raw value in base SI units.
    pub fn raw(self) -> f64 {
        match self {
            Fom::Bandwidth(v)
            | Fom::Throughput(v)
            | Fom::Latency(v)
            | Fom::FomRate(v)
            | Fom::Ratio(v) => v,
        }
    }

    /// The value at the display scale of [`FomKind::unit`]: GB/s,
    /// TFLOP/s, µs, FOM/s, ratio.
    pub fn value(self) -> f64 {
        match self {
            Fom::Bandwidth(v) => v / 1e9,
            Fom::Throughput(v) => v / 1e12,
            Fom::Latency(v) => v * 1e6,
            Fom::FomRate(v) | Fom::Ratio(v) => v,
        }
    }
}

impl fmt::Display for Fom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} {}", self.value(), self.kind().unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_scales_match_paper_units() {
        assert_eq!(Fom::Bandwidth(51.2e9).value(), 51.2);
        assert_eq!(Fom::Throughput(17.3e12).value(), 17.3);
        assert!((Fom::Latency(2.5e-6).value() - 2.5).abs() < 1e-12);
        assert_eq!(Fom::FomRate(319.0).value(), 319.0);
        assert_eq!(Fom::Bandwidth(51.2e9).to_string(), "51.20 GB/s");
    }

    #[test]
    fn only_latency_prefers_lower() {
        for k in [
            FomKind::Bandwidth,
            FomKind::Throughput,
            FomKind::FomRate,
            FomKind::Ratio,
        ] {
            assert!(k.higher_is_better());
        }
        assert!(!FomKind::Latency.higher_is_better());
    }
}

//! The [`Scenario`] trait: one runnable cell of the paper's grid.

use crate::fom::{Fom, FomKind};
use crate::id::ScenarioId;
use pvc_obs::{Metrics, Tracer};

/// Execution context handed to [`Scenario::run`]. Owns the tracer so a
/// profile run and a quiet run are the same code path — the tracer is a
/// one-branch no-op when disabled and provably bit-non-perturbing.
///
/// Also owns a [`Metrics`] registry: when a scenario runs through
/// [`Ctx::observe`], the registry is installed as the thread's ambient
/// sink so `pvc-simrt` exports its solver work counters (`simrt.*`)
/// into it — effort attribution per scenario without plumbing metrics
/// through every layer.
#[derive(Debug)]
pub struct Ctx {
    /// The attached tracer (disabled for plain runs, recording for
    /// `reproduce profile`).
    pub tracer: Tracer,
    /// Work counters accumulated by runs under this context (see
    /// [`Ctx::observe`]); empty unless something exported into it.
    pub metrics: Metrics,
}

impl Ctx {
    /// A context with tracing off: the normal table/figure/serve path.
    pub fn quiet() -> Self {
        Ctx {
            tracer: Tracer::disabled(),
            metrics: Metrics::new(),
        }
    }

    /// A context that records every span — the `reproduce profile` path.
    pub fn recording() -> Self {
        Ctx {
            tracer: Tracer::recording(),
            metrics: Metrics::new(),
        }
    }

    /// Runs `f` with this context's metrics registry installed as the
    /// innermost ambient sink, so `simrt.*` work counters exported
    /// inside land here. Bit-non-perturbing: nothing about `f`'s own
    /// results changes, only where exports accumulate.
    pub fn observe<T>(&self, f: impl FnOnce() -> T) -> T {
        let _guard = self.metrics.install_ambient();
        f()
    }
}

/// The result of running one scenario.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Which scenario produced this.
    pub id: ScenarioId,
    /// The headline figure of merit.
    pub fom: Fom,
    /// Secondary values in base SI units, keyed by a stable name (e.g.
    /// the three scaling levels of a Table II triplet). Renderers pick
    /// the entries they need; order is stable and deterministic.
    pub detail: Vec<(&'static str, f64)>,
}

impl Outcome {
    /// Looks up one detail entry by key.
    pub fn detail(&self, key: &str) -> Option<f64> {
        self.detail.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// One workload × system cell of the paper's grid. Everything that used
/// to live in five dispatch tables — how to run it, what it measures,
/// where the paper reports it — hangs off this trait.
///
/// `Send + Sync` so a registry can live in a process-wide static and
/// serve parallel atom execution.
pub trait Scenario: Send + Sync {
    /// The typed identity (workload, params, system).
    fn id(&self) -> ScenarioId;

    /// The kind of figure of merit this scenario reports.
    fn fom_kind(&self) -> FomKind;

    /// Unit string; defaults to the kind's unit. Int8 GEMM overrides to
    /// `TIop/s`.
    fn unit(&self) -> &'static str {
        self.fom_kind().unit()
    }

    /// Where the paper reports this scenario (table/figure/section).
    fn citation(&self) -> &'static str;

    /// One-line description for `reproduce list` and profile catalogs.
    fn description(&self) -> &'static str;

    /// The name this scenario answers to in the `reproduce profile`
    /// catalog, if it is a profile workload.
    fn profile_name(&self) -> Option<&'static str> {
        None
    }

    /// Runs the scenario under `ctx`, returning the outcome. Must be
    /// deterministic: same id, same outcome, byte-identical trace.
    fn run(&self, ctx: &mut Ctx) -> Outcome;
}

//! Typed scenario identity: which workload, on which system, with which
//! parameters. A [`ScenarioId`] is the single key every dispatch layer
//! (tables, figures, profiles, serving, conformance) agrees on.

use pvc_arch::System;
use pvc_engine::fft_model::FftDim;
use pvc_microbench::p2p::PairKind;
use pvc_microbench::pcie::PcieMode;
use pvc_miniapps::ScaleLevel;
use std::fmt;

/// The workload families of the paper's grid: seven microbenchmarks
/// (Table I), the fabric allreduce, four mini-apps and two applications
/// (Tables V/VI), plus the Figures 2–4 render pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Workload {
    /// Chain-of-FMA peak compute (Table I row 1, Table II rows 1–2).
    PeakFlops,
    /// STREAM triad HBM bandwidth (Table I row 2, Table II row 3).
    StreamTriad,
    /// Host↔device PCIe transfers (Table I row 3, Table II rows 4–6).
    Pcie,
    /// Stack-to-stack point-to-point (Table I row 4, Table III).
    P2p,
    /// oneMKL GEMM, six precisions (Table I row 5, Table II rows 7–12).
    Gemm,
    /// oneMKL FFT 1D/2D (Table I row 6, Table II rows 13–14).
    Fft,
    /// `lats` pointer-chase latency (Table I row 7, Figure 1).
    Lats,
    /// Full-node ring allreduce over the modelled fabric (§IV-A4).
    Allreduce,
    /// miniBUDE molecular docking (Table VI row 1).
    MiniBude,
    /// CloverLeaf hydrodynamics (Table VI row 2).
    CloverLeaf,
    /// miniQMC diffusion Monte Carlo (Table VI row 3).
    MiniQmc,
    /// mini-GAMESS RI-MP2 (Table VI row 4).
    MiniGamess,
    /// OpenMC neutron transport (Table VI row 5).
    OpenMc,
    /// CRK-HACC cosmology (Table VI row 6).
    Hacc,
    /// The Figures 2–4 relative-performance render pipeline (§V-A).
    Figures,
}

impl Workload {
    /// Every workload family, table order.
    pub const ALL: [Workload; 15] = [
        Workload::PeakFlops,
        Workload::StreamTriad,
        Workload::Pcie,
        Workload::P2p,
        Workload::Gemm,
        Workload::Fft,
        Workload::Lats,
        Workload::Allreduce,
        Workload::MiniBude,
        Workload::CloverLeaf,
        Workload::MiniQmc,
        Workload::MiniGamess,
        Workload::OpenMc,
        Workload::Hacc,
        Workload::Figures,
    ];

    /// Family name: the slug prefix shared by every parameterisation.
    pub fn family(self) -> &'static str {
        match self {
            Workload::PeakFlops => "peakflops",
            Workload::StreamTriad => "stream-triad",
            Workload::Pcie => "pcie",
            Workload::P2p => "p2p",
            Workload::Gemm => "gemm",
            Workload::Fft => "fft",
            Workload::Lats => "lats",
            Workload::Allreduce => "allreduce",
            Workload::MiniBude => "minibude",
            Workload::CloverLeaf => "cloverleaf",
            Workload::MiniQmc => "miniqmc",
            Workload::MiniGamess => "minigamess",
            Workload::OpenMc => "openmc",
            Workload::Hacc => "hacc",
            Workload::Figures => "figures",
        }
    }
}

/// Typed sub-parameters distinguishing scenarios within one family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Params {
    /// The family has exactly one configuration.
    #[default]
    None,
    /// Numeric precision (peakflops, GEMM).
    Prec(pvc_arch::Precision),
    /// PCIe direction mix.
    Mode(PcieMode),
    /// FFT dimensionality.
    Dim(FftDim),
    /// Point-to-point pair locality.
    Pair(PairKind),
    /// App scaling level (the headline Table VI column).
    Level(ScaleLevel),
}

/// Canonical tag of a precision inside a slug (`fp64`, `int8`, …).
pub fn precision_tag(p: pvc_arch::Precision) -> &'static str {
    use pvc_arch::Precision;
    match p {
        Precision::Fp64 => "fp64",
        Precision::Fp32 => "fp32",
        Precision::Fp16 => "fp16",
        Precision::Bf16 => "bf16",
        Precision::Tf32 => "tf32",
        Precision::Fp8 => "fp8",
        Precision::Int8 => "int8",
    }
}

impl Params {
    /// Slug suffix (empty for [`Params::None`] and app levels, which are
    /// carried by the registration rather than the name).
    fn tag(self) -> &'static str {
        match self {
            Params::None | Params::Level(_) => "",
            Params::Prec(p) => precision_tag(p),
            Params::Mode(PcieMode::H2d) => "h2d",
            Params::Mode(PcieMode::D2h) => "d2h",
            Params::Mode(PcieMode::Bidirectional) => "bidir",
            Params::Dim(FftDim::OneD) => "1d",
            Params::Dim(FftDim::TwoD) => "2d",
            Params::Pair(PairKind::LocalStack) => "local",
            Params::Pair(PairKind::RemoteStack) => "remote",
        }
    }
}

/// The typed identity of one scenario: a (workload, params, system)
/// triple. Two scenarios are the same iff their ids are equal — serve
/// atoms, profile runs and conformance bindings all key on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioId {
    /// Workload family.
    pub workload: Workload,
    /// Sub-parameters within the family.
    pub params: Params,
    /// The system the pair runs on.
    pub system: System,
}

impl ScenarioId {
    /// Builds an id.
    pub const fn new(workload: Workload, params: Params, system: System) -> Self {
        ScenarioId {
            workload,
            params,
            system,
        }
    }

    /// The workload slug: family plus parameter tag (`pcie-h2d`,
    /// `gemm-int8`, `stream-triad`). App levels are not part of the slug
    /// — each app registers exactly one headline scenario per system.
    pub fn slug(&self) -> String {
        let tag = self.params.tag();
        if tag.is_empty() {
            self.workload.family().to_string()
        } else {
            format!("{}-{tag}", self.workload.family())
        }
    }

    /// The full grid key: `slug@system` (`stream-triad@aurora`). Used as
    /// the serve-atom coalescing key and in `reproduce list`.
    pub fn key(&self) -> String {
        format!("{}@{}", self.slug(), self.system.cli_name())
    }
}

impl fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::Precision;

    #[test]
    fn slugs_compose_family_and_tag() {
        let id = ScenarioId::new(Workload::Gemm, Params::Prec(Precision::Int8), System::Aurora);
        assert_eq!(id.slug(), "gemm-int8");
        assert_eq!(id.key(), "gemm-int8@aurora");
        let id = ScenarioId::new(Workload::StreamTriad, Params::None, System::Dawn);
        assert_eq!(id.key(), "stream-triad@dawn");
        let id = ScenarioId::new(
            Workload::CloverLeaf,
            Params::Level(ScaleLevel::FullNode),
            System::JlseH100,
        );
        assert_eq!(id.key(), "cloverleaf@h100");
    }

    #[test]
    fn ids_hash_and_compare_by_value() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        for w in Workload::ALL {
            for sys in System::ALL {
                set.insert(ScenarioId::new(w, Params::None, sys));
            }
        }
        assert_eq!(set.len(), Workload::ALL.len() * System::ALL.len());
    }
}

//! The paper-catalog executor behind `reproduce serve` / `reproduce
//! query`: the request schema mapping JSON queries onto the table,
//! figure, ablation, experiment, profile and scenario generators.
//!
//! Request kinds (all JSON objects; `budget` is an optional cost budget
//! on any of them):
//!
//! | request | result |
//! |---|---|
//! | `{"kind":"table","id":1..6}` | rendered table text |
//! | `{"kind":"figure","id":1..4}` | figure text (Figure 1 as CSV) |
//! | `{"kind":"ablation","name":"governor"\|"pcie"\|"congestion"\|"plane"\|"scaling"}` | ablation table text |
//! | `{"kind":"experiments"}` | the paper-vs-model record, structured |
//! | `{"kind":"conformance"}` | golden-expectation verdict line |
//! | `{"kind":"devices"}` | clinfo-style model dump, structured |
//! | `{"kind":"profile","workload":W,"system":S}` | profile top table + metrics summary |
//! | `{"kind":"pcie","system":S,"modes":["h2d","d2h","bidir"]}` | bandwidth triplets per mode (sweep) |
//! | `{"kind":"run","workload":W,"system":S}` | one scenario outcome (typed FOM + detail) |
//! | `{"kind":"run","workload":W,"system":S,"chaos":SPEC}` | the same cell under a fault overlay |
//! | `{"kind":"list"}` | the full scenario grid with units and citations |
//!
//! `SPEC` is a '+'-joined chaos fault-token string (see
//! [`pvc_arch::chaos::GRAMMAR`], e.g. `"xelink:0:0+clock:1.0"`). The
//! spec's canonical spelling is part of the atom key, so degraded
//! variants are first-class atoms: the LRU cache, single-flight dedup
//! and coalescing all treat `{request}` and `{request, chaos}` as
//! distinct, while two spellings of the same spec coalesce.
//!
//! Every scenario-backed atom — the `pcie` sweep's per-mode atoms and
//! the generic `run` atoms — is keyed on its [`pvc_scenario::ScenarioId`]
//! (`run:<workload>@<system>`), so overlapping sweeps and single-scenario
//! runs in one batch coalesce onto the same simulation, across request
//! kinds. Every other kind is a single atom and benefits from
//! single-flight dedup and the LRU cache.
//!
//! Errors are typed [`ScenarioError`]s end to end inside this module;
//! they convert to `String` only at the `pvc_serve::Executor` trait
//! boundary.

use crate::scenarios::registry;
use crate::{ablations, experiments, figdata, profile, tables};
use pvc_arch::System;
use pvc_core::{json, Json};
use pvc_memsim::LatsConfig;
use pvc_scenario::{ChaosSpec, Ctx, ScenarioError};
use pvc_serve::{Atom, Executor, Request};

/// The executor serving the paper catalog.
#[derive(Debug, Default, Clone, Copy)]
pub struct CatalogExecutor;

/// Deterministic cost estimates in abstract units (roughly: simulated
/// passes times their relative weight). Compared against request
/// budgets at admission.
fn kind_cost(req: &Request) -> u64 {
    match req.kind() {
        "devices" | "list" => 1,
        "table" => 3,
        "figure" => match req.get("id") {
            Some(Json::Int(1)) => 5, // Figure 1 runs the lats cache sweep
            _ => 3,
        },
        "ablation" | "run" => 4,
        "profile" => 8,
        "pcie" => {
            let modes = req.get("modes").and_then(Json::as_array).map_or(1, <[Json]>::len);
            2 * modes.max(1) as u64
        }
        "experiments" | "conformance" => 12,
        _ => 1,
    }
}

/// Parses the request's `system` field through the one shared
/// [`System::from_str`] parser; absent means Aurora.
fn system_from(req: &Request) -> Result<System, ScenarioError> {
    match req.get("system") {
        None => Ok(System::Aurora),
        Some(Json::Str(s)) => Ok(s.parse::<System>()?),
        Some(other) => Err(ScenarioError::bad_request(format!(
            "system must be a string, got {}",
            other.compact()
        ))),
    }
}

fn str_field(req: &Request, field: &str, hint: &str) -> Result<String, ScenarioError> {
    match req.get(field) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(ScenarioError::bad_request(format!("{hint} needs a string '{field}'"))),
    }
}

fn int_field(req: &Request, field: &str, lo: i64, hi: i64) -> Result<i64, ScenarioError> {
    match req.get(field) {
        Some(Json::Int(n)) if (lo..=hi).contains(n) => Ok(*n),
        Some(other) => Err(ScenarioError::bad_request(format!(
            "'{field}' must be an integer in {lo}..={hi}, got {}",
            other.compact()
        ))),
        None => Err(ScenarioError::bad_request(format!(
            "missing '{field}' field ({lo}..={hi})"
        ))),
    }
}

/// Parses and validates the optional `chaos` field: a fault-spec string
/// per the [`pvc_arch::chaos::GRAMMAR`]. An empty spec is the baseline
/// (no overlay), so `"chaos": ""` produces the same atom as no field.
fn chaos_from(req: &Request) -> Result<Option<ChaosSpec>, ScenarioError> {
    match req.get("chaos") {
        None => Ok(None),
        Some(Json::Str(s)) => {
            let spec = ChaosSpec::parse(s).map_err(|e| {
                ScenarioError::bad_request(format!("invalid chaos spec '{s}': {e}"))
            })?;
            Ok((!spec.is_empty()).then_some(spec))
        }
        Some(other) => Err(ScenarioError::bad_request(format!(
            "chaos must be a fault-spec string, got {}",
            other.compact()
        ))),
    }
}

/// One atom per scenario, keyed on the [`pvc_scenario::ScenarioId`]
/// grid key so identical scenarios coalesce across request kinds. A
/// chaos overlay joins the key in canonical spelling
/// (`run:<slug>@<system>+chaos:<spec>`): degraded variants never
/// coalesce with the baseline or with differently-degraded atoms.
fn scenario_atom(slug: &str, system: System, chaos: Option<&ChaosSpec>) -> Atom {
    let mut pairs = vec![
        ("op", Json::str("run")),
        ("workload", Json::str(slug)),
        ("system", Json::str(system.cli_name())),
    ];
    let mut id = format!("run:{slug}@{}", system.cli_name());
    if let Some(spec) = chaos {
        let canon = spec.canonical();
        id.push_str("+chaos:");
        id.push_str(&canon);
        pairs.push(("chaos", Json::Str(canon)));
    }
    Atom::new(id, Json::obj(pairs))
}

fn atoms_typed(req: &Request) -> Result<Vec<Atom>, ScenarioError> {
    let single = |op: &str, params: Vec<(&str, Json)>| -> Vec<Atom> {
        let mut pairs = vec![("op", Json::str(op))];
        pairs.extend(params);
        let params = Json::obj(pairs);
        vec![Atom::new(format!("{op}:{}", params.compact()), params)]
    };
    // Chaos overlays only make sense on scenario runs; a stray field on
    // any other kind is a typed rejection, not a silent ignore.
    if req.get("chaos").is_some() && req.kind() != "run" {
        return Err(ScenarioError::bad_request(format!(
            "'chaos' is only supported on run requests, not '{}'",
            req.kind()
        )));
    }
    match req.kind() {
        "table" => {
            let id = int_field(req, "id", 1, 6)?;
            Ok(single("table", vec![("id", Json::Int(id))]))
        }
        "figure" => {
            let id = int_field(req, "id", 1, 4)?;
            Ok(single("figure", vec![("id", Json::Int(id))]))
        }
        "ablation" => {
            let name = str_field(req, "name", "ablation")?;
            if !["governor", "pcie", "congestion", "plane", "scaling"].contains(&name.as_str()) {
                return Err(ScenarioError::bad_request(format!("unknown ablation '{name}'")));
            }
            Ok(single("ablation", vec![("name", Json::str(name))]))
        }
        "experiments" => Ok(single("experiments", vec![])),
        "conformance" => Ok(single("conformance", vec![])),
        "devices" => Ok(single("devices", vec![])),
        "list" => Ok(single("list", vec![])),
        "profile" => {
            let sys = system_from(req)?;
            let workload = str_field(req, "workload", "profile")?;
            // Resolve through the registry: typed unknown-name /
            // unregistered-pair errors carrying the valid catalog.
            let scenario = registry().profile(&workload, sys)?;
            let params = Json::obj(vec![
                ("op", Json::str("profile")),
                ("system", Json::str(sys.cli_name())),
                ("workload", Json::str(workload)),
            ]);
            Ok(vec![Atom::new(
                format!("profile:{}", scenario.id()),
                params,
            )])
        }
        "run" => {
            let sys = system_from(req)?;
            let workload = str_field(req, "workload", "run")?;
            let scenario = registry().get(&workload, sys)?;
            let chaos = chaos_from(req)?;
            if let Some(spec) = &chaos {
                // Shed invalid specs at admission with the typed error;
                // an atom that reaches execution can always apply.
                spec.apply(sys.node()).map_err(|e| {
                    ScenarioError::bad_request(format!(
                        "chaos spec '{}' rejected for {}: {e}",
                        spec.canonical(),
                        sys.cli_name()
                    ))
                })?;
            }
            Ok(vec![scenario_atom(&scenario.id().slug(), sys, chaos.as_ref())])
        }
        "pcie" => {
            let sys = system_from(req)?;
            let Some(modes) = req.get("modes").and_then(Json::as_array) else {
                return Err(ScenarioError::bad_request("pcie sweep needs a 'modes' array"));
            };
            if modes.is_empty() {
                return Err(ScenarioError::bad_request("pcie sweep needs at least one mode"));
            }
            modes
                .iter()
                .map(|m| {
                    let name = m
                        .as_str()
                        .ok_or_else(|| ScenarioError::bad_request("modes must be strings"))?;
                    if !["h2d", "d2h", "bidir"].contains(&name) {
                        return Err(ScenarioError::bad_request(format!(
                            "unknown pcie mode '{name}'; expected h2d, d2h or bidir"
                        )));
                    }
                    let slug = format!("pcie-{name}");
                    registry().get(&slug, sys)?; // typed unregistered-pair check
                    Ok(scenario_atom(&slug, sys, None))
                })
                .collect()
        }
        other => Err(ScenarioError::bad_request(format!(
            "unknown request kind '{other}'; expected table, figure, ablation, experiments, \
             conformance, devices, profile, pcie, run or list"
        ))),
    }
}

/// Runs one scenario atom and packages the typed outcome.
fn run_scenario_atom(atom: &Atom) -> Result<Json, ScenarioError> {
    let slug = atom
        .params
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| ScenarioError::bad_request("run atom missing workload"))?;
    let sys: System = atom
        .params
        .get("system")
        .and_then(Json::as_str)
        .unwrap_or("aurora")
        .parse()?;
    let scenario = registry().get(slug, sys)?;
    // The overlay installs here, inside atom execution, because atoms
    // run on `pvc_core::par` worker threads — a thread-local overlay
    // set at admission would never reach them.
    let chaos = match atom.params.get("chaos").and_then(Json::as_str) {
        Some(s) => Some(ChaosSpec::parse(s).map_err(|e| {
            ScenarioError::bad_request(format!("chaos atom spec '{s}': {e}"))
        })?),
        None => None,
    };
    // A local work registry collects the solver-effort counters the
    // simulation exports through the ambient sink (`simrt.*`), so every
    // run response carries its own attribution — recomputing the same
    // scenario always exports the same counts, keeping the response
    // cacheable and byte-deterministic.
    let work = pvc_obs::Metrics::new();
    let out = {
        let _observing = work.install_ambient();
        match &chaos {
            Some(spec) => pvc_scenario::run_overlaid(registry(), slug, sys, spec)?,
            None => scenario.run(&mut Ctx::quiet()),
        }
    };
    let detail: Vec<(String, Json)> = out
        .detail
        .iter()
        .map(|(k, v)| (k.to_string(), Json::Num(*v)))
        .collect();
    let mut fields = vec![
        ("workload", Json::str(slug)),
        ("system", Json::str(sys.cli_name())),
        ("value", Json::Num(out.fom.value())),
        ("unit", Json::str(scenario.unit())),
        ("higher_is_better", Json::Bool(scenario.fom_kind().higher_is_better())),
        ("citation", Json::str(scenario.citation())),
        ("detail", Json::Obj(detail)),
    ];
    if let Some(spec) = &chaos {
        fields.push(("chaos", Json::Str(spec.canonical())));
    }
    fields.push((
        "work",
        Json::Obj(
            work.counters("")
                .into_iter()
                .map(|(k, v)| (k, Json::Int(v as i64)))
                .collect(),
        ),
    ));
    Ok(Json::obj(fields))
}

/// Renders the full grid as structured JSON.
fn list_scenarios() -> Json {
    let entries: Vec<Json> = registry()
        .iter()
        .map(|s| {
            let id = s.id();
            Json::obj(vec![
                ("workload", Json::Str(id.slug())),
                ("system", Json::str(id.system.cli_name())),
                ("unit", Json::str(s.unit())),
                ("higher_is_better", Json::Bool(s.fom_kind().higher_is_better())),
                ("citation", Json::str(s.citation())),
            ])
        })
        .collect();
    Json::obj(vec![
        ("count", Json::Int(registry().len() as i64)),
        ("scenarios", Json::Arr(entries)),
    ])
}

fn execute_atom_typed(atom: &Atom) -> Result<Json, ScenarioError> {
    let op = atom
        .params
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ScenarioError::bad_request("atom missing op"))?;
    let text = |s: String| Json::obj(vec![("text", Json::Str(s))]);
    match op {
        "table" => {
            let Some(Json::Int(id)) = atom.params.get("id") else {
                return Err(ScenarioError::bad_request("table atom missing id"));
            };
            Ok(text(match id {
                1 => tables::render_table1(),
                2 => tables::render_table2(),
                3 => tables::render_table3(),
                4 => tables::render_table4(),
                5 => tables::render_table5(),
                _ => tables::render_table6(),
            }))
        }
        "figure" => {
            let Some(Json::Int(id)) = atom.params.get("id") else {
                return Err(ScenarioError::bad_request("figure atom missing id"));
            };
            Ok(match id {
                1 => Json::obj(vec![(
                    "csv",
                    Json::Str(figdata::figure1_csv(&LatsConfig::default())),
                )]),
                2 => text(figdata::render_figure2()),
                3 => text(figdata::render_figure3()),
                _ => text(figdata::render_figure4()),
            })
        }
        "ablation" => {
            let Some(name) = atom.params.get("name").and_then(Json::as_str) else {
                return Err(ScenarioError::bad_request("ablation atom missing name"));
            };
            Ok(text(match name {
                "governor" => ablations::governor_ablation().render(),
                "pcie" => ablations::pcie_ablation().render(),
                "congestion" => ablations::congestion_ablation().render(),
                "plane" => ablations::plane_ablation().render(),
                _ => ablations::scaling_report().render(),
            }))
        }
        "experiments" => json::parse(&experiments::json())
            .map_err(|e| ScenarioError::bad_request(format!("experiments JSON failed to parse: {e}"))),
        "conformance" => {
            let line = crate::conformance::verdict().map_err(ScenarioError::BadRequest)?;
            Ok(Json::obj(vec![("verdict", Json::Str(line.trim_end().to_string()))]))
        }
        "devices" => json::parse(&pvc_arch::query::systems_json())
            .map_err(|e| ScenarioError::bad_request(format!("devices JSON failed to parse: {e}"))),
        "list" => Ok(list_scenarios()),
        "profile" => {
            let sys: System = atom
                .params
                .get("system")
                .and_then(Json::as_str)
                .unwrap_or("aurora")
                .parse()?;
            let Some(workload) = atom.params.get("workload").and_then(Json::as_str) else {
                return Err(ScenarioError::bad_request("profile atom missing workload"));
            };
            let artifact = profile::run(workload, sys)?;
            let events = artifact.validate().map_err(ScenarioError::BadRequest)?;
            Ok(Json::obj(vec![
                ("workload", Json::str(workload)),
                ("system", Json::str(sys.cli_name())),
                ("trace_events", Json::Int(events as i64)),
                ("top", Json::Str(artifact.top)),
                ("summary", Json::Str(artifact.summary)),
            ]))
        }
        "run" => run_scenario_atom(atom),
        other => Err(ScenarioError::bad_request(format!("unknown atom op '{other}'"))),
    }
}

impl Executor for CatalogExecutor {
    fn cost(&self, req: &Request) -> u64 {
        kind_cost(req)
    }

    fn atoms(&self, req: &Request) -> Result<Vec<Atom>, String> {
        atoms_typed(req).map_err(String::from)
    }

    fn execute_atom(&self, atom: &Atom) -> Result<Json, String> {
        execute_atom_typed(atom).map_err(String::from)
    }

    fn work_counters(&self, atom: &Atom, result: &Json) -> Vec<(String, u64)> {
        // Scenario runs embed their solver-effort attribution in the
        // result's `work` object; merge it into the service metrics so
        // a stats snapshot shows where the simulation time went. Pure
        // in (atom, result): cached hits re-run nothing and add none.
        if atom.params.get("op").and_then(Json::as_str) != Some("run") {
            return Vec::new();
        }
        match result.get("work") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .filter_map(|(k, v)| match v {
                    Json::Int(n) if *n >= 0 => Some((k.clone(), *n as u64)),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    fn assemble(&self, req: &Request, mut parts: Vec<Json>) -> Result<Json, String> {
        if req.kind() == "pcie" {
            let modes = req
                .get("modes")
                .and_then(Json::as_array)
                .ok_or("pcie request lost its modes")?;
            // Project each scenario outcome onto the sweep's historical
            // triplet shape (GB/s at the three scaling levels).
            let pairs = modes
                .iter()
                .zip(parts)
                .map(|(m, part)| {
                    let gbs = |key: &str| {
                        part.get("detail")
                            .and_then(|d| d.get(key))
                            .and_then(Json::as_num)
                            .map_or(Json::Null, |v| Json::Num(v / 1e9))
                    };
                    let triplet = Json::obj(vec![
                        ("one_stack_gbs", gbs("one_stack")),
                        ("one_pvc_gbs", gbs("one_pvc")),
                        ("full_node_gbs", gbs("full_node")),
                    ]);
                    (m.as_str().unwrap_or("?").to_string(), triplet)
                })
                .collect();
            return Ok(Json::obj(vec![
                (
                    "system",
                    Json::str(system_from(req).map_err(String::from)?.cli_name()),
                ),
                ("modes", Json::Obj(pairs)),
            ]));
        }
        parts.pop().ok_or_else(|| "empty result".to_string())
    }
}

/// The canned request corpus exercised by CI and the benches: one per
/// kind family, cheap enough to run on every gate.
pub const CANNED_REQUESTS: &[&str] = &[
    r#"{"kind":"table","id":2}"#,
    r#"{"kind":"figure","id":3}"#,
    r#"{"kind":"pcie","system":"aurora","modes":["h2d","d2h"]}"#,
    r#"{"kind":"run","workload":"stream-triad","system":"aurora","chaos":"hbm:0.5"}"#,
];

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_serve::{ServeConfig, Service};

    fn service() -> Service<CatalogExecutor> {
        Service::new(CatalogExecutor, ServeConfig::default())
    }

    #[test]
    fn table_request_serves_rendered_table() {
        let s = service();
        let r = s.handle_lines(&[r#"{"kind":"table","id":2}"#]).remove(0);
        let text = r
            .get("result")
            .and_then(|b| b.get("text"))
            .and_then(Json::as_str)
            .expect("table text");
        assert!(text.contains("DGEMM"), "{text}");
    }

    #[test]
    fn canned_corpus_is_deterministic_and_cacheable() {
        let s = service();
        let cold: Vec<String> = s
            .handle_lines(CANNED_REQUESTS)
            .iter()
            .map(Json::canonical)
            .collect();
        let warm: Vec<String> = s
            .handle_lines(CANNED_REQUESTS)
            .iter()
            .map(Json::canonical)
            .collect();
        assert_eq!(cold, warm, "cache must not perturb response bytes");
        assert_eq!(s.metrics().counter("serve.cache.hit"), CANNED_REQUESTS.len() as u64);
        for c in &cold {
            assert!(!c.contains("\"error\""), "{c}");
        }
    }

    #[test]
    fn pcie_sweeps_coalesce_across_requests() {
        let s = service();
        let a = r#"{"kind":"pcie","system":"aurora","modes":["h2d","d2h"]}"#;
        let b = r#"{"kind":"pcie","system":"aurora","modes":["d2h","bidir"]}"#;
        let responses = s.handle_lines(&[a, b]);
        assert_eq!(s.metrics().counter("serve.atoms.requested"), 4);
        assert_eq!(s.metrics().counter("serve.atoms.executed"), 3, "shared d2h runs once");
        // The shared atom's bytes are identical in both responses.
        let d2h = |r: &Json| {
            r.get("result")
                .and_then(|b| b.get("modes"))
                .and_then(|m| m.get("d2h"))
                .expect("d2h triplet")
                .canonical()
        };
        assert_eq!(d2h(&responses[0]), d2h(&responses[1]));
    }

    #[test]
    fn run_and_pcie_sweep_coalesce_on_scenario_id() {
        // The generic run kind and the pcie sweep resolve to the SAME
        // ScenarioId-keyed atom, so the simulation runs once.
        let s = service();
        let sweep = r#"{"kind":"pcie","system":"aurora","modes":["h2d"]}"#;
        let run = r#"{"kind":"run","workload":"pcie-h2d","system":"aurora"}"#;
        let responses = s.handle_lines(&[sweep, run]);
        assert_eq!(s.metrics().counter("serve.atoms.requested"), 2);
        assert_eq!(
            s.metrics().counter("serve.atoms.executed"),
            1,
            "pcie-h2d@aurora must coalesce across request kinds"
        );
        let value = responses[1]
            .get("result")
            .and_then(|r| r.get("value"))
            .and_then(Json::as_num)
            .expect("run value");
        let swept = responses[0]
            .get("result")
            .and_then(|r| r.get("modes"))
            .and_then(|m| m.get("h2d"))
            .and_then(|t| t.get("full_node_gbs"))
            .and_then(Json::as_num)
            .expect("sweep full-node GB/s");
        assert!((value - swept).abs() < 1e-9, "{value} vs {swept}");
    }

    #[test]
    fn run_responses_carry_typed_units() {
        let s = service();
        let r = s
            .handle_lines(&[r#"{"kind":"run","workload":"stream-triad","system":"dawn"}"#])
            .remove(0);
        let result = r.get("result").expect("result");
        assert_eq!(result.get("unit").and_then(Json::as_str), Some("GB/s"));
        assert_eq!(
            result.get("citation").and_then(Json::as_str),
            Some("Table II, §IV-B3")
        );
        assert!(result
            .get("detail")
            .and_then(|d| d.get("one_stack"))
            .and_then(Json::as_num)
            .is_some());
    }

    #[test]
    fn list_reports_the_whole_grid() {
        let s = service();
        let r = s.handle_lines(&[r#"{"kind":"list"}"#]).remove(0);
        let result = r.get("result").expect("result");
        let count = result.get("count").and_then(|c| match c {
            Json::Int(n) => Some(*n),
            _ => None,
        });
        assert_eq!(count, Some(registry().len() as i64));
        let arr = result.get("scenarios").and_then(Json::as_array).expect("scenarios");
        assert_eq!(arr.len(), registry().len());
    }

    #[test]
    fn bad_catalog_requests_fail_with_guidance() {
        let s = service();
        let cases = [
            (r#"{"kind":"table","id":9}"#, "1..=6"),
            (r#"{"kind":"warp"}"#, "unknown request kind"),
            (r#"{"kind":"profile","workload":"nope"}"#, "unknown profile workload"),
            (r#"{"kind":"pcie","system":"aurora","modes":["sideways"]}"#, "unknown pcie mode"),
            (r#"{"kind":"profile","workload":"pcie-h2d","system":"h100"}"#, "not registered"),
            (r#"{"kind":"profile","workload":"pcie-h2d","system":"summit"}"#, "unknown system"),
            (r#"{"kind":"run","workload":"warpdrive"}"#, "unknown workload"),
            (r#"{"kind":"run","workload":"stream-triad","system":"h100"}"#, "not registered"),
        ];
        for (line, needle) in cases {
            let r = s.handle_lines(&[line]).remove(0);
            let detail = r
                .get("error")
                .and_then(|e| e.get("detail"))
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{line} should fail: {}", r.pretty()));
            assert!(detail.contains(needle), "{line}: {detail}");
        }
    }

    /// The ISSUE's acceptance property: cached and recomputed responses
    /// are byte-identical for every workload in the profile catalog.
    #[test]
    fn all_catalog_workloads_cache_byte_identically() {
        let s = service();
        let catalog = profile::workloads(pvc_arch::System::Aurora);
        let lines: Vec<String> = catalog
            .iter()
            .map(|(name, _)| format!(r#"{{"kind":"profile","workload":"{name}"}}"#))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let cold: Vec<String> = s.handle_lines(&refs).iter().map(Json::canonical).collect();
        let warm: Vec<String> = s.handle_lines(&refs).iter().map(Json::canonical).collect();
        assert_eq!(s.metrics().counter("serve.cache.hit"), lines.len() as u64);
        for ((c, w), (name, _)) in cold.iter().zip(&warm).zip(catalog) {
            assert_eq!(c, w, "{name}: cached response differs from computed");
            assert!(c.contains("\"result\""), "{name}: {c}");
        }
    }
}

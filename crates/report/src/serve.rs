//! The paper-catalog executor behind `reproduce serve` / `reproduce
//! query`: the request schema mapping JSON queries onto the table,
//! figure, ablation, experiment and profile generators.
//!
//! Request kinds (all JSON objects; `budget` is an optional cost budget
//! on any of them):
//!
//! | request | result |
//! |---|---|
//! | `{"kind":"table","id":1..6}` | rendered table text |
//! | `{"kind":"figure","id":1..4}` | figure text (Figure 1 as CSV) |
//! | `{"kind":"ablation","name":"governor"\|"pcie"\|"congestion"\|"plane"\|"scaling"}` | ablation table text |
//! | `{"kind":"experiments"}` | the paper-vs-model record, structured |
//! | `{"kind":"conformance"}` | golden-expectation verdict line |
//! | `{"kind":"devices"}` | clinfo-style model dump, structured |
//! | `{"kind":"profile","workload":W,"system":"aurora"\|"dawn"}` | profile top table + metrics summary |
//! | `{"kind":"pcie","system":S,"modes":["h2d","d2h","bidir"]}` | bandwidth triplets per mode (sweep) |
//!
//! The `pcie` kind is the coalescing showcase: each `(system, mode)`
//! pair is one atom, so overlapping sweeps in a batch simulate each
//! pair exactly once. Every other kind is a single atom and benefits
//! from single-flight dedup and the LRU cache.

use crate::{ablations, experiments, figdata, profile, tables};
use pvc_arch::System;
use pvc_core::{json, Json};
use pvc_memsim::LatsConfig;
use pvc_microbench::pcie::{self, PcieMode};
use pvc_serve::{Atom, Executor, Request};

/// The executor serving the paper catalog.
#[derive(Debug, Default, Clone, Copy)]
pub struct CatalogExecutor;

/// Deterministic cost estimates in abstract units (roughly: simulated
/// passes times their relative weight). Compared against request
/// budgets at admission.
fn kind_cost(req: &Request) -> u64 {
    match req.kind() {
        "devices" => 1,
        "table" => 3,
        "figure" => match req.get("id") {
            Some(Json::Int(1)) => 5, // Figure 1 runs the lats cache sweep
            _ => 3,
        },
        "ablation" => 4,
        "profile" => 8,
        "pcie" => {
            let modes = req.get("modes").and_then(Json::as_array).map_or(1, <[Json]>::len);
            2 * modes.max(1) as u64
        }
        "experiments" | "conformance" => 12,
        _ => 1,
    }
}

fn system_from(req: &Request) -> Result<System, String> {
    match req.get("system") {
        None => Ok(System::Aurora),
        Some(Json::Str(s)) => match s.as_str() {
            "aurora" => Ok(System::Aurora),
            "dawn" => Ok(System::Dawn),
            other => Err(format!("unknown system '{other}'; expected aurora or dawn")),
        },
        Some(other) => Err(format!("system must be a string, got {}", other.compact())),
    }
}

fn system_name(sys: System) -> &'static str {
    match sys {
        System::Aurora => "aurora",
        System::Dawn => "dawn",
        _ => unreachable!("only PVC systems are served"),
    }
}

fn mode_from(name: &str) -> Result<PcieMode, String> {
    match name {
        "h2d" => Ok(PcieMode::H2d),
        "d2h" => Ok(PcieMode::D2h),
        "bidir" => Ok(PcieMode::Bidirectional),
        other => Err(format!("unknown pcie mode '{other}'; expected h2d, d2h or bidir")),
    }
}

fn int_field(req: &Request, field: &str, lo: i64, hi: i64) -> Result<i64, String> {
    match req.get(field) {
        Some(Json::Int(n)) if (lo..=hi).contains(n) => Ok(*n),
        Some(other) => Err(format!(
            "'{field}' must be an integer in {lo}..={hi}, got {}",
            other.compact()
        )),
        None => Err(format!("missing '{field}' field ({lo}..={hi})")),
    }
}

impl Executor for CatalogExecutor {
    fn cost(&self, req: &Request) -> u64 {
        kind_cost(req)
    }

    fn atoms(&self, req: &Request) -> Result<Vec<Atom>, String> {
        let single = |op: &str, params: Vec<(&str, Json)>| -> Vec<Atom> {
            let mut pairs = vec![("op", Json::str(op))];
            pairs.extend(params);
            let params = Json::obj(pairs);
            vec![Atom::new(format!("{op}:{}", params.compact()), params)]
        };
        match req.kind() {
            "table" => {
                let id = int_field(req, "id", 1, 6)?;
                Ok(single("table", vec![("id", Json::Int(id))]))
            }
            "figure" => {
                let id = int_field(req, "id", 1, 4)?;
                Ok(single("figure", vec![("id", Json::Int(id))]))
            }
            "ablation" => {
                let name = match req.get("name") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => return Err("ablation needs a string 'name'".into()),
                };
                if !["governor", "pcie", "congestion", "plane", "scaling"]
                    .contains(&name.as_str())
                {
                    return Err(format!("unknown ablation '{name}'"));
                }
                Ok(single("ablation", vec![("name", Json::str(name))]))
            }
            "experiments" => Ok(single("experiments", vec![])),
            "conformance" => Ok(single("conformance", vec![])),
            "devices" => Ok(single("devices", vec![])),
            "profile" => {
                let sys = system_from(req)?;
                let workload = match req.get("workload") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => return Err("profile needs a string 'workload'".into()),
                };
                if !profile::WORKLOADS.iter().any(|(n, _)| *n == workload) {
                    return Err(format!(
                        "unknown profile workload '{workload}'; expected one of: {}",
                        profile::WORKLOADS
                            .iter()
                            .map(|(n, _)| *n)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ));
                }
                Ok(single(
                    "profile",
                    vec![
                        ("system", Json::str(system_name(sys))),
                        ("workload", Json::str(workload)),
                    ],
                ))
            }
            "pcie" => {
                let sys = system_from(req)?;
                let Some(modes) = req.get("modes").and_then(Json::as_array) else {
                    return Err("pcie sweep needs a 'modes' array".into());
                };
                if modes.is_empty() {
                    return Err("pcie sweep needs at least one mode".into());
                }
                modes
                    .iter()
                    .map(|m| {
                        let name = m.as_str().ok_or("modes must be strings")?;
                        mode_from(name)?; // validate early, typed error
                        let params = Json::obj(vec![
                            ("op", Json::str("pcie")),
                            ("system", Json::str(system_name(sys))),
                            ("mode", Json::str(name)),
                        ]);
                        Ok(Atom::new(
                            format!("pcie:{}:{name}", system_name(sys)),
                            params,
                        ))
                    })
                    .collect()
            }
            other => Err(format!(
                "unknown request kind '{other}'; expected table, figure, ablation, \
                 experiments, conformance, devices, profile or pcie"
            )),
        }
    }

    fn execute_atom(&self, atom: &Atom) -> Result<Json, String> {
        let op = atom
            .params
            .get("op")
            .and_then(Json::as_str)
            .ok_or("atom missing op")?;
        let text = |s: String| Json::obj(vec![("text", Json::Str(s))]);
        match op {
            "table" => {
                let Some(Json::Int(id)) = atom.params.get("id") else {
                    return Err("table atom missing id".into());
                };
                Ok(text(match id {
                    1 => tables::render_table1(),
                    2 => tables::render_table2(),
                    3 => tables::render_table3(),
                    4 => tables::render_table4(),
                    5 => tables::render_table5(),
                    _ => tables::render_table6(),
                }))
            }
            "figure" => {
                let Some(Json::Int(id)) = atom.params.get("id") else {
                    return Err("figure atom missing id".into());
                };
                Ok(match id {
                    1 => Json::obj(vec![(
                        "csv",
                        Json::Str(figdata::figure1_csv(&LatsConfig::default())),
                    )]),
                    2 => text(figdata::render_figure2()),
                    3 => text(figdata::render_figure3()),
                    _ => text(figdata::render_figure4()),
                })
            }
            "ablation" => {
                let Some(name) = atom.params.get("name").and_then(Json::as_str) else {
                    return Err("ablation atom missing name".into());
                };
                Ok(text(match name {
                    "governor" => ablations::governor_ablation().render(),
                    "pcie" => ablations::pcie_ablation().render(),
                    "congestion" => ablations::congestion_ablation().render(),
                    "plane" => ablations::plane_ablation().render(),
                    _ => ablations::scaling_report().render(),
                }))
            }
            "experiments" => json::parse(&experiments::json())
                .map_err(|e| format!("experiments JSON failed to parse: {e}")),
            "conformance" => {
                let line = crate::conformance::verdict()?;
                Ok(Json::obj(vec![("verdict", Json::Str(line.trim_end().to_string()))]))
            }
            "devices" => json::parse(&pvc_arch::query::systems_json())
                .map_err(|e| format!("devices JSON failed to parse: {e}")),
            "profile" => {
                let sys = match atom.params.get("system").and_then(Json::as_str) {
                    Some("dawn") => System::Dawn,
                    _ => System::Aurora,
                };
                let Some(workload) = atom.params.get("workload").and_then(Json::as_str)
                else {
                    return Err("profile atom missing workload".into());
                };
                let artifact = profile::run(workload, sys)?;
                let events = artifact.validate()?;
                Ok(Json::obj(vec![
                    ("workload", Json::str(workload)),
                    ("system", Json::str(system_name(sys))),
                    ("trace_events", Json::Int(events as i64)),
                    ("top", Json::Str(artifact.top)),
                    ("summary", Json::Str(artifact.summary)),
                ]))
            }
            "pcie" => {
                let sys = match atom.params.get("system").and_then(Json::as_str) {
                    Some("dawn") => System::Dawn,
                    _ => System::Aurora,
                };
                let mode = mode_from(
                    atom.params.get("mode").and_then(Json::as_str).unwrap_or(""),
                )?;
                let bw = pcie::run(sys, mode).bandwidth;
                Ok(Json::obj(vec![
                    ("one_stack_gbs", Json::Num(bw.one_stack / 1e9)),
                    ("one_pvc_gbs", Json::Num(bw.one_pvc / 1e9)),
                    ("full_node_gbs", Json::Num(bw.full_node / 1e9)),
                ]))
            }
            other => Err(format!("unknown atom op '{other}'")),
        }
    }

    fn assemble(&self, req: &Request, mut parts: Vec<Json>) -> Result<Json, String> {
        if req.kind() == "pcie" {
            let modes = req
                .get("modes")
                .and_then(Json::as_array)
                .ok_or("pcie request lost its modes")?;
            let pairs = modes
                .iter()
                .zip(parts)
                .map(|(m, part)| (m.as_str().unwrap_or("?").to_string(), part))
                .collect();
            return Ok(Json::obj(vec![
                (
                    "system",
                    Json::str(system_name(system_from(req)?)),
                ),
                ("modes", Json::Obj(pairs)),
            ]));
        }
        parts.pop().ok_or_else(|| "empty result".to_string())
    }
}

/// The canned request corpus exercised by CI and the benches: one per
/// kind family, cheap enough to run on every gate.
pub const CANNED_REQUESTS: &[&str] = &[
    r#"{"kind":"table","id":2}"#,
    r#"{"kind":"figure","id":3}"#,
    r#"{"kind":"pcie","system":"aurora","modes":["h2d","d2h"]}"#,
];

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_serve::{ServeConfig, Service};

    fn service() -> Service<CatalogExecutor> {
        Service::new(CatalogExecutor, ServeConfig::default())
    }

    #[test]
    fn table_request_serves_rendered_table() {
        let s = service();
        let r = s.handle_lines(&[r#"{"kind":"table","id":2}"#]).remove(0);
        let text = r
            .get("result")
            .and_then(|b| b.get("text"))
            .and_then(Json::as_str)
            .expect("table text");
        assert!(text.contains("DGEMM"), "{text}");
    }

    #[test]
    fn canned_corpus_is_deterministic_and_cacheable() {
        let s = service();
        let cold: Vec<String> = s
            .handle_lines(CANNED_REQUESTS)
            .iter()
            .map(Json::canonical)
            .collect();
        let warm: Vec<String> = s
            .handle_lines(CANNED_REQUESTS)
            .iter()
            .map(Json::canonical)
            .collect();
        assert_eq!(cold, warm, "cache must not perturb response bytes");
        assert_eq!(s.metrics().counter("serve.cache.hit"), CANNED_REQUESTS.len() as u64);
        for c in &cold {
            assert!(!c.contains("\"error\""), "{c}");
        }
    }

    #[test]
    fn pcie_sweeps_coalesce_across_requests() {
        let s = service();
        let a = r#"{"kind":"pcie","system":"aurora","modes":["h2d","d2h"]}"#;
        let b = r#"{"kind":"pcie","system":"aurora","modes":["d2h","bidir"]}"#;
        let responses = s.handle_lines(&[a, b]);
        assert_eq!(s.metrics().counter("serve.atoms.requested"), 4);
        assert_eq!(s.metrics().counter("serve.atoms.executed"), 3, "shared d2h runs once");
        // The shared atom's bytes are identical in both responses.
        let d2h = |r: &Json| {
            r.get("result")
                .and_then(|b| b.get("modes"))
                .and_then(|m| m.get("d2h"))
                .expect("d2h triplet")
                .canonical()
        };
        assert_eq!(d2h(&responses[0]), d2h(&responses[1]));
    }

    #[test]
    fn bad_catalog_requests_fail_with_guidance() {
        let s = service();
        let cases = [
            (r#"{"kind":"table","id":9}"#, "1..=6"),
            (r#"{"kind":"warp"}"#, "unknown request kind"),
            (r#"{"kind":"profile","workload":"nope"}"#, "unknown profile workload"),
            (r#"{"kind":"pcie","system":"aurora","modes":["sideways"]}"#, "unknown pcie mode"),
            (r#"{"kind":"profile","workload":"pcie-h2d","system":"h100"}"#, "unknown system"),
        ];
        for (line, needle) in cases {
            let r = s.handle_lines(&[line]).remove(0);
            let detail = r
                .get("error")
                .and_then(|e| e.get("detail"))
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("{line} should fail: {}", r.pretty()));
            assert!(detail.contains(needle), "{line}: {detail}");
        }
    }

    /// The ISSUE's acceptance property: cached and recomputed responses
    /// are byte-identical for every workload in the profile catalog.
    #[test]
    fn all_catalog_workloads_cache_byte_identically() {
        let s = service();
        let lines: Vec<String> = profile::WORKLOADS
            .iter()
            .map(|(name, _)| format!(r#"{{"kind":"profile","workload":"{name}"}}"#))
            .collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let cold: Vec<String> = s.handle_lines(&refs).iter().map(Json::canonical).collect();
        let warm: Vec<String> = s.handle_lines(&refs).iter().map(Json::canonical).collect();
        assert_eq!(s.metrics().counter("serve.cache.hit"), lines.len() as u64);
        for ((c, w), (name, _)) in cold.iter().zip(&warm).zip(profile::WORKLOADS) {
            assert_eq!(c, w, "{name}: cached response differs from computed");
            assert!(c.contains("\"result\""), "{name}: {c}");
        }
    }
}

//! `reproduce` — regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! reproduce [table1..table6|fig1..fig4|experiments|json|conformance|validate|all]
//! reproduce list
//! reproduce run <workload> <system>
//! reproduce chaos <workload> <system> <spec>
//! reproduce profile <workload> [outfile]
//! reproduce query [--stats] [--rounds N] [--queue-depth N] [--cache-cap N] [--shards N] [--store PATH] [--access-log PATH] <request.json>...
//! reproduce serve [--queue-depth N] [--cache-cap N] [--shards N] [--store PATH] [--tcp ADDR] [--http ADDR] [--access-log PATH]
//! reproduce stats [--rounds N] [--queue-depth N] [--cache-cap N] [--shards N] [--store PATH] [request.json...]
//! reproduce warm [--store PATH] [--shards N] [--chaos] [--verify]
//! ```
//! `list` prints the full scenario grid — every registered
//! workload × system pair with its figure-of-merit unit and paper
//! citation. `run` executes one scenario and prints its typed outcome.
//! `chaos` runs one scenario twice — healthy and under a '+'-joined
//! fault-spec overlay (e.g. `xelink:0:0`, `pcie:3x8+clock:1.0`) — and
//! prints the FOM delta plus which resource was the bottleneck of each
//! run. With no argument, prints everything. `profile` runs one workload
//! under the deterministic virtual-time tracer and writes a Chrome-trace
//! JSON file (default `profile-<workload>.json`), then prints the top-N
//! span table and the metrics summary.
//!
//! `query` is the one-shot service frontend: every file is one request
//! document, all files form one admitted batch, and the canonical
//! response envelopes print in order (`--rounds 2` replays the batch to
//! exercise the cache; `--stats` dumps the `serve.*` counters to
//! stderr). `serve` is the long-running frontend: line-delimited JSON
//! requests on stdin (or a TCP socket with `--tcp`), one compact JSON
//! response line per request; a line holding a JSON array is served as
//! one batch and answered with one array line. `--http ADDR` serves the
//! same dispatcher over HTTP/1.1 instead (keep-alive, `/metrics`,
//! `/stats`, `POST /query` with stdin-identical bytes — see
//! `pvc_report::httpfront`). All frontends honour the reserved
//! `{"kind":"shutdown"}` request (or `POST /shutdown`) for a graceful
//! exit, and `--shards N` partitions the cache/store/admission state
//! across N consistent-hash worker shards.
//!
//! Both frontends run with telemetry attached (a 64-entry flight
//! recorder), so a `{"kind":"stats"}` request answers with the live
//! counters, gauges, per-kind cost quantiles and recorder dump.
//! `--access-log PATH` additionally writes the structured JSON access
//! log (one line per request: outcome, canonical key, virtual cost,
//! queue depth at admission) — `query` writes it once at exit, `serve`
//! appends after every batch. `stats` is the offline rendering verb: it
//! runs a batch (the canned catalog requests by default, or the given
//! files) through a fresh service and prints the Prometheus-style
//! exposition text followed by a per-histogram quantile table.
//!
//! `warm` precomputes the persistent result store: it enumerates the
//! registry's full grid (every `run` scenario, every canned table /
//! figure / ablation / sweep / profile; `--chaos` adds a canned fault
//! corpus) and persists every response into a `pvc-store` segment file
//! keyed by content address and bound to the current build fingerprint.
//! `--verify` instead requires the store to already be warm: it fails
//! unless every corpus request is answered from disk with zero cold
//! computes. The other frontends take `--store PATH` to attach the
//! warmed store as a second cache tier below the in-memory LRU, so a
//! fresh process answers its very first catalog query without running
//! a simulation. A store written by a different build fingerprint is
//! detected at open and reset automatically.

use pvc_memsim::LatsConfig;
use pvc_report::serve::{CatalogExecutor, CANNED_REQUESTS};
use pvc_report::{experiments, figdata, tables};
use pvc_serve::{Request, ServeConfig, Service, Telemetry};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let mut out = String::new();

    let fig1_cfg = LatsConfig::default();
    match what {
        "table1" => out.push_str(&tables::render_table1()),
        "table2" => out.push_str(&tables::render_table2()),
        "table3" => out.push_str(&tables::render_table3()),
        "table4" => out.push_str(&tables::render_table4()),
        "table5" => out.push_str(&tables::render_table5()),
        "table6" => out.push_str(&tables::render_table6()),
        "fig1" => out.push_str(&figdata::figure1_csv(&fig1_cfg)),
        "fig2" => out.push_str(&figdata::render_figure2()),
        "fig3" => out.push_str(&figdata::render_figure3()),
        "fig4" => out.push_str(&figdata::render_figure4()),
        "charts" => out.push_str(&figdata::render_figures_ascii()),
        "experiments" => out.push_str(&experiments::markdown()),
        "json" => out.push_str(&experiments::json()),
        "rooflines" => out.push_str(&tables::render_rooflines()),
        "ablations" => {
            for t in [
                pvc_report::ablations::governor_ablation(),
                pvc_report::ablations::pcie_ablation(),
                pvc_report::ablations::congestion_ablation(),
                pvc_report::ablations::plane_ablation(),
            ] {
                out.push_str(&t.render());
                out.push('\n');
            }
        }
        "scaling" => out.push_str(&pvc_report::ablations::scaling_report().render()),
        "energy" => out.push_str(&pvc_report::energy::render_energy_table()),
        "devices" => out.push_str(&pvc_arch::query::systems_json()),
        "csv" => {
            let dir = args
                .get(1)
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| std::path::PathBuf::from("artifacts"));
            match pvc_report::csv::write_artifacts(&dir) {
                Ok(paths) => {
                    for p in paths {
                        out.push_str(&format!("wrote {}\n", p.display()));
                    }
                }
                Err(e) => {
                    eprintln!("failed to write artifacts: {e}");
                    std::process::exit(1);
                }
            }
        }
        "fabric" => {
            for sys in pvc_arch::System::PVC {
                out.push_str(&pvc_report::fabric_matrix::render_matrix(sys));
                out.push('\n');
            }
        }
        "validate" => {
            let records = experiments::collect();
            let mut failures = 0usize;
            let mut compared = 0usize;
            for r in &records {
                if let Some(e) = r.rel_err {
                    compared += 1;
                    if e > 0.08 {
                        failures += 1;
                        eprintln!(
                            "FAIL {} / {} / {}: {:.1}% error",
                            r.element, r.row, r.column, e * 100.0
                        );
                    }
                }
            }
            out.push_str(&format!(
                "validated {compared} published cells against the model; {failures} outside 8%\n"
            ));
            match pvc_report::conformance::verdict() {
                Ok(line) => out.push_str(&line),
                Err(msg) => {
                    eprint!("{msg}");
                    failures += 1;
                }
            }
            if failures > 0 {
                print!("{out}");
                std::process::exit(1);
            }
        }
        "list" => {
            let reg = pvc_report::scenarios::registry();
            out.push_str(&format!(
                "{:<28} {:<10} {:<5} {}\n",
                "scenario", "unit", "dir", "citation"
            ));
            for s in reg.iter() {
                let dir = if s.fom_kind().higher_is_better() { "up" } else { "down" };
                out.push_str(&format!(
                    "{:<28} {:<10} {:<5} {}\n",
                    s.id().key(),
                    s.unit(),
                    dir,
                    s.citation()
                ));
            }
            out.push_str(&format!("{} scenarios registered\n", reg.len()));
            out.push_str(
                "\nevery scenario accepts a chaos overlay: `reproduce chaos <workload> <system> <spec>`\n",
            );
            out.push_str("spec grammar ('+'-joined fault tokens):\n");
            for line in pvc_arch::chaos::GRAMMAR {
                out.push_str(&format!("  {line}\n"));
            }
        }
        "run" => {
            let (Some(workload), Some(system)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: reproduce run <workload> <system>");
                eprintln!("see `reproduce list` for the registered pairs");
                std::process::exit(2);
            };
            let system: pvc_arch::System = match system.parse() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let outcome = match pvc_report::scenarios::registry().run(workload, system) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let scenario = pvc_report::scenarios::registry()
                .get(workload, system)
                .expect("scenario just ran");
            let dir = if scenario.fom_kind().higher_is_better() {
                "higher is better"
            } else {
                "lower is better"
            };
            out.push_str(&format!("{}: {} ({dir})\n", outcome.id, outcome.fom));
            out.push_str(&format!("  citation: {}\n", scenario.citation()));
            for (key, value) in &outcome.detail {
                out.push_str(&format!("  {key} = {value}\n"));
            }
        }
        "chaos" => {
            let (Some(workload), Some(system), Some(spec)) =
                (args.get(1), args.get(2), args.get(3))
            else {
                eprintln!("usage: reproduce chaos <workload> <system> <spec>");
                eprintln!("spec grammar ('+'-joined fault tokens):");
                for line in pvc_arch::chaos::GRAMMAR {
                    eprintln!("  {line}");
                }
                std::process::exit(2);
            };
            let system: pvc_arch::System = match system.parse() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let spec = match spec.parse::<pvc_scenario::ChaosSpec>() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("invalid chaos spec '{spec}': {e}");
                    eprintln!("spec grammar ('+'-joined fault tokens):");
                    for line in pvc_arch::chaos::GRAMMAR {
                        eprintln!("  {line}");
                    }
                    std::process::exit(2);
                }
            };
            let reg = pvc_report::scenarios::registry();
            let run = match pvc_scenario::run_with_chaos(reg, workload, system, &spec) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let dir = if run.baseline.fom.kind().higher_is_better() {
                "higher is better"
            } else {
                "lower is better"
            };
            out.push_str(&format!(
                "chaos report: {} under '{}'\n",
                run.baseline.id,
                run.spec.canonical()
            ));
            let side = |label: &str, o: &pvc_scenario::Outcome, b: &Option<String>| {
                let bn = b.as_deref().unwrap_or("none traced");
                format!("  {label:<9} {} ({dir})  [bottleneck: {bn}]\n", o.fom)
            };
            out.push_str(&side("baseline:", &run.baseline, &run.baseline_bottleneck));
            out.push_str(&side("degraded:", &run.degraded, &run.degraded_bottleneck));
            match run.delta_fraction() {
                Some(d) => out.push_str(&format!("  delta:    {:+.1}%\n", d * 100.0)),
                None => out.push_str(
                    "  delta:    n/a (zero or non-finite endpoint — e.g. stranded transfers)\n",
                ),
            }
            if run.baseline_bottleneck != run.degraded_bottleneck {
                out.push_str(&format!(
                    "  bottleneck shifted: {} -> {}\n",
                    run.baseline_bottleneck.as_deref().unwrap_or("none"),
                    run.degraded_bottleneck.as_deref().unwrap_or("none")
                ));
            } else {
                out.push_str("  bottleneck unchanged\n");
            }
            if !run.degraded_no_better() {
                eprintln!("chaos invariant violated: degraded FOM beats baseline");
                print!("{out}");
                std::process::exit(1);
            }
        }
        "profile" => {
            let Some(workload) = args.get(1) else {
                eprintln!("usage: reproduce profile <workload> [outfile]");
                eprintln!("workloads:");
                for (name, desc) in pvc_report::profile::workloads(pvc_arch::System::Aurora) {
                    eprintln!("  {name:<12} {desc}");
                }
                std::process::exit(2);
            };
            let artifact = match pvc_report::profile::run(workload, pvc_arch::System::Aurora) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let events = match artifact.validate() {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            let path = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| format!("profile-{workload}.json"));
            if let Err(e) = std::fs::write(&path, &artifact.trace_json) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            out.push_str(&format!(
                "wrote {path} ({events} trace events, valid JSON)\n\n"
            ));
            out.push_str(&artifact.top);
            out.push('\n');
            out.push_str(&artifact.summary);
        }
        "query" => {
            std::process::exit(run_query(&args[1..]));
        }
        "serve" => {
            std::process::exit(run_serve(&args[1..]));
        }
        "stats" => {
            std::process::exit(run_stats(&args[1..]));
        }
        "warm" => {
            std::process::exit(run_warm(&args[1..]));
        }
        "conformance" => match pvc_report::conformance::verdict() {
            Ok(_) => out.push_str(&pvc_report::conformance::markdown()),
            Err(msg) => {
                eprint!("{msg}");
                std::process::exit(1);
            }
        },
        "all" => {
            for s in [
                tables::render_table1(),
                tables::render_table2(),
                tables::render_table3(),
                tables::render_table4(),
                tables::render_table5(),
                tables::render_table6(),
                figdata::render_figure2(),
                figdata::render_figure3(),
                figdata::render_figure4(),
            ] {
                out.push_str(&s);
                out.push('\n');
            }
            out.push_str("Figure 1 (CSV):\n");
            out.push_str(&figdata::figure1_csv(&LatsConfig {
                min_bytes: 64 * 1024,
                max_bytes: 1 << 30,
                points_per_octave: 1,
                steps: 1 << 13,
            }));
            out.push('\n');
            out.push_str(&experiments::markdown());
        }
        other => {
            eprintln!(
                "unknown target '{other}'; expected table1..table6, fig1..fig4, experiments, json, conformance, validate, rooflines, ablations, scaling, list, run <workload> <system>, chaos <workload> <system> <spec>, profile <workload>, query <request.json>.., serve, stats, warm or all"
            );
            std::process::exit(2);
        }
    }
    print!("{out}");
}

/// Service knobs shared by the `query` and `serve` frontends.
struct ServeFlags {
    cfg: ServeConfig,
    stats: bool,
    rounds: usize,
    tcp: Option<String>,
    http: Option<String>,
    access_log: Option<String>,
    store: Option<String>,
    files: Vec<String>,
}

fn parse_serve_flags(args: &[String]) -> Result<ServeFlags, String> {
    let mut f = ServeFlags {
        cfg: ServeConfig::default(),
        stats: false,
        rounds: 1,
        tcp: None,
        http: None,
        access_log: None,
        store: None,
        files: Vec::new(),
    };
    fn num(it: &mut std::slice::Iter<'_, String>, name: &str) -> Result<usize, String> {
        it.next()
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse::<usize>()
            .map_err(|_| format!("{name} needs an unsigned integer"))
    }
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => f.stats = true,
            "--rounds" => f.rounds = num(&mut it, "--rounds")?.max(1),
            "--queue-depth" => f.cfg.queue_depth = num(&mut it, "--queue-depth")?,
            "--cache-cap" => f.cfg.cache_capacity = num(&mut it, "--cache-cap")?,
            "--budget" => f.cfg.default_budget = num(&mut it, "--budget")? as u64,
            "--shards" => f.cfg.shards = num(&mut it, "--shards")?.max(1),
            "--tcp" => {
                f.tcp = Some(
                    it.next().ok_or("--tcp needs an address")?.clone(),
                )
            }
            "--http" => {
                f.http = Some(
                    it.next().ok_or("--http needs an address")?.clone(),
                )
            }
            "--access-log" => {
                f.access_log = Some(
                    it.next().ok_or("--access-log needs a path")?.clone(),
                )
            }
            "--store" => {
                f.store = Some(
                    it.next().ok_or("--store needs a path")?.clone(),
                )
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"))
            }
            path => f.files.push(path.to_string()),
        }
    }
    Ok(f)
}

/// `reproduce query`: one-shot batch, canonical envelopes on stdout.
/// Exit 0 when every envelope carries a result, 3 when any was
/// rejected or failed, 2 on usage errors.
fn run_query(args: &[String]) -> i32 {
    let flags = match parse_serve_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if flags.files.is_empty() {
        eprintln!("usage: reproduce query [--stats] [--rounds N] [--queue-depth N] [--cache-cap N] [--access-log PATH] <request.json>...");
        eprintln!("each file holds one JSON request object, for example:");
        for r in CANNED_REQUESTS {
            eprintln!("  {r}");
        }
        return 2;
    }
    let mut texts = Vec::with_capacity(flags.files.len());
    for path in &flags.files {
        match std::fs::read_to_string(path) {
            Ok(t) => texts.push(t),
            Err(e) => {
                eprintln!("failed to read {path}: {e}");
                return 2;
            }
        }
    }
    let mut service = new_catalog_service(flags.cfg);
    if let Some(path) = &flags.store {
        if !attach_catalog_store(&mut service, path) {
            return 2;
        }
    }
    let mut all_ok = true;
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    for _ in 0..flags.rounds {
        let batch: Vec<_> = texts.iter().map(|t| Request::parse(t)).collect();
        for envelope in service.handle_batch(batch) {
            all_ok &= envelope.get("result").is_some();
            if writeln!(w, "{}", envelope.canonical()).is_err() {
                return 1;
            }
        }
    }
    if flags.stats {
        print_serve_stats(&service);
    }
    if let Some(path) = &flags.access_log {
        if let Err(e) = std::fs::write(path, service.telemetry().drain_access_log()) {
            eprintln!("failed to write access log {path}: {e}");
            return 1;
        }
    }
    if all_ok {
        0
    } else {
        3
    }
}

/// The catalog service both frontends share: telemetry is always
/// attached (bit-non-perturbing by construction, proven by the serve
/// test suite), so the `stats` request kind and the flight recorder
/// work out of the box.
fn new_catalog_service(cfg: ServeConfig) -> Service<CatalogExecutor> {
    let mut service = Service::new(CatalogExecutor, cfg);
    service.set_telemetry(Telemetry::recording(64));
    service
}

/// One line summarising what [`pvc_store::Store::open`] found on disk.
fn describe_open(report: &pvc_store::OpenReport) -> String {
    use pvc_store::OpenStatus;
    let mut s = match report.status {
        OpenStatus::Created => "created empty".to_string(),
        OpenStatus::Loaded => format!("loaded {} records", report.records),
        OpenStatus::Invalidated { .. } => {
            "fingerprint mismatch, store reset".to_string()
        }
    };
    if report.tail_corrupt() {
        s.push_str(&format!(
            ", corrupt tail dropped ({} bytes)",
            report.dropped_bytes
        ));
    }
    s
}

/// Opens the disk tier rooted at `path` and attaches it below the LRU —
/// one segment file per shard (`path` itself for a one-shard service,
/// `path.shard<i>of<n>` otherwise), each bound to its shard-specific
/// build fingerprint so a cluster resize resets stale partitions. The
/// open outcomes print on stderr so response bytes on stdout stay
/// untouched.
fn attach_catalog_store(service: &mut Service<CatalogExecutor>, path: &str) -> bool {
    let shards = service.shard_count();
    let base_fp = pvc_report::warm::build_fingerprint();
    for shard in 0..shards {
        let shard_path = pvc_report::warm::shard_store_path(path, shard, shards);
        let fp = pvc_report::warm::shard_fingerprint(base_fp, shard, shards);
        match pvc_store::Store::open(&shard_path, fp) {
            Ok((store, report)) => {
                eprintln!("store {shard_path}: {}", describe_open(&report));
                service.attach_shard_store(shard, store, &report);
            }
            Err(e) => {
                eprintln!("failed to open store {shard_path}: {e}");
                return false;
            }
        }
    }
    true
}

/// `reproduce warm`: enumerate the registry's full grid and persist
/// every response into the store, so any later frontend started with
/// `--store` answers its first catalog query from disk. `--verify`
/// asserts the store is already warm: every corpus request must come
/// back as a store hit with zero cold computes. Exit 0 on success,
/// 1 on failed requests or a failed verify, 2 on usage errors.
fn run_warm(args: &[String]) -> i32 {
    let mut store_path = "pvc-store.bin".to_string();
    let mut shards = 1usize;
    let mut chaos = false;
    let mut verify = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => match it.next() {
                Some(p) => store_path = p.clone(),
                None => {
                    eprintln!("--store needs a path");
                    return 2;
                }
            },
            "--shards" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => shards = n.max(1),
                None => {
                    eprintln!("--shards needs an unsigned integer");
                    return 2;
                }
            },
            "--chaos" => chaos = true,
            "--verify" => verify = true,
            other => {
                eprintln!("unknown warm argument '{other}'");
                eprintln!("usage: reproduce warm [--store PATH] [--shards N] [--chaos] [--verify]");
                return 2;
            }
        }
    }
    let corpus = if chaos {
        pvc_report::warm::warm_corpus_with_chaos()
    } else {
        pvc_report::warm::warm_corpus()
    };
    // The whole corpus is one admitted batch: raise the queue so
    // nothing sheds (the depth bound is per shard, so the single-shard
    // bound covers every cluster size), leave other knobs at defaults.
    let mut cfg = ServeConfig::default();
    cfg.queue_depth = cfg.queue_depth.max(corpus.len());
    cfg.shards = shards;
    let mut service = new_catalog_service(cfg);
    let base_fp = pvc_report::warm::build_fingerprint();
    for shard in 0..shards {
        let shard_path = pvc_report::warm::shard_store_path(&store_path, shard, shards);
        let fp = pvc_report::warm::shard_fingerprint(base_fp, shard, shards);
        let (store, report) = match pvc_store::Store::open(&shard_path, fp) {
            Ok(opened) => opened,
            Err(e) => {
                eprintln!("failed to open store {shard_path}: {e}");
                return 1;
            }
        };
        println!("store {shard_path}: {}", describe_open(&report));
        if verify && report.status != pvc_store::OpenStatus::Loaded {
            eprintln!("verify failed: store must already be warm for this build fingerprint");
            return 1;
        }
        service.attach_shard_store(shard, store, &report);
    }
    let batch: Vec<_> = corpus.iter().map(|t| Request::parse(t)).collect();
    let envelopes = service.handle_batch(batch);
    let failed = envelopes
        .iter()
        .filter(|e| e.get("result").is_none())
        .count();
    let metrics = service.metrics();
    let hits = metrics.counter("serve.store.hit");
    let writes = metrics.counter("serve.store.write");
    let cold = metrics.counter("serve.cache.miss");
    println!(
        "warmed {} corpus requests: {hits} served from store, {writes} computed and written; store holds {} entries",
        corpus.len(),
        service.store_len()
    );
    if failed > 0 {
        eprintln!("warm failed: {failed} corpus requests did not produce a result");
        return 1;
    }
    if verify {
        if hits as usize != corpus.len() || cold != 0 {
            eprintln!(
                "verify failed: expected every request from disk (store hits {hits}/{}, cold computes {cold})",
                corpus.len()
            );
            return 1;
        }
        println!(
            "verify ok: all {} requests served from the store, zero cold computes",
            corpus.len()
        );
    }
    0
}

/// The `serve.*` counter namespace on stderr (same line format as the
/// full metrics summary, filtered to this service's instruments).
fn print_serve_stats(service: &Service<CatalogExecutor>) {
    for (name, value) in service.metrics().counters("serve.") {
        eprintln!("counter {name} = {value}");
    }
}

/// One line-delimited session: requests in, compact envelopes out. A
/// line holding a JSON array is served as one batch and answered with
/// one array line. When an access-log sink is attached, the telemetry
/// log drains to it after every answered line.
fn serve_session(
    service: &Service<CatalogExecutor>,
    reader: impl BufRead,
    mut writer: impl Write,
    access: &mut Option<std::fs::File>,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let reply = if line.starts_with('[') {
            let batch = match pvc_core::json::parse(line) {
                Ok(pvc_core::Json::Arr(items)) => {
                    items.into_iter().map(Request::from_json).collect()
                }
                Ok(_) => unreachable!("starts with '['"),
                Err(e) => vec![Err(pvc_serve::ServeError::BadRequest(e.to_string()))],
            };
            pvc_core::Json::Arr(service.handle_batch(batch)).compact()
        } else {
            service.handle_lines(&[line]).remove(0).compact()
        };
        writeln!(writer, "{reply}")?;
        writer.flush()?;
        if let Some(log) = access {
            log.write_all(service.telemetry().drain_access_log().as_bytes())?;
            log.flush()?;
        }
        // A reserved `{"kind":"shutdown"}` request (possibly inside an
        // array batch) was acknowledged: drain this session cleanly.
        if service.shutdown_requested() {
            return Ok(());
        }
    }
    Ok(())
}

/// `reproduce serve`: long-running loop on stdin (default) or TCP.
fn run_serve(args: &[String]) -> i32 {
    let flags = match parse_serve_flags(args) {
        Ok(f) if f.files.is_empty() => f,
        Ok(_) => {
            eprintln!("serve takes no file arguments; pipe requests to stdin or use --tcp");
            return 2;
        }
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut access = match &flags.access_log {
        None => None,
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("failed to open access log {path}: {e}");
                return 2;
            }
        },
    };
    let mut service = new_catalog_service(flags.cfg);
    if let Some(path) = &flags.store {
        if !attach_catalog_store(&mut service, path) {
            return 2;
        }
    }
    if flags.tcp.is_some() && flags.http.is_some() {
        eprintln!("choose one frontend: --tcp or --http");
        return 2;
    }
    let result = match (&flags.tcp, &flags.http) {
        (None, None) => {
            let stdin = std::io::stdin();
            serve_session(&service, stdin.lock(), std::io::stdout().lock(), &mut access)
        }
        (Some(addr), None) => serve_tcp(&service, addr, &mut access),
        (None, Some(addr)) => serve_http_front(&service, addr, &mut access),
        (Some(_), Some(_)) => unreachable!("rejected above"),
    };
    if flags.stats {
        print_serve_stats(&service);
    }
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("serve: {e}");
            1
        }
    }
}

/// Accepts connections sequentially; one session each, shared cache.
/// Per-connection failures (a client disconnecting mid-line, a failed
/// accept, a failed handle clone) end that connection and keep the
/// server accepting — only a shutdown request stops the loop.
fn serve_tcp(
    service: &Service<CatalogExecutor>,
    addr: &str,
    access: &mut Option<std::fs::File>,
) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!("serving on {}", listener.local_addr()?);
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("accept failed: {e}");
                continue;
            }
        };
        let reader = match stream.try_clone() {
            Ok(clone) => std::io::BufReader::new(clone),
            Err(e) => {
                eprintln!("connection setup failed: {e}");
                continue;
            }
        };
        if let Err(e) = serve_session(service, reader, stream, access) {
            eprintln!("connection ended: {e}");
        }
        if service.shutdown_requested() {
            eprintln!("shutdown requested; stopping accept loop");
            break;
        }
    }
    Ok(())
}

/// The HTTP/1.1 frontend: the same dispatcher behind the zero-dep
/// [`pvc_serve::http`] server and the `pvc_report::httpfront` routes.
/// Keep-alive, chunked responses, `/metrics`, `/stats`, and a
/// `POST /query` whose bytes match the stdin frontend exactly.
fn serve_http_front(
    service: &Service<CatalogExecutor>,
    addr: &str,
    access: &mut Option<std::fs::File>,
) -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind(addr)?;
    eprintln!("serving http on {}", listener.local_addr()?);
    pvc_serve::http::serve_http(&listener, |req| {
        let (resp, after) = pvc_report::httpfront::handle(service, req);
        if let Some(log) = access.as_mut() {
            let _ = log.write_all(service.telemetry().drain_access_log().as_bytes());
            let _ = log.flush();
        }
        (resp, after)
    })
}

/// `reproduce stats`: run one batch (the canned requests by default)
/// through a fresh catalog service, then render the full metrics
/// registry as Prometheus exposition text plus a quantile table — the
/// offline twin of the `{"kind":"stats"}` request.
fn run_stats(args: &[String]) -> i32 {
    let flags = match parse_serve_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if flags.tcp.is_some() || flags.http.is_some() {
        eprintln!("stats is offline; --tcp/--http belong to `reproduce serve`");
        return 2;
    }
    let mut texts: Vec<String> = Vec::new();
    if flags.files.is_empty() {
        texts.extend(CANNED_REQUESTS.iter().map(|r| r.to_string()));
    } else {
        for path in &flags.files {
            match std::fs::read_to_string(path) {
                Ok(t) => texts.push(t),
                Err(e) => {
                    eprintln!("failed to read {path}: {e}");
                    return 2;
                }
            }
        }
    }
    let mut service = new_catalog_service(flags.cfg);
    if let Some(path) = &flags.store {
        if !attach_catalog_store(&mut service, path) {
            return 2;
        }
    }
    for _ in 0..flags.rounds {
        let batch: Vec<_> = texts.iter().map(|t| Request::parse(t)).collect();
        service.handle_batch(batch);
    }
    let metrics = service.metrics();
    let mut out = metrics.expose_text();
    out.push('\n');
    out.push_str("quantiles (virtual units; serve.cost.* are abstract cost units)\n");
    out.push_str(&format!(
        "{:<28} {:>7} {:>12} {:>12} {:>12}\n",
        "histogram", "count", "p50", "p90", "p99"
    ));
    for name in metrics.histogram_names("") {
        let Some((_, count, _)) = metrics.histogram(&name) else {
            continue;
        };
        let q = |p: f64| match metrics.quantile(&name, p) {
            Some(v) => format!("{v:.3}"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{name:<28} {count:>7} {:>12} {:>12} {:>12}\n",
            q(0.50),
            q(0.90),
            q(0.99)
        ));
    }
    print!("{out}");
    if let Some(path) = &flags.access_log {
        if let Err(e) = std::fs::write(path, service.telemetry().drain_access_log()) {
            eprintln!("failed to write access log {path}: {e}");
            return 1;
        }
    }
    0
}

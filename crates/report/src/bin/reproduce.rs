//! `reproduce` — regenerates every table and figure of the paper.
//!
//! Usage:
//! ```text
//! reproduce [table1..table6|fig1..fig4|experiments|json|conformance|validate|all]
//! reproduce profile <workload> [outfile]
//! ```
//! With no argument, prints everything. `profile` runs one workload
//! under the deterministic virtual-time tracer and writes a Chrome-trace
//! JSON file (default `profile-<workload>.json`), then prints the top-N
//! span table and the metrics summary.

use pvc_memsim::LatsConfig;
use pvc_report::{experiments, figdata, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let mut out = String::new();

    let fig1_cfg = LatsConfig::default();
    match what {
        "table1" => out.push_str(&tables::render_table1()),
        "table2" => out.push_str(&tables::render_table2()),
        "table3" => out.push_str(&tables::render_table3()),
        "table4" => out.push_str(&tables::render_table4()),
        "table5" => out.push_str(&tables::render_table5()),
        "table6" => out.push_str(&tables::render_table6()),
        "fig1" => out.push_str(&figdata::figure1_csv(&fig1_cfg)),
        "fig2" => out.push_str(&figdata::render_figure2()),
        "fig3" => out.push_str(&figdata::render_figure3()),
        "fig4" => out.push_str(&figdata::render_figure4()),
        "charts" => out.push_str(&figdata::render_figures_ascii()),
        "experiments" => out.push_str(&experiments::markdown()),
        "json" => out.push_str(&experiments::json()),
        "rooflines" => out.push_str(&tables::render_rooflines()),
        "ablations" => {
            for t in [
                pvc_report::ablations::governor_ablation(),
                pvc_report::ablations::pcie_ablation(),
                pvc_report::ablations::congestion_ablation(),
                pvc_report::ablations::plane_ablation(),
            ] {
                out.push_str(&t.render());
                out.push('\n');
            }
        }
        "scaling" => out.push_str(&pvc_report::ablations::scaling_report().render()),
        "energy" => out.push_str(&pvc_report::energy::render_energy_table()),
        "devices" => out.push_str(&pvc_arch::query::systems_json()),
        "csv" => {
            let dir = args
                .get(1)
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| std::path::PathBuf::from("artifacts"));
            match pvc_report::csv::write_artifacts(&dir) {
                Ok(paths) => {
                    for p in paths {
                        out.push_str(&format!("wrote {}\n", p.display()));
                    }
                }
                Err(e) => {
                    eprintln!("failed to write artifacts: {e}");
                    std::process::exit(1);
                }
            }
        }
        "fabric" => {
            for sys in pvc_arch::System::PVC {
                out.push_str(&pvc_report::fabric_matrix::render_matrix(sys));
                out.push('\n');
            }
        }
        "validate" => {
            let records = experiments::collect();
            let mut failures = 0usize;
            let mut compared = 0usize;
            for r in &records {
                if let Some(e) = r.rel_err {
                    compared += 1;
                    if e > 0.08 {
                        failures += 1;
                        eprintln!(
                            "FAIL {} / {} / {}: {:.1}% error",
                            r.element, r.row, r.column, e * 100.0
                        );
                    }
                }
            }
            out.push_str(&format!(
                "validated {compared} published cells against the model; {failures} outside 8%\n"
            ));
            match pvc_report::conformance::verdict() {
                Ok(line) => out.push_str(&line),
                Err(msg) => {
                    eprint!("{msg}");
                    failures += 1;
                }
            }
            if failures > 0 {
                print!("{out}");
                std::process::exit(1);
            }
        }
        "profile" => {
            let Some(workload) = args.get(1) else {
                eprintln!("usage: reproduce profile <workload> [outfile]");
                eprintln!("workloads:");
                for (name, desc) in pvc_report::profile::WORKLOADS {
                    eprintln!("  {name:<12} {desc}");
                }
                std::process::exit(2);
            };
            let artifact = match pvc_report::profile::run(workload, pvc_arch::System::Aurora) {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
            let events = match artifact.validate() {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            let path = args
                .get(2)
                .cloned()
                .unwrap_or_else(|| format!("profile-{workload}.json"));
            if let Err(e) = std::fs::write(&path, &artifact.trace_json) {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
            out.push_str(&format!(
                "wrote {path} ({events} trace events, valid JSON)\n\n"
            ));
            out.push_str(&artifact.top);
            out.push('\n');
            out.push_str(&artifact.summary);
        }
        "conformance" => match pvc_report::conformance::verdict() {
            Ok(_) => out.push_str(&pvc_report::conformance::markdown()),
            Err(msg) => {
                eprint!("{msg}");
                std::process::exit(1);
            }
        },
        "all" => {
            for s in [
                tables::render_table1(),
                tables::render_table2(),
                tables::render_table3(),
                tables::render_table4(),
                tables::render_table5(),
                tables::render_table6(),
                figdata::render_figure2(),
                figdata::render_figure3(),
                figdata::render_figure4(),
            ] {
                out.push_str(&s);
                out.push('\n');
            }
            out.push_str("Figure 1 (CSV):\n");
            out.push_str(&figdata::figure1_csv(&LatsConfig {
                min_bytes: 64 * 1024,
                max_bytes: 1 << 30,
                points_per_octave: 1,
                steps: 1 << 13,
            }));
            out.push('\n');
            out.push_str(&experiments::markdown());
        }
        other => {
            eprintln!(
                "unknown target '{other}'; expected table1..table6, fig1..fig4, experiments, json, conformance, validate, rooflines, ablations, scaling, profile <workload> or all"
            );
            std::process::exit(2);
        }
    }
    print!("{out}");
}

//! `reproduce warm`: the build fingerprint and the precompute corpus.
//!
//! The winning latency move at catalog scale is to never be cold: a
//! disk store warmed with every request the catalog can answer makes
//! the first query of a fresh process a [`pvc_store::Store`] hit
//! instead of a multi-millisecond simulation. This module supplies the
//! two ingredients:
//!
//! * [`build_fingerprint`] — a hash binding a store to the model that
//!   filled it: the full `pvc-arch` model-constant dump, the scenario
//!   grid (ids, units, citations, directions), and the store schema
//!   version. Any change to model constants or the registry changes
//!   the fingerprint, and [`pvc_store::Store::open`] then resets the
//!   store automatically — stale results can never serve.
//! * [`warm_corpus`] — the full grid as request documents: every
//!   registered `run` scenario, every canned table / figure / ablation
//!   / sweep / profile, the singleton kinds, and (always) the canned CI
//!   corpus; [`warm_corpus_with_chaos`] adds a canned chaos corpus on
//!   top. Deduplicated by canonical content address, so the corpus
//!   enumerates each computation exactly once.

use crate::scenarios::registry;
use pvc_arch::System;
use pvc_serve::{fnv1a64, Request};

/// Bump on any change to how responses are stored (value layout,
/// envelope schema): old stores then invalidate even when the model
/// constants are unchanged.
const STORE_SCHEMA: &str = "pvc-store-catalog/v1";

/// The ablation names the catalog serves (the `ablation` request kind).
pub const ABLATIONS: [&str; 5] = ["governor", "pcie", "congestion", "plane", "scaling"];

/// The canned chaos corpus `warm --chaos` adds: representative fault
/// overlays on both PVC systems, all valid against the chaos grammar.
/// The canned CI chaos request (`hbm:0.5` on Aurora stream-triad) is
/// part of the always-on corpus already.
const CHAOS_CORPUS: [(&str, &str); 3] = [
    ("stream-triad", "hbm:0.5"),
    ("allreduce", "xelink:0:0.3"),
    ("peakflops-fp64", "clock:1.0"),
];

/// The build fingerprint: FNV-1a 64 over the model constants, the
/// scenario grid and the store schema version. Deterministic across
/// processes and machines; changes whenever the answers could.
///
/// `PVC_STORE_FINGERPRINT_SALT`, when set, is hashed in as well — the
/// hook CI and tests use to simulate a model change and prove the
/// invalidation path end to end.
pub fn build_fingerprint() -> u64 {
    let mut desc = String::new();
    desc.push_str(STORE_SCHEMA);
    desc.push('\n');
    // Every model constant the simulations read: clocks, caches,
    // fabrics, TDP governors, PCIe topology, all four systems.
    desc.push_str(&pvc_arch::query::systems_json());
    desc.push('\n');
    // The grid itself: a scenario appearing, disappearing or changing
    // its meaning (unit, direction, citation) must invalidate.
    for s in registry().iter() {
        let id = s.id();
        desc.push_str(&format!(
            "{}|{}|{}|{}|{}\n",
            id.key(),
            s.unit(),
            s.citation(),
            s.fom_kind().higher_is_better(),
            s.profile_name().unwrap_or("-"),
        ));
    }
    if let Ok(salt) = std::env::var("PVC_STORE_FINGERPRINT_SALT") {
        desc.push_str("salt:");
        desc.push_str(&salt);
        desc.push('\n');
    }
    fnv1a64(desc.as_bytes())
}

/// The segment-file path for shard `shard` of an `shards`-way cluster
/// rooted at `base`. A one-shard cluster uses `base` unchanged, so
/// every pre-sharding store (and every `warm` invocation) stays valid;
/// a sharded cluster derives `base.shard<i>of<n>` so partitions never
/// collide on disk.
pub fn shard_store_path(base: &str, shard: usize, shards: usize) -> String {
    if shards <= 1 {
        base.to_string()
    } else {
        format!("{base}.shard{shard}of{shards}")
    }
}

/// The per-shard build fingerprint: the base fingerprint for a
/// one-shard cluster (bit-compatible with existing stores), otherwise
/// the base hashed with the shard's identity `(shard, shards)`. Bound
/// to the cluster size on purpose — resizing from `n` to `m` shards
/// changes every shard file's fingerprint, so stale partitions reset
/// instead of serving keys they no longer own.
pub fn shard_fingerprint(base: u64, shard: usize, shards: usize) -> u64 {
    if shards <= 1 {
        base
    } else {
        fnv1a64(format!("{base:016x}|shard {shard} of {shards}").as_bytes())
    }
}

/// Every request document the catalog can answer deterministically:
/// the 63 `run` scenarios, the canned tables/figures/ablations, the
/// per-system PCIe sweeps, every registered profile workload, the
/// singleton kinds, and the canned CI corpus. Deduplicated by
/// canonical content address; `stats` is excluded by construction
/// (it is live introspection, never cacheable).
pub fn warm_corpus() -> Vec<String> {
    corpus(false)
}

/// [`warm_corpus`] plus the canned chaos corpus: degraded variants are
/// first-class content-addressed results and pre-warm the same way.
pub fn warm_corpus_with_chaos() -> Vec<String> {
    corpus(true)
}

fn corpus(include_chaos: bool) -> Vec<String> {
    let mut lines: Vec<String> = Vec::new();
    for id in 1..=6 {
        lines.push(format!(r#"{{"kind":"table","id":{id}}}"#));
    }
    for id in 1..=4 {
        lines.push(format!(r#"{{"kind":"figure","id":{id}}}"#));
    }
    for name in ABLATIONS {
        lines.push(format!(r#"{{"kind":"ablation","name":"{name}"}}"#));
    }
    for kind in ["experiments", "conformance", "devices", "list"] {
        lines.push(format!(r#"{{"kind":"{kind}"}}"#));
    }
    for sys in System::PVC {
        lines.push(format!(
            r#"{{"kind":"pcie","system":"{}","modes":["h2d","d2h","bidir"]}}"#,
            sys.cli_name()
        ));
    }
    // The full scenario grid, one `run` per registered cell.
    for s in registry().iter() {
        let id = s.id();
        lines.push(format!(
            r#"{{"kind":"run","workload":"{}","system":"{}"}}"#,
            id.slug(),
            id.system.cli_name()
        ));
    }
    // Every registered profile workload on its system.
    for s in registry().iter() {
        if let Some(name) = s.profile_name() {
            lines.push(format!(
                r#"{{"kind":"profile","workload":"{name}","system":"{}"}}"#,
                s.id().system.cli_name()
            ));
        }
    }
    // The canned CI corpus is always warm (it includes one chaos run).
    lines.extend(crate::serve::CANNED_REQUESTS.iter().map(|r| r.to_string()));
    if include_chaos {
        for sys in System::PVC {
            for (workload, spec) in CHAOS_CORPUS {
                lines.push(format!(
                    r#"{{"kind":"run","workload":"{workload}","system":"{}","chaos":"{spec}"}}"#,
                    sys.cli_name()
                ));
            }
        }
    }
    dedupe_by_key(lines)
}

/// Keeps the first occurrence of each canonical content address, so a
/// request spelled twice (e.g. a canned line duplicating a grid line)
/// warms once. Order is preserved — the corpus, and therefore the
/// store file a warm pass writes, is byte-deterministic.
fn dedupe_by_key(lines: Vec<String>) -> Vec<String> {
    let mut seen: Vec<u64> = Vec::new();
    let mut out: Vec<String> = Vec::new();
    for line in lines {
        let key = Request::parse(&line)
            .unwrap_or_else(|e| panic!("warm corpus line '{line}' must parse: {e}"))
            .key();
        if !seen.contains(&key) {
            seen.push(key);
            out.push(line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_core::Json;

    #[test]
    fn fingerprint_is_stable_and_salt_sensitive() {
        let a = build_fingerprint();
        let b = build_fingerprint();
        assert_eq!(a, b, "fingerprint must be deterministic");
        // The salt hook perturbs it (set/remove around the calls; tests
        // in this module are the only users of this variable).
        std::env::set_var("PVC_STORE_FINGERPRINT_SALT", "model-changed");
        let salted = build_fingerprint();
        std::env::remove_var("PVC_STORE_FINGERPRINT_SALT");
        assert_ne!(a, salted, "salt must change the fingerprint");
        assert_eq!(build_fingerprint(), a, "removing the salt restores it");
    }

    #[test]
    fn corpus_covers_the_grid_and_parses() {
        let corpus = warm_corpus();
        let runs = corpus.iter().filter(|l| l.contains(r#""kind":"run""#)).count();
        assert_eq!(
            runs,
            registry().len() + 1,
            "one run per grid cell plus the canned chaos run"
        );
        let profiles = corpus.iter().filter(|l| l.contains(r#""kind":"profile""#)).count();
        assert_eq!(
            profiles,
            registry().iter().filter(|s| s.profile_name().is_some()).count(),
            "every registered profile workload is warmed"
        );
        // Every line parses, none is a stats request, keys are unique.
        let mut keys = Vec::new();
        for line in &corpus {
            let req = Request::parse(line).expect("corpus line parses");
            assert_ne!(req.kind(), "stats", "stats is live, never warmable");
            assert!(!keys.contains(&req.key()), "duplicate corpus key: {line}");
            keys.push(req.key());
        }
    }

    #[test]
    fn chaos_corpus_is_a_strict_superset() {
        let base = warm_corpus();
        let chaos = warm_corpus_with_chaos();
        assert!(chaos.len() > base.len());
        assert!(chaos.starts_with(&base[..]), "chaos lines append at the end");
        for line in &chaos[base.len()..] {
            let req = Request::parse(line).expect("chaos line parses");
            assert_eq!(req.kind(), "run");
            assert!(matches!(req.get("chaos"), Some(Json::Str(_))));
        }
    }

    #[test]
    fn corpus_requests_fit_the_default_budget() {
        use pvc_serve::Executor;
        let exec = crate::serve::CatalogExecutor;
        let budget = pvc_serve::ServeConfig::default().default_budget;
        for line in warm_corpus_with_chaos() {
            let req = Request::parse(&line).unwrap();
            let cost = exec.cost(&req);
            assert!(
                cost <= budget,
                "corpus line '{line}' costs {cost} > default budget {budget}"
            );
        }
    }
}

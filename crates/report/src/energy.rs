//! Extension: energy-normalised figures of merit.
//!
//! §III notes the operational power caps (500 W/card Aurora, 600 W
//! Dawn); combining them with the Table VI FOMs gives throughput-per-
//! kilowatt — the number a site operator actually provisions around.
//! The paper stops at raw FOMs; this table is the natural next column.

use crate::render::{opt, TextTable};
use pvc_arch::{power, Precision, System};
use pvc_engine::BoundKind;
use pvc_miniapps::ScaleLevel;
use pvc_predict::{fom, AppKind};

/// FOM per kilowatt of sustained node GPU power for one app × system.
/// Uses the power draw of the app's bound class (FP64 work draws less
/// than FP32 work on PVC thanks to the downclock).
pub fn fom_per_kw(app: AppKind, system: System) -> Option<f64> {
    let f = fom(app, system, ScaleLevel::FullNode)?;
    let node = system.node();
    let precision = match app {
        AppKind::MiniGamess => Precision::Fp64,
        _ => Precision::Fp32,
    };
    let _ = BoundKind::MemoryBandwidth; // bound classes documented in Table V
    let watts = power::node_power(&node, precision);
    Some(f / (watts / 1e3))
}

/// Renders the energy-normalised Table VI (node level).
pub fn render_energy_table() -> String {
    let mut t = TextTable::new(
        "Extension: node FOM per kW of sustained GPU power (higher = more efficient)",
    )
    .header(vec![
        "".into(),
        "Aurora".into(),
        "Dawn".into(),
        "H100".into(),
        "MI250".into(),
    ]);
    for app in AppKind::ALL {
        let mut row = vec![app.label().to_string()];
        for sys in System::ALL {
            row.push(opt(fom_per_kw(app, sys), 2));
        }
        t.push_row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_table_renders_with_values() {
        let s = render_energy_table();
        assert!(s.contains("CloverLeaf"));
        // At least the four HACC node cells exist.
        assert!(fom_per_kw(AppKind::Hacc, System::Aurora).is_some());
        assert!(fom_per_kw(AppKind::Hacc, System::JlseMi250).is_some());
    }

    #[test]
    fn cells_missing_where_table_vi_is_node_less() {
        // miniBUDE has no node FOM, hence no energy-normalised value.
        assert!(fom_per_kw(AppKind::MiniBude, System::Aurora).is_none());
    }

    #[test]
    fn efficiency_is_positive_and_finite() {
        for app in [AppKind::CloverLeaf, AppKind::MiniQmc, AppKind::Hacc] {
            for sys in System::ALL {
                if let Some(e) = fom_per_kw(app, sys) {
                    assert!(e.is_finite() && e > 0.0, "{app:?} {sys:?}: {e}");
                }
            }
        }
    }

    #[test]
    fn dawn_cloverleaf_per_kw_beats_aurora() {
        // Same per-stack bandwidth, fewer GPUs, bigger cap — but the
        // FP32 sustained draw scales with the cap, and Aurora needs 6
        // cards for its 12 TB/s. Per kW, Dawn's 4-card node wins on the
        // bandwidth-bound app.
        let a = fom_per_kw(AppKind::CloverLeaf, System::Aurora).unwrap();
        let d = fom_per_kw(AppKind::CloverLeaf, System::Dawn).unwrap();
        assert!(d > a * 0.8, "Dawn {d:.2} vs Aurora {a:.2}");
    }
}

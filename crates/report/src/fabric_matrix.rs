//! All-pairs bandwidth matrix: the topology view behind Table III.
//!
//! For each ordered stack pair of a PVC node, the isolated transfer
//! bandwidth — MDFI on the diagonal blocks, Xe-Link off them, with the
//! cross-plane two-hop cases indistinguishable in bandwidth (the MDFI
//! hop is never the bottleneck) but distinguishable by hop count.

use crate::render::TextTable;
use pvc_arch::System;
use pvc_fabric::plane::same_plane;
use pvc_fabric::{NodeFabric, RouteVia, StackId};

/// The ordered all-pairs matrix: `matrix[i][j]` = isolated bandwidth
/// from stack i to stack j (bytes/s), `None` on the diagonal. Also
/// returns the stack labels in order.
pub fn bandwidth_matrix(system: System) -> (Vec<String>, Vec<Vec<Option<f64>>>) {
    let node = system.node();
    let fabric = NodeFabric::new(&node);
    let stacks: Vec<StackId> = (0..node.gpus)
        .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
        .collect();
    let labels = stacks.iter().map(|s| s.to_string()).collect();
    let matrix = stacks
        .iter()
        .map(|&a| {
            stacks
                .iter()
                .map(|&b| {
                    if a == b {
                        None
                    } else {
                        Some(fabric.isolated_bandwidth(fabric.d2d_path(a, b, RouteVia::Auto)))
                    }
                })
                .collect()
        })
        .collect();
    (labels, matrix)
}

/// Renders the matrix in GB/s with hop annotations (`*` marks a
/// cross-plane two-hop route).
pub fn render_matrix(system: System) -> String {
    let node = system.node();
    let (labels, matrix) = bandwidth_matrix(system);
    let stacks: Vec<StackId> = (0..node.gpus)
        .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
        .collect();
    let mut t = TextTable::new(format!(
        "{}: stack-to-stack isolated bandwidth, GB/s (* = cross-plane two-hop)",
        system.label()
    ))
    .header(
        std::iter::once("from \\ to".to_string())
            .chain(labels.iter().cloned())
            .collect(),
    );
    for (i, row) in matrix.iter().enumerate() {
        let mut cells = vec![labels[i].clone()];
        for (j, bw) in row.iter().enumerate() {
            cells.push(match bw {
                None => "-".to_string(),
                Some(b) => {
                    let two_hop = stacks[i].gpu != stacks[j].gpu
                        && !same_plane(system, stacks[i], stacks[j]);
                    format!("{:.0}{}", b / 1e9, if two_hop { "*" } else { "" })
                }
            });
        }
        t.push_row(cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aurora_matrix_shape_and_classes() {
        let (labels, m) = bandwidth_matrix(System::Aurora);
        assert_eq!(labels.len(), 12);
        assert_eq!(m.len(), 12);
        let mut mdfi = 0;
        let mut xelink = 0;
        for (i, row) in m.iter().enumerate() {
            for (j, bw) in row.iter().enumerate() {
                match bw {
                    None => assert_eq!(i, j),
                    Some(b) if (b / 1e9 - 197.0).abs() < 2.0 => mdfi += 1,
                    Some(b) if (b / 1e9 - 15.0).abs() < 1.0 => xelink += 1,
                    Some(b) => panic!("unexpected class {b:e} at ({i},{j})"),
                }
            }
        }
        // 6 cards x 2 directions of MDFI; everything else Xe-Link.
        assert_eq!(mdfi, 12);
        assert_eq!(xelink, 12 * 11 - 12);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn matrix_is_symmetric_in_bandwidth() {
        let (_, m) = bandwidth_matrix(System::Dawn);
        for i in 0..m.len() {
            for j in 0..m.len() {
                match (m[i][j], m[j][i]) {
                    (Some(a), Some(b)) => assert!((a - b).abs() / b < 1e-9),
                    (None, None) => {}
                    _ => panic!("asymmetric presence at ({i},{j})"),
                }
            }
        }
    }

    #[test]
    fn render_marks_two_hop_routes() {
        let s = render_matrix(System::Aurora);
        assert!(s.contains('*'), "cross-plane routes must be marked:\n{s}");
        assert!(s.contains("197"));
        assert!(s.contains("15"));
    }
}

//! Paper-vs-measured experiment records — the data behind EXPERIMENTS.md.

use crate::tables;
use pvc_core::json::{Json, ToJson};

/// One compared cell.
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Paper element ("Table II", …).
    pub element: &'static str,
    /// Row label.
    pub row: String,
    /// Column label.
    pub column: String,
    /// The paper's value (SI units), if printed.
    pub published: Option<f64>,
    /// Our simulated value (SI units), if modelled.
    pub simulated: Option<f64>,
    /// Relative error where both exist.
    pub rel_err: Option<f64>,
}

const T2_COLS: [&str; 6] = [
    "Aurora 1 Stack",
    "Aurora 1 PVC",
    "Aurora 6 PVC",
    "Dawn 1 Stack",
    "Dawn 1 PVC",
    "Dawn 4 PVC",
];
const T3_COLS: [&str; 4] = [
    "Aurora 1 pair",
    "Aurora 6 pairs",
    "Dawn 1 pair",
    "Dawn 4 pairs",
];
const T6_COLS: [&str; 10] = [
    "Aurora 1 Stack",
    "Aurora 1 GPU",
    "Aurora node",
    "Dawn 1 Stack",
    "Dawn 1 GPU",
    "Dawn node",
    "H100 1 GPU",
    "H100 node",
    "MI250 1 GCD",
    "MI250 node",
];

/// Collects every compared cell of Tables II, III and VI.
pub fn collect() -> Vec<ExperimentRecord> {
    let mut out = Vec::new();
    for (element, rows, cols) in [
        ("Table II", tables::table2(), &T2_COLS[..]),
        ("Table III", tables::table3(), &T3_COLS[..]),
        ("Table VI", tables::table6(), &T6_COLS[..]),
    ] {
        for row in rows {
            for (cell, col) in row.cells.iter().zip(cols.iter()) {
                out.push(ExperimentRecord {
                    element,
                    row: row.label.clone(),
                    column: col.to_string(),
                    published: cell.published,
                    simulated: cell.simulated,
                    rel_err: cell.rel_err(),
                });
            }
        }
    }
    out
}

/// Markdown report of every compared cell (the EXPERIMENTS.md body).
pub fn markdown() -> String {
    let records = collect();
    let mut out = String::new();
    out.push_str("| Element | Row | Column | Paper | Simulated | Rel. err |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for r in &records {
        let fmt = |v: Option<f64>| match v {
            Some(x) if x.abs() >= 1e9 => format!("{:.3e}", x),
            Some(x) => format!("{x:.3}"),
            None => "—".to_string(),
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.element,
            r.row,
            r.column,
            fmt(r.published),
            fmt(r.simulated),
            r.rel_err
                .map(|e| format!("{:.1}%", e * 100.0))
                .unwrap_or_else(|| "—".to_string()),
        ));
    }
    let compared: Vec<&ExperimentRecord> = records.iter().filter(|r| r.rel_err.is_some()).collect();
    let max = compared
        .iter()
        .filter_map(|r| r.rel_err)
        .fold(0.0f64, f64::max);
    let mean = compared.iter().filter_map(|r| r.rel_err).sum::<f64>() / compared.len() as f64;
    out.push_str(&format!(
        "\n{} compared cells; mean relative error {:.1}%, max {:.1}%.\n",
        compared.len(),
        mean * 100.0,
        max * 100.0
    ));
    out
}

impl ToJson for ExperimentRecord {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("element", Json::str(self.element)),
            ("row", Json::str(self.row.clone())),
            ("column", Json::str(self.column.clone())),
            ("published", self.published.to_json()),
            ("simulated", self.simulated.to_json()),
            ("rel_err", self.rel_err.to_json()),
        ])
    }
}

/// JSON dump of the records.
pub fn json() -> String {
    collect().to_json().pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_all_three_tables() {
        let r = collect();
        assert_eq!(
            r.len(),
            14 * 6 + 4 * 4 + 6 * 10,
            "every cell of Tables II, III, VI"
        );
    }

    #[test]
    fn every_compared_cell_is_within_eight_percent() {
        for r in collect() {
            if let Some(e) = r.rel_err {
                assert!(
                    e < 0.08,
                    "{} / {} / {}: {:.1}%",
                    r.element,
                    r.row,
                    r.column,
                    e * 100.0
                );
            }
        }
    }

    #[test]
    fn markdown_and_json_render() {
        let md = markdown();
        assert!(md.contains("| Table II |"));
        assert!(md.contains("compared cells"));
        let js = json();
        assert!(js.contains("\"element\""));
    }
}

//! The report-layer view of the scenario registry: the standard grid
//! from `pvc-scenario` plus the figure-render pipeline, which lives up
//! here because it draws on the report's renderers.

use pvc_arch::System;
use pvc_scenario::{Ctx, Fom, FomKind, Outcome, Params, Registry, Scenario, ScenarioId, Workload};
use std::sync::OnceLock;

/// The Figures 2–4 render pipeline as a scenario: runs every bar chart
/// (tracing missing-FOM bars when recording) and reports the mean
/// Aurora-vs-Dawn ratio of Figure 2 as its headline.
struct FiguresScenario {
    system: System,
}

impl Scenario for FiguresScenario {
    fn id(&self) -> ScenarioId {
        ScenarioId::new(Workload::Figures, Params::None, self.system)
    }

    fn fom_kind(&self) -> FomKind {
        FomKind::Ratio
    }

    fn citation(&self) -> &'static str {
        "Figures 2-4, §V-A"
    }

    fn description(&self) -> &'static str {
        "figure renders, tracing bars with missing FOM sources"
    }

    fn profile_name(&self) -> Option<&'static str> {
        Some("figures")
    }

    fn run(&self, ctx: &mut Ctx) -> Outcome {
        let bars = ctx.observe(|| {
            crate::figdata::render_figure2_traced(&ctx.tracer);
            crate::figdata::render_figure3_traced(&ctx.tracer);
            crate::figdata::render_figure4_traced(&ctx.tracer);
            pvc_predict::figure2()
        });
        let measured: Vec<f64> = bars.iter().filter_map(|b| b.measured).collect();
        let mean = measured.iter().sum::<f64>() / measured.len().max(1) as f64;
        Outcome {
            id: self.id(),
            fom: Fom::Ratio(mean),
            detail: vec![
                ("figure2_bars", bars.len() as f64),
                ("figure2_measured", measured.len() as f64),
            ],
        }
    }
}

/// The process-wide registry every report frontend dispatches through:
/// tables, figures, profiles, the serve executor and the `reproduce`
/// CLI all resolve (workload, system) here.
pub fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| {
        let mut r = Registry::standard();
        for system in System::PVC {
            r.register(Box::new(FiguresScenario { system }));
        }
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_registry_extends_the_standard_grid() {
        let r = registry();
        assert_eq!(r.len(), Registry::standard().len() + 2);
        assert!(r.get("figures", System::Aurora).is_ok());
        assert!(r.get("figures", System::JlseH100).is_err());
    }

    #[test]
    fn figures_headline_matches_the_paper_mean() {
        // Figure 2's bars sit near the 0.88 peak-ratio expectation
        // (§V-A): Aurora's 56 Xe-Core stacks vs Dawn's 64.
        let out = registry().run("figures", System::Aurora).unwrap();
        assert!(matches!(out.fom, Fom::Ratio(_)));
        let v = out.fom.value();
        assert!((0.80..=1.0).contains(&v), "mean figure-2 ratio {v}");
    }

    #[test]
    fn profile_catalog_has_the_ten_workloads() {
        let names: Vec<&str> = registry()
            .profiles(System::Aurora)
            .iter()
            .map(|s| s.profile_name().unwrap())
            .collect();
        assert_eq!(names.len(), 10, "{names:?}");
        for want in [
            "pcie-h2d",
            "pcie-d2h",
            "pcie-bidir",
            "p2p-local",
            "p2p-remote",
            "allreduce",
            "peakflops",
            "cloverleaf",
            "miniqmc",
            "figures",
        ] {
            assert!(names.contains(&want), "{want} missing from {names:?}");
        }
    }
}

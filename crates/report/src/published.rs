//! The paper's printed values, verbatim — the baseline every simulated
//! cell is compared against in EXPERIMENTS.md.

/// A Table II row as printed: label, SI scale of the printed unit, and
/// the six columns (Aurora one-stack/one-PVC/six-PVC, Dawn
/// one-stack/one-PVC/four-PVC).
#[derive(Debug, Clone, Copy)]
pub struct TableIiRow {
    pub label: &'static str,
    /// Multiplier turning a printed number into SI (1e12 for TFlop/s,
    /// 1e9 for GB/s, 1e15 for PFlop/s — applied per cell below).
    pub aurora: [f64; 3],
    pub dawn: [f64; 3],
    /// SI scale per cell (the I8/HGEMM node columns switch to PFlop/s).
    pub scale: f64,
}

/// Table II exactly as printed (values in the table's units; `scale`
/// converts to SI).
pub const TABLE_II: [TableIiRow; 14] = [
    TableIiRow { label: "Double Precision Peak Flops", aurora: [17.0, 33.0, 195.0], dawn: [20.0, 37.0, 140.0], scale: 1e12 },
    TableIiRow { label: "Single Precision Peak Flops", aurora: [23.0, 45.0, 268.0], dawn: [26.0, 52.0, 207.0], scale: 1e12 },
    TableIiRow { label: "Memory Bandwidth (triad)", aurora: [1.0, 2.0, 12.0], dawn: [1.0, 2.0, 8.0], scale: 1e12 },
    TableIiRow { label: "PCIe Unidirectional Bandwidth (H2D)", aurora: [54.0, 55.0, 329.0], dawn: [53.0, 54.0, 218.0], scale: 1e9 },
    TableIiRow { label: "PCIe Unidirectional Bandwidth (D2H)", aurora: [53.0, 56.0, 264.0], dawn: [51.0, 53.0, 212.0], scale: 1e9 },
    TableIiRow { label: "PCIe Bidirectional Bandwidth", aurora: [76.0, 77.0, 350.0], dawn: [72.0, 72.0, 285.0], scale: 1e9 },
    TableIiRow { label: "DGEMM", aurora: [13.0, 26.0, 151.0], dawn: [17.0, 30.0, 120.0], scale: 1e12 },
    TableIiRow { label: "SGEMM", aurora: [21.0, 42.0, 242.0], dawn: [25.0, 48.0, 188.0], scale: 1e12 },
    TableIiRow { label: "HGEMM", aurora: [207.0, 411.0, 2300.0], dawn: [246.0, 509.0, 1900.0], scale: 1e12 },
    TableIiRow { label: "BF16GEMM", aurora: [216.0, 434.0, 2400.0], dawn: [254.0, 501.0, 2000.0], scale: 1e12 },
    TableIiRow { label: "TF32GEMM", aurora: [107.0, 208.0, 1200.0], dawn: [118.0, 200.0, 850.0], scale: 1e12 },
    TableIiRow { label: "I8GEMM", aurora: [448.0, 864.0, 5000.0], dawn: [525.0, 1100.0, 4100.0], scale: 1e12 },
    TableIiRow { label: "Single-precision FFT C2C 1D", aurora: [3.1, 5.9, 33.0], dawn: [3.6, 6.6, 26.0], scale: 1e12 },
    TableIiRow { label: "Single-precision FFT C2C 2D", aurora: [3.4, 6.0, 34.0], dawn: [3.6, 6.5, 25.0], scale: 1e12 },
];

/// A Table III row: label + Aurora (one pair, six pairs) + Dawn
/// (one pair, four pairs; `None` = printed dash). Values in GB/s.
#[derive(Debug, Clone, Copy)]
pub struct TableIiiRow {
    pub label: &'static str,
    pub aurora: [Option<f64>; 2],
    pub dawn: [Option<f64>; 2],
}

/// Table III exactly as printed.
pub const TABLE_III: [TableIiiRow; 4] = [
    TableIiiRow { label: "Local Stack Unidirectional Bandwidth", aurora: [Some(197.0), Some(1129.0)], dawn: [Some(196.0), Some(786.0)] },
    TableIiiRow { label: "Local Stack Bidirectional Bandwidth", aurora: [Some(284.0), Some(1661.0)], dawn: [Some(287.0), Some(1145.0)] },
    TableIiiRow { label: "Remote Stack Unidirectional Bandwidth", aurora: [Some(15.0), Some(95.0)], dawn: [None, None] },
    TableIiiRow { label: "Remote Stack Bidirectional Bandwidth", aurora: [Some(23.0), Some(142.0)], dawn: [None, None] },
];

/// A Table VI row: FOMs per system per level (`None` = printed dash).
/// Column order per system: One Stack / One GPU / node, except H100 and
/// MI250 which print two columns (their first is One GPU / One GCD).
#[derive(Debug, Clone, Copy)]
pub struct TableViRow {
    pub label: &'static str,
    pub aurora: [Option<f64>; 3],
    pub dawn: [Option<f64>; 3],
    /// (One GPU, Four GPU).
    pub h100: [Option<f64>; 2],
    /// (One GCD, Four GPU).
    pub mi250: [Option<f64>; 2],
}

/// Table VI exactly as printed.
pub const TABLE_VI: [TableViRow; 6] = [
    TableViRow {
        label: "miniBUDE",
        aurora: [Some(293.02), None, None],
        dawn: [Some(366.17), None, None],
        h100: [Some(638.40), None],
        mi250: [Some(193.66), None],
    },
    TableViRow {
        label: "CloverLeaf",
        aurora: [Some(20.82), Some(40.41), Some(240.89)],
        dawn: [Some(22.46), Some(41.92), Some(167.15)],
        h100: [Some(65.87), Some(261.37)],
        mi250: [Some(25.71), Some(192.68)],
    },
    TableViRow {
        label: "miniQMC",
        aurora: [Some(3.16), Some(5.39), Some(15.64)],
        dawn: [Some(3.72), Some(6.85), Some(16.28)],
        h100: [Some(3.89), Some(12.32)],
        mi250: [Some(0.50), Some(0.90)],
    },
    TableViRow {
        label: "mini-GAMESS",
        aurora: [Some(19.44), Some(38.50), Some(197.08)],
        dawn: [Some(24.57), Some(43.88), Some(164.71)],
        h100: [Some(49.30), Some(168.97)],
        mi250: [None, None],
    },
    TableViRow {
        label: "OpenMC",
        aurora: [None, None, Some(2039.0)],
        dawn: [None, None, None],
        h100: [None, Some(1191.0)],
        mi250: [None, Some(720.0)],
    },
    TableViRow {
        label: "HACC",
        aurora: [None, None, Some(13.81)],
        dawn: [None, None, Some(12.26)],
        h100: [None, Some(12.46)],
        mi250: [None, Some(10.70)],
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_has_fourteen_rows() {
        assert_eq!(TABLE_II.len(), 14);
        assert_eq!(TABLE_II[0].aurora[2], 195.0);
        assert_eq!(TABLE_II[13].dawn[2], 25.0);
    }

    #[test]
    fn table_iii_dawn_remote_is_dash() {
        assert!(TABLE_III[2].dawn[0].is_none());
        assert!(TABLE_III[3].dawn[1].is_none());
    }

    #[test]
    fn table_vi_dashes_match_print() {
        // mini-GAMESS on MI250 and OpenMC on Dawn are dashes.
        assert!(TABLE_VI[3].mi250[0].is_none());
        assert!(TABLE_VI[4].dawn[2].is_none());
        assert_eq!(TABLE_VI[5].aurora[2], Some(13.81));
    }
}

//! The HTTP/1.1 frontend routes: the catalog service behind a
//! zero-dependency [`pvc_serve::http`] server.
//!
//! One function, [`handle`], maps a parsed [`HttpRequest`] onto the
//! shared [`Dispatcher`] — the same dispatcher instance the stdin and
//! TCP frontends adapt, so every frontend shares one cache, one store
//! tier, one metrics registry:
//!
//! | route | maps to |
//! |---|---|
//! | `GET /` | endpoint index (text) |
//! | `GET /healthz` | liveness probe |
//! | `GET /metrics` | Prometheus exposition of the full registry |
//! | `GET /stats` | the reserved `{"kind":"stats"}` request |
//! | `POST /query` | one stdin-frontend line: a request object or an array batch; response bytes **identical** to the stdin frontend |
//! | `GET /table/<1-6>` | `{"kind":"table","id":N}` |
//! | `GET /figure/<1-4>` | `{"kind":"figure","id":N}` |
//! | `GET /ablation/<name>` | `{"kind":"ablation","name":…}` |
//! | `GET /run/<workload>/<system>` | `{"kind":"run",…}` |
//! | `GET /trace/<workload>/<system>` | Chrome-trace JSON from the deterministic profiler |
//! | `POST /shutdown` | the reserved `{"kind":"shutdown"}` request; stops the accept loop |
//!
//! Content negotiation (the `Accept` header) on the catalog routes:
//! `text/plain` unwraps the result's rendered `text` field, `text/csv`
//! its `csv` field, anything else answers the canonical JSON envelope.
//! `POST /query` always answers the raw frontend bytes (that route's
//! whole point is byte-identity with the stdin loop); the trace route
//! honours `application/x-chrome-trace`.

use crate::serve::CatalogExecutor;
use pvc_core::Json;
use pvc_serve::http::{After, HttpRequest, HttpResponse};
use pvc_serve::{Request, Service, ServeError, SHUTDOWN_KIND, STATS_KIND};

const CT_JSON: &str = "application/json";
const CT_TEXT: &str = "text/plain; charset=utf-8";
const CT_CSV: &str = "text/csv; charset=utf-8";
/// The Prometheus text exposition format version we emit.
const CT_METRICS: &str = "text/plain; version=0.0.4; charset=utf-8";
const CT_TRACE: &str = "application/x-chrome-trace";

/// The index served at `/`.
const INDEX: &str = "\
pvc-serve HTTP frontend — deterministic paper-catalog queries

  GET  /healthz                   liveness probe
  GET  /metrics                   Prometheus exposition (global + per-shard serve.* counters)
  GET  /stats                     full stats envelope (counters, gauges, quantiles, shards)
  POST /query                     one request object or array batch (stdin-frontend bytes)
  GET  /table/<1-6>               rendered paper table   (Accept: text/plain for raw text)
  GET  /figure/<1-4>              figure data            (figure 1 negotiates text/csv)
  GET  /ablation/<name>           governor|pcie|congestion|plane|scaling
  GET  /run/<workload>/<system>   one scenario outcome (JSON)
  GET  /trace/<workload>/<system> Chrome-trace JSON from the virtual-time profiler
  POST /shutdown                  graceful shutdown (drains, then stops accepting)
";

/// Routes one HTTP exchange onto the shared dispatcher. Pure with
/// respect to the connection: all state lives in `service`.
pub fn handle(
    service: &Service<CatalogExecutor>,
    req: &HttpRequest,
) -> (HttpResponse, After) {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => (HttpResponse::ok(CT_TEXT, INDEX.as_bytes().to_vec()), After::Continue),
        ("GET", ["healthz"]) => {
            (HttpResponse::ok(CT_TEXT, b"ok\n".to_vec()), After::Continue)
        }
        ("GET", ["metrics"]) => {
            let body = service.metrics().expose_text();
            (HttpResponse::ok(CT_METRICS, body.into_bytes()), After::Continue)
        }
        ("GET", ["stats"]) => {
            let line = format!("{{\"kind\":\"{STATS_KIND}\"}}");
            let envelope = service.handle_lines(&[&line]).remove(0);
            (json_line(&envelope), After::Continue)
        }
        ("POST", ["query"]) => (query(service, &req.body), After::Continue),
        ("POST", ["shutdown"]) => {
            let line = format!("{{\"kind\":\"{SHUTDOWN_KIND}\"}}");
            let envelope = service.handle_lines(&[&line]).remove(0);
            (json_line(&envelope), After::Shutdown)
        }
        ("GET", ["table", id]) => catalog(service, req, table_request("table", id)),
        ("GET", ["figure", id]) => catalog(service, req, table_request("figure", id)),
        ("GET", ["ablation", name]) => catalog(
            service,
            req,
            Ok(Json::obj(vec![
                ("kind", Json::str("ablation")),
                ("name", Json::str(*name)),
            ])),
        ),
        ("GET", ["run", workload, system]) => catalog(
            service,
            req,
            Ok(Json::obj(vec![
                ("kind", Json::str("run")),
                ("workload", Json::str(*workload)),
                ("system", Json::str(*system)),
            ])),
        ),
        ("GET", ["trace", workload, system]) => trace(req, workload, system),
        ("GET" | "POST" | "HEAD" | "PUT" | "DELETE", _) => {
            (HttpResponse::error(404, "no such route; GET / lists the endpoints"), After::Continue)
        }
        _ => (HttpResponse::error(405, "unsupported method"), After::Continue),
    }
}

/// A `{"kind":…,"id":N}` request document for the table/figure routes.
fn table_request(kind: &str, id: &str) -> Result<Json, String> {
    let id: i64 = id
        .parse()
        .map_err(|_| format!("{kind} id must be an integer, got '{id}'"))?;
    Ok(Json::obj(vec![
        ("kind", Json::str(kind)),
        ("id", Json::Int(id)),
    ]))
}

/// `POST /query`: the stdin frontend over HTTP. The body is exactly one
/// stdin line — a request object, or an array answered as one batch —
/// and the response body is exactly the line the stdin loop would print
/// (compact JSON + newline), so `cmp` against the pipe frontend passes.
fn query(service: &Service<CatalogExecutor>, body: &[u8]) -> HttpResponse {
    let Ok(text) = std::str::from_utf8(body) else {
        return HttpResponse::error(400, "query body must be UTF-8 JSON");
    };
    let line = text.trim();
    if line.is_empty() {
        return HttpResponse::error(400, "query body must hold a request object or array");
    }
    let reply = if line.starts_with('[') {
        let batch = match pvc_core::json::parse(line) {
            Ok(Json::Arr(items)) => items.into_iter().map(Request::from_json).collect(),
            Ok(_) => unreachable!("starts with '['"),
            Err(e) => vec![Err(ServeError::BadRequest(e.to_string()))],
        };
        Json::Arr(service.handle_batch(batch)).compact()
    } else {
        service.handle_lines(&[line]).remove(0).compact()
    };
    HttpResponse::ok(CT_JSON, format!("{reply}\n").into_bytes())
}

/// Serves one catalog request document through the dispatcher and
/// negotiates the representation from the `Accept` header.
fn catalog(
    service: &Service<CatalogExecutor>,
    http: &HttpRequest,
    doc: Result<Json, String>,
) -> (HttpResponse, After) {
    let doc = match doc {
        Ok(d) => d,
        Err(msg) => return (HttpResponse::error(400, &msg), After::Continue),
    };
    let envelope = service
        .handle_batch(vec![Request::from_json(doc)])
        .remove(0);
    let Some(result) = envelope.get("result") else {
        // The service rejected it (bad request, shed, over budget…):
        // surface the typed error envelope.
        return (
            HttpResponse {
                status: 400,
                content_type: CT_JSON.to_string(),
                body: format!("{}\n", envelope.compact()).into_bytes(),
            },
            After::Continue,
        );
    };
    let accept = http.accept();
    if accept.contains("text/csv") {
        if let Some(Json::Str(csv)) = result.get("csv") {
            return (HttpResponse::ok(CT_CSV, csv.clone().into_bytes()), After::Continue);
        }
    }
    if accept.contains("text/plain") {
        if let Some(Json::Str(text)) = result.get("text") {
            return (HttpResponse::ok(CT_TEXT, text.clone().into_bytes()), After::Continue);
        }
        if let Some(Json::Str(csv)) = result.get("csv") {
            return (HttpResponse::ok(CT_CSV, csv.clone().into_bytes()), After::Continue);
        }
    }
    (json_line(&envelope), After::Continue)
}

/// `GET /trace/<workload>/<system>`: the deterministic profiler's
/// Chrome-trace artifact. Served outside the dispatcher (the artifact
/// is a rendering, not a cacheable catalog result) but validated the
/// same way `reproduce profile` validates it.
fn trace(http: &HttpRequest, workload: &str, system: &str) -> (HttpResponse, After) {
    let system: pvc_arch::System = match system.parse() {
        Ok(s) => s,
        Err(e) => return (HttpResponse::error(400, &format!("{e}")), After::Continue),
    };
    let artifact = match crate::profile::run(workload, system) {
        Ok(a) => a,
        Err(e) => return (HttpResponse::error(400, &format!("{e}")), After::Continue),
    };
    if let Err(e) = artifact.validate() {
        return (HttpResponse::error(500, &e), After::Continue);
    }
    let ct = if http.accept().contains(CT_TRACE) { CT_TRACE } else { CT_JSON };
    (HttpResponse::ok(ct, artifact.trace_json.into_bytes()), After::Continue)
}

/// A canonical-envelope JSON response line (stdin-frontend framing).
fn json_line(envelope: &Json) -> HttpResponse {
    HttpResponse::ok(CT_JSON, format!("{}\n", envelope.compact()).into_bytes())
}

//! Figure data: the Figure 1 latency series (CSV-ready) and the
//! Figures 2–4 bar charts (text rendering).

use crate::render::{opt, TextTable};
use pvc_memsim::LatsConfig;
use pvc_microbench::latsbench;
use pvc_miniapps::ScaleLevel;
use pvc_obs::{Layer, Tracer};
use pvc_predict::{figure2, figure3, figure4, FigureBar};

/// Figure 1 as CSV: `footprint_bytes` then one cycles column per system.
pub fn figure1_csv(cfg: &LatsConfig) -> String {
    let series = latsbench::figure1(cfg);
    let mut out = String::from("footprint_bytes");
    for s in &series {
        out.push_str(&format!(",{}", s.label.replace(' ', "_")));
    }
    out.push('\n');
    let npoints = series[0].points.len();
    for i in 0..npoints {
        out.push_str(&series[0].points[i].footprint_bytes.to_string());
        for s in &series {
            out.push_str(&format!(",{:.1}", s.points[i].cycles));
        }
        out.push('\n');
    }
    out
}

fn level_tag(level: ScaleLevel) -> &'static str {
    match level {
        ScaleLevel::OneStack => "1 Stack",
        ScaleLevel::OneGpu => "1 GPU",
        ScaleLevel::FullNode => "Node",
    }
}

/// Accounts for bars with no FOM source instead of letting them vanish
/// silently: one stderr summary line per affected figure, plus (when
/// `tracer` records) a report-lane `figure.missing_fom` instant per
/// missing bar so profiles show exactly which cells are dashes and why.
/// Returns the number of missing bars.
pub fn report_missing_foms(figure: &str, bars: &[FigureBar], tracer: &Tracer) -> usize {
    let missing: Vec<&FigureBar> = bars.iter().filter(|b| b.measured.is_none()).collect();
    if missing.is_empty() {
        return 0;
    }
    eprintln!(
        "warning: {figure}: {} of {} bars have no FOM source (printed as '-')",
        missing.len(),
        bars.len()
    );
    if tracer.enabled() {
        for (i, b) in missing.iter().enumerate() {
            tracer.instant(
                Layer::Report,
                "figure.missing_fom",
                i as f64,
                vec![
                    ("figure", figure.into()),
                    ("app", b.app.label().into()),
                    ("system", b.system.label().into()),
                    ("level", level_tag(b.level).into()),
                ],
            );
        }
    }
    missing.len()
}

fn render_bars(title: &str, bars: &[FigureBar], tracer: &Tracer) -> String {
    report_missing_foms(title, bars, tracer);
    let mut t = TextTable::new(title).header(vec![
        "Mini-app".into(),
        "System".into(),
        "Level".into(),
        "Measured ratio".into(),
        "Expected (black bar)".into(),
    ]);
    for b in bars {
        t.push_row(vec![
            b.app.label().into(),
            b.system.label().into(),
            level_tag(b.level).into(),
            opt(b.measured, 2),
            opt(b.expected, 2),
        ]);
    }
    t.render()
}

/// ASCII bar chart of a relative-performance figure: one `█`-bar per
/// measured ratio with a `|` marker at the expected (black-bar) value —
/// the closest a terminal gets to the paper's Figures 2–4.
pub fn render_bars_ascii(title: &str, bars: &[FigureBar], unity_note: &str) -> String {
    report_missing_foms(title, bars, &Tracer::disabled());
    let max = bars
        .iter()
        .filter_map(|b| b.measured)
        .fold(1.0f64, f64::max);
    let width = 48usize;
    let scale = width as f64 / max;
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<38} {:>6}  {}\n",
        "", "ratio", "0"
    ));
    for b in bars {
        let label = format!(
            "{} / {} / {}",
            b.app.label(),
            b.system.label().split(' ').next().unwrap_or(""),
            level_tag(b.level)
        );
        match b.measured {
            Some(m) => {
                let mut row: Vec<char> = vec![' '; width + 1];
                let fill = ((m * scale) as usize).min(width);
                for c in row.iter_mut().take(fill) {
                    *c = '█';
                }
                if let Some(e) = b.expected {
                    let pos = ((e * scale) as usize).min(width);
                    row[pos] = '|';
                }
                // Unity marker for orientation.
                let one = ((1.0 * scale) as usize).min(width);
                if row[one] == ' ' {
                    row[one] = '·';
                }
                out.push_str(&format!(
                    "{label:<38} {m:>6.2}  {}\n",
                    row.into_iter().collect::<String>()
                ));
            }
            None => out.push_str(&format!("{label:<38} {:>6}\n", "-")),
        }
    }
    out.push_str(&format!(
        "(█ measured ratio, | expected/black bar, · = 1.0; {unity_note})\n"
    ));
    out
}

/// Renders Figure 2's data.
pub fn render_figure2() -> String {
    render_figure2_traced(&Tracer::disabled())
}

/// Renders Figure 3's data.
pub fn render_figure3() -> String {
    render_figure3_traced(&Tracer::disabled())
}

/// Renders Figure 4's data.
pub fn render_figure4() -> String {
    render_figure4_traced(&Tracer::disabled())
}

/// [`render_figure2`] with missing-FOM instants recorded into `tracer`.
pub fn render_figure2_traced(tracer: &Tracer) -> String {
    render_bars(
        "Figure 2: FOMs on Aurora relative to Dawn (simulated)",
        &figure2(),
        tracer,
    )
}

/// [`render_figure3`] with missing-FOM instants recorded into `tracer`.
pub fn render_figure3_traced(tracer: &Tracer) -> String {
    render_bars(
        "Figure 3: FOMs on Aurora and Dawn relative to JLSE-H100 (simulated)",
        &figure3(),
        tracer,
    )
}

/// [`render_figure4`] with missing-FOM instants recorded into `tracer`.
pub fn render_figure4_traced(tracer: &Tracer) -> String {
    render_bars(
        "Figure 4: FOMs on Aurora and Dawn relative to JLSE-MI250 (simulated)",
        &figure4(),
        tracer,
    )
}

/// Renders all three relative-performance figures as ASCII bar charts.
pub fn render_figures_ascii() -> String {
    let mut out = String::new();
    out.push_str(&render_bars_ascii(
        "Figure 2 (chart): Aurora relative to Dawn",
        &figure2(),
        "bars near 1.0 = parity with Dawn",
    ));
    out.push('\n');
    out.push_str(&render_bars_ascii(
        "Figure 3 (chart): Aurora and Dawn relative to JLSE-H100",
        &figure3(),
        "bars near 1.0 = parity with one H100",
    ));
    out.push('\n');
    out.push_str(&render_bars_ascii(
        "Figure 4 (chart): Aurora and Dawn relative to JLSE-MI250",
        &figure4(),
        "bars near 1.0 = parity with MI250",
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> LatsConfig {
        LatsConfig {
            min_bytes: 64 * 1024,
            max_bytes: 16 << 20,
            points_per_octave: 1,
            steps: 1 << 12,
        }
    }

    #[test]
    fn figure1_csv_has_four_series() {
        let csv = figure1_csv(&quick_cfg());
        let header = csv.lines().next().unwrap();
        assert_eq!(header.split(',').count(), 5);
        assert!(csv.lines().count() > 5);
    }

    #[test]
    fn ascii_charts_render_with_markers() {
        let s = render_figures_ascii();
        assert!(s.contains('█'), "measured bars drawn");
        assert!(s.contains('|'), "expected markers drawn");
        assert!(s.contains("Figure 4 (chart)"));
    }

    #[test]
    fn missing_fom_bars_are_reported_not_dropped() {
        use pvc_predict::AppKind;
        use pvc_arch::System;
        let bars = vec![
            FigureBar {
                app: AppKind::MiniQmc,
                system: System::Aurora,
                level: ScaleLevel::OneStack,
                measured: None,
                expected: None,
            },
            FigureBar {
                app: AppKind::MiniBude,
                system: System::Aurora,
                level: ScaleLevel::OneStack,
                measured: Some(1.0),
                expected: Some(1.0),
            },
        ];
        let tracer = Tracer::recording();
        assert_eq!(report_missing_foms("test figure", &bars, &tracer), 1);
        let recs = tracer.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].layer(), Layer::Report);
        assert_eq!(recs[0].name(), "figure.missing_fom");
        // Fully-populated figures stay silent.
        let t2 = Tracer::recording();
        assert_eq!(report_missing_foms("ok figure", &bars[1..], &t2), 0);
        assert!(t2.records().is_empty());
    }

    #[test]
    fn figure_renders_contain_expected_anchors() {
        let f2 = render_figure2();
        assert!(f2.contains("miniBUDE"));
        assert!(f2.contains("0.88") || f2.contains("0.87") || f2.contains("0.89"));
        let f3 = render_figure3();
        assert!(f3.contains("JLSE-H100") || f3.contains("Aurora"));
        let f4 = render_figure4();
        assert!(f4.contains("mini-GAMESS"));
    }
}

//! Builders assembling each paper table from the simulation crates.

use crate::published;
use crate::render::{opt, TextTable};
use crate::scenarios::registry;
use pvc_arch::{Precision, System};
use pvc_memsim::roofline;
use pvc_miniapps::ScaleLevel;
use pvc_scenario::{precision_tag, Outcome, Workload};

/// A (simulated, published) cell pair; published `None` = printed dash.
#[derive(Debug, Clone, Copy)]
pub struct CellPair {
    pub simulated: Option<f64>,
    pub published: Option<f64>,
}

impl CellPair {
    /// Relative error where both sides exist.
    pub fn rel_err(&self) -> Option<f64> {
        match (self.simulated, self.published) {
            (Some(s), Some(p)) if p != 0.0 => Some((s - p).abs() / p.abs()),
            _ => None,
        }
    }
}

/// One labelled row of simulated-vs-published cells.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    pub label: String,
    /// Column labels (shared per table).
    pub cells: Vec<CellPair>,
}

// ---------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------

/// The 14 workload slugs of Table II, row order.
fn table2_slugs() -> Vec<String> {
    let mut slugs = vec![
        "peakflops-fp64".to_string(),
        "peakflops-fp32".to_string(),
        "stream-triad".to_string(),
        "pcie-h2d".to_string(),
        "pcie-d2h".to_string(),
        "pcie-bidir".to_string(),
    ];
    slugs.extend(
        Precision::GEMM_ORDER
            .iter()
            .map(|p| format!("gemm-{}", precision_tag(*p))),
    );
    slugs.push("fft-1d".to_string());
    slugs.push("fft-2d".to_string());
    slugs
}

/// Simulated Table II in SI units: the 14 rows × 6 columns, every cell
/// pulled through the scenario registry's scaling-triplet detail.
///
/// Rows are independent deterministic simulations, so they fan out over
/// [`pvc_core::par`]; `map_collect` merges in index order, keeping the
/// rendered table byte-identical to a sequential build.
pub fn table2() -> Vec<ComparisonRow> {
    let tri = |slug: &str, sys: System| -> [f64; 3] {
        let out = registry()
            .run(slug, sys)
            .unwrap_or_else(|e| panic!("Table II scenario {slug}: {e}"));
        ["one_stack", "one_pvc", "full_node"]
            .map(|k| out.detail(k).unwrap_or_else(|| panic!("{slug} lacks {k}")))
    };
    let slugs = table2_slugs();
    pvc_core::par::map_collect(slugs.len(), |i| {
        let slug = &slugs[i];
        let p = &published::TABLE_II[i];
        let a = tri(slug, System::Aurora);
        let d = tri(slug, System::Dawn);
        let cells = a
            .iter()
            .zip(p.aurora.iter())
            .chain(d.iter().zip(p.dawn.iter()))
            .map(|(&s, &pv)| CellPair {
                simulated: Some(s),
                published: Some(pv * p.scale),
            })
            .collect();
        ComparisonRow {
            label: p.label.to_string(),
            cells,
        }
    })
}

/// Renders Table II with simulated values in the paper's units.
pub fn render_table2() -> String {
    let mut t = TextTable::new("Table II: Microbenchmark Results except Point to Point (simulated | published)").header(
        vec![
            "".into(),
            "Aurora 1 Stack".into(),
            "Aurora 1 PVC".into(),
            "Aurora 6 PVC".into(),
            "Dawn 1 Stack".into(),
            "Dawn 1 PVC".into(),
            "Dawn 4 PVC".into(),
        ],
    );
    for (row, p) in table2().iter().zip(published::TABLE_II.iter()) {
        let cells = row
            .cells
            .iter()
            .map(|c| {
                format!(
                    "{} | {}",
                    opt(c.simulated.map(|v| v / p.scale), 1),
                    opt(c.published.map(|v| v / p.scale), 1)
                )
            })
            .collect::<Vec<_>>();
        let mut all = vec![row.label.clone()];
        all.extend(cells);
        t.push_row(all);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------

/// Simulated Table III (SI units): the four p2p rows, each read off the
/// registry outcome of the `p2p-local` / `p2p-remote` scenarios.
pub fn table3() -> Vec<ComparisonRow> {
    let p2p = |slug: &str, sys: System| -> Outcome {
        registry()
            .run(slug, sys)
            .unwrap_or_else(|e| panic!("Table III scenario {slug}: {e}"))
    };
    // Four independent runs, fanned out and merged in index order.
    // Dawn remote rows are dashes in the paper; the model can produce
    // values but the comparison keeps the dash.
    let runs = [
        ("p2p-local", System::Aurora),
        ("p2p-remote", System::Aurora),
        ("p2p-local", System::Dawn),
        ("p2p-remote", System::Dawn),
    ];
    let mut outs = pvc_core::par::map_collect(runs.len(), |i| p2p(runs[i].0, runs[i].1));
    let d_remote = outs.pop().expect("four p2p outcomes");
    let d_local = outs.pop().expect("four p2p outcomes");
    let a_remote = outs.pop().expect("four p2p outcomes");
    let a_local = outs.pop().expect("four p2p outcomes");

    let make = |a: &Outcome, d: &Outcome, key: &str, idx: usize| {
        let all_key = match key {
            "one_pair_uni" => "all_pairs_uni",
            _ => "all_pairs_bidi",
        };
        let p = &published::TABLE_III[idx];
        ComparisonRow {
            label: p.label.to_string(),
            cells: vec![
                CellPair { simulated: a.detail(key), published: p.aurora[0].map(|v| v * 1e9) },
                CellPair { simulated: a.detail(all_key), published: p.aurora[1].map(|v| v * 1e9) },
                CellPair { simulated: d.detail(key), published: p.dawn[0].map(|v| v * 1e9) },
                CellPair { simulated: d.detail(all_key), published: p.dawn[1].map(|v| v * 1e9) },
            ],
        }
    };

    vec![
        make(&a_local, &d_local, "one_pair_uni", 0),
        make(&a_local, &d_local, "one_pair_bidi", 1),
        make(&a_remote, &d_remote, "one_pair_uni", 2),
        make(&a_remote, &d_remote, "one_pair_bidi", 3),
    ]
}

/// Renders Table III in GB/s.
pub fn render_table3() -> String {
    let mut t = TextTable::new(
        "Table III: Stack to Stack Point to Point (GB/s, simulated | published)",
    )
    .header(vec![
        "".into(),
        "Aurora 1 pair".into(),
        "Aurora 6 pairs".into(),
        "Dawn 1 pair".into(),
        "Dawn 4 pairs".into(),
    ]);
    for row in table3() {
        let mut cells = vec![row.label.clone()];
        cells.extend(row.cells.iter().map(|c| {
            format!(
                "{} | {}",
                opt(c.simulated.map(|v| v / 1e9), 0),
                opt(c.published.map(|v| v / 1e9), 0)
            )
        }));
        t.push_row(cells);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------

/// Renders Table IV (reference data).
pub fn render_table4() -> String {
    use pvc_arch::reference::TABLE_IV;
    let mut t = TextTable::new("Table IV: Reference characteristics (as published)").header(vec![
        "".into(),
        "H100".into(),
        "MI250".into(),
        "1x GCD MI250x".into(),
    ]);
    let row = |label: &str, f: &dyn Fn(&pvc_arch::reference::ReferenceSpec) -> Option<f64>, scale: f64, digits: usize| {
        let mut cells = vec![label.to_string()];
        for spec in &TABLE_IV {
            cells.push(opt(f(spec).map(|v| v / scale), digits));
        }
        cells
    };
    t.push_row(row("FP32 peak (TFlop/s)", &|s| s.fp32_peak, 1e12, 1));
    t.push_row(row("FP64 peak (TFlop/s)", &|s| s.fp64_peak, 1e12, 1));
    t.push_row(row("SGEMM (TFlop/s)", &|s| s.sgemm, 1e12, 1));
    t.push_row(row("DGEMM (TFlop/s)", &|s| s.dgemm, 1e12, 1));
    t.push_row(row("Memory BW (TB/s)", &|s| s.mem_bw, 1e12, 2));
    t.push_row(row("PCIe BW (GB/s)", &|s| s.pcie_bw, 1e9, 1));
    t.push_row(row("GCD to GCD (GB/s)", &|s| s.gcd_to_gcd, 1e9, 1));
    t.render()
}

// ---------------------------------------------------------------------
// Table VI
// ---------------------------------------------------------------------

/// The six app workload families of Table VI, row order.
const TABLE6_APPS: [Workload; 6] = [
    Workload::MiniBude,
    Workload::CloverLeaf,
    Workload::MiniQmc,
    Workload::MiniGamess,
    Workload::OpenMc,
    Workload::Hacc,
];

/// The outcome-detail key holding an app FOM at a scaling level.
fn level_key(level: ScaleLevel) -> &'static str {
    match level {
        ScaleLevel::OneStack => "stack",
        ScaleLevel::OneGpu => "gpu",
        ScaleLevel::FullNode => "node",
    }
}

/// Simulated Table VI paired with the published FOMs. Ten columns as
/// printed: Aurora ×3, Dawn ×3, H100 ×2, MI250 ×2. Every cell comes
/// from an app scenario's per-level detail; a missing detail key or an
/// unregistered pair (mini-GAMESS on MI250) prints as a dash, matching
/// the paper.
pub fn table6() -> Vec<ComparisonRow> {
    // One row (app family × 4 systems) per worker, merged in index order.
    pvc_core::par::map_collect(TABLE6_APPS.len(), |i| {
        let (app, p) = (TABLE6_APPS[i], &published::TABLE_VI[i]);
        {
            let mut cells = Vec::new();
            for (sys, levels, pubs) in [
                (
                    System::Aurora,
                    &ScaleLevel::ALL[..],
                    &p.aurora[..],
                ),
                (System::Dawn, &ScaleLevel::ALL[..], &p.dawn[..]),
                (
                    System::JlseH100,
                    &[ScaleLevel::OneGpu, ScaleLevel::FullNode][..],
                    &p.h100[..],
                ),
                (
                    System::JlseMi250,
                    &[ScaleLevel::OneStack, ScaleLevel::FullNode][..],
                    &p.mi250[..],
                ),
            ] {
                let out = registry().run(app.family(), sys).ok();
                for (level, pv) in levels.iter().zip(pubs.iter()) {
                    cells.push(CellPair {
                        simulated: out.as_ref().and_then(|o| o.detail(level_key(*level))),
                        published: *pv,
                    });
                }
            }
            ComparisonRow {
                label: p.label.to_string(),
                cells,
            }
        }
    })
}

/// Renders Table VI.
pub fn render_table6() -> String {
    let mut t = TextTable::new("Table VI: Mini-App and Application FOMs (simulated | published)")
        .header(vec![
            "".into(),
            "Aurora 1S".into(),
            "Aurora 1G".into(),
            "Aurora 6G".into(),
            "Dawn 1S".into(),
            "Dawn 1G".into(),
            "Dawn 4G".into(),
            "H100 1G".into(),
            "H100 4G".into(),
            "MI250 1GCD".into(),
            "MI250 4G".into(),
        ]);
    for row in table6() {
        let mut cells = vec![row.label.clone()];
        cells.extend(row.cells.iter().map(|c| {
            format!("{} | {}", opt(c.simulated, 2), opt(c.published, 2))
        }));
        t.push_row(cells);
    }
    t.render()
}

/// Renders Table I (catalogue).
pub fn render_table1() -> String {
    let mut t = TextTable::new("Table I: Summary of microbenchmarks").header(vec![
        "Benchmark".into(),
        "Programming Model".into(),
        "Description".into(),
    ]);
    for e in pvc_microbench::catalog::TABLE_I {
        t.push_row(vec![
            e.name.into(),
            e.programming_model.into(),
            e.description.into(),
        ]);
    }
    t.render()
}

/// Renders Table V (app catalogue).
pub fn render_table5() -> String {
    let mut t = TextTable::new("Table V: Mini-App and Application Descriptions").header(vec![
        "Name".into(),
        "Domain".into(),
        "Language".into(),
        "Models".into(),
        "Scaling".into(),
        "FOM".into(),
    ]);
    for a in pvc_miniapps::catalog::table_v() {
        t.push_row(vec![
            a.name.into(),
            a.science_domain.into(),
            a.language.into(),
            a.programming_models.into(),
            format!("{:?}", a.scaling),
            a.fom_definition.into(),
        ]);
    }
    t.render()
}

/// Roofline summary used in examples/docs (not a paper element, but a
/// useful derived view).
pub fn render_rooflines() -> String {
    let mut t = TextTable::new("Roofline ridge points (FP64, one partition)").header(vec![
        "System".into(),
        "Peak TFlop/s".into(),
        "Stream TB/s".into(),
        "Ridge flop/byte".into(),
    ]);
    for sys in System::ALL {
        let gpu = sys.node().gpu;
        let peak = gpu.peak_per_partition(Precision::Fp64, 1);
        let bw = gpu.stream_bandwidth_per_partition();
        let ridge = roofline::ridge_point(&gpu, Precision::Fp64, 1);
        t.push_row(vec![
            sys.label().into(),
            format!("{:.1}", peak / 1e12),
            format!("{:.2}", bw / 1e12),
            format!("{ridge:.1}"),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_all_cells_within_five_percent() {
        for row in table2() {
            for (i, cell) in row.cells.iter().enumerate() {
                let err = cell.rel_err().expect("Table II has no dashes");
                assert!(
                    err < 0.05,
                    "{} col {}: sim {:?} vs pub {:?} ({:.1}%)",
                    row.label,
                    i,
                    cell.simulated,
                    cell.published,
                    err * 100.0
                );
            }
        }
    }

    #[test]
    fn table3_published_cells_within_eight_percent() {
        for row in table3() {
            for cell in &row.cells {
                if let Some(err) = cell.rel_err() {
                    assert!(err < 0.08, "{}: {err:.3}", row.label);
                }
            }
        }
    }

    #[test]
    fn table6_published_cells_within_six_percent() {
        for row in table6() {
            for (i, cell) in row.cells.iter().enumerate() {
                if let Some(err) = cell.rel_err() {
                    assert!(
                        err < 0.06,
                        "{} col {}: sim {:?} vs pub {:?}",
                        row.label,
                        i,
                        cell.simulated,
                        cell.published
                    );
                }
            }
        }
    }

    #[test]
    fn table6_dashes_align_with_print() {
        let rows = table6();
        // mini-GAMESS MI250 columns (8, 9) are printed dashes.
        assert!(rows[3].cells[8].published.is_none());
        assert!(rows[3].cells[8].simulated.is_none());
    }

    #[test]
    fn renders_are_nonempty_and_contain_anchors() {
        assert!(render_table1().contains("Lats"));
        assert!(render_table2().contains("DGEMM"));
        assert!(render_table3().contains("Remote Stack"));
        assert!(render_table4().contains("MI250x"));
        assert!(render_table5().contains("Cosmology"));
        assert!(render_table6().contains("OpenMC"));
        assert!(render_rooflines().contains("Ridge"));
    }
}

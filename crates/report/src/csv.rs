//! CSV emitters: machine-readable artifacts for every numeric table,
//! suitable for plotting Figure 1 and re-deriving Figures 2–4 exactly
//! as the paper's artifact appendix describes.

use crate::tables::{table2, table3, table6, ComparisonRow};
use pvc_memsim::LatsConfig;

fn rows_to_csv(header: &[&str], rows: &[ComparisonRow]) -> String {
    let mut out = String::from("row");
    for h in header {
        out.push_str(&format!(",{h}_simulated,{h}_published"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&row.label.replace(',', ";"));
        for cell in &row.cells {
            let fmt = |v: Option<f64>| v.map(|x| format!("{x:e}")).unwrap_or_default();
            out.push_str(&format!(",{},{}", fmt(cell.simulated), fmt(cell.published)));
        }
        out.push('\n');
    }
    out
}

/// Table II as CSV (SI units).
pub fn table2_csv() -> String {
    rows_to_csv(
        &[
            "aurora_1stack",
            "aurora_1pvc",
            "aurora_node",
            "dawn_1stack",
            "dawn_1pvc",
            "dawn_node",
        ],
        &table2(),
    )
}

/// Table III as CSV (SI units).
pub fn table3_csv() -> String {
    rows_to_csv(
        &["aurora_1pair", "aurora_allpairs", "dawn_1pair", "dawn_allpairs"],
        &table3(),
    )
}

/// Table VI as CSV.
pub fn table6_csv() -> String {
    rows_to_csv(
        &[
            "aurora_1stack",
            "aurora_1gpu",
            "aurora_node",
            "dawn_1stack",
            "dawn_1gpu",
            "dawn_node",
            "h100_1gpu",
            "h100_node",
            "mi250_1gcd",
            "mi250_node",
        ],
        &table6(),
    )
}

/// Writes every CSV artifact (tables II/III/VI + Figure 1) into `dir`;
/// returns the written paths.
pub fn write_artifacts(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let fig1 = crate::figdata::figure1_csv(&LatsConfig {
        min_bytes: 64 * 1024,
        max_bytes: 1 << 30,
        points_per_octave: 2,
        steps: 1 << 13,
    });
    let files = [
        ("table2.csv", table2_csv()),
        ("table3.csv", table3_csv()),
        ("table6.csv", table6_csv()),
        ("figure1.csv", fig1),
    ];
    let mut written = Vec::new();
    for (name, contents) in files {
        let path = dir.join(name);
        std::fs::write(&path, contents)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_csvs_have_expected_shape() {
        let t2 = table2_csv();
        let lines: Vec<&str> = t2.lines().collect();
        assert_eq!(lines.len(), 15, "header + 14 rows");
        assert_eq!(lines[0].split(',').count(), 13, "row + 6 x 2 columns");
        let t6 = table6_csv();
        assert_eq!(t6.lines().count(), 7);
        // Dashes are empty fields.
        assert!(t6.contains(",,"));
    }

    #[test]
    fn artifacts_written_to_disk() {
        let dir = std::env::temp_dir().join("pvc_csv_artifacts_test");
        let _ = std::fs::remove_dir_all(&dir);
        let written = write_artifacts(&dir).expect("write artifacts");
        assert_eq!(written.len(), 4);
        for p in &written {
            let meta = std::fs::metadata(p).expect("file exists");
            assert!(meta.len() > 100, "{p:?} is non-trivial");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

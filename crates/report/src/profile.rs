//! `reproduce profile <workload>` — deterministic virtual-time profiles.
//!
//! Runs one registered scenario with the [`pvc_obs`] tracer attached and
//! packages the result as a [`ProfileArtifact`]: a Chrome-trace JSON
//! document (loadable in Perfetto / `chrome://tracing`), a top-N "where
//! did the (virtual) time go" table, and a plain-text metrics summary.
//! All timestamps are virtual simulation time, so two runs of the same
//! workload produce byte-identical artifacts.
//!
//! The workload catalog is no longer a hand-maintained list: it is the
//! set of scenarios in [`crate::scenarios::registry`] that declare a
//! profile name.

use crate::scenarios::registry;
use pvc_arch::System;
use pvc_obs::{chrome_trace_json, span_totals, top_table, Layer, Metrics, Tracer};
use pvc_scenario::{Ctx, ScenarioError};

/// Workloads `reproduce profile` accepts, with one-line descriptions —
/// derived from the registry (every scenario with a profile name on
/// `system`).
pub fn workloads(system: System) -> Vec<(&'static str, &'static str)> {
    registry()
        .profiles(system)
        .iter()
        .map(|s| (s.profile_name().expect("profile scenario"), s.description()))
        .collect()
}

/// The rendered outputs of one profile run.
#[derive(Debug, Clone)]
pub struct ProfileArtifact {
    pub workload: String,
    /// Chrome `trace_event` JSON (pretty-printed, trailing newline).
    pub trace_json: String,
    /// Top-N span table.
    pub top: String,
    /// Metrics registry summary.
    pub summary: String,
}

/// Runs `workload` on `system` under a recording tracer.
pub fn run(workload: &str, system: System) -> Result<ProfileArtifact, ScenarioError> {
    let scenario = registry().profile(workload, system)?;
    let mut ctx = Ctx::recording();
    scenario.run(&mut ctx);
    Ok(package(workload, &ctx.tracer))
}

/// Derives the metrics registry from the captured records and renders
/// the three artifact views.
fn package(workload: &str, tracer: &Tracer) -> ProfileArtifact {
    let metrics = Metrics::new();
    for layer in Layer::ALL {
        metrics.count(
            &format!("records.{}", layer.cat()),
            tracer
                .records()
                .iter()
                .filter(|r| r.layer() == layer)
                .count() as u64,
        );
    }
    metrics.declare_histogram(
        "span_secs",
        &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0],
    );
    for s in span_totals(tracer) {
        // One sample per span instance at the mean instance length keeps
        // the histogram deterministic and cheap.
        for _ in 0..s.count {
            metrics.record("span_secs", s.total / s.count as f64);
        }
    }
    ProfileArtifact {
        workload: workload.to_string(),
        trace_json: chrome_trace_json(tracer, Some(&metrics)),
        top: top_table(tracer, 12),
        summary: metrics.summary(),
    }
}

impl ProfileArtifact {
    /// Validates the trace document: parses as JSON and has a non-empty
    /// `traceEvents` array. Returns the event count.
    pub fn validate(&self) -> Result<usize, String> {
        let doc = pvc_core::json::parse(&self.trace_json)
            .map_err(|e| format!("profile trace is not valid JSON: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .ok_or_else(|| "profile trace has no traceEvents array".to_string())?;
        if events.is_empty() {
            return Err("profile trace has an empty traceEvents array".to_string());
        }
        Ok(events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_catalog_workload_runs_and_validates() {
        for (name, _) in workloads(System::Aurora) {
            let art = run(name, System::Aurora).unwrap_or_else(|e| panic!("{name}: {e}"));
            let n = art.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(n > 0, "{name}: empty trace");
            assert!(art.top.contains("Where did the (virtual) time go"));
        }
    }

    #[test]
    fn unknown_workload_is_rejected_with_catalog() {
        let err = run("bogus", System::Aurora).unwrap_err().to_string();
        assert!(err.contains("unknown profile workload 'bogus'"));
        assert!(err.contains("pcie-h2d"));
    }

    #[test]
    fn off_grid_system_is_rejected_with_alternatives() {
        let err = run("figures", System::JlseH100).unwrap_err();
        assert!(matches!(err, ScenarioError::Unregistered { .. }), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("aurora"), "{msg}");
    }

    #[test]
    fn pcie_h2d_profile_covers_three_layers() {
        let art = run("pcie-h2d", System::Aurora).unwrap();
        let doc = pvc_core::json::parse(&art.trace_json).unwrap();
        let cats: BTreeSet<String> = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .filter_map(|e| e.get("cat"))
            .filter_map(|c| c.as_str().map(str::to_string))
            .collect();
        for want in ["simrt", "fabric", "workload"] {
            assert!(cats.contains(want), "missing layer {want} in {cats:?}");
        }
    }

    #[test]
    fn profiles_are_byte_deterministic() {
        for name in ["pcie-h2d", "cloverleaf"] {
            let a = run(name, System::Aurora).unwrap();
            let b = run(name, System::Aurora).unwrap();
            assert_eq!(a.trace_json, b.trace_json, "{name} trace not reproducible");
            assert_eq!(a.top, b.top);
            assert_eq!(a.summary, b.summary);
        }
    }
}

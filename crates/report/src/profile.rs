//! `reproduce profile <workload>` — deterministic virtual-time profiles.
//!
//! Runs one workload with the [`pvc_obs`] tracer attached and packages
//! the result as a [`ProfileArtifact`]: a Chrome-trace JSON document
//! (loadable in Perfetto / `chrome://tracing`), a top-N "where did the
//! (virtual) time go" table, and a plain-text metrics summary. All
//! timestamps are virtual simulation time, so two runs of the same
//! workload produce byte-identical artifacts.

use pvc_arch::{Precision, System};
use pvc_fabric::comm::{Comm, Transfer};
use pvc_fabric::{RouteVia, StackId};
use pvc_microbench::pcie::{self, PcieMode};
use pvc_microbench::peakflops;
use pvc_miniapps::profile as miniprof;
use pvc_obs::{chrome_trace_json, span_totals, top_table, Layer, Metrics, Tracer};

/// Workloads `reproduce profile` accepts, with one-line descriptions.
pub const WORKLOADS: &[(&str, &str)] = &[
    ("pcie-h2d", "host-to-device PCIe sweep over the three scaling levels"),
    ("pcie-d2h", "device-to-host PCIe sweep over the three scaling levels"),
    ("pcie-bidir", "bidirectional PCIe sweep (1.4x duplex factor)"),
    ("p2p-local", "MDFI stack-to-stack transfer inside one card"),
    ("p2p-remote", "Xe-Link stack-to-stack transfer between cards"),
    ("allreduce", "full-node ring allreduce (reduce-scatter + allgather)"),
    ("peakflops", "FP64 FMA peak sweep with governor throttle transitions"),
    ("cloverleaf", "weak-scaled hydro steps: compute + halo + reduction"),
    ("miniqmc", "DMC steps with H2D/compute/D2H overlap and host congestion"),
    ("figures", "figure renders, tracing bars with missing FOM sources"),
];

/// The rendered outputs of one profile run.
#[derive(Debug, Clone)]
pub struct ProfileArtifact {
    pub workload: String,
    /// Chrome `trace_event` JSON (pretty-printed, trailing newline).
    pub trace_json: String,
    /// Top-N span table.
    pub top: String,
    /// Metrics registry summary.
    pub summary: String,
}

fn workload_names() -> String {
    WORKLOADS
        .iter()
        .map(|(n, _)| *n)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Runs `workload` on `system` under a recording tracer.
pub fn run(workload: &str, system: System) -> Result<ProfileArtifact, String> {
    let tracer = Tracer::recording();
    match workload {
        "pcie-h2d" => {
            pcie::run_traced(system, PcieMode::H2d, &tracer);
        }
        "pcie-d2h" => {
            pcie::run_traced(system, PcieMode::D2h, &tracer);
        }
        "pcie-bidir" => {
            pcie::run_traced(system, PcieMode::Bidirectional, &tracer);
        }
        "p2p-local" => {
            let comm = Comm::new(system, 2);
            comm.run_transfers_traced(
                &[Transfer::D2d(
                    StackId::new(0, 0),
                    StackId::new(0, 1),
                    RouteVia::Auto,
                )],
                500e6,
                &tracer,
                0.0,
            );
        }
        "p2p-remote" => {
            let comm = Comm::new(system, 2);
            comm.run_transfers_traced(
                &[Transfer::D2d(
                    StackId::new(0, 0),
                    StackId::new(1, 1),
                    RouteVia::Auto,
                )],
                500e6,
                &tracer,
                0.0,
            );
        }
        "allreduce" => {
            let node = system.node();
            let comm = Comm::new(system, node.partitions());
            comm.allreduce_time_traced(&comm.all_stacks(), 1e9, &tracer, 0.0);
        }
        "peakflops" => {
            peakflops::run_traced(system, Precision::Fp64, &tracer);
        }
        "cloverleaf" => {
            miniprof::cloverleaf_profile(system, &tracer);
        }
        "miniqmc" => {
            miniprof::miniqmc_profile(system, &tracer);
        }
        "figures" => {
            crate::figdata::render_figure2_traced(&tracer);
            crate::figdata::render_figure3_traced(&tracer);
            crate::figdata::render_figure4_traced(&tracer);
        }
        other => {
            return Err(format!(
                "unknown profile workload '{other}'; expected one of: {}",
                workload_names()
            ))
        }
    }
    Ok(package(workload, &tracer))
}

/// Derives the metrics registry from the captured records and renders
/// the three artifact views.
fn package(workload: &str, tracer: &Tracer) -> ProfileArtifact {
    let metrics = Metrics::new();
    for layer in Layer::ALL {
        metrics.count(
            &format!("records.{}", layer.cat()),
            tracer
                .records()
                .iter()
                .filter(|r| r.layer() == layer)
                .count() as u64,
        );
    }
    metrics.declare_histogram(
        "span_secs",
        &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0],
    );
    for s in span_totals(tracer) {
        // One sample per span instance at the mean instance length keeps
        // the histogram deterministic and cheap.
        for _ in 0..s.count {
            metrics.record("span_secs", s.total / s.count as f64);
        }
    }
    ProfileArtifact {
        workload: workload.to_string(),
        trace_json: chrome_trace_json(tracer, Some(&metrics)),
        top: top_table(tracer, 12),
        summary: metrics.summary(),
    }
}

impl ProfileArtifact {
    /// Validates the trace document: parses as JSON and has a non-empty
    /// `traceEvents` array. Returns the event count.
    pub fn validate(&self) -> Result<usize, String> {
        let doc = pvc_core::json::parse(&self.trace_json)
            .map_err(|e| format!("profile trace is not valid JSON: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .ok_or_else(|| "profile trace has no traceEvents array".to_string())?;
        if events.is_empty() {
            return Err("profile trace has an empty traceEvents array".to_string());
        }
        Ok(events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn every_catalog_workload_runs_and_validates() {
        for (name, _) in WORKLOADS {
            let art = run(name, System::Aurora).unwrap_or_else(|e| panic!("{name}: {e}"));
            let n = art.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(n > 0, "{name}: empty trace");
            assert!(art.top.contains("Where did the (virtual) time go"));
        }
    }

    #[test]
    fn unknown_workload_is_rejected_with_catalog() {
        let err = run("bogus", System::Aurora).unwrap_err();
        assert!(err.contains("unknown profile workload 'bogus'"));
        assert!(err.contains("pcie-h2d"));
    }

    #[test]
    fn pcie_h2d_profile_covers_three_layers() {
        let art = run("pcie-h2d", System::Aurora).unwrap();
        let doc = pvc_core::json::parse(&art.trace_json).unwrap();
        let cats: BTreeSet<String> = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .filter_map(|e| e.get("cat"))
            .filter_map(|c| c.as_str().map(str::to_string))
            .collect();
        for want in ["simrt", "fabric", "workload"] {
            assert!(cats.contains(want), "missing layer {want} in {cats:?}");
        }
    }

    #[test]
    fn profiles_are_byte_deterministic() {
        for name in ["pcie-h2d", "cloverleaf"] {
            let a = run(name, System::Aurora).unwrap();
            let b = run(name, System::Aurora).unwrap();
            assert_eq!(a.trace_json, b.trace_json, "{name} trace not reproducible");
            assert_eq!(a.top, b.top);
            assert_eq!(a.summary, b.summary);
        }
    }
}

//! Minimal fixed-width text-table rendering.

/// A plain-text table with a title, a header row and data rows.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        TextTable {
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Sets the header cells.
    pub fn header(mut self, cells: Vec<String>) -> Self {
        self.header = cells;
        self
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, (c, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    s.push_str(&format!("{c:<w$}"));
                } else {
                    s.push_str(&format!("{c:>w$}"));
                }
            }
            s
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an optional value, printing the paper's dash for `None`.
pub fn opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("T").header(vec!["name".into(), "v".into()]);
        t.push_row(vec!["a".into(), "1.0".into()]);
        t.push_row(vec!["long-name".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
                                    // Right alignment of numeric column.
        assert!(lines[3].ends_with(" 1.0"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new("T").header(vec!["a".into(), "b".into()]);
        t.push_row(vec!["only".into()]);
    }

    #[test]
    fn optional_formatting() {
        assert_eq!(opt(Some(1.234), 2), "1.23");
        assert_eq!(opt(None, 2), "-");
    }
}

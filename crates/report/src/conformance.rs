//! Conformance section of the report: renders the `pvc-validate`
//! golden-expectation run next to the experiment records, so one
//! document answers both "what do we simulate?" (EXPERIMENTS.md) and
//! "is it still the paper?" (this section).

use pvc_validate::conformance;

/// Markdown of the full conformance run (per-element pass/fail tables).
pub fn markdown() -> String {
    conformance::run().markdown()
}

/// JSON of the full conformance run.
pub fn json() -> String {
    conformance::run().json()
}

/// One-line verdict for CLI gating: `Ok(summary)` when every check
/// passes, `Err(rendered failures)` otherwise.
pub fn verdict() -> Result<String, String> {
    let r = conformance::run();
    if r.pass() {
        Ok(format!(
            "conformance: {}/{} published values reproduced within tolerance\n",
            r.passed(),
            r.total()
        ))
    } else {
        let mut msg = String::new();
        for c in r.failures() {
            msg.push_str(&format!(
                "FAIL {}: published {:.4e}, simulated {:.4e} ({:.2}% > {:.2}%)\n",
                c.source,
                c.published,
                c.simulated,
                c.rel_err() * 100.0,
                c.rel_tol * 100.0
            ));
        }
        Err(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_is_green_and_counts_the_catalog() {
        let v = verdict().expect("conformance must pass");
        assert!(v.contains("published values reproduced"));
    }

    #[test]
    fn markdown_has_all_elements() {
        let md = markdown();
        for e in ["Table II", "Table III", "Table VI"] {
            assert!(md.contains(&format!("## {e}")));
        }
    }
}

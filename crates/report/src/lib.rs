//! # pvc-report — regenerating every table and figure of the paper
//!
//! * [`render`] — plain-text table formatting;
//! * [`published`] — the paper's printed values (Tables II, III, VI),
//!   kept verbatim as the comparison baseline;
//! * [`tables`] — builders assembling each table from the simulation
//!   crates, paired cell-by-cell with the published values;
//! * [`figdata`] — Figure 1 latency series and Figures 2–4 bar data;
//! * [`experiments`] — the paper-vs-measured record used to generate
//!   EXPERIMENTS.md;
//! * [`scenarios`] — the process-wide scenario registry: the standard
//!   `pvc-scenario` grid plus the figure-render pipeline; every
//!   frontend below dispatches (workload, system) through it;
//! * [`profile`] — `reproduce profile <workload>`: deterministic
//!   virtual-time Chrome-trace profiles of the simulated workloads;
//! * [`conformance`] — the `pvc-validate` golden-expectation run
//!   rendered as a report section (and the CLI gate's verdict);
//! * [`serve`] — the `pvc-serve` catalog executor and request schema
//!   behind `reproduce serve` / `reproduce query`;
//! * [`warm`] — the build fingerprint and full-grid request corpus
//!   behind `reproduce warm`, which persists every catalog response
//!   into a `pvc-store` segment file.
//!
//! The `reproduce` binary (in `src/bin`) prints any or all of them.

pub mod ablations;
pub mod conformance;
pub mod csv;
pub mod energy;
pub mod experiments;
pub mod fabric_matrix;
pub mod figdata;
pub mod httpfront;
pub mod profile;
pub mod published;
pub mod render;
pub mod scenarios;
pub mod serve;
pub mod tables;
pub mod warm;

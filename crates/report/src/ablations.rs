//! Text reports for the DESIGN.md ablations (E11–E14): what each
//! modelled mechanism contributes, quantified by switching it off.

use crate::render::TextTable;
use pvc_arch::{Precision, System};
use pvc_fabric::comm::{Comm, Transfer};
use pvc_fabric::{NodeFabric, RouteVia, StackId};
use pvc_miniapps::congestion::HostCongestion;
use pvc_miniapps::miniqmc;
use pvc_simrt::{FlowSpec, Time};

/// E11 — the FP64 TDP downclock (§IV-B2): FP32/FP64 peak ratio with and
/// without the 1.2 GHz cliff.
pub fn governor_ablation() -> TextTable {
    let mut t = TextTable::new("E11: FP64 TDP downclock (§IV-B2)").header(vec![
        "variant".into(),
        "FP64 TFlop/s".into(),
        "FP32/FP64 ratio".into(),
    ]);
    for (name, fp64_ghz) in [("with downclock (1.2 GHz)", 1.2), ("without (1.6 GHz)", 1.6)] {
        let mut node = System::Aurora.node();
        node.gpu.clock.fp64_vector_ghz = fp64_ghz;
        let d = node.gpu.vector_peak_per_partition(Precision::Fp64, 1);
        let s = node.gpu.vector_peak_per_partition(Precision::Fp32, 1);
        t.push_row(vec![
            name.into(),
            format!("{:.1}", d / 1e12),
            format!("{:.2}", s / d),
        ]);
    }
    t
}

/// Full-node D2H aggregate on a node (possibly with modified host).
fn node_d2h(node: &pvc_arch::NodeModel) -> f64 {
    let fabric = NodeFabric::with_active(node, node.partitions());
    let mut net = fabric.net.clone_resources();
    let ids: Vec<_> = (0..node.gpus)
        .flat_map(|g| (0..node.gpu.partitions).map(move |s| StackId::new(g, s)))
        .map(|s| {
            net.add_flow(FlowSpec {
                start: Time::ZERO,
                bytes: 500e6,
                path: fabric.d2h_path(s),
                latency: 0.0,
            })
        })
        .collect();
    let done = net.run();
    ids.iter().map(|id| done[id].bandwidth()).sum()
}

/// E12 — root-complex contention (§IV-B4): full-node D2H with the
/// calibrated per-socket pools vs unlimited pools.
pub fn pcie_ablation() -> TextTable {
    let mut t = TextTable::new("E12: PCIe root-complex contention (§IV-B4)").header(vec![
        "variant".into(),
        "Aurora node D2H GB/s".into(),
        "scaling vs 12 ranks".into(),
    ]);
    let base = System::Aurora.node();
    let per_rank = 53e9;
    for (name, node) in [
        ("with per-socket pools", base.clone()),
        ("pools removed", {
            let mut n = base.clone();
            n.cpu.rc_h2d = 1e15;
            n.cpu.rc_d2h = 1e15;
            n.cpu.rc_duplex = 1e15;
            n
        }),
    ] {
        let agg = node_d2h(&node);
        t.push_row(vec![
            name.into(),
            format!("{:.0}", agg / 1e9),
            format!("{:.0}%", agg / (12.0 * per_rank) * 100.0),
        ]);
    }
    t
}

/// E13 — miniQMC host congestion (§V-B1): full-node FOM with the fitted
/// model vs an ideal host.
pub fn congestion_ablation() -> TextTable {
    let mut t = TextTable::new("E13: miniQMC host congestion (§V-B1)").header(vec![
        "variant".into(),
        "Aurora node FOM".into(),
        "Dawn node FOM".into(),
    ]);
    let fom = |m: &HostCongestion, n: u32, g: u32| m.throughput(n, g);
    let a = miniqmc::congestion_model(System::Aurora);
    let d = miniqmc::congestion_model(System::Dawn);
    t.push_row(vec![
        "with congestion".into(),
        format!("{:.2}", fom(&a, 12, 6)),
        format!("{:.2}", fom(&d, 8, 4)),
    ]);
    let ideal = |m: &HostCongestion| HostCongestion {
        t_gpu: m.t_gpu,
        c_host: 0.0,
        alpha: m.alpha,
    };
    t.push_row(vec![
        "ideal host".into(),
        format!("{:.2}", fom(&ideal(&a), 12, 6)),
        format!("{:.2}", fom(&ideal(&d), 8, 4)),
    ]);
    t
}

/// E14 — Xe-Link plane routing (§IV-A4): one-hop vs the two candidate
/// two-hop routes, idle and under MDFI contention on the source card.
pub fn plane_ablation() -> TextTable {
    let node = System::Aurora.node();
    let fabric = NodeFabric::new(&node);
    let a = StackId::new(0, 0);
    let b = StackId::new(1, 0); // cross-plane
    let mut t = TextTable::new("E14: Xe-Link plane routing (§IV-A4)").header(vec![
        "route".into(),
        "idle GB/s".into(),
        "GB/s with busy source MDFI".into(),
    ]);
    for (name, via) in [
        ("0.0->0.1->1.0 (source sibling)", RouteVia::SourceSibling),
        ("0.0->1.1->1.0 (dest sibling)", RouteVia::DestSibling),
    ] {
        let idle = fabric.isolated_bandwidth(fabric.d2d_path(a, b, via));
        // Contended: a concurrent local MDFI transfer on card 0.
        let comm = Comm::new(System::Aurora, 4);
        let r = comm.run_transfers(
            &[
                Transfer::D2d(a, b, via),
                Transfer::D2d(StackId::new(0, 0), StackId::new(0, 1), RouteVia::Auto),
            ],
            500e6,
        );
        t.push_row(vec![
            name.into(),
            format!("{:.1}", idle / 1e9),
            format!("{:.1}", r.per_flow[0] / 1e9),
        ]);
    }
    t
}

/// Scaling-efficiency summary (§IV-B1's percentages), derived live from
/// the registry's scaling-triplet details.
pub fn scaling_report() -> TextTable {
    let mut t = TextTable::new("Scaling efficiencies (§IV-B1)").header(vec![
        "metric".into(),
        "Aurora 2-stack".into(),
        "Aurora node".into(),
        "Dawn 2-stack".into(),
        "Dawn node".into(),
    ]);
    let eff = |slug: &str, sys: System, n: u32| {
        let out = crate::scenarios::registry()
            .run(slug, sys)
            .unwrap_or_else(|e| panic!("scaling scenario {slug}: {e}"));
        let get = |k: &str| out.detail(k).unwrap_or_else(|| panic!("{slug} lacks {k}"));
        let one_stack = get("one_stack");
        (
            get("one_pvc") / (2.0 * one_stack),
            get("full_node") / (n as f64 * one_stack),
        )
    };
    const METRICS: [(&str, &str); 3] = [
        ("FP64 flops", "peakflops-fp64"),
        ("FP32 flops", "peakflops-fp32"),
        ("Triad bandwidth", "stream-triad"),
    ];
    // Independent scenario pairs; merged in metric order.
    let rows = pvc_core::par::map_collect(METRICS.len(), |i| {
        let (label, slug) = METRICS[i];
        let a = eff(slug, System::Aurora, 12);
        let d = eff(slug, System::Dawn, 8);
        vec![
            label.into(),
            format!("{:.0}%", a.0 * 100.0),
            format!("{:.0}%", a.1 * 100.0),
            format!("{:.0}%", d.0 * 100.0),
            format!("{:.0}%", d.1 * 100.0),
        ]
    });
    for row in rows {
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_ablation_shows_the_1_3x() {
        let t = governor_ablation();
        let s = t.render();
        assert!(s.contains("1.33"), "{s}");
        assert!(s.contains("1.00"), "{s}");
    }

    #[test]
    fn pcie_ablation_recovers_full_scaling_without_pools() {
        let t = pcie_ablation().render();
        // With pools: ~264 GB/s (≈42%); without: 6 cards x 56 = 336.
        assert!(t.contains("264"), "{t}");
        let without_line = t.lines().last().unwrap();
        assert!(without_line.contains("336"), "{t}");
    }

    #[test]
    fn congestion_ablation_shows_the_gap() {
        let t = congestion_ablation().render();
        // With congestion Aurora ≈ 15.6; ideal ≈ 41.4 (12/t_gpu).
        assert!(t.contains("15.6") || t.contains("15.7"), "{t}");
        assert!(t.contains("41."), "{t}");
    }

    #[test]
    fn plane_routes_diverge_under_contention() {
        let t = plane_ablation().render();
        assert!(t.contains("15.0"), "idle is Xe-Link bound: {t}");
    }

    #[test]
    fn scaling_report_has_the_headline_numbers() {
        let s = scaling_report().render();
        // Triad scales perfectly.
        assert!(s.contains("100%"), "{s}");
    }
}

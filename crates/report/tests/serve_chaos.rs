//! Chaos overlays through the query service: degraded variants are
//! first-class atoms. The cache keys `{request}` and `{request, chaos}`
//! apart, coalescing merges only equal specs (however spelled), invalid
//! specs shed at admission with typed errors, and responses are
//! byte-deterministic across runs — the property the ci double-run
//! gate checks end to end.

use pvc_core::Json;
use pvc_report::serve::CatalogExecutor;
use pvc_serve::{ServeConfig, Service};

fn service() -> Service<CatalogExecutor> {
    Service::new(CatalogExecutor, ServeConfig::default())
}

fn detail_of(r: &Json) -> &str {
    r.get("error")
        .and_then(|e| e.get("detail"))
        .and_then(Json::as_str)
        .expect("error detail")
}

const BASE: &str = r#"{"kind":"run","workload":"stream-triad","system":"aurora"}"#;
const DEGRADED: &str =
    r#"{"kind":"run","workload":"stream-triad","system":"aurora","chaos":"hbm:0.5"}"#;

/// The cache never conflates a run with its degraded variant: four
/// lines, two distinct cache entries, two hits.
#[test]
fn cache_keys_baseline_and_degraded_apart() {
    let s = service();
    let mut responses = s.handle_lines(&[BASE, DEGRADED]);
    responses.extend(s.handle_lines(&[BASE, DEGRADED]));
    assert_eq!(s.metrics().counter("serve.cache.hit"), 2);
    assert_eq!(s.metrics().counter("serve.atoms.executed"), 2);
    let value = |r: &Json| {
        r.get("result")
            .and_then(|b| b.get("value"))
            .and_then(Json::as_num)
            .expect("run value")
    };
    let (base, deg) = (value(&responses[0]), value(&responses[1]));
    assert!(deg < base, "hbm:0.5 halves triad: {deg} vs {base}");
    assert_eq!(value(&responses[2]), base);
    assert_eq!(value(&responses[3]), deg);
    // The degraded response carries its canonical spec; the baseline
    // carries none.
    assert!(responses[0].get("result").unwrap().get("chaos").is_none());
    assert_eq!(
        responses[1]
            .get("result")
            .and_then(|b| b.get("chaos"))
            .and_then(Json::as_str),
        Some("hbm:0.5")
    );
}

/// Atoms with different specs never merge; two spellings of the same
/// spec coalesce onto one canonical atom.
#[test]
fn coalescing_follows_canonical_spec_not_spelling() {
    let s = service();
    let respelled =
        r#"{"kind":"run","workload":"stream-triad","system":"aurora","chaos":"hbm:0.50"}"#;
    let other = r#"{"kind":"run","workload":"stream-triad","system":"aurora","chaos":"hbm:0.25"}"#;
    let responses = s.handle_lines(&[DEGRADED, respelled, other]);
    // Three requests (all distinct cache keys), but hbm:0.5 and
    // hbm:0.50 are one canonical atom — so only two executions.
    assert_eq!(s.metrics().counter("serve.atoms.requested"), 3);
    assert_eq!(s.metrics().counter("serve.atoms.executed"), 2);
    let body = |r: &Json| r.get("result").expect("result").canonical();
    assert_eq!(body(&responses[0]), body(&responses[1]));
    assert_ne!(body(&responses[0]), body(&responses[2]));
}

/// An empty chaos spec is the baseline: same atom, same bytes.
#[test]
fn empty_spec_coalesces_with_baseline() {
    let s = service();
    let empty = r#"{"kind":"run","workload":"stream-triad","system":"aurora","chaos":""}"#;
    let responses = s.handle_lines(&[BASE, empty]);
    assert_eq!(s.metrics().counter("serve.atoms.executed"), 1);
    assert_eq!(
        responses[0].get("result").unwrap().canonical(),
        responses[1].get("result").unwrap().canonical()
    );
}

/// Invalid specs shed at admission with a typed error: bad grammar,
/// wrong type, invalid for the system, or chaos on a non-run kind.
#[test]
fn invalid_specs_shed_with_typed_errors() {
    let s = service();
    let garbage = r#"{"kind":"run","workload":"gemm-fp64","system":"aurora","chaos":"warp:9"}"#;
    let r = s.handle_lines(&[garbage]).remove(0);
    assert!(detail_of(&r).contains("unknown fault"), "{r:?}");

    let not_a_string = r#"{"kind":"run","workload":"gemm-fp64","system":"aurora","chaos":7}"#;
    let r = s.handle_lines(&[not_a_string]).remove(0);
    assert!(detail_of(&r).contains("fault-spec string"), "{r:?}");

    let wrong_system =
        r#"{"kind":"run","workload":"gemm-fp64","system":"aurora","chaos":"stackdown:12"}"#;
    let r = s.handle_lines(&[wrong_system]).remove(0);
    assert!(detail_of(&r).contains("stackdown"), "{r:?}");

    let wrong_kind = r#"{"kind":"table","id":2,"chaos":"hbm:0.5"}"#;
    let r = s.handle_lines(&[wrong_kind]).remove(0);
    assert!(
        detail_of(&r).contains("only supported on run requests"),
        "{r:?}"
    );
    // Nothing executed: every rejection happened before atom expansion.
    assert_eq!(s.metrics().counter("serve.atoms.executed"), 0);
}

/// Double-run byte identity: the exact invariant the ci gate `cmp`s.
#[test]
fn degraded_responses_are_byte_identical_across_services() {
    let lines = [DEGRADED, BASE];
    let first: Vec<String> = service().handle_lines(&lines).iter().map(Json::canonical).collect();
    let second: Vec<String> = service().handle_lines(&lines).iter().map(Json::canonical).collect();
    assert_eq!(first, second);
}

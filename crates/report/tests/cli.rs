//! End-to-end tests of the `reproduce` binary: the deliverable a user
//! actually runs.

use std::process::Command;

fn reproduce(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn table2_prints_published_pairs() {
    let (stdout, _, ok) = reproduce(&["table2"]);
    assert!(ok);
    assert!(stdout.contains("DGEMM"));
    assert!(stdout.contains("13.0 | 13.0"), "{stdout}");
}

#[test]
fn table6_prints_dashes_where_the_paper_does() {
    let (stdout, _, ok) = reproduce(&["table6"]);
    assert!(ok);
    assert!(stdout.contains("mini-GAMESS"));
    // MI250 mini-GAMESS columns are dashes.
    assert!(stdout.contains("- | -"));
}

#[test]
fn validate_exits_zero_when_model_is_in_tolerance() {
    let (stdout, _, ok) = reproduce(&["validate"]);
    assert!(ok, "validate must pass on the shipped calibration");
    assert!(stdout.contains("135 published cells"));
    assert!(stdout.contains("0 outside"));
}

#[test]
fn unknown_target_fails_with_guidance() {
    let (_, stderr, ok) = reproduce(&["tableX"]);
    assert!(!ok);
    assert!(stderr.contains("unknown target"));
    assert!(stderr.contains("table1..table6"));
}

#[test]
fn fig1_emits_csv() {
    let (stdout, _, ok) = reproduce(&["fig1"]);
    assert!(ok);
    let header = stdout.lines().next().expect("has header");
    assert!(header.starts_with("footprint_bytes"));
    assert_eq!(header.split(',').count(), 5);
}

#[test]
fn scaling_summary_prints_percentages() {
    let (stdout, _, ok) = reproduce(&["scaling"]);
    assert!(ok);
    assert!(stdout.contains("Triad bandwidth"));
    assert!(stdout.contains("100%"));
}

#[test]
fn profile_pcie_h2d_is_byte_deterministic_and_spans_three_layers() {
    let dir = std::env::temp_dir().join("pvc_cli_profile_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    for path in [&a, &b] {
        let (stdout, _, ok) = reproduce(&["profile", "pcie-h2d", path.to_str().unwrap()]);
        assert!(ok, "{stdout}");
        assert!(stdout.contains("valid JSON"), "{stdout}");
        assert!(stdout.contains("Where did the (virtual) time go"));
    }
    let ja = std::fs::read(&a).unwrap();
    let jb = std::fs::read(&b).unwrap();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "same workload twice must emit byte-identical traces");
    // Spans from at least three layers of the stack (acceptance check).
    let text = String::from_utf8(ja).unwrap();
    for cat in ["\"cat\": \"simrt\"", "\"cat\": \"fabric\"", "\"cat\": \"workload\""] {
        assert!(text.contains(cat), "missing {cat}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_without_workload_lists_catalog() {
    let (_, stderr, ok) = reproduce(&["profile"]);
    assert!(!ok);
    assert!(stderr.contains("usage: reproduce profile"));
    assert!(stderr.contains("pcie-h2d"));
    assert!(stderr.contains("cloverleaf"));
}

#[test]
fn profile_unknown_workload_fails_with_catalog() {
    let (_, stderr, ok) = reproduce(&["profile", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown profile workload 'nope'"));
    assert!(stderr.contains("miniqmc"));
}

#[test]
fn csv_writes_artifacts_to_requested_dir() {
    let dir = std::env::temp_dir().join("pvc_cli_csv_test");
    let _ = std::fs::remove_dir_all(&dir);
    let (stdout, _, ok) = reproduce(&["csv", dir.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    for f in ["table2.csv", "table3.csv", "table6.csv", "figure1.csv"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

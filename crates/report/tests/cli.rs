//! End-to-end tests of the `reproduce` binary: the deliverable a user
//! actually runs.

use std::process::Command;

fn reproduce(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn table2_prints_published_pairs() {
    let (stdout, _, ok) = reproduce(&["table2"]);
    assert!(ok);
    assert!(stdout.contains("DGEMM"));
    assert!(stdout.contains("13.0 | 13.0"), "{stdout}");
}

#[test]
fn table6_prints_dashes_where_the_paper_does() {
    let (stdout, _, ok) = reproduce(&["table6"]);
    assert!(ok);
    assert!(stdout.contains("mini-GAMESS"));
    // MI250 mini-GAMESS columns are dashes.
    assert!(stdout.contains("- | -"));
}

#[test]
fn validate_exits_zero_when_model_is_in_tolerance() {
    let (stdout, _, ok) = reproduce(&["validate"]);
    assert!(ok, "validate must pass on the shipped calibration");
    assert!(stdout.contains("135 published cells"));
    assert!(stdout.contains("0 outside"));
}

#[test]
fn unknown_target_fails_with_guidance() {
    let (_, stderr, ok) = reproduce(&["tableX"]);
    assert!(!ok);
    assert!(stderr.contains("unknown target"));
    assert!(stderr.contains("table1..table6"));
}

#[test]
fn fig1_emits_csv() {
    let (stdout, _, ok) = reproduce(&["fig1"]);
    assert!(ok);
    let header = stdout.lines().next().expect("has header");
    assert!(header.starts_with("footprint_bytes"));
    assert_eq!(header.split(',').count(), 5);
}

#[test]
fn scaling_summary_prints_percentages() {
    let (stdout, _, ok) = reproduce(&["scaling"]);
    assert!(ok);
    assert!(stdout.contains("Triad bandwidth"));
    assert!(stdout.contains("100%"));
}

#[test]
fn profile_pcie_h2d_is_byte_deterministic_and_spans_three_layers() {
    let dir = std::env::temp_dir().join("pvc_cli_profile_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    for path in [&a, &b] {
        let (stdout, _, ok) = reproduce(&["profile", "pcie-h2d", path.to_str().unwrap()]);
        assert!(ok, "{stdout}");
        assert!(stdout.contains("valid JSON"), "{stdout}");
        assert!(stdout.contains("Where did the (virtual) time go"));
    }
    let ja = std::fs::read(&a).unwrap();
    let jb = std::fs::read(&b).unwrap();
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "same workload twice must emit byte-identical traces");
    // Spans from at least three layers of the stack (acceptance check).
    let text = String::from_utf8(ja).unwrap();
    for cat in ["\"cat\": \"simrt\"", "\"cat\": \"fabric\"", "\"cat\": \"workload\""] {
        assert!(text.contains(cat), "missing {cat}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_without_workload_lists_catalog() {
    let (_, stderr, ok) = reproduce(&["profile"]);
    assert!(!ok);
    assert!(stderr.contains("usage: reproduce profile"));
    assert!(stderr.contains("pcie-h2d"));
    assert!(stderr.contains("cloverleaf"));
}

#[test]
fn profile_unknown_workload_fails_with_catalog() {
    let (_, stderr, ok) = reproduce(&["profile", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown profile workload 'nope'"));
    assert!(stderr.contains("miniqmc"));
}

#[test]
fn csv_writes_artifacts_to_requested_dir() {
    let dir = std::env::temp_dir().join("pvc_cli_csv_test");
    let _ = std::fs::remove_dir_all(&dir);
    let (stdout, _, ok) = reproduce(&["csv", dir.to_str().unwrap()]);
    assert!(ok, "{stdout}");
    for f in ["table2.csv", "table3.csv", "table6.csv", "figure1.csv"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn write_request(dir: &std::path::Path, name: &str, body: &str) -> String {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, body).unwrap();
    path.to_str().unwrap().to_string()
}

#[test]
fn query_twice_is_byte_identical_and_second_run_hits_cache() {
    let dir = std::env::temp_dir().join("pvc_cli_query_test");
    let _ = std::fs::remove_dir_all(&dir);
    let req = write_request(&dir, "t2.json", r#"{"kind":"table","id":2}"#);
    // Two separate processes: byte-identical canonical envelopes.
    let (a, _, ok_a) = reproduce(&["query", &req]);
    let (b, _, ok_b) = reproduce(&["query", &req]);
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "one-shot query must be byte-deterministic");
    assert!(a.contains("\"result\""), "{a}");
    assert!(a.contains("fnv64:"), "{a}");
    // Two rounds in one process: round two is served from the cache.
    let (out, stats, ok) = reproduce(&["query", "--rounds", "2", "--stats", &req]);
    assert!(ok, "{stats}");
    assert!(stats.contains("counter serve.cache.hit = 1"), "{stats}");
    assert!(stats.contains("counter serve.cache.miss = 1"), "{stats}");
    let half = out.len() / 2;
    assert_eq!(out[..half], out[half..], "cached round must not perturb bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_saturated_queue_returns_typed_overloaded() {
    let dir = std::env::temp_dir().join("pvc_cli_overload_test");
    let _ = std::fs::remove_dir_all(&dir);
    let r1 = write_request(&dir, "r1.json", r#"{"kind":"table","id":1}"#);
    let r2 = write_request(&dir, "r2.json", r#"{"kind":"table","id":4}"#);
    let r3 = write_request(&dir, "r3.json", r#"{"kind":"table","id":5}"#);
    let (out, _, ok) = reproduce(&["query", "--queue-depth", "1", &r1, &r2, &r3]);
    assert!(!ok, "shedding must be reported in the exit code");
    assert!(out.contains("\"kind\": \"overloaded\""), "{out}");
    assert!(out.contains("\"queue_depth\": 1"), "{out}");
    // The admitted request still succeeded alongside the shed ones.
    assert!(out.contains("\"result\""), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn query_without_files_prints_usage_and_examples() {
    let (_, stderr, ok) = reproduce(&["query"]);
    assert!(!ok);
    assert!(stderr.contains("usage: reproduce query"));
    assert!(stderr.contains(r#"{"kind":"table","id":2}"#));
}

#[test]
fn serve_stdin_session_answers_line_per_request() {
    use std::io::Write;
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(["serve", "--stats"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(
            b"{\"kind\":\"devices\"}\n{\"kind\":\"devices\"}\n[{\"kind\":\"table\",\"id\":1},{\"kind\":\"table\",\"id\":1}]\n",
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "one line per request/batch: {stdout}");
    assert_eq!(lines[0], lines[1], "cache hit must be byte-identical");
    assert!(lines[2].starts_with('['), "array batch answered as array");
    let stats = String::from_utf8(out.stderr).unwrap();
    assert!(stats.contains("counter serve.cache.hit = 1"), "{stats}");
    assert!(
        stats.contains("counter serve.singleflight.deduped = 1"),
        "duplicate inside the array batch is single-flighted: {stats}"
    );
}

#[test]
fn list_advertises_chaos_after_the_count_line() {
    let (stdout, _, ok) = reproduce(&["list"]);
    assert!(ok);
    // The machine-read count line keeps its own line (ci greps it).
    let count_at = stdout
        .find("63 scenarios registered\n")
        .expect("count line present");
    let tail = &stdout[count_at..];
    assert!(
        tail.contains("reproduce chaos <workload> <system> <spec>"),
        "list advertises the chaos verb after the count: {tail}"
    );
    for line in pvc_arch::chaos::GRAMMAR {
        assert!(tail.contains(line), "grammar line missing from list: {line}");
    }
}

#[test]
fn chaos_verb_reports_direction_aware_delta() {
    let (stdout, _, ok) = reproduce(&["chaos", "stream-triad", "aurora", "hbm:0.5"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("chaos report: stream-triad@aurora under 'hbm:0.5'"), "{stdout}");
    assert!(stdout.contains("baseline:"), "{stdout}");
    assert!(stdout.contains("degraded:"), "{stdout}");
    assert!(stdout.contains("delta:    -50.0%"), "{stdout}");

    // Two processes, byte-identical report: the delta path is as
    // deterministic as the scenarios it wraps.
    let (again, _, ok) = reproduce(&["chaos", "stream-triad", "aurora", "hbm:0.5"]);
    assert!(ok);
    assert_eq!(stdout, again);
}

#[test]
fn chaos_verb_attributes_the_bottleneck() {
    let (stdout, _, ok) = reproduce(&["chaos", "pcie-h2d", "aurora", "pcie:3x8"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("[bottleneck: "), "{stdout}");
}

#[test]
fn chaos_verb_rejects_garbage_with_usage_and_grammar() {
    let (_, stderr, ok) = reproduce(&["chaos", "stream-triad", "aurora", "warp:9"]);
    assert!(!ok);
    assert!(stderr.contains("unknown fault"), "{stderr}");
    assert!(stderr.contains("xelink:<plane>:<factor>"), "typed grammar echo: {stderr}");

    let (_, stderr, ok) = reproduce(&["chaos", "stream-triad", "aurora"]);
    assert!(!ok);
    assert!(stderr.contains("usage: reproduce chaos"), "{stderr}");

    let (_, stderr, ok) = reproduce(&["chaos", "stream-triad", "aurora", "stackdown:12"]);
    assert!(!ok);
    assert!(stderr.contains("stackdown"), "apply-time typed rejection: {stderr}");
}

//! The persistent store against the real catalog executor: warmed
//! responses must be byte-identical to freshly computed ones, rebuilds
//! must be byte-deterministic on disk, and a perturbed build
//! fingerprint must invalidate the whole store at open.
//!
//! Uses the canned CI corpus (one table, one figure, one PCIe sweep,
//! one chaos run) rather than the full 110-request grid, so the suite
//! stays fast; the full grid is exercised by `reproduce warm` in CI.

use pvc_core::Json;
use pvc_report::serve::{CatalogExecutor, CANNED_REQUESTS};
use pvc_report::warm::{build_fingerprint, warm_corpus};
use pvc_serve::{ServeConfig, Service};
use pvc_store::{OpenStatus, Store};
use std::sync::atomic::{AtomicUsize, Ordering};

fn scratch(tag: &str) -> (std::path::PathBuf, Cleanup) {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "pvc-report-store-{tag}-{}-{}.bin",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_file(&path);
    (path.clone(), Cleanup(path))
}

struct Cleanup(std::path::PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn catalog_with_store(path: &std::path::Path, fp: u64) -> (Service<CatalogExecutor>, OpenStatus) {
    let (store, report) = Store::open(path, fp).expect("store opens");
    let mut s = Service::new(CatalogExecutor, ServeConfig::default());
    s.attach_store(store, &report);
    (s, report.status)
}

fn answer_canned(s: &Service<CatalogExecutor>) -> Vec<String> {
    s.handle_lines(CANNED_REQUESTS)
        .iter()
        .map(Json::compact)
        .collect()
}

#[test]
fn store_served_catalog_responses_are_byte_identical_to_computed() {
    std::env::set_var("PVC_THREADS", "2");
    let fp = build_fingerprint();
    let (path, _guard) = scratch("identity");

    // Warm pass: compute everything once, persisting as we go.
    let (warmer, status) = catalog_with_store(&path, fp);
    assert_eq!(status, OpenStatus::Created);
    let computed = answer_canned(&warmer);
    assert_eq!(
        warmer.metrics().counter("serve.store.write"),
        CANNED_REQUESTS.len() as u64
    );
    drop(warmer);

    // Fresh process: every canned request is a first-query store hit
    // with the exact same bytes, and the executor runs no atoms.
    let (served, status) = catalog_with_store(&path, fp);
    assert_eq!(status, OpenStatus::Loaded);
    let from_disk = answer_canned(&served);
    assert_eq!(from_disk, computed, "disk tier must preserve bytes exactly");
    let m = served.metrics();
    assert_eq!(m.counter("serve.store.hit"), CANNED_REQUESTS.len() as u64);
    assert_eq!(m.counter("serve.cache.miss"), 0, "zero cold computes");
    assert_eq!(m.counter("serve.atoms.executed"), 0, "no solver work");

    // A store with no matching entry still computes: the tier is an
    // accelerator, never a gate.
    let novel = r#"{"kind":"table","id":5}"#;
    let r = served.handle_lines(&[novel]).remove(0);
    assert!(r.get("result").is_some());
    assert_eq!(m.counter("serve.cache.miss"), 1);
}

#[test]
fn rebuilt_stores_are_byte_identical_and_fingerprint_perturbation_invalidates() {
    std::env::set_var("PVC_THREADS", "2");
    let fp = build_fingerprint();
    let (pa, _ga) = scratch("rebuild-a");
    let (pb, _gb) = scratch("rebuild-b");
    // The first 12 corpus lines (tables + figures + ablations) stand in
    // for the full grid: enough to exercise multi-record layout.
    let corpus: Vec<String> = warm_corpus().into_iter().take(12).collect();
    for path in [&pa, &pb] {
        let (s, _) = catalog_with_store(path, fp);
        let refs: Vec<&str> = corpus.iter().map(String::as_str).collect();
        s.handle_lines(&refs);
    }
    let (ba, bb) = (std::fs::read(&pa).unwrap(), std::fs::read(&pb).unwrap());
    assert!(!ba.is_empty());
    assert_eq!(ba, bb, "two warm rebuilds must produce identical files");

    // A different fingerprint (a model change) invalidates at open:
    // the store resets rather than serving stale results.
    let (s, status) = catalog_with_store(&pa, fp ^ 1);
    assert!(matches!(status, OpenStatus::Invalidated { found: Some(f) } if f == fp));
    assert_eq!(s.store_len(), 0, "stale entries are gone");
    assert_eq!(s.metrics().counter("store.open.invalidated"), 1);
    drop(s);

    // And re-opening with the original fingerprint invalidates again
    // (the reset stamped the perturbed fingerprint into the header) —
    // the stale records never come back either way.
    let (s, status) = catalog_with_store(&pa, fp);
    assert!(matches!(status, OpenStatus::Invalidated { found: Some(f) } if f == fp ^ 1));
    assert_eq!(s.store_len(), 0);
}

#[test]
fn salted_fingerprint_differs_and_rebuild_restores_service() {
    std::env::set_var("PVC_THREADS", "2");
    // PVC_STORE_FINGERPRINT_SALT is the CI hook that simulates a model
    // change; the fingerprint must move, and a store warmed under the
    // salt must invalidate under the unsalted build (and vice versa).
    let base = build_fingerprint();
    std::env::set_var("PVC_STORE_FINGERPRINT_SALT", "store-roundtrip-test");
    let salted = build_fingerprint();
    std::env::remove_var("PVC_STORE_FINGERPRINT_SALT");
    assert_ne!(base, salted);

    let (path, _guard) = scratch("salt");
    let one = r#"{"kind":"figure","id":2}"#;
    let (warmer, _) = catalog_with_store(&path, base);
    let fresh = warmer.handle_lines(&[one]).remove(0).compact();
    drop(warmer);

    let (s, status) = catalog_with_store(&path, salted);
    assert!(matches!(status, OpenStatus::Invalidated { .. }));
    // The service still answers — it recomputes and re-warms the store
    // under the new fingerprint, byte-identically.
    let rebuilt = s.handle_lines(&[one]).remove(0).compact();
    assert_eq!(rebuilt, fresh);
    assert_eq!(s.metrics().counter("serve.store.write"), 1);
}

//! End-to-end properties of the HTTP/1.1 frontend: the `POST /query`
//! bytes are identical to the stdin frontend's, keep-alive connections
//! replay to byte-identical bodies, `/metrics` exposes the global and
//! per-shard `serve.*` counters, content negotiation unwraps rendered
//! text, and `POST /shutdown` stops the accept loop gracefully.
//!
//! The service holds `Rc`/`RefCell` state (deliberately: shards
//! partition state, not OS threads), so each test constructs it inside
//! the server thread and talks to it like any other client would —
//! over a socket.

use pvc_core::Json;
use pvc_report::serve::{CatalogExecutor, CANNED_REQUESTS};
use pvc_serve::http::serve_http;
use pvc_serve::{Request, ServeConfig, Service, Telemetry};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

fn cfg(shards: usize) -> ServeConfig {
    ServeConfig { shards, ..ServeConfig::default() }
}

/// Boots the catalog service behind the HTTP frontend on an ephemeral
/// port; returns the address and the server thread handle (joins when
/// a client POSTs /shutdown).
fn boot(shards: usize) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || {
        let mut service = Service::new(CatalogExecutor, cfg(shards));
        service.set_telemetry(Telemetry::recording(64));
        serve_http(&listener, |req| pvc_report::httpfront::handle(&service, req))
            .expect("server loop exits cleanly");
    });
    (addr, handle)
}

/// Reads one HTTP response (fixed-length or chunked) off the wire.
fn read_response(r: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut status_line = String::new();
    r.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        r.read_line(&mut line).expect("header line");
        if line.trim_end().is_empty() {
            break;
        }
        let (n, v) = line.split_once(':').expect("header colon");
        headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let find = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
    };
    let mut body = Vec::new();
    if find("transfer-encoding").as_deref() == Some("chunked") {
        loop {
            let mut size_line = String::new();
            r.read_line(&mut size_line).expect("chunk size");
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex size");
            let mut chunk = vec![0u8; size + 2];
            r.read_exact(&mut chunk).expect("chunk body");
            if size == 0 {
                break;
            }
            body.extend_from_slice(&chunk[..size]);
        }
    } else if let Some(len) = find("content-length") {
        let mut fixed = vec![0u8; len.parse().expect("length")];
        r.read_exact(&mut fixed).expect("fixed body");
        body = fixed;
    }
    (status, headers, body)
}

fn request(
    w: &mut TcpStream,
    r: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    accept: Option<&str>,
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    if let Some(a) = accept {
        head.push_str(&format!("Accept: {a}\r\n"));
    }
    if let Some(b) = body {
        head.push_str(&format!("Content-Length: {}\r\n", b.len()));
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes()).expect("write head");
    if let Some(b) = body {
        w.write_all(b.as_bytes()).expect("write body");
    }
    read_response(r)
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn shutdown(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<()>) {
    let (mut w, mut r) = connect(addr);
    let (status, _, body) = request(&mut w, &mut r, "POST", "/shutdown", None, None);
    assert_eq!(status, 200);
    let envelope = pvc_core::json::parse(std::str::from_utf8(&body).unwrap().trim())
        .expect("shutdown envelope parses");
    assert_eq!(
        envelope.get("result").and_then(|b| b.get("shutting_down")),
        Some(&Json::Bool(true))
    );
    handle.join().expect("server thread exits after shutdown");
}

/// The canned CI batch as one stdin-frontend array line.
fn canned_line() -> String {
    format!("[{}]", CANNED_REQUESTS.join(","))
}

/// What the stdin frontend prints for `canned_line()`: one compact
/// array line. Computed against a local service with the same knobs.
fn stdin_bytes(shards: usize) -> String {
    let service = Service::new(CatalogExecutor, cfg(shards));
    let batch: Vec<_> = match pvc_core::json::parse(&canned_line()) {
        Ok(Json::Arr(items)) => items.into_iter().map(Request::from_json).collect(),
        _ => panic!("canned line is an array"),
    };
    format!("{}\n", Json::Arr(service.handle_batch(batch)).compact())
}

#[test]
fn query_bytes_match_stdin_frontend_and_replay_identically_over_keepalive() {
    let (addr, handle) = boot(2);
    let line = canned_line();
    let (mut w, mut r) = connect(addr);

    // Two replays over ONE keep-alive connection.
    let (status, _, first) = request(&mut w, &mut r, "POST", "/query", None, Some(&line));
    assert_eq!(status, 200);
    let (status, _, second) = request(&mut w, &mut r, "POST", "/query", None, Some(&line));
    assert_eq!(status, 200);
    assert_eq!(
        first, second,
        "cold and cache-warm replies must be byte-identical"
    );
    assert_eq!(
        String::from_utf8(first).expect("utf8 body"),
        stdin_bytes(1),
        "HTTP /query bytes must equal the stdin frontend's array line \
         (and the 2-shard dispatcher must equal the 1-shard output)"
    );

    // The same connection scrapes /metrics: global and per-shard
    // counters are exposed in Prometheus text format.
    let (status, headers, metrics) = request(&mut w, &mut r, "GET", "/metrics", None, None);
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.contains("version=0.0.4")));
    let text = String::from_utf8(metrics).expect("metrics utf8");
    assert!(text.lines().any(|l| l.starts_with("serve_requests ")));
    assert!(
        text.lines().any(|l| l.starts_with("serve_shard0_")),
        "shard 0 counters exposed:\n{text}"
    );
    assert!(
        text.lines().any(|l| l.starts_with("serve_shard1_")),
        "shard 1 counters exposed"
    );
    drop(w);
    drop(r);
    shutdown(addr, handle);
}

#[test]
fn stats_route_reports_per_shard_breakdown() {
    let (addr, handle) = boot(2);
    let (mut w, mut r) = connect(addr);
    let (status, _, _) = request(
        &mut w,
        &mut r,
        "POST",
        "/query",
        None,
        Some(r#"{"kind":"table","id":2}"#),
    );
    assert_eq!(status, 200);
    let (status, _, body) = request(&mut w, &mut r, "GET", "/stats", None, None);
    assert_eq!(status, 200);
    let envelope = pvc_core::json::parse(std::str::from_utf8(&body).unwrap().trim())
        .expect("stats envelope parses");
    let shards = envelope
        .get("result")
        .and_then(|b| b.get("shards"))
        .and_then(Json::as_array)
        .expect("stats carries the shards breakdown");
    assert_eq!(shards.len(), 2);
    let hits_plus_misses: i64 = shards
        .iter()
        .map(|e| {
            let int = |f: &str| match e.get(f) {
                Some(Json::Int(v)) => *v,
                _ => panic!("breakdown missing {f}"),
            };
            int("cache_hits") + int("misses")
        })
        .sum();
    assert_eq!(hits_plus_misses, 1, "exactly one routed request so far");
    drop(w);
    drop(r);
    shutdown(addr, handle);
}

#[test]
fn catalog_routes_negotiate_content_type() {
    let (addr, handle) = boot(1);
    let (mut w, mut r) = connect(addr);

    // text/plain unwraps the rendered table text.
    let (status, headers, body) =
        request(&mut w, &mut r, "GET", "/table/2", Some("text/plain"), None);
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("text/plain")));
    let text = String::from_utf8(body).expect("utf8");
    assert_eq!(text, pvc_report::tables::render_table2());

    // Default (no Accept) answers the canonical JSON envelope.
    let (status, headers, body) = request(&mut w, &mut r, "GET", "/table/2", None, None);
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("application/json")));
    let envelope = pvc_core::json::parse(std::str::from_utf8(&body).unwrap().trim())
        .expect("envelope parses");
    assert!(envelope.get("result").is_some());

    // Figure 1 negotiates CSV.
    let (status, headers, body) =
        request(&mut w, &mut r, "GET", "/figure/1", Some("text/csv"), None);
    assert_eq!(status, 200);
    assert!(headers
        .iter()
        .any(|(n, v)| n == "content-type" && v.starts_with("text/csv")));
    assert!(std::str::from_utf8(&body)
        .expect("utf8")
        .starts_with("footprint_bytes,"));

    // Unknown routes 404 without killing the connection.
    let (status, _, _) = request(&mut w, &mut r, "GET", "/nope", None, None);
    assert_eq!(status, 404);
    let (status, _, _) = request(&mut w, &mut r, "GET", "/healthz", None, None);
    assert_eq!(status, 200, "connection survives a 404");
    drop(w);
    drop(r);
    shutdown(addr, handle);
}

#[test]
fn client_disconnects_do_not_kill_the_http_frontend() {
    let (addr, handle) = boot(2);
    // Half a request, then vanish.
    {
        let mut broken = TcpStream::connect(addr).expect("connect");
        broken.write_all(b"POST /query HTTP/1.1\r\nContent-Le").expect("partial");
    }
    // A body that never arrives.
    {
        let mut liar = TcpStream::connect(addr).expect("connect");
        liar.write_all(b"POST /query HTTP/1.1\r\nContent-Length: 999\r\n\r\n{")
            .expect("headers only");
    }
    let (mut w, mut r) = connect(addr);
    let (status, _, body) = request(&mut w, &mut r, "GET", "/healthz", None, None);
    assert_eq!(status, 200);
    assert_eq!(body, b"ok\n");
    drop(w);
    drop(r);
    shutdown(addr, handle);
}

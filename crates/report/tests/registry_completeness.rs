//! Registry completeness: the one dispatch layer really covers every
//! catalog the repo keeps — Table I rows, the 10-workload profile
//! catalog, and the pvc-validate expectation pins all resolve to
//! registered scenarios, and no registered workload family is orphaned
//! from the paper's catalogs in the reverse direction.

use pvc_arch::System;
use pvc_report::scenarios::registry;
use pvc_scenario::Workload;
use std::collections::BTreeSet;

/// Families registered on any system.
fn registered_families() -> BTreeSet<&'static str> {
    registry().iter().map(|s| s.id().workload.family()).collect()
}

#[test]
fn grid_has_the_expected_size() {
    // 61 standard scenarios + the figure pipeline on both PVC systems.
    assert_eq!(registry().len(), 63);
}

#[test]
fn every_table1_row_resolves_to_registered_scenarios() {
    let families = registered_families();
    for entry in pvc_microbench::catalog::TABLE_I {
        for slug in entry.workloads {
            assert!(
                families.contains(slug),
                "Table I row '{}' binds workload family '{slug}' with no registered scenario",
                entry.name
            );
            // The family has at least one concrete scenario on Aurora.
            assert!(
                registry()
                    .iter()
                    .any(|s| s.id().workload.family() == *slug
                        && s.id().system == System::Aurora),
                "family '{slug}' has no Aurora scenario"
            );
        }
    }
}

#[test]
fn every_profile_name_resolves() {
    let profiles = pvc_report::profile::workloads(System::Aurora);
    assert_eq!(profiles.len(), 10, "the profile catalog is 10 workloads");
    for (name, _) in profiles {
        registry()
            .profile(name, System::Aurora)
            .unwrap_or_else(|e| panic!("profile '{name}': {e}"));
    }
}

#[test]
fn every_expectation_pin_resolves_in_the_report_registry() {
    // Unlike the standard grid, the report registry also holds the
    // figure pipeline, so here NO pin is exempt.
    for e in pvc_validate::catalog() {
        let Some(id) = e.scenario else { continue };
        let resolved = registry()
            .get(&id.slug(), id.system)
            .unwrap_or_else(|err| panic!("expectation '{}': {err}", e.id));
        assert_eq!(resolved.id(), id, "expectation '{}' binding drifted", e.id);
    }
}

#[test]
fn no_registered_family_is_orphaned() {
    // Reverse direction: every registered family is accounted for by a
    // paper catalog — Table I (microbenchmarks), Table V/VI (apps), the
    // fabric section, or the figure pipeline.
    let table1: BTreeSet<&str> = pvc_microbench::catalog::TABLE_I
        .iter()
        .flat_map(|e| e.workloads.iter().copied())
        .collect();
    let apps: BTreeSet<&str> = [
        Workload::MiniBude,
        Workload::CloverLeaf,
        Workload::MiniQmc,
        Workload::MiniGamess,
        Workload::OpenMc,
        Workload::Hacc,
    ]
    .iter()
    .map(|w| w.family())
    .collect();
    for family in registered_families() {
        let accounted = table1.contains(family)
            || apps.contains(family)
            || family == "allreduce" // §IV-A4, fabric model
            || family == "figures"; // Figures 2-4 pipeline
        assert!(accounted, "registered family '{family}' maps to no catalog");
    }
    // And the full workload enum is exercised: nothing declared in
    // pvc-scenario is left unregistered.
    let families = registered_families();
    for w in Workload::ALL {
        assert!(families.contains(w.family()), "workload {w:?} never registered");
    }
}

#[test]
fn uncovered_scenario_keys_parse_back_into_the_grid() {
    let uncovered = pvc_validate::uncovered_scenarios();
    assert!(!uncovered.is_empty());
    for key in &uncovered {
        let (slug, sys) = key.split_once('@').expect("key is slug@system");
        let system: System = sys.parse().unwrap_or_else(|e| panic!("{key}: {e}"));
        registry()
            .get(slug, system)
            .unwrap_or_else(|e| panic!("uncovered key '{key}' does not resolve: {e}"));
    }
}

/// No orphaned chaos dimensions: every fault kind in the published
/// grammar (a) is advertised by a `GRAMMAR` line, and (b) either
/// applies cleanly to, or is typed-rejected by, every system in the
/// registered grid — there is no fault that panics or that no
/// registered scenario could ever exercise.
#[test]
fn every_chaos_dimension_reaches_the_registered_grid() {
    use pvc_arch::chaos::{ChaosSpec, GRAMMAR};

    // One representative spec per fault kind, valid grammar on any PVC
    // node (pcie:1x1 is a downgrade from every real link).
    let representatives = [
        ("xelink", "xelink:0:0.5"),
        ("pcie", "pcie:1x1"),
        ("clock", "clock:0.1"),
        ("stackdown", "stackdown:1"),
        ("hbm", "hbm:0.5"),
    ];
    let mut systems: Vec<System> = Vec::new();
    for s in registry().iter() {
        if !systems.contains(&s.id().system) {
            systems.push(s.id().system);
        }
    }
    assert!(!systems.is_empty());
    for (kind, token) in representatives {
        assert!(
            GRAMMAR.iter().any(|line| line.starts_with(kind)),
            "fault kind '{kind}' missing from the advertised grammar"
        );
        let spec = ChaosSpec::parse(token).expect("representative spec parses");
        assert_eq!(spec.faults().len(), 1);
        assert_eq!(spec.faults()[0].kind(), kind);
        let mut applies_somewhere = false;
        for &system in &systems {
            // Ok or typed rejection; a panic here fails the test.
            applies_somewhere |= spec.apply(system.node()).is_ok();
        }
        assert!(
            applies_somewhere,
            "fault kind '{kind}' applies to no registered system — orphaned dimension"
        );
    }
    // And the reverse direction: the grammar advertises nothing the
    // parser does not recognise.
    for line in GRAMMAR {
        let kind = line.split(':').next().unwrap();
        assert!(
            representatives.iter().any(|(k, _)| *k == kind),
            "grammar line '{line}' names unknown fault kind '{kind}'"
        );
    }
}

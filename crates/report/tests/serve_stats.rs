//! End-to-end telemetry through the catalog executor: the `stats`
//! request kind answers with real per-kind cost quantiles and the
//! `simrt.*` work counters attributed by the flow solver, the access
//! log and stats body are byte-stable across identical services (the
//! property ci gate 11 checks from the CLI), and the flight recorder
//! pins the most recent shed request end to end.

use pvc_core::Json;
use pvc_report::serve::{CatalogExecutor, CANNED_REQUESTS};
use pvc_serve::{Outcome, Request, ServeConfig, Service, Telemetry, STATS_KIND};

fn pin_threads() {
    std::env::set_var("PVC_THREADS", "2");
}

fn service(cfg: ServeConfig) -> Service<CatalogExecutor> {
    let mut s = Service::new(CatalogExecutor, cfg);
    s.set_telemetry(Telemetry::recording(64));
    s
}

fn canned_lines() -> Vec<&'static str> {
    CANNED_REQUESTS.to_vec()
}

const STATS: &str = r#"{"kind":"stats"}"#;

/// One canned batch plus a stats request: the stats body carries the
/// catalog's real counters, per-kind cost quantiles, and the solver
/// work the run request attributed through its atoms.
#[test]
fn stats_kind_reports_catalog_counters_and_quantiles() {
    pin_threads();
    let s = service(ServeConfig::default());
    let mut lines = canned_lines();
    lines.push(STATS);
    let responses = s.handle_lines(&lines);
    let body = responses.last().unwrap().get("result").expect("stats ok");
    let counters = body.get("counters").expect("counters section");
    assert_eq!(
        counters.get("serve.requests"),
        Some(&Json::Int(lines.len() as i64))
    );
    assert_eq!(
        counters.get("serve.cache.miss"),
        Some(&Json::Int(CANNED_REQUESTS.len() as i64))
    );
    // The run request's atom embedded its flow-solver effort, and the
    // service merged it into the shared registry.
    let flow_runs = counters
        .get("simrt.flow.runs")
        .and_then(|v| match v {
            Json::Int(n) => Some(*n),
            _ => None,
        })
        .expect("solver work attributed");
    assert!(flow_runs > 0);
    // Every canned kind declared its own cost histogram lazily.
    let q = body.get("quantiles").expect("quantiles section");
    for kind in ["table", "figure", "pcie", "run"] {
        let h = q
            .get(&format!("serve.cost.{kind}"))
            .unwrap_or_else(|| panic!("histogram for {kind}"));
        assert_eq!(h.get("count"), Some(&Json::Int(1)));
        let (p50, p99) = (
            h.get("p50").and_then(Json::as_num).unwrap(),
            h.get("p99").and_then(Json::as_num).unwrap(),
        );
        assert!(p50 <= p99, "{kind}: p50 {p50} > p99 {p99}");
    }
    // The recorder dump rode along inside the same stats body.
    let recent = body
        .get("flight_recorder")
        .and_then(|f| f.get("recent"))
        .and_then(Json::as_array)
        .expect("recorder dumped");
    assert_eq!(recent.len(), CANNED_REQUESTS.len());
}

/// Two fresh services fed the identical request sequence produce
/// byte-identical envelopes, access logs, stats bodies and exposition
/// text — the determinism ci gate 11 re-checks through the CLI.
#[test]
fn stats_exposition_and_access_log_are_byte_stable() {
    pin_threads();
    let run = || {
        let s = service(ServeConfig::default());
        let mut lines = canned_lines();
        lines.push(STATS);
        let envelopes: Vec<String> =
            s.handle_lines(&lines).iter().map(Json::canonical).collect();
        (
            envelopes,
            s.telemetry().drain_access_log(),
            s.stats_body().canonical(),
            s.metrics().expose_text(),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.0, b.0, "envelopes");
    assert_eq!(a.1, b.1, "access log");
    assert_eq!(a.2, b.2, "stats body");
    assert_eq!(a.3, b.3, "exposition text");
}

/// Telemetry is a pure observation: the catalog responses are
/// byte-identical with and without a recorder attached.
#[test]
fn canned_responses_are_unchanged_by_telemetry() {
    pin_threads();
    let run = |telemetry: bool| -> Vec<String> {
        let mut s = Service::new(CatalogExecutor, ServeConfig::default());
        if telemetry {
            s.set_telemetry(Telemetry::recording(8));
        }
        let lines = canned_lines();
        let mut out: Vec<String> =
            s.handle_lines(&lines).iter().map(Json::canonical).collect();
        // Replay to cover the cache-hit path too.
        out.extend(s.handle_lines(&lines).iter().map(Json::canonical));
        out
    };
    assert_eq!(run(false), run(true));
}

/// A shed catalog request is pinned by the flight recorder with its
/// full trace: the parsed request text and the exact error envelope.
#[test]
fn flight_recorder_reproduces_shed_catalog_request() {
    pin_threads();
    let s = service(ServeConfig {
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let lines = canned_lines();
    let responses = s.handle_lines(&lines);
    // Depth 1: the first unique request takes the only slot, the rest
    // shed. The anomaly is the most recent shed, i.e. the last line.
    assert_eq!(s.metrics().counter("serve.rejected.overload"), 3);
    let a = s.telemetry().last_anomaly().expect("shed pinned");
    assert_eq!(a.telemetry.outcome, Outcome::Overload);
    assert_eq!(a.telemetry.kind, "run");
    let last = lines.last().unwrap();
    assert_eq!(
        a.request_text.as_deref(),
        Some(Request::parse(last).unwrap().text()),
        "the recorder keeps the canonical request text"
    );
    assert_eq!(
        &a.envelope,
        responses.last().unwrap(),
        "replaying the anomaly envelope reproduces the exact response"
    );
}

/// The stats request itself never occupies a queue slot: it answers
/// even when the queue has no room for ordinary work.
#[test]
fn stats_answers_even_under_full_queue() {
    pin_threads();
    let s = service(ServeConfig {
        queue_depth: 1,
        ..ServeConfig::default()
    });
    let mut lines = canned_lines();
    lines.push(STATS);
    let responses = s.handle_lines(&lines);
    let stats = responses.last().unwrap();
    assert_eq!(
        stats.get("request").and_then(|r| r.get("kind")).and_then(Json::as_str),
        Some(STATS_KIND)
    );
    let counters = stats.get("result").unwrap().get("counters").unwrap();
    assert_eq!(counters.get("serve.rejected.overload"), Some(&Json::Int(3)));
    assert_eq!(counters.get("serve.stats"), Some(&Json::Int(1)));
}

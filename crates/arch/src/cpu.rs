//! Host CPU socket models.
//!
//! The paper repeatedly shows that the *host side* of the node shapes GPU
//! results: PCIe "scales poorly for the full node … suggesting some
//! contention on the host side" (§IV-B4), and miniQMC's full-node FOM is
//! limited by "resources on each CPU socket … shared by more GPUs
//! attached to it" (§V-B1). We therefore model each socket with a core
//! count, a memory bandwidth, and per-socket PCIe root-complex pools that
//! the fabric's flows contend on.

/// One CPU socket. Nodes in this study all have two identical sockets.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Marketing name ("Xeon Platinum 8468", …).
    pub name: &'static str,
    /// Physical cores per socket.
    pub cores: u32,
    /// Hardware threads per socket.
    pub threads: u32,
    /// DDR (or DDR+HBM) memory bandwidth per socket, bytes/s, as
    /// achievable by host-side application code.
    pub mem_bandwidth: f64,
    /// Host DRAM capacity per socket, bytes.
    pub mem_capacity: u64,
    /// Root-complex aggregate for host→device DMA per socket, bytes/s.
    ///
    /// Calibrated from §IV-B4 / Table II: Aurora's full-node H2D rate of
    /// 329 GB/s over 6 cards ÷ 2 sockets ≈ 165 GB/s per socket — exactly
    /// 3 cards × 55 GB/s, i.e. H2D sits right at the pool edge.
    pub rc_h2d: f64,
    /// Root-complex aggregate for device→host DMA per socket, bytes/s.
    ///
    /// Aurora full-node D2H measures 264 GB/s = 2 × 132 GB/s per socket,
    /// well below 3 × 56 GB/s of card demand: the D2H direction is the
    /// contended one (§IV-B4's "40%" observation).
    pub rc_d2h: f64,
    /// Root-complex aggregate over both directions per socket, bytes/s.
    ///
    /// Aurora full-node bidirectional measures 350 GB/s = 2 × 175 GB/s
    /// per socket against 3 × 77 GB/s of demand.
    pub rc_duplex: f64,
}

impl CpuModel {
    /// Intel Xeon Platinum 8468 (Dawn and JLSE-H100 hosts, §III). Two
    /// GPUs per socket never saturate its root complex in the paper's
    /// data, so its pools are set comfortably above demand.
    pub fn xeon_platinum_8468() -> Self {
        CpuModel {
            name: "Intel Xeon Platinum 8468",
            cores: 48,
            threads: 96,
            // 8-channel DDR5-4800: ~307 GB/s spec; ~80% achievable.
            mem_bandwidth: 245e9,
            mem_capacity: 512 * (1 << 30),
            rc_h2d: 250e9,
            rc_d2h: 250e9,
            rc_duplex: 300e9,
        }
    }

    /// Intel Xeon Gold "5320" with 64 GB HBM (Aurora host, §III). The
    /// root-complex pools are the calibrated values discussed on the
    /// field docs above.
    pub fn xeon_max_aurora() -> Self {
        CpuModel {
            name: "Intel Xeon CPU Max (Aurora, 52c + 64GB HBM)",
            cores: 52,
            threads: 104,
            // DDR5 + on-package HBM; host-visible stream ~400 GB/s.
            mem_bandwidth: 400e9,
            mem_capacity: (512 + 64) * (1 << 30),
            rc_h2d: 165e9,
            rc_d2h: 132e9,
            rc_duplex: 175e9,
        }
    }

    /// AMD EPYC 7713 (JLSE-MI250 host, §III).
    pub fn epyc_7713() -> Self {
        CpuModel {
            name: "AMD EPYC 7713",
            cores: 64,
            threads: 128,
            // 8-channel DDR4-3200: 204.8 GB/s spec; ~80% achievable.
            mem_bandwidth: 164e9,
            mem_capacity: 256 * (1 << 30),
            rc_h2d: 200e9,
            rc_d2h: 200e9,
            rc_duplex: 250e9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aurora_socket_pools_match_calibration() {
        let cpu = CpuModel::xeon_max_aurora();
        // 2 sockets × pool = full-node aggregate in Table II.
        assert_eq!(2.0 * cpu.rc_h2d, 330e9); // ≈ 329 GB/s measured
        assert_eq!(2.0 * cpu.rc_d2h, 264e9);
        assert_eq!(2.0 * cpu.rc_duplex, 350e9);
    }

    #[test]
    fn dawn_socket_pools_never_bind_two_cards() {
        let cpu = CpuModel::xeon_platinum_8468();
        // Dawn: 2 cards/socket × 55 GB/s H2D demand = 110 GB/s < pool.
        assert!(2.0 * 55e9 < cpu.rc_h2d);
        assert!(2.0 * 56e9 < cpu.rc_d2h);
        assert!(2.0 * 77e9 < cpu.rc_duplex);
    }

    #[test]
    fn core_counts_match_paper_section_iii() {
        assert_eq!(CpuModel::xeon_platinum_8468().cores, 48);
        assert_eq!(CpuModel::xeon_max_aurora().cores, 52);
        assert_eq!(CpuModel::xeon_max_aurora().threads, 104);
        assert_eq!(CpuModel::epyc_7713().cores, 64);
    }
}

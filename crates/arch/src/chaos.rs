//! Typed fault-injection overlays (the "chaos lab").
//!
//! A [`ChaosSpec`] is a deterministic degradation applied to a node model
//! before a scenario runs: derate or kill an Xe-Link plane (§IV-A4's
//! two-plane topology), downgrade the PCIe link, cap the governor clock,
//! drop stacks' worth of compute + HBM, or scale device-memory bandwidth.
//! Specs compose from the calibration primitives the model already has —
//! capacity scaling, clock caps, resource disabling — so a degraded run
//! exercises exactly the same code paths as a healthy one.
//!
//! Overlays install thread-locally via [`with_overlay`]: every
//! [`System::node`] call on that thread sees the degraded model, and the
//! guard restores the baseline on exit (including unwinds). Everything is
//! validated up front with a typed [`ChaosError`], and every fault is
//! non-improving by construction: capacities and clocks only ever shrink,
//! never grow.

use crate::node::NodeModel;
use crate::systems::System;
use std::cell::RefCell;
use std::fmt;

/// One fault. The spec grammar renders each as a compact token; see
/// [`GRAMMAR`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChaosFault {
    /// Derate one Xe-Link plane's links by `factor` (0 kills the plane:
    /// its links stay in the contention graph but are disabled, so
    /// crossing transfers strand). Token: `xelink:<plane>:<factor>`.
    XeLinkPlane { plane: u8, factor: f64 },
    /// Downgrade the PCIe link to `gen` x `lanes`. Bandwidth scales by
    /// `(lanes/current) × 2^(gen-current)`; upgrades are rejected.
    /// Token: `pcie:<gen>x<lanes>`.
    PcieDowngrade { gen: u8, lanes: u8 },
    /// Cap the governor clock (max and the FP64 sustained state) at
    /// `ghz`. Caps above the current clock are no-ops. Token:
    /// `clock:<ghz>`.
    ClockCap { ghz: f64 },
    /// Drop `count` stacks' worth of compute and HBM, modelled as a
    /// uniform `(n-count)/n` derate across partitions so rank placement
    /// and fabric paths are unchanged. Token: `stackdown:<count>`.
    StackDown { count: u32 },
    /// Scale per-partition device-memory bandwidth by `factor` in
    /// (0, 1]. Token: `hbm:<factor>`.
    MemoryDerate { factor: f64 },
}

/// Typed rejection of a malformed or non-degrading spec.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// An empty token between '+' separators (or a bare '+').
    EmptyFault,
    /// The fault name matched nothing in the grammar.
    UnknownFault { got: String },
    /// The fault's arguments did not parse or are out of range.
    BadArgs { fault: &'static str, detail: String },
    /// The spec would *improve* the node (e.g. a PCIe upgrade): chaos
    /// only degrades, so monotonicity stays provable.
    NotADegradation { fault: &'static str, detail: String },
    /// Well-formed, but impossible on this node (e.g. dropping every
    /// stack).
    InvalidForSystem {
        fault: &'static str,
        system: System,
        detail: String,
    },
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::EmptyFault => {
                write!(f, "empty fault token; a spec is '+'-joined tokens like xelink:0:0.5")
            }
            ChaosError::UnknownFault { got } => write!(
                f,
                "unknown fault '{got}'; expected one of: xelink, pcie, clock, stackdown, hbm"
            ),
            ChaosError::BadArgs { fault, detail } => {
                write!(f, "bad arguments for '{fault}': {detail}")
            }
            ChaosError::NotADegradation { fault, detail } => {
                write!(f, "'{fault}' is not a degradation: {detail}")
            }
            ChaosError::InvalidForSystem { fault, system, detail } => {
                write!(f, "'{fault}' is invalid on {}: {detail}", system.cli_name())
            }
        }
    }
}

impl std::error::Error for ChaosError {}

/// One line per fault kind: token shape and meaning. Rendered by
/// `reproduce list`, the chaos verb usage text, and the docs, so the
/// advertised grammar can never drift from the parser.
pub const GRAMMAR: [&str; 5] = [
    "xelink:<plane>:<factor>  derate one Xe-Link plane (factor in [0,1]; 0 kills it)",
    "pcie:<gen>x<lanes>       downgrade the PCIe link (e.g. pcie:4x8; upgrades rejected)",
    "clock:<ghz>              cap the governor clock (max and FP64 sustained states)",
    "stackdown:<count>        drop <count> stacks' worth of compute + HBM bandwidth",
    "hbm:<factor>             scale device-memory bandwidth (factor in (0,1])",
];

impl ChaosFault {
    /// Grammar name of the fault kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ChaosFault::XeLinkPlane { .. } => "xelink",
            ChaosFault::PcieDowngrade { .. } => "pcie",
            ChaosFault::ClockCap { .. } => "clock",
            ChaosFault::StackDown { .. } => "stackdown",
            ChaosFault::MemoryDerate { .. } => "hbm",
        }
    }

    fn parse(token: &str) -> Result<ChaosFault, ChaosError> {
        let (kind, args) = match token.split_once(':') {
            Some((k, a)) => (k, a),
            None => (token, ""),
        };
        match kind {
            "" => Err(ChaosError::EmptyFault),
            "xelink" => {
                let (p, f) = args.split_once(':').ok_or_else(|| ChaosError::BadArgs {
                    fault: "xelink",
                    detail: format!("expected xelink:<plane>:<factor>, got '{token}'"),
                })?;
                let plane: u8 = p.parse().map_err(|_| ChaosError::BadArgs {
                    fault: "xelink",
                    detail: format!("plane '{p}' is not an integer"),
                })?;
                if plane > 1 {
                    return Err(ChaosError::BadArgs {
                        fault: "xelink",
                        detail: format!("plane {plane} out of range; §IV-A4 has planes 0 and 1"),
                    });
                }
                let factor = parse_num("xelink", "factor", f)?;
                if factor > 1.0 {
                    return Err(ChaosError::NotADegradation {
                        fault: "xelink",
                        detail: format!("factor {factor} would speed the plane up"),
                    });
                }
                if factor < 0.0 {
                    return Err(ChaosError::BadArgs {
                        fault: "xelink",
                        detail: format!("factor {factor} is negative"),
                    });
                }
                Ok(ChaosFault::XeLinkPlane { plane, factor })
            }
            "pcie" => {
                let (g, l) = args.split_once('x').ok_or_else(|| ChaosError::BadArgs {
                    fault: "pcie",
                    detail: format!("expected pcie:<gen>x<lanes>, got '{token}'"),
                })?;
                let gen: u8 = g.parse().map_err(|_| ChaosError::BadArgs {
                    fault: "pcie",
                    detail: format!("generation '{g}' is not an integer"),
                })?;
                let lanes: u8 = l.parse().map_err(|_| ChaosError::BadArgs {
                    fault: "pcie",
                    detail: format!("lane count '{l}' is not an integer"),
                })?;
                if !(1..=6).contains(&gen) {
                    return Err(ChaosError::BadArgs {
                        fault: "pcie",
                        detail: format!("generation {gen} out of range 1..=6"),
                    });
                }
                if !(1..=16).contains(&lanes) {
                    return Err(ChaosError::BadArgs {
                        fault: "pcie",
                        detail: format!("lane count {lanes} out of range 1..=16"),
                    });
                }
                Ok(ChaosFault::PcieDowngrade { gen, lanes })
            }
            "clock" => {
                let ghz = parse_num("clock", "cap", args)?;
                if ghz <= 0.0 {
                    return Err(ChaosError::BadArgs {
                        fault: "clock",
                        detail: format!("cap {ghz} GHz is not positive"),
                    });
                }
                Ok(ChaosFault::ClockCap { ghz })
            }
            "stackdown" => {
                let count: u32 = args.parse().map_err(|_| ChaosError::BadArgs {
                    fault: "stackdown",
                    detail: format!("count '{args}' is not an integer"),
                })?;
                if count == 0 {
                    return Err(ChaosError::BadArgs {
                        fault: "stackdown",
                        detail: "count must be at least 1".into(),
                    });
                }
                Ok(ChaosFault::StackDown { count })
            }
            "hbm" => {
                let factor = parse_num("hbm", "factor", args)?;
                if factor > 1.0 {
                    return Err(ChaosError::NotADegradation {
                        fault: "hbm",
                        detail: format!("factor {factor} would speed HBM up"),
                    });
                }
                if factor <= 0.0 {
                    return Err(ChaosError::BadArgs {
                        fault: "hbm",
                        detail: format!("factor {factor} outside (0, 1]"),
                    });
                }
                Ok(ChaosFault::MemoryDerate { factor })
            }
            other => Err(ChaosError::UnknownFault { got: other.to_string() }),
        }
    }

    /// Applies the fault to `node`, shrinking capacities/clocks in place.
    fn apply(&self, node: &mut NodeModel) -> Result<(), ChaosError> {
        match *self {
            ChaosFault::XeLinkPlane { plane, factor } => {
                node.fabric.plane_derate[plane as usize] *= factor;
            }
            ChaosFault::PcieDowngrade { gen, lanes } => {
                let ratio = (lanes as f64 / node.pcie.lanes as f64)
                    * 2f64.powi(gen as i32 - node.pcie.gen as i32);
                if ratio > 1.0 {
                    return Err(ChaosError::NotADegradation {
                        fault: "pcie",
                        detail: format!(
                            "gen{gen} x{lanes} is {ratio:.2}x the node's gen{} x{}",
                            node.pcie.gen, node.pcie.lanes
                        ),
                    });
                }
                node.pcie.gen = gen;
                node.pcie.lanes = lanes;
                node.pcie.raw_per_dir *= ratio;
                node.pcie.per_card_h2d *= ratio;
                node.pcie.per_card_d2h *= ratio;
                node.pcie.per_card_duplex *= ratio;
            }
            ChaosFault::ClockCap { ghz } => {
                let clock = &mut node.gpu.clock;
                clock.max_ghz = clock.max_ghz.min(ghz);
                clock.fp64_vector_ghz = clock.fp64_vector_ghz.min(ghz);
            }
            ChaosFault::StackDown { count } => {
                let n = node.partitions();
                if count >= n {
                    return Err(ChaosError::InvalidForSystem {
                        fault: "stackdown",
                        system: node.system,
                        detail: format!("dropping {count} of {n} stacks leaves nothing to run"),
                    });
                }
                let keep = (n - count) as f64 / n as f64;
                let part = &mut node.gpu.partition;
                scale_per_precision(&mut part.vector_ops_per_engine_clock, keep);
                scale_per_precision(&mut part.matrix_ops_per_engine_clock, keep);
                part.memory.spec_bandwidth *= keep;
                part.memory.random_concurrency *= keep;
            }
            ChaosFault::MemoryDerate { factor } => {
                node.gpu.partition.memory.spec_bandwidth *= factor;
            }
        }
        Ok(())
    }
}

fn scale_per_precision(pp: &mut crate::device::PerPrecision, k: f64) {
    pp.fp64 *= k;
    pp.fp32 *= k;
    pp.fp16 *= k;
    pp.bf16 *= k;
    pp.tf32 *= k;
    pp.fp8 *= k;
    pp.int8 *= k;
}

fn parse_num(fault: &'static str, what: &str, s: &str) -> Result<f64, ChaosError> {
    let v: f64 = s.parse().map_err(|_| ChaosError::BadArgs {
        fault,
        detail: format!("{what} '{s}' is not a number"),
    })?;
    if !v.is_finite() {
        return Err(ChaosError::BadArgs {
            fault,
            detail: format!("{what} '{s}' is not finite"),
        });
    }
    Ok(v)
}

impl fmt::Display for ChaosFault {
    /// The canonical token: parsing it back yields an equal fault.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosFault::XeLinkPlane { plane, factor } => write!(f, "xelink:{plane}:{factor}"),
            ChaosFault::PcieDowngrade { gen, lanes } => write!(f, "pcie:{gen}x{lanes}"),
            ChaosFault::ClockCap { ghz } => write!(f, "clock:{ghz}"),
            ChaosFault::StackDown { count } => write!(f, "stackdown:{count}"),
            ChaosFault::MemoryDerate { factor } => write!(f, "hbm:{factor}"),
        }
    }
}

/// An ordered list of faults, applied left to right. The empty spec is
/// the identity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosSpec {
    faults: Vec<ChaosFault>,
}

impl ChaosSpec {
    /// The identity overlay.
    pub fn empty() -> ChaosSpec {
        ChaosSpec::default()
    }

    /// A single-fault spec.
    pub fn single(fault: ChaosFault) -> ChaosSpec {
        ChaosSpec { faults: vec![fault] }
    }

    /// Parses a '+'-joined fault-token list ([`GRAMMAR`]). Whitespace
    /// around tokens is ignored; the empty string is the empty spec.
    pub fn parse(s: &str) -> Result<ChaosSpec, ChaosError> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(ChaosSpec::empty());
        }
        let faults = s
            .split('+')
            .map(|tok| ChaosFault::parse(tok.trim()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChaosSpec { faults })
    }

    /// True for the identity overlay.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in application order.
    pub fn faults(&self) -> &[ChaosFault] {
        &self.faults
    }

    /// This spec followed by `other` (left-to-right application).
    pub fn then(&self, other: &ChaosSpec) -> ChaosSpec {
        let mut faults = self.faults.clone();
        faults.extend_from_slice(&other.faults);
        ChaosSpec { faults }
    }

    /// The canonical spelling: numbers re-rendered through f64 `Display`,
    /// tokens '+'-joined. Parsing it back yields an equal spec, so equal
    /// specs — however spelled — share one canonical atom key.
    pub fn canonical(&self) -> String {
        self.faults
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Applies every fault to `node` in order. Errors leave no partial
    /// observable state (the partially-modified clone is dropped by the
    /// caller).
    pub fn apply(&self, mut node: NodeModel) -> Result<NodeModel, ChaosError> {
        for fault in &self.faults {
            fault.apply(&mut node)?;
        }
        Ok(node)
    }
}

impl fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl std::str::FromStr for ChaosSpec {
    type Err = ChaosError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ChaosSpec::parse(s)
    }
}

thread_local! {
    /// The per-thread overlay stack: every `System::node()` call folds
    /// the matching entries over the baseline in push order.
    static OVERLAYS: RefCell<Vec<(System, ChaosSpec)>> = const { RefCell::new(Vec::new()) };
}

/// Folds this thread's active overlays (for `system`) over `base`.
/// Called by [`System::node`]; a no-op when no overlay is installed.
pub(crate) fn overlaid(system: System, base: NodeModel) -> NodeModel {
    OVERLAYS.with(|o| {
        let stack = o.borrow();
        if stack.is_empty() {
            return base;
        }
        let mut node = base;
        for (sys, spec) in stack.iter() {
            if *sys == system {
                node = spec.apply(node).unwrap_or_else(|e| {
                    panic!("chaos overlay validated at install no longer applies: {e}")
                });
            }
        }
        node
    })
}

struct OverlayGuard;

impl Drop for OverlayGuard {
    fn drop(&mut self) {
        OVERLAYS.with(|o| {
            o.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `spec` overlaid on `system` for the current thread: any
/// `System::node()` call inside `f` (on this thread) sees the degraded
/// model. The overlay is validated against the node as currently
/// composed before installation — so nesting works and an installed
/// overlay can never fail to re-apply — and is popped when `f` returns
/// or unwinds.
pub fn with_overlay<R>(
    system: System,
    spec: &ChaosSpec,
    f: impl FnOnce() -> R,
) -> Result<R, ChaosError> {
    if spec.is_empty() {
        return Ok(f());
    }
    spec.apply(system.node())?;
    OVERLAYS.with(|o| o.borrow_mut().push((system, spec.clone())));
    let _guard = OverlayGuard;
    Ok(f())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_canonical() {
        for s in [
            "",
            "xelink:0:0.5",
            "xelink:1:0",
            "pcie:4x8",
            "clock:1.2",
            "stackdown:2",
            "hbm:0.25",
            "xelink:0:0+pcie:3x16+clock:0.8+stackdown:1+hbm:0.5",
        ] {
            let spec = ChaosSpec::parse(s).unwrap_or_else(|e| panic!("'{s}': {e}"));
            assert_eq!(spec.canonical(), s, "canonical spelling is stable");
            let again = ChaosSpec::parse(&spec.canonical()).unwrap();
            assert_eq!(again, spec, "round trip through canonical");
        }
    }

    #[test]
    fn non_canonical_spellings_normalise() {
        let a = ChaosSpec::parse("hbm:0.50").unwrap();
        let b = ChaosSpec::parse(" hbm:0.5 ").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical(), "hbm:0.5");
    }

    #[test]
    fn rejections_are_typed() {
        use ChaosError as E;
        type Want = fn(&E) -> bool;
        let cases: [(&str, Want); 8] = [
            ("+hbm:0.5", |e| matches!(e, E::EmptyFault)),
            ("gremlin:3", |e| matches!(e, E::UnknownFault { got } if got == "gremlin")),
            ("xelink:7:0.5", |e| matches!(e, E::BadArgs { fault: "xelink", .. })),
            ("xelink:0:NaN", |e| matches!(e, E::BadArgs { fault: "xelink", .. })),
            ("xelink:0:1.5", |e| matches!(e, E::NotADegradation { fault: "xelink", .. })),
            ("pcie:9x16", |e| matches!(e, E::BadArgs { fault: "pcie", .. })),
            ("clock:-1", |e| matches!(e, E::BadArgs { fault: "clock", .. })),
            ("hbm:0", |e| matches!(e, E::BadArgs { fault: "hbm", .. })),
        ];
        for (s, want) in cases {
            let err = ChaosSpec::parse(s).unwrap_err();
            assert!(want(&err), "'{s}' gave {err:?}");
        }
    }

    #[test]
    fn pcie_upgrades_rejected_at_apply_time() {
        // Gen6 x16 would be 2x Aurora's Gen5 x16.
        let spec = ChaosSpec::parse("pcie:6x16").unwrap();
        let err = spec.apply(System::Aurora.node()).unwrap_err();
        assert!(matches!(err, ChaosError::NotADegradation { fault: "pcie", .. }), "{err:?}");
        // Same gen, same lanes, is an allowed no-op.
        let same = ChaosSpec::parse("pcie:5x16").unwrap();
        assert_eq!(same.apply(System::Aurora.node()).unwrap(), System::Aurora.node());
    }

    #[test]
    fn stackdown_all_stacks_is_invalid_for_system() {
        let spec = ChaosSpec::parse("stackdown:12").unwrap();
        let err = spec.apply(System::Aurora.node()).unwrap_err();
        assert!(
            matches!(err, ChaosError::InvalidForSystem { fault: "stackdown", system: System::Aurora, .. }),
            "{err:?}"
        );
        // 11 of 12 is extreme but legal.
        assert!(ChaosSpec::parse("stackdown:11").unwrap().apply(System::Aurora.node()).is_ok());
    }

    #[test]
    fn empty_spec_is_the_identity() {
        for sys in System::ALL {
            assert_eq!(ChaosSpec::empty().apply(sys.node()).unwrap(), sys.node());
        }
    }

    #[test]
    fn faults_shrink_exactly_their_targets() {
        let base = System::Aurora.node();

        let hbm = ChaosSpec::parse("hbm:0.5").unwrap().apply(base.clone()).unwrap();
        assert_eq!(
            hbm.gpu.partition.memory.spec_bandwidth,
            base.gpu.partition.memory.spec_bandwidth * 0.5
        );
        assert_eq!(hbm.pcie, base.pcie);

        let clock = ChaosSpec::parse("clock:1.0").unwrap().apply(base.clone()).unwrap();
        assert_eq!(clock.gpu.clock.max_ghz, 1.0);
        assert_eq!(clock.gpu.clock.fp64_vector_ghz, 1.0);
        // A cap above the current clocks is a no-op.
        let lax = ChaosSpec::parse("clock:99").unwrap().apply(base.clone()).unwrap();
        assert_eq!(lax, base);

        let pcie = ChaosSpec::parse("pcie:4x8").unwrap().apply(base.clone()).unwrap();
        // Gen5→4 halves, x16→x8 halves again.
        assert_eq!(pcie.pcie.per_card_h2d, base.pcie.per_card_h2d * 0.25);
        assert_eq!(pcie.pcie.gen, 4);
        assert_eq!(pcie.pcie.lanes, 8);

        let xel = ChaosSpec::parse("xelink:1:0.5").unwrap().apply(base.clone()).unwrap();
        assert_eq!(xel.fabric.plane_derate, [1.0, 0.5]);
        assert_eq!(xel.fabric.remote_uni, base.fabric.remote_uni);

        let down = ChaosSpec::parse("stackdown:3").unwrap().apply(base.clone()).unwrap();
        let keep = 9.0 / 12.0;
        assert_eq!(
            down.gpu.partition.vector_ops_per_engine_clock.fp64,
            base.gpu.partition.vector_ops_per_engine_clock.fp64 * keep
        );
        assert_eq!(
            down.gpu.partition.memory.spec_bandwidth,
            base.gpu.partition.memory.spec_bandwidth * keep
        );
        assert_eq!(down.partitions(), base.partitions(), "topology unchanged");
    }

    #[test]
    fn overlay_scopes_to_the_closure_and_system() {
        let base = System::Aurora.node();
        let dawn = System::Dawn.node();
        let spec = ChaosSpec::parse("hbm:0.5").unwrap();
        let inside = with_overlay(System::Aurora, &spec, || {
            assert_eq!(System::Dawn.node(), dawn, "other systems untouched");
            System::Aurora.node()
        })
        .unwrap();
        assert_eq!(
            inside.gpu.partition.memory.spec_bandwidth,
            base.gpu.partition.memory.spec_bandwidth * 0.5
        );
        assert_eq!(System::Aurora.node(), base, "baseline restored on exit");
    }

    #[test]
    fn overlays_nest_and_compose() {
        let base = System::Dawn.node();
        let half = ChaosSpec::parse("hbm:0.5").unwrap();
        with_overlay(System::Dawn, &half, || {
            with_overlay(System::Dawn, &half, || {
                assert_eq!(
                    System::Dawn.node().gpu.partition.memory.spec_bandwidth,
                    base.gpu.partition.memory.spec_bandwidth * 0.25
                );
            })
            .unwrap();
            assert_eq!(
                System::Dawn.node().gpu.partition.memory.spec_bandwidth,
                base.gpu.partition.memory.spec_bandwidth * 0.5
            );
        })
        .unwrap();
        assert_eq!(System::Dawn.node(), base);
    }

    #[test]
    fn invalid_overlay_never_runs_the_closure() {
        let spec = ChaosSpec::parse("stackdown:8").unwrap(); // Dawn has 8
        let mut ran = false;
        let err = with_overlay(System::Dawn, &spec, || ran = true).unwrap_err();
        assert!(matches!(err, ChaosError::InvalidForSystem { .. }));
        assert!(!ran);
        assert_eq!(System::Dawn.node(), System::Dawn.node());
    }

    #[test]
    fn overlay_pops_on_unwind() {
        let base = System::Aurora.node();
        let spec = ChaosSpec::parse("clock:0.5").unwrap();
        let _ = std::panic::catch_unwind(|| {
            let _ = with_overlay(System::Aurora, &spec, || panic!("boom"));
        });
        assert_eq!(System::Aurora.node(), base, "guard restored on unwind");
    }

    #[test]
    fn grammar_covers_every_fault_kind() {
        let faults = [
            ChaosFault::XeLinkPlane { plane: 0, factor: 0.5 },
            ChaosFault::PcieDowngrade { gen: 4, lanes: 8 },
            ChaosFault::ClockCap { ghz: 1.0 },
            ChaosFault::StackDown { count: 1 },
            ChaosFault::MemoryDerate { factor: 0.5 },
        ];
        assert_eq!(faults.len(), GRAMMAR.len());
        for fault in faults {
            assert!(
                GRAMMAR.iter().any(|line| line.starts_with(fault.kind())),
                "GRAMMAR has no line for '{}'",
                fault.kind()
            );
        }
    }
}

//! The four systems of §III, fully parameterised.
//!
//! Aurora and Dawn share the PVC silicon but differ in: active Xe-Cores
//! per stack (56 vs 64 — §III), GPUs per node (6 vs 4), per-card power
//! cap (500 W vs 600 W) and host CPU. JLSE-H100 and JLSE-MI250 are the
//! comparison nodes.

use crate::cpu::CpuModel;
use crate::device::{CacheLevel, GpuModel, MemorySpec, Partition, PerPrecision, Vendor};
use crate::governor::{ClockPolicy, ScaleCurve};
use crate::node::{FabricSpec, NodeModel, PcieSpec};
use crate::units::{gb_s, GIB, KIB, MIB};

/// One of the four benchmarked systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// ALCF Aurora: 2× Xeon Max + 6× PVC (56 Xe-Cores/stack), 500 W cap.
    Aurora,
    /// Cambridge Dawn: 2× Xeon 8468 + 4× PVC (64 Xe-Cores/stack), 600 W cap.
    Dawn,
    /// JLSE H100 node: 2× Xeon 8468 + 4× H100 SXM5 80 GB.
    JlseH100,
    /// JLSE MI250 node: 2× EPYC 7713 + 4× MI250.
    JlseMi250,
}

impl System {
    /// All four systems in the order the paper's tables list them.
    pub const ALL: [System; 4] = [
        System::Aurora,
        System::Dawn,
        System::JlseH100,
        System::JlseMi250,
    ];

    /// The two PVC systems (microbenchmark Tables II/III cover only
    /// these).
    pub const PVC: [System; 2] = [System::Aurora, System::Dawn];

    /// Table-header label.
    pub fn label(self) -> &'static str {
        match self {
            System::Aurora => "Aurora (PVC)",
            System::Dawn => "Dawn (PVC)",
            System::JlseH100 => "JLSE (H100)",
            System::JlseMi250 => "JLSE (MI250)",
        }
    }

    /// True for the two Intel PVC systems.
    pub fn is_pvc(self) -> bool {
        matches!(self, System::Aurora | System::Dawn)
    }

    /// Canonical lower-case CLI/request name (`aurora`, `dawn`, `h100`,
    /// `mi250`). This is THE machine-readable spelling: `FromStr` parses
    /// it back, and every frontend (reproduce CLI, serve requests,
    /// profiles, scenario keys) shares the pair.
    pub fn cli_name(self) -> &'static str {
        match self {
            System::Aurora => "aurora",
            System::Dawn => "dawn",
            System::JlseH100 => "h100",
            System::JlseMi250 => "mi250",
        }
    }

    /// Builds the node model. Any chaos overlay installed on the current
    /// thread ([`crate::chaos::with_overlay`]) is folded over the
    /// baseline here, so every consumer — engines, fabric graphs,
    /// scenario runners — sees the degraded node through the one code
    /// path it already uses.
    pub fn node(self) -> NodeModel {
        let base = match self {
            System::Aurora => aurora(),
            System::Dawn => dawn(),
            System::JlseH100 => jlse_h100(),
            System::JlseMi250 => jlse_mi250(),
        };
        crate::chaos::overlaid(self, base)
    }
}

/// A system name that matched none of the four catalog entries. Carries
/// the offending input so frontends can echo it alongside the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSystem {
    /// The string that failed to parse.
    pub got: String,
}

impl std::fmt::Display for UnknownSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown system '{}'; expected one of: aurora, dawn, h100, mi250",
            self.got
        )
    }
}

impl std::error::Error for UnknownSystem {}

impl std::str::FromStr for System {
    type Err = UnknownSystem;

    /// Parses the canonical [`System::cli_name`] spelling,
    /// case-insensitively. This is the single system-name parser shared
    /// by the reproduce CLI, serve requests and profile runs.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        System::ALL
            .into_iter()
            .find(|sys| sys.cli_name() == lower)
            .ok_or(UnknownSystem { got: s.to_string() })
    }
}

/// PVC vector ops per XVE per clock: 8-wide (512-bit) SIMD × 2 FMA ops ×
/// 2 issues/clock = 32, identical for FP64 and FP32 by design (§II,
/// §IV-B2). Lower precisions run on the XMX matrix unit instead.
fn pvc_vector_ops() -> PerPrecision {
    PerPrecision {
        fp64: 32.0,
        fp32: 32.0,
        ..Default::default()
    }
}

/// PVC matrix (XMX) ops per engine per clock. The XMX unit is 4096 bits
/// wide (§II); ops/clock double as precision halves, with TF32 at half
/// the FP16 rate (4-byte storage).
fn pvc_matrix_ops() -> PerPrecision {
    PerPrecision {
        fp16: 512.0,
        bf16: 512.0,
        tf32: 256.0,
        fp8: 1024.0,
        int8: 1024.0,
        ..Default::default()
    }
}

/// PVC cache hierarchy (§II: 512 KiB register file/L1 per Xe-Core,
/// 192 MiB LLC per stack). Latencies in core cycles are calibrated to
/// Figure 1: PVC L1 is ~90% slower than H100's and ~51% faster than
/// MI250's; L2 is 50%/78% slower than H100/MI250; HBM2e is 23%/44%
/// slower than H100's HBM3 / MI250's HBM2e (§IV-B6).
fn pvc_caches() -> Vec<CacheLevel> {
    vec![
        CacheLevel {
            name: "L1",
            size_bytes: (512.0 * KIB) as u64,
            per_compute_unit: true,
            line_bytes: 64,
            associativity: 8,
            latency_cycles: 64.0,
        },
        CacheLevel {
            name: "L2",
            size_bytes: (192.0 * MIB) as u64,
            per_compute_unit: false,
            line_bytes: 64,
            associativity: 16,
            latency_cycles: 390.0,
        },
    ]
}

/// PVC per-stack HBM2e: 64 GiB, ≈1.64 TB/s spec per stack (half the
/// 3.2768 TB/s card spec). §IV-B3: triad reaches 1 TB/s per stack, i.e.
/// 61% of spec.
fn pvc_memory() -> MemorySpec {
    MemorySpec {
        capacity_bytes: (64.0 * GIB) as u64,
        spec_bandwidth: 1.6384e12,
        stream_efficiency: 0.61,
        latency_cycles: 860.0,
        // Calibrated to the OpenMC row of Table VI (2039 kparticles/s
        // across 12 stacks) via the Little's-law model in pvc-engine.
        random_concurrency: 91.0,
    }
}

fn pvc_partition(xe_cores: u32) -> Partition {
    Partition {
        kind: "Xe-Stack",
        compute_units: xe_cores,
        vector_engines_per_cu: 8,
        matrix_engines_per_cu: 8,
        vector_ops_per_engine_clock: pvc_vector_ops(),
        matrix_ops_per_engine_clock: pvc_matrix_ops(),
        caches: pvc_caches(),
        memory: pvc_memory(),
    }
}

/// PCIe Gen5 x16 per PVC card. Raw 63 GB/s per direction; achieved
/// values from Table II single-card columns.
fn pvc_pcie(h2d: f64, d2h: f64, duplex: f64) -> PcieSpec {
    PcieSpec {
        gen: 5,
        lanes: 16,
        raw_per_dir: gb_s(63.0),
        per_card_h2d: h2d,
        per_card_d2h: d2h,
        per_card_duplex: duplex,
        latency: 12e-6,
    }
}

/// PVC on-card MDFI and Xe-Link fabric, Table III single-pair columns.
/// §IV-B7: Xe-Link "are in fact slower than PCIe, and they reach 55%
/// efficiency in each direction".
fn pvc_fabric(aggregate_derate: ScaleCurve) -> FabricSpec {
    FabricSpec {
        aggregate_derate,
        local_uni: gb_s(197.0),
        local_duplex: gb_s(284.0),
        remote_uni: gb_s(15.0),
        remote_duplex: gb_s(23.0),
        latency: 8e-6,
        plane_derate: [1.0, 1.0],
    }
}

/// Aurora's PVC variant: 56 active Xe-Cores per stack, 500 W cap.
///
/// Scale-derate curves are calibrated so the governed peaks land on
/// Table II: FP64 17/33/195 TFlop/s at 1/2/12 stacks; FP32 23/45/268.
pub fn pvc_aurora_gpu() -> GpuModel {
    GpuModel {
        name: "Intel Data Center GPU Max 1550 (Aurora, 56 Xe-Cores/stack)",
        vendor: Vendor::Intel,
        partition: pvc_partition(56),
        partitions: 2,
        clock: ClockPolicy {
            max_ghz: 1.6,
            fp64_vector_ghz: 1.2,
            derate_fp64: ScaleCurve::new(vec![(1, 1.0), (2, 0.96), (12, 0.945)]),
            derate_fp32: ScaleCurve::new(vec![(1, 1.0), (2, 0.98), (12, 0.975)]),
            derate_matrix: ScaleCurve::new(vec![(1, 1.0), (2, 0.99), (12, 0.94)]),
            derate_memory: ScaleCurve::flat(),
        },
    }
}

/// Dawn's PVC variant: all 64 Xe-Cores active per stack, 600 W cap.
/// Curves calibrated to Table II: FP64 20/37/140; FP32 26/52/207.
pub fn pvc_dawn_gpu() -> GpuModel {
    GpuModel {
        name: "Intel Data Center GPU Max 1550 (Dawn, 64 Xe-Cores/stack)",
        vendor: Vendor::Intel,
        partition: pvc_partition(64),
        partitions: 2,
        clock: ClockPolicy {
            max_ghz: 1.6,
            fp64_vector_ghz: 1.2,
            derate_fp64: ScaleCurve::new(vec![(1, 1.0), (2, 0.94), (8, 0.89)]),
            derate_fp32: ScaleCurve::new(vec![(1, 1.0), (2, 0.99), (8, 0.988)]),
            derate_matrix: ScaleCurve::new(vec![(1, 1.0), (2, 1.0), (8, 0.96)]),
            derate_memory: ScaleCurve::flat(),
        },
    }
}

/// NVIDIA H100 SXM5 80 GB: 132 SMs × 4 sub-partitions; FP32 67 TFlop/s,
/// FP64 34 TFlop/s at 1.98 GHz (Table IV).
pub fn h100_gpu() -> GpuModel {
    GpuModel {
        name: "NVIDIA H100 SXM5 80GB",
        vendor: Vendor::Nvidia,
        partition: Partition {
            kind: "H100",
            compute_units: 132,
            vector_engines_per_cu: 4,
            matrix_engines_per_cu: 4,
            vector_ops_per_engine_clock: PerPrecision {
                fp64: 32.0,
                fp32: 64.0,
                ..Default::default()
            },
            // Tensor cores; FP64 tensor path intentionally capped at the
            // vector rate so `peak()` matches the 34 TFlop/s the paper
            // uses for H100 FP64 comparisons.
            matrix_ops_per_engine_clock: PerPrecision {
                fp64: 32.0,
                fp16: 947.0,
                bf16: 947.0,
                tf32: 473.0,
                fp8: 1893.0,
                int8: 1893.0,
                fp32: 0.0,
            },
            caches: vec![
                CacheLevel {
                    name: "L1",
                    size_bytes: (256.0 * KIB) as u64,
                    per_compute_unit: true,
                    line_bytes: 128,
                    associativity: 8,
                    latency_cycles: 34.0,
                },
                CacheLevel {
                    name: "L2",
                    size_bytes: (50.0 * MIB) as u64,
                    per_compute_unit: false,
                    line_bytes: 128,
                    associativity: 16,
                    latency_cycles: 260.0,
                },
            ],
            memory: MemorySpec {
                capacity_bytes: (80.0 * GIB) as u64,
                spec_bandwidth: 3.35e12,
                stream_efficiency: 0.83,
                latency_cycles: 700.0,
                // Calibrated to OpenMC on JLSE-H100 (1191 kparticles/s,
                // Table VI).
                random_concurrency: 105.0,
            },
        },
        partitions: 1,
        clock: ClockPolicy {
            max_ghz: 1.98,
            fp64_vector_ghz: 1.98,
            derate_fp64: ScaleCurve::flat(),
            derate_fp32: ScaleCurve::flat(),
            derate_matrix: ScaleCurve::flat(),
            derate_memory: ScaleCurve::flat(),
        },
    }
}

/// AMD Instinct MI250: 2 GCDs × 104 CUs; FP64 = FP32 vector = 45.3
/// TFlop/s per card at 1.7 GHz (Table IV).
pub fn mi250_gpu() -> GpuModel {
    GpuModel {
        name: "AMD Instinct MI250",
        vendor: Vendor::Amd,
        partition: Partition {
            kind: "GCD",
            compute_units: 104,
            vector_engines_per_cu: 4,
            matrix_engines_per_cu: 4,
            vector_ops_per_engine_clock: PerPrecision {
                fp64: 32.0,
                fp32: 32.0,
                ..Default::default()
            },
            // Matrix cores: §IV-B5 "the MI250X GEMM makes use of the
            // matrix core units, which have twice the peak of the
            // non-matrix cores".
            matrix_ops_per_engine_clock: PerPrecision {
                fp64: 64.0,
                fp32: 64.0,
                fp16: 256.0,
                bf16: 256.0,
                int8: 512.0,
                ..Default::default()
            },
            caches: vec![
                CacheLevel {
                    name: "L1",
                    size_bytes: (16.0 * KIB) as u64,
                    per_compute_unit: true,
                    line_bytes: 64,
                    associativity: 4,
                    latency_cycles: 130.0,
                },
                CacheLevel {
                    name: "L2",
                    size_bytes: (8.0 * MIB) as u64,
                    per_compute_unit: false,
                    line_bytes: 64,
                    associativity: 16,
                    latency_cycles: 219.0,
                },
            ],
            memory: MemorySpec {
                capacity_bytes: (64.0 * GIB) as u64,
                spec_bandwidth: 1.6384e12,
                stream_efficiency: 0.80,
                latency_cycles: 597.0,
                // Calibrated to OpenMC on JLSE-MI250 (720 kparticles/s,
                // Table VI).
                random_concurrency: 32.0,
            },
        },
        partitions: 2,
        clock: ClockPolicy {
            max_ghz: 1.7,
            fp64_vector_ghz: 1.7,
            derate_fp64: ScaleCurve::flat(),
            derate_fp32: ScaleCurve::flat(),
            derate_matrix: ScaleCurve::flat(),
            derate_memory: ScaleCurve::flat(),
        },
    }
}

fn aurora() -> NodeModel {
    NodeModel {
        system: System::Aurora,
        name: "Aurora (PVC)",
        cpu: CpuModel::xeon_max_aurora(),
        sockets: 2,
        gpu: pvc_aurora_gpu(),
        gpus: 6,
        gpu_power_cap_w: 500.0,
        pcie: pvc_pcie(gb_s(55.0), gb_s(56.0), gb_s(77.0)),
        fabric: pvc_fabric(ScaleCurve::new(vec![(2, 1.0), (12, 0.955)])),
    }
}

fn dawn() -> NodeModel {
    NodeModel {
        system: System::Dawn,
        name: "Dawn (PVC)",
        cpu: CpuModel::xeon_platinum_8468(),
        sockets: 2,
        gpu: pvc_dawn_gpu(),
        gpus: 4,
        gpu_power_cap_w: 600.0,
        pcie: pvc_pcie(gb_s(54.0), gb_s(53.0), gb_s(72.0)),
        fabric: pvc_fabric(ScaleCurve::flat()),
    }
}

fn jlse_h100() -> NodeModel {
    NodeModel {
        system: System::JlseH100,
        name: "JLSE (H100)",
        cpu: CpuModel::xeon_platinum_8468(),
        sockets: 2,
        gpu: h100_gpu(),
        gpus: 4,
        gpu_power_cap_w: 700.0,
        pcie: PcieSpec {
            gen: 5,
            lanes: 16,
            raw_per_dir: gb_s(63.0),
            per_card_h2d: gb_s(55.0),
            per_card_d2h: gb_s(55.0),
            per_card_duplex: gb_s(100.0),
            latency: 10e-6,
        },
        fabric: FabricSpec {
            aggregate_derate: ScaleCurve::flat(),
            local_uni: 0.0,
            local_duplex: 0.0,
            // NVLink 4 (900 GB/s aggregate; ~450 per direction).
            remote_uni: gb_s(450.0),
            remote_duplex: gb_s(800.0),
            latency: 5e-6,
            plane_derate: [1.0, 1.0],
        },
    }
}

fn jlse_mi250() -> NodeModel {
    NodeModel {
        system: System::JlseMi250,
        name: "JLSE (MI250)",
        cpu: CpuModel::epyc_7713(),
        sockets: 2,
        gpu: mi250_gpu(),
        gpus: 4,
        gpu_power_cap_w: 560.0,
        pcie: PcieSpec {
            gen: 4,
            lanes: 16,
            raw_per_dir: gb_s(32.0),
            per_card_h2d: gb_s(25.0),
            per_card_d2h: gb_s(25.0),
            per_card_duplex: gb_s(40.0),
            latency: 12e-6,
        },
        fabric: FabricSpec {
            aggregate_derate: ScaleCurve::flat(),
            // In-package Infinity Fabric between the two GCDs.
            local_uni: gb_s(200.0),
            local_duplex: gb_s(300.0),
            // GCD-to-GCD across cards: 37 GB/s measured on Frontier
            // (Table IV).
            remote_uni: gb_s(37.0),
            remote_duplex: gb_s(55.0),
            latency: 8e-6,
            plane_derate: [1.0, 1.0],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::Precision;
    use crate::units::rel_err;

    /// Table II peak-flops rows: (system, precision, active, per-partition
    /// TFlop/s published).
    #[test]
    fn pvc_peaks_match_table_ii() {
        let cases = [
            (System::Aurora, Precision::Fp64, 1, 17.0),
            (System::Aurora, Precision::Fp64, 2, 16.5), // 33 / 2
            (System::Aurora, Precision::Fp64, 12, 16.25), // 195 / 12
            (System::Aurora, Precision::Fp32, 1, 23.0),
            (System::Aurora, Precision::Fp32, 2, 22.5),
            (System::Aurora, Precision::Fp32, 12, 22.33),
            (System::Dawn, Precision::Fp64, 1, 20.0),
            (System::Dawn, Precision::Fp64, 2, 18.5),
            (System::Dawn, Precision::Fp64, 8, 17.5),
            (System::Dawn, Precision::Fp32, 1, 26.0),
            (System::Dawn, Precision::Fp32, 2, 26.0),
            (System::Dawn, Precision::Fp32, 8, 25.875),
        ];
        for (sys, p, active, tflops) in cases {
            let got = sys.node().gpu.vector_peak_per_partition(p, active) / 1e12;
            assert!(
                rel_err(got, tflops) < 0.02,
                "{sys:?} {p} x{active}: model {got:.2} vs paper {tflops:.2}"
            );
        }
    }

    #[test]
    fn h100_peaks_match_table_iv() {
        let g = h100_gpu();
        assert!(rel_err(g.device_peak(Precision::Fp32) / 1e12, 67.0) < 0.01);
        assert!(rel_err(g.device_peak(Precision::Fp64) / 1e12, 34.0) < 0.02);
    }

    #[test]
    fn mi250_peaks_match_table_iv() {
        let g = mi250_gpu();
        // Vector FP64 = FP32 = 45.3 TFlop/s for the card.
        let v64 = g.vector_peak_per_partition(Precision::Fp64, 1) * 2.0 / 1e12;
        let v32 = g.vector_peak_per_partition(Precision::Fp32, 1) * 2.0 / 1e12;
        assert!(rel_err(v64, 45.3) < 0.01, "MI250 FP64 {v64}");
        assert!(rel_err(v32, 45.3) < 0.01);
        // Matrix FP64 = 2x vector (§IV-B5), ≈48 TFlop/s per GCD
        // (Table IV / MI250X datasheet).
        let m64 = g.matrix_peak_per_partition(Precision::Fp64, 1) / 1e12;
        assert!(rel_err(m64, 45.3) < 0.01, "MI250 matrix FP64/GCD {m64}");
    }

    #[test]
    fn pvc_stream_bandwidth_is_one_tb_per_stack() {
        for sys in System::PVC {
            let bw = sys.node().gpu.stream_bandwidth_per_partition();
            assert!(rel_err(bw, 1e12) < 0.01, "{sys:?} stream {bw:e}");
        }
    }

    #[test]
    fn node_stream_bandwidth_scales_linearly() {
        // Table II triad row: 12 TB/s on Aurora, 8 TB/s on Dawn.
        assert!(rel_err(System::Aurora.node().node_stream_bandwidth(), 12e12) < 0.01);
        assert!(rel_err(System::Dawn.node().node_stream_bandwidth(), 8e12) < 0.01);
    }

    #[test]
    fn aurora_to_dawn_compute_ratio_is_core_ratio() {
        // §VII: "the compute-bound microbenchmarks on Aurora performed
        // about 0.875x (the ratio of compute units) as on Dawn".
        let a = pvc_aurora_gpu();
        let d = pvc_dawn_gpu();
        assert_eq!(
            a.partition.compute_units as f64 / d.partition.compute_units as f64,
            0.875
        );
        let r = a.vector_peak_per_partition(Precision::Fp64, 1)
            / d.vector_peak_per_partition(Precision::Fp64, 1);
        assert!((r - 0.875).abs() < 1e-9);
    }

    #[test]
    fn xe_hierarchy_counts() {
        // §II: 8 XVE per Xe-Core; 448 XVE per 56-core Aurora stack (the
        // paper's peak derivation), 512 per Dawn stack; 128 Xe-Cores and
        // 32768 flops/clock per card.
        let a = pvc_aurora_gpu();
        assert_eq!(a.partition.vector_engines(), 448);
        let d = pvc_dawn_gpu();
        assert_eq!(d.partition.vector_engines(), 512);
        let flops_per_clock_card = 2.0
            * d.partition.vector_engines() as f64
            * d.partition.vector_ops_per_engine_clock.get(Precision::Fp64)
            / 2.0; // ops include the x2 FMA factor; per-clock FLOP count is engines*32
        assert_eq!(flops_per_clock_card, 512.0 * 32.0);
    }

    #[test]
    fn pvc_llc_and_l1_match_section_ii() {
        let p = pvc_partition(64);
        assert_eq!(p.caches[0].size_bytes, 512 * 1024);
        assert_eq!(p.caches[1].size_bytes, 192 * 1024 * 1024);
        assert_eq!(p.cache_capacity(0), 64 * 512 * 1024);
    }

    #[test]
    fn figure1_latency_ratios() {
        // §IV-B6: PVC L1 90% higher than H100, 51% lower than MI250;
        // L2 50%/78% higher; HBM 23%/44% higher.
        let pvc = pvc_aurora_gpu();
        let h = h100_gpu();
        let m = mi250_gpu();
        let l1 = |g: &GpuModel| g.partition.caches[0].latency_cycles;
        let l2 = |g: &GpuModel| g.partition.caches[1].latency_cycles;
        let hbm = |g: &GpuModel| g.partition.memory.latency_cycles;
        assert!(rel_err(l1(&pvc) / l1(&h), 1.9) < 0.02);
        assert!(rel_err(l1(&pvc) / l1(&m), 0.49) < 0.02);
        assert!(rel_err(l2(&pvc) / l2(&h), 1.5) < 0.02);
        assert!(rel_err(l2(&pvc) / l2(&m), 1.78) < 0.02);
        assert!(rel_err(hbm(&pvc) / hbm(&h), 1.23) < 0.02);
        assert!(rel_err(hbm(&pvc) / hbm(&m), 1.44) < 0.02);
    }

    #[test]
    fn pcie_gen_matches_section_iv() {
        // §IV-B4: PVC is Gen5, MI250 is Gen4.
        assert_eq!(System::Aurora.node().pcie.gen, 5);
        assert_eq!(System::JlseMi250.node().pcie.gen, 4);
    }

    #[test]
    fn xelink_is_slower_than_pcie() {
        // §IV-B7: Xe-Link remote-stack links "are in fact slower than
        // PCIe".
        let n = System::Aurora.node();
        assert!(n.fabric.remote_uni < n.pcie.per_card_h2d);
    }

    #[test]
    fn system_names_round_trip() {
        for sys in System::ALL {
            let name = sys.cli_name();
            assert_eq!(name.parse::<System>().unwrap(), sys);
            assert_eq!(name.to_uppercase().parse::<System>().unwrap(), sys);
        }
        let err = "summit".parse::<System>().unwrap_err();
        assert_eq!(err.got, "summit");
        let msg = err.to_string();
        assert!(msg.contains("unknown system 'summit'"), "{msg}");
        for name in ["aurora", "dawn", "h100", "mi250"] {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }
}

//! GPU device models.
//!
//! A [`GpuModel`] is a device (one PVC card, one H100, one MI250) made of
//! one or more identical [`Partition`]s — the paper's unit of "explicit
//! scaling" (§II): a PVC Xe-Stack, an MI250 GCD, or the whole H100. Each
//! partition owns compute units, a cache hierarchy and local HBM, which is
//! why flops and memory bandwidth scale linearly with partition count
//! (§IV-B1) while PCIe does not (one host link per *card*, §II).

use crate::governor::ClockPolicy;
use crate::precision::Precision;

/// GPU vendor, used to select programming-model variants in the mini-app
/// harnesses (SYCL on Intel, CUDA on NVIDIA, HIP on AMD — Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    Intel,
    Nvidia,
    Amd,
}

/// A per-precision scalar table (ops per engine per clock, efficiency
/// factors, …). Indexed by [`Precision`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PerPrecision {
    pub fp64: f64,
    pub fp32: f64,
    pub fp16: f64,
    pub bf16: f64,
    pub tf32: f64,
    pub fp8: f64,
    pub int8: f64,
}

impl PerPrecision {
    /// Value for precision `p`.
    pub fn get(&self, p: Precision) -> f64 {
        match p {
            Precision::Fp64 => self.fp64,
            Precision::Fp32 => self.fp32,
            Precision::Fp16 => self.fp16,
            Precision::Bf16 => self.bf16,
            Precision::Tf32 => self.tf32,
            Precision::Fp8 => self.fp8,
            Precision::Int8 => self.int8,
        }
    }

    /// Same value for every precision.
    pub fn uniform(v: f64) -> Self {
        PerPrecision {
            fp64: v,
            fp32: v,
            fp16: v,
            bf16: v,
            tf32: v,
            fp8: v,
            int8: v,
        }
    }
}

/// One level of the on-partition cache hierarchy (Figure 1 of the paper
/// sweeps pointer-chase footprints across these levels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    /// Human name: "L1", "L2".
    pub name: &'static str,
    /// Capacity in bytes, *per compute unit* for private levels and per
    /// partition for shared levels (see `per_compute_unit`).
    pub size_bytes: u64,
    /// True for private (per-Xe-Core / per-SM / per-CU) caches.
    pub per_compute_unit: bool,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways).
    pub associativity: u32,
    /// Load-to-use latency in GPU core cycles for a coalesced sub-group
    /// access (the paper's modified `lats`, §IV-A7).
    pub latency_cycles: f64,
}

/// Local device memory (HBM) attached to one partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySpec {
    /// Capacity in bytes per partition (64 GiB per Xe-Stack).
    pub capacity_bytes: u64,
    /// Vendor-spec peak bandwidth per partition, bytes/s.
    pub spec_bandwidth: f64,
    /// Fraction of spec bandwidth a STREAM-triad style kernel achieves.
    /// §IV-B3: PVC triad reaches 1 TB/s per stack of the ≈1.6 TB/s
    /// per-stack spec; MI250x reaches ≈80% of peak on Frontier.
    pub stream_efficiency: f64,
    /// Memory access latency in core cycles for a pointer chase that
    /// misses all caches (Figure 1 plateau).
    pub latency_cycles: f64,
    /// Sustainable outstanding random line requests per partition
    /// (memory-level parallelism). Sets the throughput of latency-bound
    /// irregular codes via Little's law (OpenMC in Table VI is "memory
    /// latency/bandwidth bound" — Table V).
    pub random_concurrency: f64,
}

impl MemorySpec {
    /// Achievable STREAM-triad bandwidth, bytes/s, per partition.
    pub fn stream_bandwidth(&self) -> f64 {
        self.spec_bandwidth * self.stream_efficiency
    }

    /// Random-access line throughput (lines/s) of one partition at a
    /// given core clock: `random_concurrency / latency` (Little's law).
    pub fn random_access_rate(&self, clock_hz: f64) -> f64 {
        self.random_concurrency / (self.latency_cycles / clock_hz)
    }
}

/// One explicit-scaling partition: a PVC Xe-Stack, an MI250 GCD, or a
/// whole H100.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Name of the partition kind in the source architecture
    /// ("Xe-Stack", "GCD", "H100").
    pub kind: &'static str,
    /// Compute units: Xe-Cores per stack (56 on Aurora, 64 on Dawn —
    /// §III), SMs on H100 (132), CUs per GCD on MI250 (104).
    pub compute_units: u32,
    /// Vector engines per compute unit (8 XVE per Xe-Core, §II).
    pub vector_engines_per_cu: u32,
    /// Matrix engines per compute unit (8 XMX per Xe-Core, §II). Zero if
    /// the architecture has none.
    pub matrix_engines_per_cu: u32,
    /// Vector-pipe operations per vector engine per clock, by precision.
    /// PVC: 32 for FP64 *and* FP32 (8-wide SIMD × 2 FMA ops × 2
    /// issues/clock; §II and the design statement in §IV-B2 that FP32 and
    /// FP64 have equal per-clock throughput).
    pub vector_ops_per_engine_clock: PerPrecision,
    /// Matrix-unit operations per matrix engine per clock, by precision.
    pub matrix_ops_per_engine_clock: PerPrecision,
    /// Cache hierarchy, ordered inner to outer.
    pub caches: Vec<CacheLevel>,
    /// Local HBM.
    pub memory: MemorySpec,
}

impl Partition {
    /// Total vector engines in the partition (448 on an Aurora stack:
    /// 56 Xe-Cores × 8 XVE — the number in the paper's §IV-B1 peak
    /// derivation).
    pub fn vector_engines(&self) -> u32 {
        self.compute_units * self.vector_engines_per_cu
    }

    /// Total matrix engines in the partition.
    pub fn matrix_engines(&self) -> u32 {
        self.compute_units * self.matrix_engines_per_cu
    }

    /// Effective capacity of cache level `i`, aggregated over the
    /// partition, in bytes.
    pub fn cache_capacity(&self, i: usize) -> u64 {
        let c = &self.caches[i];
        if c.per_compute_unit {
            c.size_bytes * self.compute_units as u64
        } else {
            c.size_bytes
        }
    }
}

/// A whole GPU device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Marketing/deployment name ("PVC (Aurora)", "H100 SXM5 80GB", …).
    pub name: &'static str,
    pub vendor: Vendor,
    /// The repeated partition.
    pub partition: Partition,
    /// Partitions per device: 2 Xe-Stacks per PVC card, 2 GCDs per
    /// MI250, 1 for H100.
    pub partitions: u32,
    /// Clock / TDP governor.
    pub clock: ClockPolicy,
}

impl GpuModel {
    /// Theoretical vector peak of one partition at the governed clock for
    /// precision `p`, with `active` partitions busy node-wide (node-level
    /// TDP derates apply — §IV-B1/2).
    ///
    /// Flop/s (or Iop/s for INT8).
    pub fn vector_peak_per_partition(&self, p: Precision, active: u32) -> f64 {
        let engines = self.partition.vector_engines() as f64;
        let ops = self.partition.vector_ops_per_engine_clock.get(p);
        engines * ops * self.clock.vector_clock_hz(p) * self.clock.scale_derate(p, active)
    }

    /// Theoretical matrix-unit peak of one partition (0.0 if the
    /// precision has no matrix path).
    pub fn matrix_peak_per_partition(&self, p: Precision, active: u32) -> f64 {
        let engines = self.partition.matrix_engines() as f64;
        let ops = self.partition.matrix_ops_per_engine_clock.get(p);
        engines * ops * self.clock.matrix_clock_hz(p) * self.clock.scale_derate(p, active)
    }

    /// Best achievable peak for `p` on one partition (max of vector and
    /// matrix paths).
    pub fn peak_per_partition(&self, p: Precision, active: u32) -> f64 {
        self.vector_peak_per_partition(p, active)
            .max(self.matrix_peak_per_partition(p, active))
    }

    /// Device-level theoretical peak (all partitions of one device busy).
    pub fn device_peak(&self, p: Precision) -> f64 {
        self.peak_per_partition(p, self.partitions) * self.partitions as f64
    }

    /// STREAM bandwidth per partition, bytes/s.
    pub fn stream_bandwidth_per_partition(&self) -> f64 {
        self.partition.memory.stream_bandwidth()
    }

    /// HBM pointer-chase latency in seconds (cycles at max core clock).
    pub fn memory_latency_secs(&self) -> f64 {
        self.partition.memory.latency_cycles / self.clock.max_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::ScaleCurve;
    use crate::units::{ghz, GIB};

    fn toy_gpu() -> GpuModel {
        GpuModel {
            name: "toy",
            vendor: Vendor::Intel,
            partition: Partition {
                kind: "stack",
                compute_units: 10,
                vector_engines_per_cu: 8,
                matrix_engines_per_cu: 8,
                vector_ops_per_engine_clock: PerPrecision::uniform(32.0),
                matrix_ops_per_engine_clock: PerPrecision {
                    fp16: 512.0,
                    ..Default::default()
                },
                caches: vec![CacheLevel {
                    name: "L1",
                    size_bytes: 512 * 1024,
                    per_compute_unit: true,
                    line_bytes: 64,
                    associativity: 8,
                    latency_cycles: 64.0,
                }],
                memory: MemorySpec {
                    capacity_bytes: (64.0 * GIB) as u64,
                    spec_bandwidth: 1.6e12,
                    stream_efficiency: 0.625,
                    latency_cycles: 860.0,
                    random_concurrency: 64.0,
                },
            },
            partitions: 2,
            clock: ClockPolicy {
                max_ghz: 1.6,
                fp64_vector_ghz: 1.2,
                derate_fp64: ScaleCurve::flat(),
                derate_fp32: ScaleCurve::flat(),
                derate_matrix: ScaleCurve::flat(),
                derate_memory: ScaleCurve::flat(),
            },
        }
    }

    #[test]
    fn vector_peak_follows_paper_arithmetic() {
        // engines × ops/clock × clock: 80 × 32 × 1.2 GHz = 3.072 TF FP64.
        let g = toy_gpu();
        let fp64 = g.vector_peak_per_partition(Precision::Fp64, 1);
        assert!((fp64 - 80.0 * 32.0 * ghz(1.2)).abs() < 1.0);
        // FP32 runs at 1.6 GHz: ratio 1.6/1.2 = 1.333 (the paper's "1.3x").
        let fp32 = g.vector_peak_per_partition(Precision::Fp32, 1);
        assert!((fp32 / fp64 - 1.6 / 1.2).abs() < 1e-12);
    }

    #[test]
    fn matrix_peak_only_for_matrix_precisions() {
        let g = toy_gpu();
        assert_eq!(g.matrix_peak_per_partition(Precision::Fp64, 1), 0.0);
        let h = g.matrix_peak_per_partition(Precision::Fp16, 1);
        assert!((h - 80.0 * 512.0 * ghz(1.6)).abs() < 1.0);
        // best path for FP16 is the matrix unit
        assert_eq!(g.peak_per_partition(Precision::Fp16, 1), h);
    }

    #[test]
    fn device_peak_is_partition_sum() {
        let g = toy_gpu();
        let one = g.peak_per_partition(Precision::Fp32, 2);
        assert_eq!(g.device_peak(Precision::Fp32), 2.0 * one);
    }

    #[test]
    fn stream_bandwidth_applies_efficiency() {
        let g = toy_gpu();
        assert!((g.stream_bandwidth_per_partition() - 1e12).abs() < 1e6);
    }

    #[test]
    fn cache_capacity_aggregates_private_levels() {
        let g = toy_gpu();
        assert_eq!(g.partition.cache_capacity(0), 512 * 1024 * 10);
    }

    #[test]
    fn memory_latency_in_seconds() {
        let g = toy_gpu();
        let l = g.memory_latency_secs();
        assert!((l - 860.0 / 1.6e9).abs() < 1e-15);
    }
}

//! Extension: a Frontier (MI250X) node model.
//!
//! §VII of the paper: "in future work we plan to further compare
//! mini-apps and applications on other supercomputing systems such as
//! Frontier against Dawn and Aurora results." This module builds that
//! comparison point from the published Frontier data the paper already
//! cites (its reference 13 and Table IV): MI250X with 110 CUs per GCD,
//! 1.3 TB/s measured stream per GCD, 24.1/33.8 TFlop/s measured
//! D/SGEMM, 37 GB/s GCD-to-GCD, and the single-socket "optimised
//! 3rd Gen EPYC" host with four cards.
//!
//! Unlike the four in-paper systems this is a *projection* target: it is
//! not part of [`crate::System`] and never enters the Tables II–VI
//! comparisons; examples and tests use it through the free functions
//! here.

use crate::cpu::CpuModel;
use crate::device::{CacheLevel, GpuModel, MemorySpec, Partition, PerPrecision, Vendor};
use crate::governor::{ClockPolicy, ScaleCurve};
use crate::node::{FabricSpec, NodeModel, PcieSpec};
use crate::systems::System;
use crate::units::{gb_s, GIB, KIB, MIB};

/// AMD Instinct MI250X as deployed in Frontier: 110 CUs per GCD (vs 104
/// on the MI250), 1.7 GHz, 64 GiB HBM2e per GCD.
pub fn mi250x_gpu() -> GpuModel {
    GpuModel {
        name: "AMD Instinct MI250X (Frontier)",
        vendor: Vendor::Amd,
        partition: Partition {
            kind: "GCD",
            compute_units: 110,
            vector_engines_per_cu: 4,
            matrix_engines_per_cu: 4,
            vector_ops_per_engine_clock: PerPrecision {
                fp64: 32.0,
                fp32: 32.0,
                ..Default::default()
            },
            // Matrix cores at twice the vector rate (§IV-B5); 110 CU x
            // 4 x 64 x 1.7 GHz ≈ 47.9 TFlop/s — the "48 Tflop/s per
            // GCD" the paper quotes.
            matrix_ops_per_engine_clock: PerPrecision {
                fp64: 64.0,
                fp32: 64.0,
                fp16: 256.0,
                bf16: 256.0,
                int8: 512.0,
                ..Default::default()
            },
            caches: vec![
                CacheLevel {
                    name: "L1",
                    size_bytes: (16.0 * KIB) as u64,
                    per_compute_unit: true,
                    line_bytes: 64,
                    associativity: 4,
                    latency_cycles: 130.0,
                },
                CacheLevel {
                    name: "L2",
                    size_bytes: (8.0 * MIB) as u64,
                    per_compute_unit: false,
                    line_bytes: 64,
                    associativity: 16,
                    latency_cycles: 219.0,
                },
            ],
            memory: MemorySpec {
                capacity_bytes: (64.0 * GIB) as u64,
                spec_bandwidth: 1.6384e12,
                // Ref [13] of the paper: stream reaches 1.3 TB/s per
                // GCD, "matching the expected 80% of the theoretical
                // peak".
                stream_efficiency: 0.7935,
                latency_cycles: 597.0,
                random_concurrency: 34.0,
            },
        },
        partitions: 2,
        clock: ClockPolicy {
            max_ghz: 1.7,
            fp64_vector_ghz: 1.7,
            derate_fp64: ScaleCurve::flat(),
            derate_fp32: ScaleCurve::flat(),
            derate_matrix: ScaleCurve::flat(),
            derate_memory: ScaleCurve::flat(),
        },
    }
}

/// A Frontier compute node: one 64-core "optimised 3rd Gen EPYC"
/// (Trento) socket + four MI250X, all links Infinity-Fabric attached.
pub fn frontier_node() -> NodeModel {
    NodeModel {
        // Projection nodes reuse the closest in-paper system id for
        // plane-assignment purposes (straight plane = stack).
        system: System::JlseMi250,
        name: "Frontier (MI250X)",
        cpu: CpuModel {
            name: "AMD EPYC 7A53 (Trento)",
            cores: 64,
            threads: 128,
            mem_bandwidth: 164e9,
            mem_capacity: 512 * (1 << 30),
            rc_h2d: 288e9,
            rc_d2h: 288e9,
            rc_duplex: 400e9,
        },
        sockets: 1,
        gpu: mi250x_gpu(),
        gpus: 4,
        gpu_power_cap_w: 560.0,
        pcie: PcieSpec {
            // Host attach on Frontier is Infinity Fabric (36+36 GB/s),
            // reported by ref [13] at 25 GB/s achieved per direction.
            gen: 4,
            lanes: 16,
            raw_per_dir: gb_s(36.0),
            per_card_h2d: gb_s(25.0),
            per_card_d2h: gb_s(25.0),
            per_card_duplex: gb_s(40.0),
            latency: 10e-6,
        },
        fabric: FabricSpec {
            aggregate_derate: ScaleCurve::flat(),
            local_uni: gb_s(200.0),
            local_duplex: gb_s(300.0),
            remote_uni: gb_s(37.0),
            remote_duplex: gb_s(55.0),
            latency: 8e-6,
            plane_derate: [1.0, 1.0],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::Precision;
    use crate::units::rel_err;

    #[test]
    fn mi250x_gcd_matrix_peak_is_48_tflops() {
        // §IV-B5: "MI250x's theoretical peak double precision matrix
        // performance (48 Tflop/s per GCD)".
        let g = mi250x_gpu();
        let m = g.matrix_peak_per_partition(Precision::Fp64, 1);
        assert!(rel_err(m / 1e12, 47.9) < 0.01, "{}", m / 1e12);
    }

    #[test]
    fn mi250x_stream_matches_frontier_measurement() {
        // Table IV: 1.3 TB/s per GCD measured on Frontier.
        let g = mi250x_gpu();
        assert!(rel_err(g.stream_bandwidth_per_partition(), 1.3e12) < 0.01);
    }

    #[test]
    fn frontier_node_shape() {
        let n = frontier_node();
        assert_eq!(n.sockets, 1);
        assert_eq!(n.partitions(), 8);
        assert_eq!(n.gpus_per_socket(), 4);
        // All eight GCDs hang off one socket: worse GPU:CPU ratio than
        // even Aurora (6 per socket).
        assert!(n.partitions_per_socket() > System::Aurora.node().partitions_per_socket());
    }

    #[test]
    fn mi250x_outruns_mi250_per_gcd() {
        // 110 vs 104 CUs.
        let x = mi250x_gpu().vector_peak_per_partition(Precision::Fp64, 1);
        let plain = crate::systems::mi250_gpu().vector_peak_per_partition(Precision::Fp64, 1);
        assert!(rel_err(x / plain, 110.0 / 104.0) < 1e-9);
    }
}

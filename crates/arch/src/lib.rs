//! # pvc-arch — machine models for the four benchmarked systems
//!
//! Encodes the architecture descriptions of the paper's §II (Intel Data
//! Center GPU Max 1550 "Ponte Vecchio") and §III (the Aurora, Dawn,
//! JLSE-H100 and JLSE-MI250 nodes), plus the vendor reference peaks of
//! Table IV.
//!
//! The model is first-principles where the paper is: peak flop rates are
//! *derived* from engine counts × SIMD width × FMA factor × clock, exactly
//! mirroring the arithmetic in §IV-B1 ("17 TFlop/s is 99% of the expected
//! theoretical number: 1.2 GHz × 448 × 8 × 2 × 2"). Observed behaviours
//! that the paper reports but does not derive (TDP downclocking under
//! FP64 FMA load, node-level scaling derates) live in the
//! [`governor`] module as named calibration constants, each citing the
//! paper section it reproduces.
//!
//! Hierarchy nomenclature follows the paper: 8 vector engines (XVE) and 8
//! matrix engines (XMX) per Xe-Core; 16 Xe-Cores per Xe-Slice; 4 Xe-Slices
//! per Xe-Stack; 2 Xe-Stacks per PVC card. H100 GPUs are modelled as a
//! single partition (no stacks); MI250 GPUs as two GCD partitions.

pub mod chaos;
pub mod cpu;
pub mod device;
pub mod frontier;
pub mod governor;
pub mod node;
pub mod power;
pub mod precision;
pub mod query;
pub mod reference;
pub mod systems;
pub mod units;

pub use chaos::{ChaosError, ChaosFault, ChaosSpec};
pub use cpu::CpuModel;
pub use device::{CacheLevel, GpuModel, MemorySpec, Partition, PerPrecision, Vendor};
pub use governor::ClockPolicy;
pub use node::NodeModel;
pub use precision::Precision;
pub use systems::{System, UnknownSystem};

//! Clock and TDP governor model.
//!
//! §IV-B2 of the paper: "we observe the ratio between single and double
//! precision Flops is 1.3x … explained by the GPU running at a lower
//! frequency during FP64 FMA computations due to the TDP design … the PVC
//! operated at ~1.2 GHz for FP64 and ~1.6 GHz for FP32 FMA operations."
//!
//! §IV-B1: scaling efficiency is below 100% when many stacks are busy
//! (97%/95% on Aurora for 2/12 stacks, 92%/88% on Dawn), because the
//! per-card power cap (600 W on Dawn, 500 W on Aurora, §III) forces
//! additional downclocking under sustained multi-stack FP64 load, while
//! memory-bound work scales perfectly (Table II triad row).
//!
//! The governor encodes those *measured* frequencies and derate curves as
//! named calibration data; the rest of the stack derives everything from
//! them.

use crate::precision::Precision;
use pvc_obs::{Layer, Tracer};

/// Piecewise-linear derate factor as a function of the number of busy
/// partitions node-wide. Points must be sorted by partition count;
/// queries clamp at the ends and interpolate between points.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleCurve {
    points: Vec<(u32, f64)>,
}

impl ScaleCurve {
    /// Builds a curve from `(active_partitions, derate)` points.
    ///
    /// # Panics
    /// Panics if `points` is empty, unsorted, or contains derates outside
    /// (0, 1].
    pub fn new(points: Vec<(u32, f64)>) -> Self {
        assert!(!points.is_empty(), "scale curve needs at least one point");
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "scale curve points must be sorted");
        }
        for &(_, d) in &points {
            assert!(d > 0.0 && d <= 1.0, "derate {d} outside (0, 1]");
        }
        ScaleCurve { points }
    }

    /// No derate at any scale.
    pub fn flat() -> Self {
        ScaleCurve {
            points: vec![(1, 1.0)],
        }
    }

    /// Derate factor with `active` busy partitions.
    pub fn at(&self, active: u32) -> f64 {
        let pts = &self.points;
        if active <= pts[0].0 {
            return pts[0].1;
        }
        if active >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if active >= x0 && active <= x1 {
                let t = (active - x0) as f64 / (x1 - x0) as f64;
                return y0 + t * (y1 - y0);
            }
        }
        unreachable!("scale curve interpolation fell through")
    }
}

/// Frequency policy of one GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockPolicy {
    /// Maximum core clock, GHz (PVC: 1.6, §II).
    pub max_ghz: f64,
    /// Sustained clock under FP64 vector FMA load, GHz (PVC: ~1.2,
    /// measured in §IV-B2). Equal to `max_ghz` on architectures without
    /// the FP64 TDP cliff.
    pub fp64_vector_ghz: f64,
    /// Node-scaling derate for FP64 vector work (§IV-B1).
    pub derate_fp64: ScaleCurve,
    /// Node-scaling derate for FP32 vector work.
    pub derate_fp32: ScaleCurve,
    /// Node-scaling derate for matrix-unit (GEMM lower-precision) work.
    pub derate_matrix: ScaleCurve,
    /// Node-scaling derate for memory/fabric-bound work (triad, MDFI
    /// transfers). Flat on both PVC systems: Table II triad row scales
    /// perfectly.
    pub derate_memory: ScaleCurve,
}

impl ClockPolicy {
    /// Maximum clock in Hz.
    pub fn max_hz(&self) -> f64 {
        self.max_ghz * 1e9
    }

    /// Sustained vector-pipe clock (Hz) for precision `p`.
    pub fn vector_clock_hz(&self, p: Precision) -> f64 {
        let ghz = match p {
            Precision::Fp64 => self.fp64_vector_ghz,
            _ => self.max_ghz,
        };
        ghz * 1e9
    }

    /// Sustained matrix-unit clock (Hz). Lower-precision matrix work runs
    /// at the max clock on all modelled parts.
    pub fn matrix_clock_hz(&self, _p: Precision) -> f64 {
        self.max_hz()
    }

    /// Node-scaling derate for compute at precision `p` with `active`
    /// busy partitions.
    pub fn scale_derate(&self, p: Precision, active: u32) -> f64 {
        let curve = if p.uses_matrix_unit() {
            &self.derate_matrix
        } else if matches!(p, Precision::Fp64) {
            &self.derate_fp64
        } else {
            &self.derate_fp32
        };
        curve.at(active)
    }

    /// Node-scaling derate for memory- and fabric-bound work.
    pub fn memory_derate(&self, active: u32) -> f64 {
        self.derate_memory.at(active)
    }

    /// Effective (scale-derated) sustained vector clock in Hz, and —
    /// when `tracer` records — a `governor.clock` throttle-transition
    /// instant on the arch lane at virtual time `t` carrying the base
    /// clock, precision, derate, and partition count. The paper's FP64
    /// TDP cliff (1.6 → ~1.2 GHz, §IV-B2) and multi-stack downclocking
    /// (§IV-B1) both show up as distinct transitions in a profile.
    pub fn observe_vector_clock(
        &self,
        p: Precision,
        active: u32,
        tracer: &Tracer,
        t: f64,
    ) -> f64 {
        let base_hz = self.vector_clock_hz(p);
        let derate = self.scale_derate(p, active);
        if tracer.enabled() {
            tracer.instant(
                Layer::Arch,
                "governor.clock",
                t,
                vec![
                    ("precision", format!("{p}").into()),
                    ("ghz", (base_hz / 1e9).into()),
                    ("derate", derate.into()),
                    ("active", (active as i64).into()),
                    ("effective_ghz", (base_hz * derate / 1e9).into()),
                ],
            );
        }
        base_hz * derate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_clamps_and_interpolates() {
        let c = ScaleCurve::new(vec![(1, 1.0), (2, 0.97), (12, 0.95)]);
        assert_eq!(c.at(0), 1.0);
        assert_eq!(c.at(1), 1.0);
        assert_eq!(c.at(2), 0.97);
        assert_eq!(c.at(12), 0.95);
        assert_eq!(c.at(20), 0.95);
        let mid = c.at(7);
        assert!(mid < 0.97 && mid > 0.95);
    }

    #[test]
    fn flat_curve_is_one_everywhere() {
        let c = ScaleCurve::flat();
        for n in [1, 2, 12, 100] {
            assert_eq!(c.at(n), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be sorted")]
    fn unsorted_points_rejected() {
        let _ = ScaleCurve::new(vec![(2, 0.9), (1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn derate_above_one_rejected() {
        let _ = ScaleCurve::new(vec![(1, 1.5)]);
    }

    #[test]
    fn fp64_downclock_gives_paper_ratio() {
        let p = ClockPolicy {
            max_ghz: 1.6,
            fp64_vector_ghz: 1.2,
            derate_fp64: ScaleCurve::flat(),
            derate_fp32: ScaleCurve::flat(),
            derate_matrix: ScaleCurve::flat(),
            derate_memory: ScaleCurve::flat(),
        };
        let ratio =
            p.vector_clock_hz(Precision::Fp32) / p.vector_clock_hz(Precision::Fp64);
        // §IV-B2: "the ratio between single and double precision Flops is
        // 1.3x (23/17)".
        assert!((ratio - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn observed_clock_emits_transition_and_matches_plain_path() {
        let p = ClockPolicy {
            max_ghz: 1.6,
            fp64_vector_ghz: 1.2,
            derate_fp64: ScaleCurve::new(vec![(1, 1.0), (12, 0.95)]),
            derate_fp32: ScaleCurve::flat(),
            derate_matrix: ScaleCurve::flat(),
            derate_memory: ScaleCurve::flat(),
        };
        let tracer = Tracer::recording();
        let hz = p.observe_vector_clock(Precision::Fp64, 12, &tracer, 2.5);
        assert_eq!(
            hz,
            p.vector_clock_hz(Precision::Fp64) * p.scale_derate(Precision::Fp64, 12)
        );
        let recs = tracer.records();
        assert_eq!(recs.len(), 1);
        match &recs[0] {
            pvc_obs::trace::Record::Instant { layer, name, t, .. } => {
                assert_eq!(*layer, Layer::Arch);
                assert_eq!(name, "governor.clock");
                assert_eq!(*t, 2.5);
            }
            other => panic!("expected instant, got {other:?}"),
        }
        // Disabled sink: same value, nothing recorded.
        let off = Tracer::disabled();
        assert_eq!(p.observe_vector_clock(Precision::Fp64, 12, &off, 2.5), hz);
    }

    #[test]
    fn derate_selection_by_precision_class() {
        let p = ClockPolicy {
            max_ghz: 1.6,
            fp64_vector_ghz: 1.2,
            derate_fp64: ScaleCurve::new(vec![(1, 1.0), (12, 0.95)]),
            derate_fp32: ScaleCurve::new(vec![(1, 1.0), (12, 0.97)]),
            derate_matrix: ScaleCurve::new(vec![(1, 1.0), (12, 0.93)]),
            derate_memory: ScaleCurve::flat(),
        };
        assert_eq!(p.scale_derate(Precision::Fp64, 12), 0.95);
        assert_eq!(p.scale_derate(Precision::Fp32, 12), 0.97);
        assert_eq!(p.scale_derate(Precision::Fp16, 12), 0.93);
        assert_eq!(p.memory_derate(12), 1.0);
    }
}

//! Node-level models: host sockets + GPUs + the link specs the fabric
//! crate turns into a contention graph.

use crate::cpu::CpuModel;
use crate::device::GpuModel;
use crate::precision::Precision;
use crate::systems::System;

/// Per-card PCIe characteristics (§IV-A3, §IV-B4). Values are the
/// *achieved* per-card rates for large pinned-memory transfers; the
/// gen/lane raw rate is kept for documentation and ablations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcieSpec {
    /// PCIe generation (5 for PVC, 4 for MI250).
    pub gen: u8,
    /// Lane count (x16 on every modelled card).
    pub lanes: u8,
    /// Raw protocol bandwidth per direction, bytes/s.
    pub raw_per_dir: f64,
    /// Achieved host→device rate per card, bytes/s.
    pub per_card_h2d: f64,
    /// Achieved device→host rate per card, bytes/s.
    pub per_card_d2h: f64,
    /// Achieved aggregate cap when both directions are busy, bytes/s.
    /// §IV-B4: "we observe only 1.4x bandwidth for bi- vs uni-directional"
    /// on PVC, so this is ≈1.4 × per-direction rather than 2×.
    pub per_card_duplex: f64,
    /// Copy-launch latency, seconds.
    pub latency: f64,
}

/// On-device and device-to-device fabric characteristics (§IV-A4,
/// §IV-B7, Table III).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricSpec {
    /// Aggregate derate when many stack-pairs communicate at once.
    /// Table III: Aurora's six simultaneous local pairs reach 1129 GB/s
    /// = 95.5% of 6 × 197 ("95% parallel efficiency", §IV-B7), while
    /// Dawn's four pairs scale perfectly (786 ≈ 4 × 196).
    pub aggregate_derate: crate::governor::ScaleCurve,
    /// Stack-to-stack (MDFI) unidirectional bandwidth within one card,
    /// bytes/s. Zero if the device has a single partition.
    pub local_uni: f64,
    /// Stack-to-stack aggregate when both directions are busy.
    pub local_duplex: f64,
    /// Remote (Xe-Link / Infinity Fabric / NVLink) per-link
    /// unidirectional bandwidth, bytes/s.
    pub remote_uni: f64,
    /// Remote per-link aggregate for bidirectional traffic.
    pub remote_duplex: f64,
    /// Message-launch latency, seconds.
    pub latency: f64,
    /// Per-plane health factor for the remote links (§IV-A4's two
    /// Xe-Link planes). 1.0 on a healthy node; chaos overlays shrink it
    /// towards 0, and exactly 0 marks the plane dead (its links are
    /// built disabled, so crossing transfers strand).
    pub plane_derate: [f64; 2],
}

/// A complete single node of one of the four systems.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeModel {
    /// System this node belongs to.
    pub system: System,
    /// Display name used in table headers.
    pub name: &'static str,
    /// Socket model (two identical sockets per node on all four systems).
    pub cpu: CpuModel,
    /// Number of CPU sockets.
    pub sockets: u32,
    /// GPU model.
    pub gpu: GpuModel,
    /// GPU cards per node (6 on Aurora, 4 elsewhere).
    pub gpus: u32,
    /// Operational per-card power cap, watts (§III: 600 W on Dawn,
    /// 500 W on Aurora).
    pub gpu_power_cap_w: f64,
    /// PCIe per card.
    pub pcie: PcieSpec,
    /// Device fabric.
    pub fabric: FabricSpec,
}

impl NodeModel {
    /// Explicit-scaling partitions per node (12 on Aurora, 8 on Dawn and
    /// JLSE-MI250, 4 on JLSE-H100).
    pub fn partitions(&self) -> u32 {
        self.gpus * self.gpu.partitions
    }

    /// GPU cards attached to each socket (cards are divided evenly; §III
    /// and §IV-A bind each rank to the socket closest to its GPU).
    pub fn gpus_per_socket(&self) -> u32 {
        self.gpus / self.sockets
    }

    /// Partitions (ranks, under one-rank-per-stack explicit scaling)
    /// per socket.
    pub fn partitions_per_socket(&self) -> u32 {
        self.partitions() / self.sockets
    }

    /// Theoretical node peak for precision `p`, flop/s, with every
    /// partition busy.
    pub fn node_peak(&self, p: Precision) -> f64 {
        let n = self.partitions();
        self.gpu.peak_per_partition(p, n) * n as f64
    }

    /// Node-aggregate STREAM bandwidth, bytes/s.
    pub fn node_stream_bandwidth(&self) -> f64 {
        let n = self.partitions();
        self.gpu.stream_bandwidth_per_partition() * self.gpu.clock.memory_derate(n) * n as f64
    }
}

#[cfg(test)]
mod tests {
    use crate::systems::System;

    #[test]
    fn partition_counts_match_section_iii() {
        assert_eq!(System::Aurora.node().partitions(), 12);
        assert_eq!(System::Dawn.node().partitions(), 8);
        assert_eq!(System::JlseH100.node().partitions(), 4);
        assert_eq!(System::JlseMi250.node().partitions(), 8);
    }

    #[test]
    fn gpus_per_socket() {
        assert_eq!(System::Aurora.node().gpus_per_socket(), 3);
        assert_eq!(System::Dawn.node().gpus_per_socket(), 2);
        assert_eq!(System::Aurora.node().partitions_per_socket(), 6);
    }

    #[test]
    fn power_caps_match_section_iii() {
        assert_eq!(System::Aurora.node().gpu_power_cap_w, 500.0);
        assert_eq!(System::Dawn.node().gpu_power_cap_w, 600.0);
    }
}

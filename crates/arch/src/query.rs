//! Device/system query: serialisable summaries of every model constant
//! (a `clinfo`-style JSON dump for external tooling).

use crate::device::GpuModel;
use crate::node::NodeModel;
use crate::precision::Precision;
use crate::systems::System;
use pvc_core::json::Json;

/// Serialisable per-precision peak entry.
#[derive(Debug, Clone)]
pub struct PeakEntry {
    pub precision: String,
    pub vector_flops: f64,
    pub matrix_flops: f64,
}

/// Serialisable cache-level summary.
#[derive(Debug, Clone)]
pub struct CacheSummary {
    pub name: String,
    pub size_bytes: u64,
    pub per_compute_unit: bool,
    pub latency_cycles: f64,
}

/// Serialisable device summary.
#[derive(Debug, Clone)]
pub struct DeviceSummary {
    pub name: String,
    pub partitions: u32,
    pub partition_kind: String,
    pub compute_units: u32,
    pub vector_engines: u32,
    pub matrix_engines: u32,
    pub max_clock_ghz: f64,
    pub fp64_clock_ghz: f64,
    pub peaks_per_partition: Vec<PeakEntry>,
    pub caches: Vec<CacheSummary>,
    pub hbm_capacity_bytes: u64,
    pub hbm_spec_bandwidth: f64,
    pub hbm_stream_bandwidth: f64,
    pub hbm_latency_cycles: f64,
}

/// Serialisable node summary.
#[derive(Debug, Clone)]
pub struct NodeSummary {
    pub system: String,
    pub sockets: u32,
    pub cpu: String,
    pub cores_per_socket: u32,
    pub gpus: u32,
    pub gpu_power_cap_w: f64,
    pub partitions: u32,
    pub device: DeviceSummary,
}

/// Builds the summary of a GPU model.
pub fn summarise_device(gpu: &GpuModel) -> DeviceSummary {
    let peaks = [
        Precision::Fp64,
        Precision::Fp32,
        Precision::Fp16,
        Precision::Bf16,
        Precision::Tf32,
        Precision::Int8,
    ]
    .iter()
    .map(|&p| PeakEntry {
        precision: p.to_string(),
        vector_flops: gpu.vector_peak_per_partition(p, 1),
        matrix_flops: gpu.matrix_peak_per_partition(p, 1),
    })
    .collect();
    DeviceSummary {
        name: gpu.name.to_string(),
        partitions: gpu.partitions,
        partition_kind: gpu.partition.kind.to_string(),
        compute_units: gpu.partition.compute_units,
        vector_engines: gpu.partition.vector_engines(),
        matrix_engines: gpu.partition.matrix_engines(),
        max_clock_ghz: gpu.clock.max_ghz,
        fp64_clock_ghz: gpu.clock.fp64_vector_ghz,
        peaks_per_partition: peaks,
        caches: gpu
            .partition
            .caches
            .iter()
            .map(|c| CacheSummary {
                name: c.name.to_string(),
                size_bytes: c.size_bytes,
                per_compute_unit: c.per_compute_unit,
                latency_cycles: c.latency_cycles,
            })
            .collect(),
        hbm_capacity_bytes: gpu.partition.memory.capacity_bytes,
        hbm_spec_bandwidth: gpu.partition.memory.spec_bandwidth,
        hbm_stream_bandwidth: gpu.partition.memory.stream_bandwidth(),
        hbm_latency_cycles: gpu.partition.memory.latency_cycles,
    }
}

/// Builds the summary of a node.
pub fn summarise_node(node: &NodeModel) -> NodeSummary {
    NodeSummary {
        system: node.name.to_string(),
        sockets: node.sockets,
        cpu: node.cpu.name.to_string(),
        cores_per_socket: node.cpu.cores,
        gpus: node.gpus,
        gpu_power_cap_w: node.gpu_power_cap_w,
        partitions: node.partitions(),
        device: summarise_device(&node.gpu),
    }
}

impl PeakEntry {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("precision", Json::str(&self.precision)),
            ("vector_flops", Json::Num(self.vector_flops)),
            ("matrix_flops", Json::Num(self.matrix_flops)),
        ])
    }
}

impl CacheSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("size_bytes", Json::Int(self.size_bytes as i64)),
            ("per_compute_unit", Json::Bool(self.per_compute_unit)),
            ("latency_cycles", Json::Num(self.latency_cycles)),
        ])
    }
}

impl DeviceSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(&self.name)),
            ("partitions", Json::Int(self.partitions as i64)),
            ("partition_kind", Json::str(&self.partition_kind)),
            ("compute_units", Json::Int(self.compute_units as i64)),
            ("vector_engines", Json::Int(self.vector_engines as i64)),
            ("matrix_engines", Json::Int(self.matrix_engines as i64)),
            ("max_clock_ghz", Json::Num(self.max_clock_ghz)),
            ("fp64_clock_ghz", Json::Num(self.fp64_clock_ghz)),
            (
                "peaks_per_partition",
                Json::Arr(self.peaks_per_partition.iter().map(PeakEntry::to_json).collect()),
            ),
            (
                "caches",
                Json::Arr(self.caches.iter().map(CacheSummary::to_json).collect()),
            ),
            ("hbm_capacity_bytes", Json::Int(self.hbm_capacity_bytes as i64)),
            ("hbm_spec_bandwidth", Json::Num(self.hbm_spec_bandwidth)),
            ("hbm_stream_bandwidth", Json::Num(self.hbm_stream_bandwidth)),
            ("hbm_latency_cycles", Json::Num(self.hbm_latency_cycles)),
        ])
    }
}

impl NodeSummary {
    /// JSON tree of this summary.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("system", Json::str(&self.system)),
            ("sockets", Json::Int(self.sockets as i64)),
            ("cpu", Json::str(&self.cpu)),
            ("cores_per_socket", Json::Int(self.cores_per_socket as i64)),
            ("gpus", Json::Int(self.gpus as i64)),
            ("gpu_power_cap_w", Json::Num(self.gpu_power_cap_w)),
            ("partitions", Json::Int(self.partitions as i64)),
            ("device", self.device.to_json()),
        ])
    }
}

/// JSON dump of all four systems.
pub fn systems_json() -> String {
    let all: Vec<Json> = System::ALL
        .iter()
        .map(|s| summarise_node(&s.node()).to_json())
        .collect();
    Json::Arr(all).pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_capture_the_key_numbers() {
        let s = summarise_node(&System::Aurora.node());
        assert_eq!(s.partitions, 12);
        assert_eq!(s.device.vector_engines, 448);
        let fp64 = s
            .device
            .peaks_per_partition
            .iter()
            .find(|p| p.precision == "FP64")
            .unwrap();
        assert!((fp64.vector_flops / 1e12 - 17.2).abs() < 0.1);
    }

    #[test]
    fn json_dump_contains_all_four_systems() {
        let j = systems_json();
        for label in ["Aurora", "Dawn", "H100", "MI250"] {
            assert!(j.contains(label), "{label} missing");
        }
        assert!(j.contains("\"vector_engines\": 448"));
    }
}

//! Numeric precisions benchmarked by the paper's GEMM and peak-flops
//! microbenchmarks (Table II rows: FP64, FP32, FP16, BF16, TF32, I8;
//! §IV-A5 also names FP8).

use std::fmt;

/// A numeric precision / data type used in compute throughput
/// measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// IEEE double precision.
    Fp64,
    /// IEEE single precision.
    Fp32,
    /// IEEE half precision.
    Fp16,
    /// bfloat16.
    Bf16,
    /// NVIDIA TensorFloat-32 (19-bit mantissa+exp format, 4-byte storage).
    Tf32,
    /// 8-bit floating point (E4M3/E5M2 family).
    Fp8,
    /// 8-bit integer (GEMM measured in Iop/s).
    Int8,
}

impl Precision {
    /// All precisions in the order Table II reports GEMM rows.
    pub const GEMM_ORDER: [Precision; 6] = [
        Precision::Fp64,
        Precision::Fp32,
        Precision::Fp16,
        Precision::Bf16,
        Precision::Tf32,
        Precision::Int8,
    ];

    /// Storage size of one element in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp64 => 8,
            Precision::Fp32 | Precision::Tf32 => 4,
            Precision::Fp16 | Precision::Bf16 => 2,
            Precision::Fp8 | Precision::Int8 => 1,
        }
    }

    /// True for the precisions executed on matrix (XMX / tensor-core /
    /// matrix-core) units rather than vector pipes in the paper's GEMM
    /// benchmark (§IV-A5: "The matrix unit ... supports only lower
    /// precision operations").
    pub fn uses_matrix_unit(self) -> bool {
        !matches!(self, Precision::Fp64 | Precision::Fp32)
    }

    /// Label used in the paper's tables (DGEMM, SGEMM, HGEMM, …).
    pub fn gemm_name(self) -> &'static str {
        match self {
            Precision::Fp64 => "DGEMM",
            Precision::Fp32 => "SGEMM",
            Precision::Fp16 => "HGEMM",
            Precision::Bf16 => "BF16GEMM",
            Precision::Tf32 => "TF32GEMM",
            Precision::Fp8 => "FP8GEMM",
            Precision::Int8 => "I8GEMM",
        }
    }

    /// Unit string for throughput in this precision (`TFlop/s` or
    /// `TIop/s`).
    pub fn throughput_unit(self) -> &'static str {
        if matches!(self, Precision::Int8) {
            "TIop/s"
        } else {
            "TFlop/s"
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Precision::Fp64 => "FP64",
            Precision::Fp32 => "FP32",
            Precision::Fp16 => "FP16",
            Precision::Bf16 => "BF16",
            Precision::Tf32 => "TF32",
            Precision::Fp8 => "FP8",
            Precision::Int8 => "I8",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_sizes() {
        assert_eq!(Precision::Fp64.bytes(), 8);
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Tf32.bytes(), 4);
        assert_eq!(Precision::Fp16.bytes(), 2);
        assert_eq!(Precision::Bf16.bytes(), 2);
        assert_eq!(Precision::Int8.bytes(), 1);
        assert_eq!(Precision::Fp8.bytes(), 1);
    }

    #[test]
    fn matrix_unit_assignment_follows_paper() {
        // §II: the vector unit supports FP64/FP32 FMA; the matrix unit
        // supports only lower precisions.
        assert!(!Precision::Fp64.uses_matrix_unit());
        assert!(!Precision::Fp32.uses_matrix_unit());
        for p in [
            Precision::Fp16,
            Precision::Bf16,
            Precision::Tf32,
            Precision::Fp8,
            Precision::Int8,
        ] {
            assert!(p.uses_matrix_unit(), "{p} should map to the XMX unit");
        }
    }

    #[test]
    fn gemm_names_match_table_ii() {
        let names: Vec<_> = Precision::GEMM_ORDER
            .iter()
            .map(|p| p.gemm_name())
            .collect();
        assert_eq!(
            names,
            ["DGEMM", "SGEMM", "HGEMM", "BF16GEMM", "TF32GEMM", "I8GEMM"]
        );
    }

    #[test]
    fn int8_uses_iops_unit() {
        assert_eq!(Precision::Int8.throughput_unit(), "TIop/s");
        assert_eq!(Precision::Fp64.throughput_unit(), "TFlop/s");
    }
}

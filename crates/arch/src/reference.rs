//! Table IV: vendor reference characteristics of the comparison GPUs.
//!
//! "Performance characteristic of Nvidia H100, AMD MI250 and AMD MI250x
//! GPUs. H100 and MI250 are theoretical, MI250x are measured." These are
//! the denominators of the expected-performance (black-bar) computations
//! in Figures 3 and 4, so they are kept verbatim as published data rather
//! than re-derived.

/// One column of Table IV. `None` reproduces the dashes in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceSpec {
    /// Column label.
    pub name: &'static str,
    /// FP32 peak, flop/s.
    pub fp32_peak: Option<f64>,
    /// FP64 peak, flop/s.
    pub fp64_peak: Option<f64>,
    /// Measured SGEMM, flop/s.
    pub sgemm: Option<f64>,
    /// Measured DGEMM, flop/s.
    pub dgemm: Option<f64>,
    /// Memory bandwidth, bytes/s.
    pub mem_bw: Option<f64>,
    /// PCIe bandwidth, bytes/s.
    pub pcie_bw: Option<f64>,
    /// GCD-to-GCD bandwidth, bytes/s.
    pub gcd_to_gcd: Option<f64>,
}

/// H100 column (theoretical, NVIDIA datasheet). The paper prints the
/// memory bandwidth as "3.4 GB/s" — a typo for 3.4 TB/s; the body text
/// uses 3.35 TB/s, which we keep.
pub const H100: ReferenceSpec = ReferenceSpec {
    name: "H100",
    fp32_peak: Some(67.0e12),
    fp64_peak: Some(34.0e12),
    sgemm: None,
    dgemm: None,
    mem_bw: Some(3.35e12),
    pcie_bw: Some(128.0e9),
    gcd_to_gcd: None,
};

/// MI250 column (theoretical, AMD datasheet).
pub const MI250: ReferenceSpec = ReferenceSpec {
    name: "MI250",
    fp32_peak: Some(45.3e12),
    fp64_peak: Some(45.3e12),
    sgemm: None,
    dgemm: None,
    mem_bw: Some(3.2e12),
    pcie_bw: Some(64.0e9),
    gcd_to_gcd: None,
};

/// Single-GCD MI250x column (measured on Frontier, reference 13 of the
/// paper).
pub const MI250X_GCD: ReferenceSpec = ReferenceSpec {
    name: "1x GCD MI250x",
    fp32_peak: None,
    fp64_peak: None,
    sgemm: Some(33.8e12),
    dgemm: Some(24.1e12),
    mem_bw: Some(1.3e12),
    pcie_bw: Some(25.0e9),
    gcd_to_gcd: Some(37.0e9),
};

/// The three Table IV columns in print order.
pub const TABLE_IV: [ReferenceSpec; 3] = [H100, MI250, MI250X_GCD];

/// MI250X theoretical per-GCD double-precision *matrix* peak, used in
/// §IV-B5's efficiency comparison ("48 Tflop/s per GCD").
pub const MI250X_GCD_MATRIX_FP64: f64 = 48.0e12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_values_as_published() {
        assert_eq!(H100.fp32_peak, Some(67.0e12));
        assert_eq!(H100.fp64_peak, Some(34.0e12));
        assert_eq!(H100.pcie_bw, Some(128.0e9));
        assert_eq!(MI250.fp64_peak, MI250.fp32_peak);
        assert_eq!(MI250X_GCD.dgemm, Some(24.1e12));
        assert_eq!(MI250X_GCD.gcd_to_gcd, Some(37.0e9));
    }

    #[test]
    fn dashes_reproduced() {
        assert!(H100.sgemm.is_none());
        assert!(MI250.gcd_to_gcd.is_none());
        assert!(MI250X_GCD.fp32_peak.is_none());
    }

    #[test]
    fn gemm_efficiency_comparison_of_section_iv_b5() {
        // MI250x DGEMM vs matrix peak: 24.1/48 ≈ 50% — the paper's
        // "efficiency is lower (50% versus GEMM on PVC is 80%)".
        let eff = MI250X_GCD.dgemm.unwrap() / MI250X_GCD_MATRIX_FP64;
        assert!((eff - 0.50).abs() < 0.01);
    }
}

//! Unit helpers: the tables in the paper mix GB/s, TB/s, TFlop/s and
//! PFlop/s; internally everything is SI base units (bytes/s, flop/s,
//! seconds, Hz).

/// 1 KiB in bytes.
pub const KIB: f64 = 1024.0;
/// 1 MiB in bytes.
pub const MIB: f64 = 1024.0 * 1024.0;
/// 1 GiB in bytes.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Converts GB/s (decimal, as in the paper's tables) to bytes/s.
pub const fn gb_s(v: f64) -> f64 {
    v * 1e9
}

/// Converts TB/s to bytes/s.
pub const fn tb_s(v: f64) -> f64 {
    v * 1e12
}

/// Converts TFlop/s to flop/s.
pub const fn tflops(v: f64) -> f64 {
    v * 1e12
}

/// Converts GHz to Hz.
pub const fn ghz(v: f64) -> f64 {
    v * 1e9
}

/// Formats a flop rate the way the paper's tables do (TFlop/s below 1
/// PFlop/s, PFlop/s above).
pub fn fmt_flops(flops_per_s: f64) -> String {
    if flops_per_s >= 1e15 {
        format!("{:.1} PFlop/s", flops_per_s / 1e15)
    } else {
        format!("{:.0} TFlop/s", flops_per_s / 1e12)
    }
}

/// Formats a bandwidth the way the paper's tables do.
pub fn fmt_bw(bytes_per_s: f64) -> String {
    if bytes_per_s >= 1e12 {
        format!("{:.0} TB/s", bytes_per_s / 1e12)
    } else {
        format!("{:.0} GB/s", bytes_per_s / 1e9)
    }
}

/// Relative error |a-b| / |b|; used by tests comparing simulated values
/// against the paper's published numbers.
pub fn rel_err(measured: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - reference).abs() / reference.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(gb_s(54.0), 5.4e10);
        assert_eq!(tb_s(1.0), 1e12);
        assert_eq!(tflops(17.0), 1.7e13);
        assert_eq!(ghz(1.6), 1.6e9);
        assert_eq!(MIB, 1048576.0);
    }

    #[test]
    fn formatting_matches_table_style() {
        assert_eq!(fmt_flops(17e12), "17 TFlop/s");
        assert_eq!(fmt_flops(2.3e15), "2.3 PFlop/s");
        assert_eq!(fmt_bw(1e12), "1 TB/s");
        assert_eq!(fmt_bw(54e9), "54 GB/s");
    }

    #[test]
    fn relative_error() {
        assert!((rel_err(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert_eq!(rel_err(0.0, 0.0), 0.0);
        assert_eq!(rel_err(1.0, 0.0), f64::INFINITY);
    }
}

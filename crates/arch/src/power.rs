//! Extension: power and energy accounting.
//!
//! §III notes the operational caps ("each PVC card is power-capped to
//! 600 W" on Dawn, 500 W on Aurora) and §IV-B2 attributes the FP64
//! downclock to TDP. This module turns those caps into energy
//! estimates: workload energy = sustained node GPU power × simulated
//! time, with a simple cubic frequency→power model to connect the
//! governed clocks to the caps.
//!
//! This is an extension beyond the paper's reported results (it prints
//! no energy numbers), but it is directly implied by the TDP discussion
//! and enables efficiency (flops/W) comparisons across the four systems.

use crate::node::NodeModel;
use crate::precision::Precision;

/// Dynamic power scales roughly with f³ (V ∝ f around the operating
/// point); idle/static draw is a fixed fraction of the cap.
const STATIC_FRACTION: f64 = 0.25;

/// Sustained per-card power (watts) while running vector work at
/// precision `p` with `active` partitions busy node-wide: the cap scaled
/// by the cubic frequency ratio of the governed clock to the max clock,
/// floored at the static draw.
pub fn card_power(node: &NodeModel, p: Precision, active: u32) -> f64 {
    let cap = node.gpu_power_cap_w;
    let f_ratio = node.gpu.clock.vector_clock_hz(p) * node.gpu.clock.scale_derate(p, active)
        / node.gpu.clock.max_hz();
    let dynamic = cap * (1.0 - STATIC_FRACTION) * f_ratio.powi(3);
    cap * STATIC_FRACTION + dynamic
}

/// Node GPU power (watts) with every partition busy at precision `p`.
pub fn node_power(node: &NodeModel, p: Precision) -> f64 {
    card_power(node, p, node.partitions()) * node.gpus as f64
}

/// Node-level compute efficiency: sustained vector flop/s per watt at
/// precision `p`.
pub fn flops_per_watt(node: &NodeModel, p: Precision) -> f64 {
    let n = node.partitions();
    let flops = node.gpu.vector_peak_per_partition(p, n) * n as f64;
    flops / node_power(node, p)
}

/// Energy (joules) to run a kernel of `flops` floating-point operations
/// at the node's sustained vector rate.
pub fn kernel_energy(node: &NodeModel, p: Precision, flops: f64) -> f64 {
    let n = node.partitions();
    let rate = node.gpu.vector_peak_per_partition(p, n) * n as f64;
    let time = flops / rate;
    node_power(node, p) * time
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::systems::System;

    #[test]
    fn fp64_draws_less_than_fp32_on_pvc() {
        // The FP64 downclock (1.2 vs 1.6 GHz) means lower sustained
        // power — that is the point of the TDP governor.
        let node = System::Aurora.node();
        let p64 = card_power(&node, Precision::Fp64, 1);
        let p32 = card_power(&node, Precision::Fp32, 1);
        assert!(p64 < p32, "{p64:.0} W vs {p32:.0} W");
        assert!(p32 <= node.gpu_power_cap_w * 1.0001);
    }

    #[test]
    fn power_never_exceeds_cap_or_drops_below_static() {
        for sys in System::ALL {
            let node = sys.node();
            for p in [Precision::Fp64, Precision::Fp32] {
                for active in [1, node.partitions()] {
                    let w = card_power(&node, p, active);
                    assert!(w <= node.gpu_power_cap_w + 1e-9);
                    assert!(w >= node.gpu_power_cap_w * STATIC_FRACTION);
                }
            }
        }
    }

    #[test]
    fn dawn_fp64_beats_aurora_in_flops_per_watt() {
        // Dawn: more Xe-Cores per stack at the same per-stack bandwidth
        // and a similar governed clock — better FP64 efficiency per watt
        // despite the higher 600 W cap.
        let a = flops_per_watt(&System::Aurora.node(), Precision::Fp64);
        let d = flops_per_watt(&System::Dawn.node(), Precision::Fp64);
        assert!(d > a * 0.9, "Dawn {d:.2e} vs Aurora {a:.2e}");
    }

    #[test]
    fn energy_scales_linearly_with_work() {
        let node = System::JlseH100.node();
        let e1 = kernel_energy(&node, Precision::Fp32, 1e15);
        let e2 = kernel_energy(&node, Precision::Fp32, 2e15);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
    }
}

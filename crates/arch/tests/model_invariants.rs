//! Property tests of the architecture models: invariants every system
//! preset must satisfy, present and future. Runs on the deterministic
//! `pvc_core::check` harness (seeded cases, reproducible on every
//! machine).

use pvc_arch::governor::ScaleCurve;
use pvc_arch::{power, Precision, System};
use pvc_core::check::check;
use pvc_core::ensure;

const PRECISIONS: [Precision; 5] = [
    Precision::Fp64,
    Precision::Fp32,
    Precision::Fp16,
    Precision::Bf16,
    Precision::Int8,
];

/// Peaks are positive, finite, and monotone down in active count.
#[test]
fn peaks_positive_and_derate_monotone() {
    check("arch::peaks_positive_and_derate_monotone", 64, |g| {
        let sys = *g.choose(&System::ALL);
        let p = *g.choose(&PRECISIONS);
        let a = g.u32_in(1..12);
        let gpu = sys.node().gpu;
        let v1 = gpu.vector_peak_per_partition(p, a);
        let v2 = gpu.vector_peak_per_partition(p, a + 1);
        ensure!(v1.is_finite() && v1 >= 0.0);
        ensure!(v2 <= v1 * (1.0 + 1e-12));
        let m = gpu.matrix_peak_per_partition(p, a);
        ensure!(m.is_finite() && m >= 0.0);
        Ok(())
    });
}

/// Scale curves constructed from arbitrary valid points stay within the
/// envelope of their control points.
#[test]
fn scale_curve_within_envelope() {
    check("arch::scale_curve_within_envelope", 64, |g| {
        let d1 = g.f64_in(0.5..1.0);
        let d2 = g.f64_in(0.5..1.0);
        let query = g.u32_in(0..40);
        let lo = d1.min(d2);
        let hi = d1.max(d2);
        let c = ScaleCurve::new(vec![(1, 1.0), (4, hi), (16, lo)]);
        let v = c.at(query);
        ensure!(v >= lo - 1e-12 && v <= 1.0 + 1e-12, "{v} outside [{lo}, 1]");
        Ok(())
    });
}

/// The power model never exceeds the cap and scales with it.
#[test]
fn power_respects_cap() {
    check("arch::power_respects_cap", 64, |g| {
        let sys = *g.choose(&System::ALL);
        let p = *g.choose(&PRECISIONS);
        let a = g.u32_in(1..12);
        let node = sys.node();
        let w = power::card_power(&node, p, a);
        ensure!(w > 0.0);
        ensure!(w <= node.gpu_power_cap_w * (1.0 + 1e-12));
        Ok(())
    });
}

/// Stream bandwidth never exceeds spec bandwidth; random-access
/// throughput is positive and below one line per cycle.
#[test]
fn memory_model_bounds() {
    check("arch::memory_model_bounds", 16, |g| {
        let sys = *g.choose(&System::ALL);
        let gpu = sys.node().gpu;
        let mem = &gpu.partition.memory;
        ensure!(mem.stream_bandwidth() <= mem.spec_bandwidth);
        let rate = mem.random_access_rate(gpu.clock.max_hz());
        ensure!(rate > 0.0);
        ensure!(rate < gpu.clock.max_hz(), "more than one miss per cycle");
        Ok(())
    });
}

/// Cache hierarchies are size-increasing and latency-increasing from
/// inner to outer, ending below the HBM latency.
#[test]
fn cache_hierarchy_ordered() {
    check("arch::cache_hierarchy_ordered", 16, |g| {
        let sys = *g.choose(&System::ALL);
        let part = sys.node().gpu.partition;
        let mut prev_size = 0u64;
        let mut prev_lat = 0.0f64;
        for (i, _) in part.caches.iter().enumerate() {
            let cap = part.cache_capacity(i);
            let lat = part.caches[i].latency_cycles;
            ensure!(cap > prev_size, "level {i} capacity must grow");
            ensure!(lat > prev_lat, "level {i} latency must grow");
            prev_size = cap;
            prev_lat = lat;
        }
        ensure!(part.memory.latency_cycles > prev_lat);
        Ok(())
    });
}

/// Non-property: every preset's derived Table IV-style peaks stay
/// pinned (regression guard over all presets at once).
#[test]
fn all_preset_headline_peaks() {
    let expect = [
        (System::Aurora, Precision::Fp64, 17.2),
        (System::Dawn, Precision::Fp64, 19.7),
        (System::JlseH100, Precision::Fp64, 33.4),
        (System::JlseMi250, Precision::Fp64, 22.6),
    ];
    for (sys, p, tf) in expect {
        let got = sys.node().gpu.vector_peak_per_partition(p, 1) / 1e12;
        assert!((got - tf).abs() < 0.2, "{sys:?}: {got:.1} vs {tf}");
    }
}

//! Event-based Monte Carlo transport.
//!
//! The GPU ports of OpenMC the paper runs (its references 43 and 44) use
//! *event-based* parallelism: instead of one thread following one
//! history to completion (history-based, as in [`crate::openmc`]),
//! particles are kept in queues and processed one *event kind* at a time
//! — all pending collisions together, all pending terminations together
//! — which keeps GPU lanes convergent. This module implements that
//! scheduling for the same multigroup physics and verifies the two
//! execution models agree: identical physics, different order.

use crate::openmc::MultigroupXs;
use pvc_core::SimRng;

/// A particle in flight.
#[derive(Debug, Clone, Copy)]
struct Particle {
    group: usize,
    rng_state: u64,
    k_score: f64,
}

/// Result of an event-based run.
#[derive(Debug, Clone)]
pub struct EventTallies {
    /// Collision-estimator k-eff.
    pub k_eff: f64,
    /// Events processed per kind: (collision, termination).
    pub events: (u64, u64),
    /// Maximum live-queue occupancy observed (sizing figure for the
    /// GPU's particle banks).
    pub peak_queue: usize,
    /// Collision-density spectrum.
    pub flux: Vec<f64>,
}

fn xorshift(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state % (1 << 53)) as f64 / (1u64 << 53) as f64
}

/// Runs `particles` histories in the infinite medium with event-based
/// scheduling: a live queue is drained one collision-event sweep at a
/// time, terminations retiring particles between sweeps.
pub fn run_event_based(xs: &MultigroupXs, particles: usize, seed: u64) -> EventTallies {
    let g = xs.groups();
    let mut seed_rng = SimRng::seed_from_u64(seed);
    let mut live: Vec<Particle> = (0..particles)
        .map(|_| {
            // Sample birth group from chi.
            let u: f64 = seed_rng.random();
            let mut acc = 0.0;
            let mut group = 0;
            for (gg, &c) in xs.chi.iter().enumerate() {
                acc += c;
                if u < acc {
                    group = gg;
                    break;
                }
            }
            Particle {
                group,
                rng_state: seed_rng.random::<u64>() | 1,
                k_score: 0.0,
            }
        })
        .collect();

    let mut flux = vec![0.0f64; g];
    let mut collisions = 0u64;
    let mut terminations = 0u64;
    let mut retired_k = 0.0f64;
    let mut peak_queue = live.len();

    while !live.is_empty() {
        peak_queue = peak_queue.max(live.len());
        // Collision sweep: every live particle scores and samples its
        // outcome — one convergent "event kernel" launch.
        let mut survivors = Vec::with_capacity(live.len());
        for mut p in live {
            collisions += 1;
            flux[p.group] += 1.0 / xs.total[p.group];
            p.k_score += xs.nu_fission[p.group] / xs.total[p.group];
            let u = xorshift(&mut p.rng_state) * xs.total[p.group];
            let mut acc = 0.0;
            let mut scattered = false;
            for (g2, &s) in xs.scatter[p.group].iter().enumerate() {
                acc += s;
                if u < acc {
                    p.group = g2;
                    scattered = true;
                    break;
                }
            }
            if scattered {
                survivors.push(p);
            } else {
                // Termination sweep member.
                terminations += 1;
                retired_k += p.k_score;
            }
        }
        live = survivors;
    }

    EventTallies {
        k_eff: retired_k / particles as f64,
        events: (collisions, terminations),
        peak_queue,
        flux,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::openmc::run_transport;

    #[test]
    fn event_based_matches_history_based_physics() {
        let xs = MultigroupXs::two_group_fuel();
        let ev = run_event_based(&xs, 60_000, 9);
        let hist = run_transport(&xs, 20_000, 3, 4);
        // Same expectation value, independent RNG streams.
        assert!(
            (ev.k_eff - hist.k_eff).abs() < 0.03,
            "event {} vs history {}",
            ev.k_eff,
            hist.k_eff
        );
        // And both match the deterministic oracle.
        let det = xs.k_inf_deterministic();
        assert!((ev.k_eff - det).abs() / det < 0.03);
    }

    #[test]
    fn every_history_terminates_exactly_once() {
        let xs = MultigroupXs::two_group_fuel();
        let n = 10_000;
        let ev = run_event_based(&xs, n, 3);
        assert_eq!(ev.events.1, n as u64, "one termination per history");
        assert!(ev.events.0 >= ev.events.1, "at least one collision each");
    }

    #[test]
    fn queue_drains_monotonically_from_full() {
        let xs = MultigroupXs::one_group(1.0, 0.5, 0.0);
        let n = 5000;
        let ev = run_event_based(&xs, n, 7);
        assert_eq!(ev.peak_queue, n, "queue starts full then only drains");
        // Mean collisions per history = 1/(1 - 0.5) = 2.
        let mean = ev.events.0 as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "geometric mean collisions {mean}");
    }

    #[test]
    fn pure_absorber_terminates_in_one_sweep() {
        let xs = MultigroupXs::one_group(1.0, 0.0, 0.0);
        let ev = run_event_based(&xs, 1000, 1);
        assert_eq!(ev.events.0, 1000);
        assert_eq!(ev.events.1, 1000);
        assert_eq!(ev.k_eff, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let xs = MultigroupXs::two_group_fuel();
        let a = run_event_based(&xs, 2000, 5);
        let b = run_event_based(&xs, 2000, 5);
        assert_eq!(a.k_eff, b.k_eff);
        assert_eq!(a.events, b.events);
    }
}

//! CRK-HACC-like cosmological N-body / SPH application (§VI-A2).
//!
//! "The Hardware/Hybrid Accelerated Cosmology Code (HACC) is an N-body
//! simulation code designed for large-scale structure formation studies
//! … CRK-HACC now incorporates gas hydrodynamics using a modern
//! smoothed-particle hydrodynamics (SPH) approach." Table V classifies it
//! CPU-memory-bandwidth bound on the host side and FP32 flop-rate bound
//! on the GPU.
//!
//! The real kernel: a direct short-range gravity solver with Plummer
//! softening (the structure of HACC's P³M short-range force), FP32
//! accumulation like the GPU kernels, a kick-drift-kick leapfrog
//! integrator, and a cubic-spline SPH density estimate. Energy
//! conservation and two-body dynamics are verified in tests.
//!
//! FOM model (§VI-B2: the FOM "reflects the differences in GPU compute
//! capabilities along with the available CPU threads and bandwidth"):
//! `1/FOM = W_gpu / (node FP32 vector peak × utilisation) +
//! W_cpu / host memory bandwidth`.

use pvc_arch::{Precision, System};
use pvc_core::par;

/// A simulation particle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    pub pos: [f32; 3],
    pub vel: [f32; 3],
    pub mass: f32,
}

/// Gravitational constant in simulation units.
pub const G: f32 = 1.0;

/// Plummer softening length.
pub const SOFTENING: f32 = 1e-3;

// ---------------------------------------------------------------------
// Real kernel
// ---------------------------------------------------------------------

/// Direct O(N²) softened gravity: accelerations in FP32, parallel over
/// targets (the GPU short-range kernel's structure).
pub fn accelerations(particles: &[Particle]) -> Vec<[f32; 3]> {
    par::map_collect(particles.len(), |i| {
        let pi = &particles[i];
        {
            let mut acc = [0.0f32; 3];
            for pj in particles {
                let dx = pj.pos[0] - pi.pos[0];
                let dy = pj.pos[1] - pi.pos[1];
                let dz = pj.pos[2] - pi.pos[2];
                let r2 = dx * dx + dy * dy + dz * dz + SOFTENING * SOFTENING;
                let inv_r = 1.0 / r2.sqrt();
                let inv_r3 = inv_r * inv_r * inv_r;
                let f = G * pj.mass * inv_r3;
                acc[0] += f * dx;
                acc[1] += f * dy;
                acc[2] += f * dz;
            }
            acc
        }
    })
}

/// One kick-drift-kick leapfrog step.
#[allow(clippy::needless_range_loop)]
pub fn leapfrog_step(particles: &mut [Particle], dt: f32) {
    let acc = accelerations(particles);
    for (p, a) in particles.iter_mut().zip(acc.iter()) {
        for k in 0..3 {
            p.vel[k] += 0.5 * dt * a[k];
            p.pos[k] += dt * p.vel[k];
        }
    }
    let acc2 = accelerations(particles);
    for (p, a) in particles.iter_mut().zip(acc2.iter()) {
        for k in 0..3 {
            p.vel[k] += 0.5 * dt * a[k];
        }
    }
}

/// Total energy (kinetic + softened potential), in f64 for diagnostics.
pub fn total_energy(particles: &[Particle]) -> f64 {
    let kinetic: f64 = particles
        .iter()
        .map(|p| {
            0.5 * p.mass as f64
                * (p.vel[0] as f64 * p.vel[0] as f64
                    + p.vel[1] as f64 * p.vel[1] as f64
                    + p.vel[2] as f64 * p.vel[2] as f64)
        })
        .sum();
    let mut potential = 0.0f64;
    for i in 0..particles.len() {
        for j in (i + 1)..particles.len() {
            let a = &particles[i];
            let b = &particles[j];
            let dx = (a.pos[0] - b.pos[0]) as f64;
            let dy = (a.pos[1] - b.pos[1]) as f64;
            let dz = (a.pos[2] - b.pos[2]) as f64;
            let r = (dx * dx + dy * dy + dz * dz + (SOFTENING as f64).powi(2)).sqrt();
            potential -= G as f64 * a.mass as f64 * b.mass as f64 / r;
        }
    }
    kinetic + potential
}

/// Cubic-spline SPH density estimate with smoothing length `h`
/// (CRKSPH's conservative-reproducing-kernel step uses the same
/// neighbour structure).
pub fn sph_density(particles: &[Particle], h: f32) -> Vec<f32> {
    let norm = 8.0 / (std::f32::consts::PI * h * h * h);
    par::map_collect(particles.len(), |i| {
        let pi = &particles[i];
        {
            let mut rho = 0.0f32;
            for pj in particles {
                let dx = pj.pos[0] - pi.pos[0];
                let dy = pj.pos[1] - pi.pos[1];
                let dz = pj.pos[2] - pi.pos[2];
                let q = (dx * dx + dy * dy + dz * dz).sqrt() / h;
                let w = if q <= 0.5 {
                    1.0 - 6.0 * q * q + 6.0 * q * q * q
                } else if q <= 1.0 {
                    2.0 * (1.0 - q).powi(3)
                } else {
                    0.0
                };
                rho += pj.mass * norm * w;
            }
            rho
        }
    })
}

/// Deterministic particle cube of `n³` particles in [0, 1)³ with small
/// random velocities (the paper's runs use 2×480³ and 2×400³ particles).
pub fn particle_cube(n: usize, seed: u64) -> Vec<Particle> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 100_000) as f32 / 100_000.0
    };
    let mut particles = Vec::with_capacity(n * n * n);
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let jitter = 0.01;
                particles.push(Particle {
                    pos: [
                        (i as f32 + 0.5) / n as f32 + jitter * (next() - 0.5),
                        (j as f32 + 0.5) / n as f32 + jitter * (next() - 0.5),
                        (k as f32 + 0.5) / n as f32 + jitter * (next() - 0.5),
                    ],
                    vel: [0.0; 3],
                    mass: 1.0 / (n * n * n) as f32,
                });
            }
        }
    }
    particles
}

// ---------------------------------------------------------------------
// FOM model
// ---------------------------------------------------------------------

/// Normalised GPU work of the benchmark simulation (FP32 flops).
pub const W_GPU: f64 = 1.0e13;

/// Normalised host-side work (bytes through host DRAM).
pub const W_CPU: f64 = 1.16e10;

/// Sustained fraction of the node FP32 *vector* peak the CRK-HACC GPU
/// kernels reach. Calibrated to Table VI (13.81/12.26/12.46/10.70);
/// the MI250 HIP build achieves the highest fraction of its (lower)
/// vector peak, consistent with §VI-B2's scaled-performance figures
/// placing all four systems within a few percent of each other.
pub fn gpu_utilisation(system: System) -> f64 {
    match system {
        System::Aurora => 0.6436,
        System::Dawn => 0.8341,
        System::JlseH100 => 0.6602,
        System::JlseMi250 => 0.9511,
    }
}

/// Node FP32 vector peak, flop/s.
fn node_fp32_vector_peak(system: System) -> f64 {
    let node = system.node();
    let n = node.partitions();
    node.gpu.vector_peak_per_partition(Precision::Fp32, n) * n as f64
}

/// FOM (N_p·N_steps/time, normalised units) for a full node.
pub fn fom_node(system: System) -> f64 {
    let node = system.node();
    let host_bw = node.cpu.mem_bandwidth * node.sockets as f64;
    let t = W_GPU / (node_fp32_vector_peak(system) * gpu_utilisation(system)) + W_CPU / host_bw;
    1.0 / t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn fom_matches_table_vi_row_6() {
        // HACC: Aurora 13.81, Dawn 12.26, H100 12.46, MI250 10.70.
        let cases = [
            (System::Aurora, 13.81),
            (System::Dawn, 12.26),
            (System::JlseH100, 12.46),
            (System::JlseMi250, 10.70),
        ];
        for (sys, published) in cases {
            let got = fom_node(sys);
            assert!(
                rel_err(got, published) < 0.02,
                "{sys:?}: {got:.2} vs {published}"
            );
        }
    }

    #[test]
    fn aurora_wins_the_hacc_row() {
        // Table VI ordering: Aurora > H100 > Dawn > MI250.
        let a = fom_node(System::Aurora);
        let h = fom_node(System::JlseH100);
        let d = fom_node(System::Dawn);
        let m = fom_node(System::JlseMi250);
        assert!(a > h && h > d && d > m, "{a:.2} {h:.2} {d:.2} {m:.2}");
    }

    #[test]
    fn two_body_orbit_is_stable() {
        // Equal masses on a circular orbit: r = 1, v = sqrt(G·M_total/r)/2
        // about the barycentre.
        let m = 0.5f32;
        let v = (G * 1.0f32 / 1.0).sqrt() / 2.0;
        let mut ps = vec![
            Particle {
                pos: [-0.5, 0.0, 0.0],
                vel: [0.0, -v, 0.0],
                mass: m,
            },
            Particle {
                pos: [0.5, 0.0, 0.0],
                vel: [0.0, v, 0.0],
                mass: m,
            },
        ];
        let r0 = 1.0f64;
        for _ in 0..2000 {
            leapfrog_step(&mut ps, 1e-3);
        }
        let dx = (ps[0].pos[0] - ps[1].pos[0]) as f64;
        let dy = (ps[0].pos[1] - ps[1].pos[1]) as f64;
        let r = (dx * dx + dy * dy).sqrt();
        assert!((r - r0).abs() < 0.05, "orbit radius drifted to {r}");
    }

    #[test]
    fn leapfrog_conserves_energy() {
        let mut ps = particle_cube(4, 9);
        // Give the cold cube a virialising kick via one step first.
        let e0 = total_energy(&ps);
        for _ in 0..50 {
            leapfrog_step(&mut ps, 5e-4);
        }
        let e1 = total_energy(&ps);
        let drift = ((e1 - e0) / e0.abs()).abs();
        assert!(drift < 0.02, "energy drift {drift:.4}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn momentum_is_conserved_exactly_in_symmetry() {
        let mut ps = particle_cube(3, 4);
        for _ in 0..10 {
            leapfrog_step(&mut ps, 1e-3);
        }
        let mut p = [0.0f64; 3];
        for part in &ps {
            for k in 0..3 {
                p[k] += (part.mass * part.vel[k]) as f64;
            }
        }
        for k in 0..3 {
            assert!(p[k].abs() < 1e-4, "net momentum {p:?}");
        }
    }

    #[test]
    fn sph_density_normalises_on_uniform_cube() {
        // A uniform unit cube of total mass 1 has mean density ≈ 1 away
        // from edges.
        let ps = particle_cube(8, 2);
        let rho = sph_density(&ps, 0.25);
        // Interior particle: index near centre.
        let mid = ps
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = (a.pos[0] - 0.5).abs() + (a.pos[1] - 0.5).abs() + (a.pos[2] - 0.5).abs();
                let db = (b.pos[0] - 0.5).abs() + (b.pos[1] - 0.5).abs() + (b.pos[2] - 0.5).abs();
                da.partial_cmp(&db).unwrap()
            })
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            (rho[mid] - 1.0).abs() < 0.35,
            "interior density {} should be ≈1",
            rho[mid]
        );
    }

    #[test]
    fn accelerations_antisymmetric_for_pair() {
        let ps = vec![
            Particle {
                pos: [0.0, 0.0, 0.0],
                vel: [0.0; 3],
                mass: 1.0,
            },
            Particle {
                pos: [1.0, 0.0, 0.0],
                vel: [0.0; 3],
                mass: 1.0,
            },
        ];
        let acc = accelerations(&ps);
        assert!((acc[0][0] + acc[1][0]).abs() < 1e-6);
        assert!(acc[0][0] > 0.0 && acc[1][0] < 0.0);
    }
}

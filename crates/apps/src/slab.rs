//! Extension: slab-geometry Monte Carlo transport with leakage.
//!
//! The infinite-medium solver in [`crate::openmc`] verifies the
//! collision physics; this module adds 1D slab geometry — free-flight
//! distance sampling, vacuum boundaries, leakage — so the transport
//! substrate covers the geometry features a real OpenMC run exercises.
//! The thick-slab limit is verified against the infinite-medium k∞ and
//! escape probabilities against the analytic first-flight formula.

use crate::openmc::MultigroupXs;
use pvc_core::{par, SimRng};

/// Result of a slab transport run.
#[derive(Debug, Clone)]
pub struct SlabTallies {
    /// Collision-estimator k-eff.
    pub k_eff: f64,
    /// Fraction of histories whose particle leaked before any collision
    /// (first-flight escape).
    pub first_flight_leakage: f64,
    /// Fraction of all histories ending in leakage (either face).
    pub total_leakage: f64,
    /// Track-length-estimator scalar flux per spatial bin.
    pub flux_bins: Vec<f64>,
    /// Histories run.
    pub particles: u64,
}

/// Analytic first-flight escape probability for a uniform + isotropic
/// source in a slab of optical thickness `tau` (in mean free paths):
/// P = (1 − 2·E3(tau)) / (2·tau) … using the standard exponential
/// integral identity; evaluated here by numeric quadrature for test
/// oracles.
pub fn first_flight_escape(tau: f64) -> f64 {
    // P_escape = ∫0^1 dμ ∫0^tau dx/tau * 0.5*(exp(-x/μ) + exp(-(tau-x)/μ))
    // (isotropic direction cosine μ, uniform birth position).
    let nx = 400;
    let nmu = 400;
    let mut p = 0.0;
    for ix in 0..nx {
        let x = (ix as f64 + 0.5) / nx as f64 * tau;
        for imu in 0..nmu {
            let mu = (imu as f64 + 0.5) / nmu as f64;
            let right = (-(tau - x) / mu).exp();
            let left = (-x / mu).exp();
            p += 0.5 * (left + right);
        }
    }
    p / (nx * nmu) as f64
}

/// Runs multigroup MC transport in a slab of `thickness` mean free
/// paths (at the group-0 total cross section), with `bins` spatial flux
/// bins, uniform isotropic source.
pub fn run_slab(
    xs: &MultigroupXs,
    thickness: f64,
    bins: usize,
    particles: usize,
    seed: u64,
) -> SlabTallies {
    let g = xs.groups();
    let results: Vec<(f64, bool, bool, Vec<f64>)> = par::map_collect(particles, |p| {
            let mut rng = SimRng::seed_from_u64(seed ^ (p as u64).wrapping_mul(0x9E3779B9));
            let mut flux = vec![0.0f64; bins];
            let mut k_score = 0.0;
            let mut group = 0usize;
            // χ sampling.
            let u: f64 = rng.random();
            let mut acc = 0.0;
            for (gg, &c) in xs.chi.iter().enumerate() {
                acc += c;
                if u < acc {
                    group = gg;
                    break;
                }
            }
            let mut x: f64 = rng.random::<f64>() * thickness;
            let mut mu: f64 = 2.0 * rng.random::<f64>() - 1.0;
            let mut first_flight = true;
            let mut leaked_first = false;
            let mut leaked = false;
            loop {
                let sigma = xs.total[group];
                let s = -rng.random::<f64>().max(1e-300).ln() / sigma;
                let x_new = x + s * mu;
                // Track-length flux tally along the segment inside.
                let (seg_a, seg_b) = if mu >= 0.0 {
                    (x, x_new.min(thickness))
                } else {
                    (x_new.max(0.0), x)
                };
                if seg_b > seg_a {
                    let bin_w = thickness / bins as f64;
                    let mut b0 = (seg_a / bin_w) as usize;
                    let b1 = ((seg_b / bin_w) as usize).min(bins - 1);
                    while b0 <= b1 {
                        let lo = seg_a.max(b0 as f64 * bin_w);
                        let hi = seg_b.min((b0 + 1) as f64 * bin_w);
                        flux[b0] += (hi - lo).max(0.0) / mu.abs().max(1e-12);
                        b0 += 1;
                    }
                }
                if !(0.0..=thickness).contains(&x_new) {
                    leaked = true;
                    leaked_first = first_flight;
                    break;
                }
                x = x_new;
                first_flight = false;
                // Collision.
                k_score += xs.nu_fission[group] / sigma;
                let u: f64 = rng.random::<f64>() * sigma;
                let mut acc = 0.0;
                let mut scattered = false;
                for (g2, &sc) in xs.scatter[group].iter().enumerate() {
                    acc += sc;
                    if u < acc {
                        group = g2;
                        scattered = true;
                        break;
                    }
                }
                if !scattered {
                    break; // absorbed
                }
                // Isotropic re-emission.
                mu = 2.0 * rng.random::<f64>() - 1.0;
            }
            let _ = g;
            (k_score, leaked_first, leaked, flux)
    });

    let mut flux_bins = vec![0.0f64; bins];
    let mut k = 0.0;
    let mut ff = 0u64;
    let mut leaks = 0u64;
    for (ks, lf, l, f) in &results {
        k += ks;
        ff += *lf as u64;
        leaks += *l as u64;
        for (dst, src) in flux_bins.iter_mut().zip(f.iter()) {
            *dst += src;
        }
    }
    SlabTallies {
        k_eff: k / particles as f64,
        first_flight_leakage: ff as f64 / particles as f64,
        total_leakage: leaks as f64 / particles as f64,
        flux_bins,
        particles: particles as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_flight_escape_limits() {
        // Thin slab: everything escapes. Thick slab: nothing does.
        assert!(first_flight_escape(0.01) > 0.95);
        assert!(first_flight_escape(50.0) < 0.03);
        // Monotone decreasing in thickness.
        assert!(first_flight_escape(1.0) > first_flight_escape(2.0));
    }

    #[test]
    fn mc_first_flight_matches_analytic() {
        // Pure absorber: every collision ends the history, so the MC
        // first-flight leakage equals the analytic escape probability.
        let xs = MultigroupXs::one_group(1.0, 0.0, 0.0);
        for tau in [0.5f64, 2.0] {
            let t = run_slab(&xs, tau, 8, 200_000, 11);
            let analytic = first_flight_escape(tau);
            assert!(
                (t.first_flight_leakage - analytic).abs() < 0.01,
                "tau={tau}: MC {} vs analytic {analytic}",
                t.first_flight_leakage
            );
        }
    }

    #[test]
    fn thick_slab_k_approaches_k_infinity() {
        let xs = MultigroupXs::two_group_fuel();
        let k_inf = xs.k_inf_deterministic();
        let thick = run_slab(&xs, 200.0, 8, 30_000, 3);
        assert!(
            (thick.k_eff - k_inf).abs() / k_inf < 0.05,
            "thick slab k {} vs k_inf {k_inf}",
            thick.k_eff
        );
        // A thin slab leaks and must be well below k_inf.
        let thin = run_slab(&xs, 0.5, 8, 30_000, 3);
        assert!(thin.k_eff < 0.5 * k_inf);
    }

    #[test]
    fn flux_profile_peaks_in_the_middle() {
        // Leakage depresses the flux near the faces.
        let xs = MultigroupXs::one_group(1.0, 0.9, 0.0);
        let t = run_slab(&xs, 10.0, 10, 50_000, 17);
        let mid = t.flux_bins[5];
        let edge = t.flux_bins[0];
        assert!(mid > edge, "mid {mid} vs edge {edge}");
    }

    #[test]
    fn leakage_decreases_with_thickness() {
        let xs = MultigroupXs::two_group_fuel();
        let thin = run_slab(&xs, 1.0, 4, 20_000, 5);
        let thick = run_slab(&xs, 20.0, 4, 20_000, 5);
        assert!(thin.total_leakage > thick.total_leakage);
    }
}

//! # pvc-apps — the two full science applications of §VI (Table VI)
//!
//! * [`openmc`] — Monte Carlo neutral-particle transport. A real
//!   multigroup MC solver (random walks, cross-section lookups, k-eff and
//!   flux tallies) plus the latency-bound FOM model: OpenMC's "active"
//!   phase is dominated by irregular cross-section and tally accesses, so
//!   throughput follows the Little's-law random-access rate of each
//!   device (Table V classifies it memory-latency/bandwidth bound).
//! * [`hacc`] — CRK-HACC cosmology. A real N-body kernel (direct
//!   short-range P²-style force with softening, leapfrog integration,
//!   SPH-style density estimate) plus the FOM model combining GPU FP32
//!   throughput with host-side work (§VI-B2: results "reflect the
//!   differences in GPU compute capabilities along with the available
//!   CPU threads and bandwidth").

pub mod event_transport;
pub mod hacc;
pub mod openmc;
pub mod pm;
pub mod slab;
pub mod sparse;
pub mod xs_lookup;

//! OpenMC-like Monte Carlo neutral-particle transport (§VI-A1).
//!
//! "OpenMC is a Monte Carlo neutral particle transport code … the figure
//! of merit is derived from the rate of execution of the program when in
//! the 'active' phase of the simulation that involves highly complex
//! tallying operations, and is measured in units of thousands of
//! particles per second" on the SMR depleted-fuel benchmark.
//!
//! The real solver below is a multigroup infinite-medium Monte Carlo
//! eigenvalue calculation: particles are born in the fission spectrum,
//! random-walk through collisions (scatter / absorb), score
//! collision-estimator k-eff and per-group flux tallies, and iterate
//! generations. k∞ is verified against the deterministic multigroup
//! answer.
//!
//! The FOM model: each simulated particle performs ~10³ dependent,
//! irregular memory lookups (cross sections by nuclide/energy, tally
//! bins), so device throughput is the Little's-law random-access rate —
//! `concurrency / HBM latency` — per partition (Table V: "Memory
//! latency/bandwidth bound").

use pvc_arch::System;
use pvc_engine::Engine;
use pvc_core::{par, SimRng};

/// Irregular lookups per simulated particle history (cross-section and
/// tally accesses over its collisions) in the depleted-fuel SMR problem.
pub const LOOKUPS_PER_PARTICLE: f64 = 1000.0;

// ---------------------------------------------------------------------
// Real multigroup Monte Carlo
// ---------------------------------------------------------------------

/// Multigroup cross sections of a homogeneous medium.
#[derive(Debug, Clone)]
pub struct MultigroupXs {
    /// Total cross section per group.
    pub total: Vec<f64>,
    /// Scattering matrix: `scatter[g][g2]` = Σs(g → g2).
    pub scatter: Vec<Vec<f64>>,
    /// ν·Σ_fission per group.
    pub nu_fission: Vec<f64>,
    /// Fission spectrum (χ), sums to 1.
    pub chi: Vec<f64>,
}

impl MultigroupXs {
    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.total.len()
    }

    /// Absorption per group: Σt − Σs(g→*).
    pub fn absorption(&self, g: usize) -> f64 {
        self.total[g] - self.scatter[g].iter().sum::<f64>()
    }

    /// A simple depleted-fuel-like two-group set.
    pub fn two_group_fuel() -> Self {
        MultigroupXs {
            total: vec![0.30, 0.80],
            scatter: vec![vec![0.23, 0.03], vec![0.00, 0.65]],
            nu_fission: vec![0.015, 0.30],
            chi: vec![1.0, 0.0],
        }
    }

    /// One-group set with analytic k∞ = νΣf / Σa.
    pub fn one_group(total: f64, scatter: f64, nu_fission: f64) -> Self {
        MultigroupXs {
            total: vec![total],
            scatter: vec![vec![scatter]],
            nu_fission: vec![nu_fission],
            chi: vec![1.0],
        }
    }

    /// Deterministic k∞ by power iteration on the multigroup balance
    /// equations (the verification oracle for the Monte Carlo answer).
    pub fn k_inf_deterministic(&self) -> f64 {
        let g = self.groups();
        let mut src: Vec<f64> = self.chi.clone();
        let mut k = 1.0;
        for _ in 0..500 {
            // Solve for the collision-density spectrum given the fission
            // source: φ·Σt = source + scatter-in.
            let mut flux = vec![0.0f64; g];
            for _ in 0..1000 {
                let mut next = vec![0.0f64; g];
                for to in 0..g {
                    let inscatter: f64 = flux
                        .iter()
                        .zip(self.scatter.iter())
                        .map(|(f, row)| f * row[to])
                        .sum();
                    next[to] = (src[to] + inscatter) / self.total[to];
                }
                let delta: f64 = next
                    .iter()
                    .zip(flux.iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                flux = next;
                if delta < 1e-14 {
                    break;
                }
            }
            let production: f64 = (0..g).map(|gg| flux[gg] * self.nu_fission[gg]).sum();
            k = production;
            // Renormalise the fission source.
            src = self.chi.iter().map(|c| c * production / k).collect();
        }
        k
    }
}

/// Tally results of one Monte Carlo run.
#[derive(Debug, Clone)]
pub struct TransportTallies {
    /// Collision-estimator k-effective.
    pub k_eff: f64,
    /// Standard deviation of per-batch k estimates.
    pub k_std: f64,
    /// Collision-estimator group flux (arbitrary normalisation).
    pub flux: Vec<f64>,
    /// Histories run.
    pub particles: u64,
}

/// Runs `batches` batches of `particles_per_batch` histories in the
/// infinite medium (rayon over particles — the GPU's event/history
/// parallelism).
pub fn run_transport(
    xs: &MultigroupXs,
    particles_per_batch: usize,
    batches: usize,
    seed: u64,
) -> TransportTallies {
    let g = xs.groups();
    let mut k_batches = Vec::with_capacity(batches);
    let mut flux = vec![0.0f64; g];
    for batch in 0..batches {
        let results: Vec<(f64, Vec<f64>)> = par::map_collect(particles_per_batch, |p| {
                let mut rng =
                    SimRng::seed_from_u64(seed ^ ((batch as u64) << 40) ^ (p as u64));
                let mut local_flux = vec![0.0f64; g];
                let mut k_score = 0.0;
                // Sample birth group from χ.
                let mut group = sample_discrete(&xs.chi, &mut rng);
                loop {
                    // Collision in an infinite medium: score first.
                    local_flux[group] += 1.0 / xs.total[group];
                    k_score += xs.nu_fission[group] / xs.total[group];
                    // Outcome: scatter to g2 or absorption (history end).
                    let u: f64 = rng.random::<f64>() * xs.total[group];
                    let mut acc = 0.0;
                    let mut scattered = false;
                    for (g2, &s) in xs.scatter[group].iter().enumerate() {
                        acc += s;
                        if u < acc {
                            group = g2;
                            scattered = true;
                            break;
                        }
                    }
                    if !scattered {
                        break;
                    }
                }
                (k_score, local_flux)
        });
        let k_batch: f64 =
            results.iter().map(|(k, _)| k).sum::<f64>() / particles_per_batch as f64;
        k_batches.push(k_batch);
        for (_, f) in &results {
            for (dst, src) in flux.iter_mut().zip(f.iter()) {
                *dst += src;
            }
        }
    }
    let mean = k_batches.iter().sum::<f64>() / batches as f64;
    let var = k_batches
        .iter()
        .map(|k| (k - mean) * (k - mean))
        .sum::<f64>()
        / (batches.max(2) - 1) as f64;
    TransportTallies {
        k_eff: mean,
        k_std: var.sqrt(),
        flux,
        particles: (particles_per_batch * batches) as u64,
    }
}

fn sample_discrete(weights: &[f64], rng: &mut SimRng) -> usize {
    let total: f64 = weights.iter().sum();
    let u: f64 = rng.random::<f64>() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len() - 1
}

// ---------------------------------------------------------------------
// FOM model
// ---------------------------------------------------------------------

/// FOM in thousands of particles/s for a full node of `system` (Table VI
/// reports OpenMC at node level only).
pub fn fom_node(system: System) -> f64 {
    let engine = Engine::new(system);
    let node = engine.node().clone();
    let per_partition = engine.random_access_rate() / LOOKUPS_PER_PARTICLE;
    per_partition * node.partitions() as f64 / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn fom_matches_table_vi_row_5() {
        // OpenMC: Aurora 2039, H100 1191, MI250 720 kparticles/s.
        assert!(rel_err(fom_node(System::Aurora), 2039.0) < 0.02);
        assert!(rel_err(fom_node(System::JlseH100), 1191.0) < 0.02);
        assert!(rel_err(fom_node(System::JlseMi250), 720.0) < 0.02);
    }

    #[test]
    fn aurora_node_is_1_7x_h100_node() {
        // §VI-B1: "the Aurora 6× PVC node design offering 1.7× the
        // performance of the JLSE 4× H100 node design".
        let r = fom_node(System::Aurora) / fom_node(System::JlseH100);
        assert!((r - 1.7).abs() < 0.05, "ratio {r:.2}");
    }

    #[test]
    fn one_group_k_matches_analytic() {
        // k∞ = νΣf / Σa = 0.06 / 0.05 = 1.2.
        let xs = MultigroupXs::one_group(0.30, 0.25, 0.06);
        assert!((xs.k_inf_deterministic() - 1.2).abs() < 1e-6);
        let t = run_transport(&xs, 4000, 10, 42);
        assert!(
            (t.k_eff - 1.2).abs() < 0.02,
            "MC k {} vs analytic 1.2 (σ={})",
            t.k_eff,
            t.k_std
        );
    }

    #[test]
    fn two_group_mc_matches_power_iteration() {
        let xs = MultigroupXs::two_group_fuel();
        let k_det = xs.k_inf_deterministic();
        let t = run_transport(&xs, 4000, 10, 7);
        assert!(
            rel_err(t.k_eff, k_det) < 0.03,
            "MC {} vs deterministic {k_det}",
            t.k_eff
        );
    }

    #[test]
    fn flux_spectrum_softens_into_thermal_group() {
        // χ puts all births in group 0; down-scatter populates group 1;
        // with these cross sections the thermal group carries more
        // collision density per source neutron than direct birth alone.
        let xs = MultigroupXs::two_group_fuel();
        let t = run_transport(&xs, 2000, 5, 3);
        assert!(t.flux[1] > 0.0);
        assert!(t.flux[0] > 0.0);
    }

    #[test]
    fn absorption_is_total_minus_scatter() {
        let xs = MultigroupXs::two_group_fuel();
        assert!((xs.absorption(0) - (0.30 - 0.26)).abs() < 1e-12);
        assert!((xs.absorption(1) - (0.80 - 0.65)).abs() < 1e-12);
    }

    #[test]
    fn transport_is_deterministic_per_seed() {
        let xs = MultigroupXs::two_group_fuel();
        let a = run_transport(&xs, 500, 3, 11);
        let b = run_transport(&xs, 500, 3, 11);
        assert_eq!(a.k_eff, b.k_eff);
        assert_eq!(a.particles, 1500);
    }

    #[test]
    fn subcritical_medium_kills_histories() {
        // Pure absorber: k = 0, every history ends at first collision.
        let xs = MultigroupXs::one_group(1.0, 0.0, 0.0);
        let t = run_transport(&xs, 1000, 2, 5);
        assert_eq!(t.k_eff, 0.0);
        assert!((t.flux[0] - 2000.0).abs() < 1e-9, "one collision each");
    }
}

//! Extension: sparse and machine-learning workload projections.
//!
//! §VII: "Future work should also include study of machine learning and
//! sparse data applications." Using only quantities the paper's own
//! microbenchmarks establish (stream bandwidth, random-access latency,
//! matrix-unit GEMM rates), this module projects:
//!
//! * **SpMV throughput** (GNnz/s) — a gather-limited bandwidth bound:
//!   effective rate = min(stream-bandwidth bound, random-access bound
//!   over the x-gather);
//! * **Transformer-layer step rate** — a BF16 GEMM-dominated bound from
//!   the Table II matrix rates.
//!
//! Both are *projections*, not reproductions: the paper publishes no
//! numbers for them. They are exactly the "use the microbenchmarks to
//! anticipate an application class" workflow §V demonstrates.

use pvc_arch::{Precision, System};
use pvc_engine::gemm::gemm_rate;
use pvc_engine::Engine;
use pvc_kernels::spmv::Csr;

/// Projected SpMV throughput in non-zeros/second on one partition.
///
/// Two ceilings: the streaming traffic (values + indices + y) at triad
/// bandwidth, and the x-gather at the device's random-access line rate
/// (one line per nnz in the worst case, amortised by `gather_hit_rate`
/// — the fraction of gathers served by cache).
pub fn spmv_nnz_rate(system: System, matrix: &Csr<f64>, gather_hit_rate: f64) -> f64 {
    assert!((0.0..=1.0).contains(&gather_hit_rate));
    let engine = Engine::new(system);
    let nnz = matrix.nnz() as f64;
    let stream_time = matrix.traffic_bytes() as f64 / engine.stream_bandwidth(1);
    let misses = nnz * (1.0 - gather_hit_rate);
    let gather_time = misses / engine.random_access_rate();
    nnz / stream_time.max(gather_time)
}

/// A transformer layer's GEMM shapes: batch·seq = `tokens`, model width
/// `d_model`, feed-forward width `4·d_model` (the standard GPT shape).
#[derive(Debug, Clone, Copy)]
pub struct TransformerLayer {
    pub tokens: usize,
    pub d_model: usize,
}

impl TransformerLayer {
    /// Total GEMM flops of one forward pass of the layer: QKV + output
    /// projections (4·T·d²·2) plus the two MLP GEMMs (2·T·d·4d·2 each).
    pub fn flops(&self) -> f64 {
        let t = self.tokens as f64;
        let d = self.d_model as f64;
        let proj = 4.0 * 2.0 * t * d * d;
        let mlp = 2.0 * 2.0 * t * d * (4.0 * d) * 2.0;
        proj + mlp
    }

    /// Projected forward-pass rate (layers/second) on one partition of
    /// `system`, BF16 matrix units (the Table II BF16GEMM row).
    pub fn layers_per_second(&self, system: System) -> f64 {
        let rate = gemm_rate(system, Precision::Bf16, 1);
        rate / self.flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_kernels::spmv::synthetic_sparse;

    #[test]
    fn spmv_is_bandwidth_bound_with_perfect_gather() {
        // With a 100% gather hit rate the projection reduces to the
        // streaming bound, so throughput ratios track triad bandwidth.
        let m = synthetic_sparse::<f64>(10_000, 16, 1);
        let pvc = spmv_nnz_rate(System::Aurora, &m, 1.0);
        let h100 = spmv_nnz_rate(System::JlseH100, &m, 1.0);
        let bw_ratio = 2.78 / 1.0; // H100 stream 2.78 TB/s vs PVC 1 TB/s
        assert!(
            (h100 / pvc - bw_ratio).abs() / bw_ratio < 0.02,
            "ratio {:.2} vs {bw_ratio:.2}",
            h100 / pvc
        );
    }

    #[test]
    fn poor_gather_locality_shifts_bound_to_latency() {
        let m = synthetic_sparse::<f64>(10_000, 16, 2);
        let good = spmv_nnz_rate(System::Aurora, &m, 0.99);
        let bad = spmv_nnz_rate(System::Aurora, &m, 0.0);
        assert!(bad < good * 0.02, "latency bound: {bad:.2e} vs {good:.2e}");
    }

    #[test]
    fn mi250_latency_advantage_shows_in_sparse() {
        // MI250 has lower HBM latency but much lower sustainable
        // concurrency; at zero gather locality the concurrency term
        // dominates and PVC wins — the same ordering OpenMC showed.
        let m = synthetic_sparse::<f64>(10_000, 16, 3);
        let pvc = spmv_nnz_rate(System::Aurora, &m, 0.0);
        let mi = spmv_nnz_rate(System::JlseMi250, &m, 0.0);
        assert!(pvc > mi);
    }

    #[test]
    fn transformer_flops_model() {
        let layer = TransformerLayer {
            tokens: 2048,
            d_model: 4096,
        };
        // 4·2·T·d² + 2·2·T·4d²·2 = 8Td² + 32Td² hmm: proj 8Td², mlp 32Td².
        let expect = 8.0 * 2048.0 * 4096.0f64.powi(2) + 32.0 * 2048.0 * 4096.0f64.powi(2);
        assert_eq!(layer.flops(), expect);
    }

    #[test]
    fn dawn_leads_pvc_transformer_projection() {
        // BF16GEMM: 254 vs 216 TFlop/s per stack (Table II).
        let layer = TransformerLayer {
            tokens: 1024,
            d_model: 2048,
        };
        let a = layer.layers_per_second(System::Aurora);
        let d = layer.layers_per_second(System::Dawn);
        assert!(d > a);
        let ratio = a / d;
        assert!((ratio - 216.0 / 254.0).abs() < 0.03, "ratio {ratio:.3}");
    }
}

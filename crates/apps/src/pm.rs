//! Particle-mesh (PM) gravity — the long-range half of HACC's P³M
//! solver (§VI-A2: HACC splits gravity into a grid-based long-range
//! force and the short-range direct kernel implemented in
//! [`crate::hacc`]).
//!
//! Pipeline, exactly as in HACC:
//! 1. **CIC deposit** — cloud-in-cell mass assignment onto an n³ mesh;
//! 2. **FFT** the density (the 3D transform from `pvc-kernels`);
//! 3. multiply by the Green's function −4πG/k² (Poisson in k-space);
//! 4. **inverse FFT** → potential;
//! 5. finite-difference gradient → mesh forces;
//! 6. **CIC interpolation** of forces back to particles.
//!
//! Periodic boundaries throughout. Verified against the direct sum for
//! well-separated particles and by momentum conservation.

use crate::hacc::Particle;
use pvc_kernels::fft::{fft_3d, Complex, Direction};

/// A periodic particle-mesh solver on an n³ grid over [0, 1)³.
#[derive(Debug, Clone)]
pub struct PmSolver {
    /// Mesh points per axis.
    pub n: usize,
}

impl PmSolver {
    /// Creates a solver with an `n³` mesh (n must be ≥ 4; powers of two
    /// keep the FFT on the fast path).
    pub fn new(n: usize) -> Self {
        assert!(n >= 4, "mesh too small");
        PmSolver { n }
    }

    #[inline]
    fn wrap(&self, i: isize) -> usize {
        let n = self.n as isize;
        (((i % n) + n) % n) as usize
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    /// Cloud-in-cell deposit: each particle's mass is split over the 8
    /// surrounding mesh cells with trilinear weights. Returns the
    /// density mesh (mass per cell volume).
    pub fn deposit(&self, particles: &[Particle]) -> Vec<f64> {
        let n = self.n;
        let mut rho = vec![0.0f64; n * n * n];
        let cell_vol = 1.0 / (n * n * n) as f64;
        for p in particles {
            let gx = p.pos[0].rem_euclid(1.0) as f64 * n as f64;
            let gy = p.pos[1].rem_euclid(1.0) as f64 * n as f64;
            let gz = p.pos[2].rem_euclid(1.0) as f64 * n as f64;
            let (i0, fx) = (gx.floor() as isize, gx.fract());
            let (j0, fy) = (gy.floor() as isize, gy.fract());
            let (k0, fz) = (gz.floor() as isize, gz.fract());
            for di in 0..2 {
                for dj in 0..2 {
                    for dk in 0..2 {
                        let w = (if di == 0 { 1.0 - fx } else { fx })
                            * (if dj == 0 { 1.0 - fy } else { fy })
                            * (if dk == 0 { 1.0 - fz } else { fz });
                        let c = self.idx(
                            self.wrap(i0 + di as isize),
                            self.wrap(j0 + dj as isize),
                            self.wrap(k0 + dk as isize),
                        );
                        rho[c] += p.mass as f64 * w / cell_vol;
                    }
                }
            }
        }
        rho
    }

    /// Solves ∇²φ = 4πG·ρ with periodic boundaries via FFT; G = 1.
    pub fn potential(&self, rho: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(rho.len(), n * n * n);
        let mut field: Vec<Complex<f64>> =
            rho.iter().map(|&r| Complex::new(r, 0.0)).collect();
        fft_3d(&mut field, n, Direction::Forward);
        // Green's function: φ_k = -4πG ρ_k / k²; zero mode removed
        // (mean density does not gravitate in a periodic box).
        let two_pi = std::f64::consts::TAU;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let c = self.idx(i, j, k);
                    if i == 0 && j == 0 && k == 0 {
                        field[c] = Complex::zero();
                        continue;
                    }
                    let kx = two_pi * freq(i, n);
                    let ky = two_pi * freq(j, n);
                    let kz = two_pi * freq(k, n);
                    let k2 = kx * kx + ky * ky + kz * kz;
                    let scale = -4.0 * std::f64::consts::PI / k2;
                    field[c] = field[c].scale(scale);
                }
            }
        }
        fft_3d(&mut field, n, Direction::Backward);
        let norm = 1.0 / (n * n * n) as f64;
        field.iter().map(|z| z.re * norm).collect()
    }

    /// Mesh force field: f = −∇φ by centred differences, periodic.
    pub fn mesh_forces(&self, phi: &[f64]) -> Vec<[f64; 3]> {
        let n = self.n;
        let h = 1.0 / n as f64;
        let mut f = vec![[0.0f64; 3]; n * n * n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let c = self.idx(i, j, k);
                    let ip = self.idx(self.wrap(i as isize + 1), j, k);
                    let im = self.idx(self.wrap(i as isize - 1), j, k);
                    let jp = self.idx(i, self.wrap(j as isize + 1), k);
                    let jm = self.idx(i, self.wrap(j as isize - 1), k);
                    let kp = self.idx(i, j, self.wrap(k as isize + 1));
                    let km = self.idx(i, j, self.wrap(k as isize - 1));
                    f[c] = [
                        -(phi[ip] - phi[im]) / (2.0 * h),
                        -(phi[jp] - phi[jm]) / (2.0 * h),
                        -(phi[kp] - phi[km]) / (2.0 * h),
                    ];
                }
            }
        }
        f
    }

    /// CIC interpolation of the mesh force to particle positions.
    pub fn interpolate(&self, forces: &[[f64; 3]], particles: &[Particle]) -> Vec<[f64; 3]> {
        let n = self.n;
        particles
            .iter()
            .map(|p| {
                let gx = p.pos[0].rem_euclid(1.0) as f64 * n as f64;
                let gy = p.pos[1].rem_euclid(1.0) as f64 * n as f64;
                let gz = p.pos[2].rem_euclid(1.0) as f64 * n as f64;
                let (i0, fx) = (gx.floor() as isize, gx.fract());
                let (j0, fy) = (gy.floor() as isize, gy.fract());
                let (k0, fz) = (gz.floor() as isize, gz.fract());
                let mut acc = [0.0f64; 3];
                for di in 0..2 {
                    for dj in 0..2 {
                        for dk in 0..2 {
                            let w = (if di == 0 { 1.0 - fx } else { fx })
                                * (if dj == 0 { 1.0 - fy } else { fy })
                                * (if dk == 0 { 1.0 - fz } else { fz });
                            let c = self.idx(
                                self.wrap(i0 + di as isize),
                                self.wrap(j0 + dj as isize),
                                self.wrap(k0 + dk as isize),
                            );
                            for a in 0..3 {
                                acc[a] += w * forces[c][a];
                            }
                        }
                    }
                }
                acc
            })
            .collect()
    }

    /// Full PM force evaluation: deposit → Poisson → gradient →
    /// interpolate.
    pub fn forces(&self, particles: &[Particle]) -> Vec<[f64; 3]> {
        let rho = self.deposit(particles);
        let phi = self.potential(&rho);
        let mesh = self.mesh_forces(&phi);
        self.interpolate(&mesh, particles)
    }
}

/// Signed FFT frequency of bin `i` on an n-point axis, in cycles per
/// box.
fn freq(i: usize, n: usize) -> f64 {
    if i <= n / 2 {
        i as f64
    } else {
        i as f64 - n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn particle(pos: [f32; 3], mass: f32) -> Particle {
        Particle {
            pos,
            vel: [0.0; 3],
            mass,
        }
    }

    #[test]
    fn deposit_conserves_mass() {
        let pm = PmSolver::new(8);
        let ps = vec![
            particle([0.13, 0.7, 0.45], 2.0),
            particle([0.93, 0.01, 0.99], 3.0), // wraps around
        ];
        let rho = pm.deposit(&ps);
        let cell_vol = 1.0 / 512.0;
        let total: f64 = rho.iter().map(|r| r * cell_vol).sum();
        assert!((total - 5.0).abs() < 1e-12, "total mass {total}");
    }

    #[test]
    fn deposit_on_gridpoint_hits_one_cell() {
        let pm = PmSolver::new(8);
        let ps = vec![particle([0.25, 0.5, 0.75], 1.0)]; // exact mesh point
        let rho = pm.deposit(&ps);
        let occupied = rho.iter().filter(|&&r| r > 0.0).count();
        assert_eq!(occupied, 1);
    }

    #[test]
    fn uniform_density_gives_zero_force() {
        // One particle per cell centre: uniform ρ → zero-mode only → no
        // force.
        let n = 8;
        let pm = PmSolver::new(n);
        let mut ps = Vec::new();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    ps.push(particle(
                        [
                            i as f32 / n as f32,
                            j as f32 / n as f32,
                            k as f32 / n as f32,
                        ],
                        1.0,
                    ));
                }
            }
        }
        let f = pm.forces(&ps);
        for fi in &f {
            for a in 0..3 {
                assert!(fi[a].abs() < 1e-9, "residual force {fi:?}");
            }
        }
    }

    #[test]
    fn pair_attracts_along_separation_axis() {
        let pm = PmSolver::new(16);
        let ps = vec![
            particle([0.35, 0.5, 0.5], 1.0),
            particle([0.65, 0.5, 0.5], 1.0),
        ];
        let f = pm.forces(&ps);
        // Mutual attraction: particle 0 pulled +x, particle 1 pulled -x.
        assert!(f[0][0] > 0.0, "f0 {:?}", f[0]);
        assert!(f[1][0] < 0.0, "f1 {:?}", f[1]);
        // Symmetry: equal magnitude, opposite sign (momentum
        // conservation of the PM force).
        assert!((f[0][0] + f[1][0]).abs() < 1e-9 * f[0][0].abs().max(1.0));
        // Transverse components vanish by symmetry.
        assert!(f[0][1].abs() < 1e-9 && f[0][2].abs() < 1e-9);
    }

    #[test]
    fn pm_matches_direct_sum_at_large_separation() {
        // PM resolves forces between well-separated particles; compare
        // the magnitude against Newton with the nearest periodic image
        // dominant. Agreement is mesh-limited: ask for 25%.
        let pm = PmSolver::new(32);
        let d = 0.3f64;
        let ps = vec![
            particle([0.35, 0.5, 0.5], 1.0),
            particle([0.35 + d as f32, 0.5, 0.5], 1.0),
        ];
        let f = pm.forces(&ps);
        // Periodic Newton: sum over a few images along x.
        let mut newton = 0.0;
        for img in -3i32..=3 {
            let r = d + img as f64;
            if r.abs() < 1e-9 {
                continue;
            }
            newton += r.signum() / (r * r);
        }
        let expect = newton.abs();
        let got = f[0][0].abs();
        assert!(
            (got - expect).abs() / expect < 0.25,
            "PM {got:.3} vs Newton {expect:.3}"
        );
    }

    #[test]
    fn total_pm_momentum_is_conserved() {
        let pm = PmSolver::new(16);
        let ps: Vec<Particle> = (0..20)
            .map(|i| {
                let t = i as f32 * 0.37;
                particle(
                    [t.sin().abs() % 1.0, (t * 1.3).cos().abs() % 1.0, (t * 0.7).sin().abs() % 1.0],
                    1.0 + (i % 3) as f32,
                )
            })
            .collect();
        let f = pm.forces(&ps);
        let mut net = [0.0f64; 3];
        for (p, fi) in ps.iter().zip(f.iter()) {
            for a in 0..3 {
                net[a] += p.mass as f64 * fi[a];
            }
        }
        let scale: f64 = f
            .iter()
            .map(|fi| fi[0].abs() + fi[1].abs() + fi[2].abs())
            .sum();
        for a in 0..3 {
            assert!(net[a].abs() < 1e-6 * scale.max(1.0), "net momentum {net:?}");
        }
    }
}

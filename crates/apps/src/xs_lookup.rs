//! Cross-section lookup substrate for continuous-energy Monte Carlo.
//!
//! Table V classifies OpenMC as "memory latency/bandwidth bound": the
//! active phase of a depleted-fuel problem spends its time in
//! energy-grid searches and per-nuclide table reads scattered across
//! hundreds of megabytes — the access pattern the `lats` benchmark
//! (Figure 1) measures. This module implements that structure for real:
//! per-nuclide energy grids, binary search, linear interpolation, and a
//! macroscopic sum over the material's nuclides, with an access counter
//! that grounds the FOM model's `LOOKUPS_PER_PARTICLE` constant.

use std::sync::atomic::{AtomicU64, Ordering};

/// One nuclide's pointwise cross sections on its own energy grid.
#[derive(Debug, Clone)]
pub struct NuclideXs {
    /// Name ("U238", …).
    pub name: String,
    /// Ascending energy grid, eV.
    pub energy: Vec<f64>,
    /// Total microscopic cross section at each grid point, barns.
    pub total: Vec<f64>,
    /// Absorption microscopic cross section, barns.
    pub absorption: Vec<f64>,
}

impl NuclideXs {
    /// Synthetic nuclide: a smooth 1/v baseline plus `resonances`
    /// narrow resonance peaks — the shape that forces fine energy grids
    /// in real data.
    pub fn synthetic(name: &str, grid_points: usize, resonances: usize, seed: u64) -> Self {
        assert!(grid_points >= 2);
        let e_min = 1e-5f64;
        let e_max = 2e7f64;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1_000_000) as f64 / 1_000_000.0
        };
        // Log-spaced grid.
        let energy: Vec<f64> = (0..grid_points)
            .map(|i| {
                let t = i as f64 / (grid_points - 1) as f64;
                e_min * (e_max / e_min).powf(t)
            })
            .collect();
        // Resonance centres/widths (log-uniform in the resolved range).
        let peaks: Vec<(f64, f64, f64)> = (0..resonances)
            .map(|_| {
                let centre = 1.0 * (1e4f64 / 1.0).powf(next());
                let width = centre * (0.001 + 0.01 * next());
                let height = 50.0 + 500.0 * next();
                (centre, width, height)
            })
            .collect();
        let xs_at = |e: f64| -> (f64, f64) {
            // 1/v absorption baseline + constant scatter + resonances.
            let base_abs = 2.0 / e.sqrt().max(1e-6);
            let scatter = 10.0;
            let mut res = 0.0;
            for &(c, w, h) in &peaks {
                let x = (e - c) / w;
                res += h / (1.0 + x * x); // Lorentzian
            }
            (base_abs + scatter + res, base_abs + 0.6 * res)
        };
        let (mut total, mut absorption) = (Vec::new(), Vec::new());
        for &e in &energy {
            let (t, a) = xs_at(e);
            total.push(t);
            absorption.push(a);
        }
        NuclideXs {
            name: name.to_string(),
            energy,
            total,
            absorption,
        }
    }

    /// Binary-search index of the grid interval containing `e`.
    pub fn grid_index(&self, e: f64) -> usize {
        match self
            .energy
            .binary_search_by(|x| x.partial_cmp(&e).expect("no NaN energies"))
        {
            Ok(i) => i.min(self.energy.len() - 2),
            Err(0) => 0,
            Err(i) if i >= self.energy.len() => self.energy.len() - 2,
            Err(i) => i - 1,
        }
    }

    /// Linearly interpolated (total, absorption) at `e`, barns.
    pub fn lookup(&self, e: f64) -> (f64, f64) {
        let i = self.grid_index(e);
        let (e0, e1) = (self.energy[i], self.energy[i + 1]);
        let t = ((e - e0) / (e1 - e0)).clamp(0.0, 1.0);
        (
            self.total[i] + t * (self.total[i + 1] - self.total[i]),
            self.absorption[i] + t * (self.absorption[i + 1] - self.absorption[i]),
        )
    }

    /// Memory footprint of the tables, bytes.
    pub fn bytes(&self) -> usize {
        3 * self.energy.len() * std::mem::size_of::<f64>()
    }
}

/// A material: nuclides + number densities, with an access counter.
pub struct Material {
    pub nuclides: Vec<NuclideXs>,
    /// Number densities (atoms/barn-cm), aligned with `nuclides`.
    pub densities: Vec<f64>,
    lookups: AtomicU64,
}

impl Material {
    /// Builds a depleted-fuel-like material: `n_nuclides` synthetic
    /// nuclides (depleted fuel carries hundreds of actinides and fission
    /// products — why its active phase is lookup-dominated).
    pub fn depleted_fuel(n_nuclides: usize, grid_points: usize) -> Self {
        let nuclides: Vec<NuclideXs> = (0..n_nuclides)
            .map(|i| {
                NuclideXs::synthetic(
                    &format!("nuc{i:03}"),
                    grid_points,
                    20 + (i * 7) % 60,
                    i as u64 + 1,
                )
            })
            .collect();
        let densities = (0..n_nuclides)
            .map(|i| 1e-3 / (1.0 + i as f64))
            .collect();
        Material {
            nuclides,
            densities,
            lookups: AtomicU64::new(0),
        }
    }

    /// Macroscopic (total, absorption) cross section at `e`, 1/cm:
    /// one grid search + interpolation per nuclide — the per-collision
    /// lookup storm.
    pub fn macroscopic(&self, e: f64) -> (f64, f64) {
        let mut total = 0.0;
        let mut absorption = 0.0;
        for (nuc, &dens) in self.nuclides.iter().zip(self.densities.iter()) {
            let (t, a) = nuc.lookup(e);
            total += dens * t;
            absorption += dens * a;
            self.lookups.fetch_add(1, Ordering::Relaxed);
        }
        (total, absorption)
    }

    /// Nuclide-level lookups performed so far.
    pub fn lookup_count(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Total table footprint, bytes.
    pub fn bytes(&self) -> usize {
        self.nuclides.iter().map(|n| n.bytes()).sum()
    }
}

/// Estimated nuclide-level lookups per particle history in a material of
/// `n_nuclides` given `collisions` collisions per history — the origin
/// of the FOM model's constant (≈10 nuclide-relevant lookups × ~100
/// collisions ≈ 10³ for the SMR problem).
pub fn lookups_per_history(n_nuclides_touched: usize, collisions: usize) -> f64 {
    (n_nuclides_touched * collisions) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_search_brackets_correctly() {
        let nuc = NuclideXs::synthetic("U238", 1000, 30, 7);
        for &e in &[1e-4, 1.0, 6.7e3, 1.9e7] {
            let i = nuc.grid_index(e);
            assert!(nuc.energy[i] <= e || i == 0, "lower bound at {e}");
            assert!(e <= nuc.energy[i + 1] || i + 2 == nuc.energy.len());
        }
        // Clamping below/above the grid.
        assert_eq!(nuc.grid_index(1e-9), 0);
        assert_eq!(nuc.grid_index(1e9), nuc.energy.len() - 2);
    }

    #[test]
    fn interpolation_is_exact_at_grid_points() {
        let nuc = NuclideXs::synthetic("U235", 200, 10, 3);
        for i in [0usize, 57, 199] {
            let (t, _) = nuc.lookup(nuc.energy[i]);
            assert!((t - nuc.total[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn resonances_make_xs_non_monotonic() {
        // The synthetic tables must have resonance structure (peaks),
        // not a smooth curve, to force a fine grid like real data.
        let nuc = NuclideXs::synthetic("Pu239", 5000, 50, 11);
        let mut direction_changes = 0;
        for w in nuc.total.windows(3) {
            if (w[1] > w[0]) != (w[2] > w[1]) {
                direction_changes += 1;
            }
        }
        assert!(direction_changes > 20, "only {direction_changes} turning points");
    }

    #[test]
    fn macroscopic_counts_one_lookup_per_nuclide() {
        let mat = Material::depleted_fuel(50, 500);
        let (t, a) = mat.macroscopic(1.0e3);
        assert!(t > 0.0 && a > 0.0 && a < t);
        assert_eq!(mat.lookup_count(), 50);
        mat.macroscopic(2.0e6);
        assert_eq!(mat.lookup_count(), 100);
    }

    #[test]
    fn depleted_fuel_tables_exceed_llc() {
        // ~300 nuclides x ~50k-point grids x 3 tables x 8 B ≈ 360 MB:
        // bigger than the 192 MiB per-stack LLC, hence HBM-latency
        // bound. (Scaled-down here, checked proportionally.)
        let mat = Material::depleted_fuel(30, 5_000);
        let scaled_up = mat.bytes() as f64 * 10.0 * 10.0; // 300 nuclides, 50k points
        assert!(scaled_up > 192.0 * 1024.0 * 1024.0);
    }

    #[test]
    fn lookup_constant_is_plausible() {
        // ~10 nuclides dominate each collision's sampling; ~100
        // collisions per SMR history -> O(1000) lookups.
        let l = lookups_per_history(10, 100);
        assert_eq!(l, 1000.0);
    }
}

//! Fluid-flow network with max–min fair bandwidth sharing.
//!
//! Bulk data transfers on a node (PCIe host↔device copies, MDFI
//! stack-to-stack traffic, Xe-Link peer traffic) are modelled as *flows*
//! that each traverse a set of capacity-limited *resources*. A resource
//! is anything that can saturate: one direction of a PCIe x16 link, the
//! per-socket root-complex aggregate, a duplex pool that caps the sum of
//! both directions of a link below 2× (the paper observes a 1.4×
//! bidirectional factor, §IV-B4), or an Xe-Link plane.
//!
//! Concurrent flows share each resource with **max–min fairness**
//! (progressive filling): all flows ramp together until some resource
//! saturates; flows through a saturated resource are frozen at their fair
//! share; remaining flows continue ramping. This reproduces, from first
//! principles, effects such as the paper's 40% full-node H2D scaling
//! (12 ranks sharing two root complexes) without per-row calibration.
//!
//! The simulation itself is event-driven on the *fluid* timescale: rates
//! are piecewise constant between flow arrivals/completions, so we
//! repeatedly (1) solve the max–min allocation, (2) jump to the next
//! arrival or completion, (3) debit transferred bytes.
//!
//! # Incremental solving
//!
//! Progressive filling decomposes over connected components of the
//! resource-sharing graph: freezing a flow only debits resources on its
//! own path, so components never exchange bandwidth and each one's
//! residual/count trajectory — and therefore every f64 it produces — is
//! independent of the others. [`FlowNetwork::run`] exploits this: rates
//! are kept across segments and only the component(s) touched by an
//! arrival or completion are re-solved, seeded from the changed flow's
//! path and closed over `flows_on_resource`. Within a component the
//! solver scans resources in ascending index order, freezes flows in
//! ascending index order, and debits path entries in path order — the
//! exact iteration order of the retained from-scratch solver
//! ([`FlowNetwork::run_reference`]) — so outcomes are bit-for-bit
//! identical, which the `flow_equivalence` property suite pins.

use crate::time::Time;
use pvc_obs::{Layer, Tracer};
use std::fmt;

/// Identifies a capacity-limited resource in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub usize);

/// Rejection reasons for malformed network inputs. The panicking
/// builders ([`FlowNetwork::add_resource`], [`FlowNetwork::add_flow`])
/// surface these through their panic message; the `try_` variants
/// return them so callers and tests can match on variants instead of
/// message strings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowError {
    /// A flow path listed no resources.
    EmptyPath,
    /// `bytes` was zero, negative or non-finite.
    NonPositiveBytes(f64),
    /// `latency` was negative or non-finite.
    NegativeLatency(f64),
    /// A path referenced a resource id that was never added.
    UnknownResource(ResourceId),
    /// A resource capacity was zero, negative or non-finite.
    NonPositiveCapacity(f64),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::EmptyPath => write!(f, "flow path must not be empty"),
            FlowError::NonPositiveBytes(b) => {
                write!(f, "flow bytes must be positive, got {b}")
            }
            FlowError::NegativeLatency(l) => {
                write!(f, "flow latency must be non-negative, got {l}")
            }
            FlowError::UnknownResource(r) => write!(f, "unknown resource {r:?}"),
            FlowError::NonPositiveCapacity(c) => {
                write!(f, "resource capacity must be positive and finite, got {c}")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Identifies a flow returned by [`FlowNetwork::add_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// A transfer request: `bytes` moving across every resource in `path`
/// starting at `start`.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Absolute start time of the transfer.
    pub start: Time,
    /// Payload size in bytes. Must be positive.
    pub bytes: f64,
    /// Resources the flow consumes simultaneously (link directions,
    /// shared pools, …). Must be non-empty.
    pub path: Vec<ResourceId>,
    /// Fixed startup latency (seconds) before the fluid transfer begins —
    /// models software/launch latency of a copy or message.
    pub latency: f64,
}

/// Completion record for one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// The flow this outcome describes.
    pub flow: FlowId,
    /// Time the flow became active (start + latency).
    pub began: Time,
    /// Time the last byte arrived.
    pub finished: Time,
    /// Payload bytes (as requested).
    pub bytes: f64,
}

impl TransferOutcome {
    /// Achieved bandwidth over the active period, bytes/second.
    pub fn bandwidth(&self) -> f64 {
        let dt = self.finished - self.began;
        if dt <= 0.0 {
            f64::INFINITY
        } else {
            self.bytes / dt
        }
    }

    /// End-to-end duration including startup latency, measured from the
    /// original request start.
    pub fn duration_from(&self, start: Time) -> f64 {
        self.finished - start
    }
}

/// One piecewise-constant segment of a flow's achieved rate, produced by
/// [`FlowNetwork::run_traced`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// The flow this segment belongs to.
    pub flow: FlowId,
    /// Segment start.
    pub from: Time,
    /// Segment end.
    pub to: Time,
    /// Allocated rate during the segment, bytes/s.
    pub rate: f64,
}

/// Work counters for one [`FlowNetwork`], accumulated across runs.
///
/// These pin the solver's complexity in tests without resorting to wall
/// clocks: `F` sequential flows must cost O(F) segments and O(F)-ish
/// flow visits, not the O(F²) a full rescan per segment would show.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Piecewise-constant rate segments stepped.
    pub segments: u64,
    /// Component re-solves (one per dirty batch, not per flow).
    pub solves: u64,
    /// Flows frozen inside component re-solves.
    pub solver_flow_visits: u64,
    /// Per-segment active-flow scans (horizon + debit bookkeeping).
    pub active_flow_visits: u64,
}

#[derive(Debug, Clone)]
struct Resource {
    capacity: f64, // bytes/s
    enabled: bool,
    /// Trace label ("pcie.h2d[g0]", "rc.d2h[s1]", …); `None` renders as
    /// "res<i>" at trace time so untraced runs never allocate.
    label: Option<String>,
}

#[derive(Debug, Clone)]
struct Flow {
    spec: FlowSpec,
    remaining: f64,
    began: Option<Time>,
    finished: Option<Time>,
    /// Trace label; `None` renders as "flow<i>" at trace time so
    /// untraced runs never allocate.
    label: Option<String>,
}

/// Reusable buffers for the incremental solver. Generation-stamped marks
/// avoid O(F) clears per re-solve; `residual`/`count` are only valid for
/// the component gathered in the current generation.
#[derive(Default)]
struct SolverScratch {
    gen: u64,
    res_mark: Vec<u64>,
    flow_mark: Vec<u64>,
    frozen_mark: Vec<u64>,
    comp_res: Vec<usize>,
    comp_flows: Vec<usize>,
    stack: Vec<usize>,
    residual: Vec<f64>,
    count: Vec<usize>,
}

impl SolverScratch {
    fn ensure(&mut self, nr: usize, nf: usize) {
        if self.res_mark.len() < nr {
            self.res_mark.resize(nr, 0);
            self.residual.resize(nr, 0.0);
            self.count.resize(nr, 0);
        }
        if self.flow_mark.len() < nf {
            self.flow_mark.resize(nf, 0);
            self.frozen_mark.resize(nf, 0);
        }
    }
}

/// A fluid-flow network. Build resources with [`add_resource`], submit
/// flows with [`add_flow`], then [`run`] to completion.
///
/// [`add_resource`]: FlowNetwork::add_resource
/// [`add_flow`]: FlowNetwork::add_flow
/// [`run`]: FlowNetwork::run
///
/// # Example: two flows share a link fairly
/// ```
/// use pvc_simrt::{FlowNetwork, FlowSpec, Time};
///
/// let mut net = FlowNetwork::new();
/// let link = net.add_resource(100.0); // 100 B/s
/// let a = net.add_flow(FlowSpec { start: Time::ZERO, bytes: 100.0, path: vec![link], latency: 0.0 });
/// let b = net.add_flow(FlowSpec { start: Time::ZERO, bytes: 100.0, path: vec![link], latency: 0.0 });
/// let done = net.run();
/// // both make 50 B/s while sharing, so both finish at t = 2 s
/// assert!((done[&a].finished.as_secs() - 2.0).abs() < 1e-9);
/// assert!((done[&b].finished.as_secs() - 2.0).abs() < 1e-9);
/// ```
#[derive(Default)]
pub struct FlowNetwork {
    resources: Vec<Resource>,
    flows: Vec<Flow>,
    /// For each resource, the indices of flows whose path crosses it,
    /// in submission (= ascending index) order. Lets the solver find
    /// "who shares this bottleneck" without scanning every active flow.
    flows_on_resource: Vec<Vec<usize>>,
    tracer: Tracer,
    /// Virtual-time offset added to every trace record, so several
    /// sequential network runs land on one shared timeline.
    trace_epoch: f64,
    stats: FlowStats,
    scratch: SolverScratch,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a tracer; records are shifted by `epoch` seconds of
    /// virtual time. The default is the no-op sink (near-zero cost).
    pub fn set_tracer(&mut self, tracer: Tracer, epoch: f64) {
        assert!(
            epoch.is_finite() && epoch >= 0.0,
            "trace epoch must be a valid virtual time, got {epoch}"
        );
        self.tracer = tracer;
        self.trace_epoch = epoch;
    }

    /// Adds a resource with `capacity` bytes/second; returns its id.
    ///
    /// # Panics
    /// Panics if `capacity` is not positive and finite.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        self.try_add_resource(capacity)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`add_resource`](Self::add_resource).
    pub fn try_add_resource(&mut self, capacity: f64) -> Result<ResourceId, FlowError> {
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(FlowError::NonPositiveCapacity(capacity));
        }
        self.resources.push(Resource {
            capacity,
            enabled: true,
            label: None,
        });
        self.flows_on_resource.push(Vec::new());
        Ok(ResourceId(self.resources.len() - 1))
    }

    /// Adds a resource with a trace label (shown on its utilization
    /// counter track).
    pub fn add_resource_labeled(&mut self, capacity: f64, label: impl Into<String>) -> ResourceId {
        let id = self.add_resource(capacity);
        self.resources[id.0].label = Some(label.into());
        id
    }

    /// The trace label of a resource ("res<i>" unless one was given).
    pub fn resource_label(&self, id: ResourceId) -> String {
        match &self.resources[id.0].label {
            Some(l) => l.clone(),
            None => format!("res{}", id.0),
        }
    }

    /// Disables a resource (failure injection): flows whose path contains
    /// a disabled resource never progress. [`run`](Self::run) reports them
    /// as unfinished.
    pub fn disable_resource(&mut self, id: ResourceId) {
        self.resources[id.0].enabled = false;
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Solver work counters accumulated so far (see [`FlowStats`]).
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// A fresh network sharing this one's resource definitions but with
    /// no flows — useful for probing a path's isolated capacity without
    /// disturbing queued work.
    pub fn clone_resources(&self) -> FlowNetwork {
        FlowNetwork {
            resources: self.resources.clone(),
            flows: Vec::new(),
            flows_on_resource: vec![Vec::new(); self.resources.len()],
            tracer: Tracer::disabled(),
            trace_epoch: 0.0,
            stats: FlowStats::default(),
            scratch: SolverScratch::default(),
        }
    }

    /// Submits a flow; returns its id.
    ///
    /// # Panics
    /// Panics on empty paths, non-positive byte counts, out-of-range
    /// resource ids, or negative latency.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        self.try_add_flow(spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`add_flow`](Self::add_flow): returns the precise
    /// [`FlowError`] variant instead of panicking.
    pub fn try_add_flow(&mut self, spec: FlowSpec) -> Result<FlowId, FlowError> {
        if spec.path.is_empty() {
            return Err(FlowError::EmptyPath);
        }
        if !(spec.bytes.is_finite() && spec.bytes > 0.0) {
            return Err(FlowError::NonPositiveBytes(spec.bytes));
        }
        if !(spec.latency.is_finite() && spec.latency >= 0.0) {
            return Err(FlowError::NegativeLatency(spec.latency));
        }
        if let Some(&r) = spec.path.iter().find(|r| r.0 >= self.resources.len()) {
            return Err(FlowError::UnknownResource(r));
        }
        let fi = self.flows.len();
        for r in &spec.path {
            // A path may legitimately list a resource twice (double
            // debit); index it once so the solver visits the flow once.
            let list = &mut self.flows_on_resource[r.0];
            if list.last() != Some(&fi) {
                list.push(fi);
            }
        }
        let remaining = spec.bytes;
        self.flows.push(Flow {
            spec,
            remaining,
            began: None,
            finished: None,
            label: None,
        });
        Ok(FlowId(fi))
    }

    /// Submits a flow with a trace label (shown as its span name).
    pub fn add_flow_labeled(&mut self, spec: FlowSpec, label: impl Into<String>) -> FlowId {
        let id = self.add_flow(spec);
        self.flows[id.0].label = Some(label.into());
        id
    }

    /// Max–min fair rate allocation over currently-active flows, solved
    /// from scratch — the reference algorithm the incremental solver
    /// must match bit-for-bit.
    ///
    /// `active` holds indices into `self.flows`. Returns rates aligned
    /// with `active`. Flows through disabled resources get rate 0.
    fn allocate(&self, active: &[usize]) -> Vec<f64> {
        let nr = self.resources.len();
        let mut rates = vec![0.0f64; active.len()];
        let mut frozen = vec![false; active.len()];
        // Residual capacity and unfrozen-flow count per resource.
        let mut residual: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        let mut count = vec![0usize; nr];
        for (ai, &fi) in active.iter().enumerate() {
            let blocked = self.flows[fi]
                .spec
                .path
                .iter()
                .any(|r| !self.resources[r.0].enabled);
            if blocked {
                frozen[ai] = true; // rate stays 0
            } else {
                for r in &self.flows[fi].spec.path {
                    count[r.0] += 1;
                }
            }
        }

        // Progressive filling: repeatedly saturate the tightest resource.
        loop {
            let mut bottleneck: Option<(usize, f64)> = None;
            for (ri, res) in self.resources.iter().enumerate() {
                if count[ri] == 0 || !res.enabled {
                    continue;
                }
                let share = residual[ri] / count[ri] as f64;
                if bottleneck.is_none_or(|(_, s)| share < s) {
                    bottleneck = Some((ri, share));
                }
            }
            let Some((ri, share)) = bottleneck else { break };

            // Freeze every unfrozen flow crossing the bottleneck at its
            // current fair share, then debit that bandwidth everywhere.
            for (ai, &fi) in active.iter().enumerate() {
                if frozen[ai] {
                    continue;
                }
                let flow = &self.flows[fi];
                if !flow.spec.path.iter().any(|r| r.0 == ri) {
                    continue;
                }
                frozen[ai] = true;
                rates[ai] = share;
                for r in &flow.spec.path {
                    residual[r.0] = (residual[r.0] - share).max(0.0);
                    count[r.0] -= 1;
                }
            }
        }
        rates
    }

    /// Re-solves the max–min allocation for every connected component
    /// touched by the `seeds` (flows that arrived or finished since the
    /// last segment), leaving other components' rates frozen.
    ///
    /// The component is closed over the resource-sharing graph: seed
    /// paths → flows crossing those resources → their paths, and so on.
    /// Iteration orders match [`allocate`] exactly (resources ascending,
    /// flows ascending, path entries in path order), so the produced
    /// rates are bit-identical to a global from-scratch solve.
    fn resolve_dirty(
        &mut self,
        seeds: &[usize],
        is_active: &[bool],
        blocked: &[bool],
        rates: &mut [f64],
    ) {
        let FlowNetwork {
            resources,
            flows,
            flows_on_resource,
            stats,
            scratch,
            ..
        } = self;
        scratch.ensure(resources.len(), flows.len());
        scratch.gen += 1;
        let gen = scratch.gen;
        scratch.comp_res.clear();
        scratch.comp_flows.clear();
        scratch.stack.clear();

        for &fi in seeds {
            for r in &flows[fi].spec.path {
                if scratch.res_mark[r.0] != gen {
                    scratch.res_mark[r.0] = gen;
                    scratch.comp_res.push(r.0);
                    scratch.stack.push(r.0);
                }
            }
        }
        while let Some(ri) = scratch.stack.pop() {
            for &fi in &flows_on_resource[ri] {
                if !is_active[fi] || blocked[fi] || scratch.flow_mark[fi] == gen {
                    continue;
                }
                scratch.flow_mark[fi] = gen;
                scratch.comp_flows.push(fi);
                for r in &flows[fi].spec.path {
                    if scratch.res_mark[r.0] != gen {
                        scratch.res_mark[r.0] = gen;
                        scratch.comp_res.push(r.0);
                        scratch.stack.push(r.0);
                    }
                }
            }
        }
        stats.solves += 1;

        scratch.comp_res.sort_unstable();
        scratch.comp_flows.sort_unstable();
        for &ri in &scratch.comp_res {
            scratch.residual[ri] = resources[ri].capacity;
            scratch.count[ri] = 0;
        }
        for &fi in &scratch.comp_flows {
            rates[fi] = 0.0;
            for r in &flows[fi].spec.path {
                scratch.count[r.0] += 1;
            }
        }

        // Progressive filling restricted to the component; identical
        // arithmetic and ordering to `allocate`.
        loop {
            let mut bottleneck: Option<(usize, f64)> = None;
            for &ri in &scratch.comp_res {
                if scratch.count[ri] == 0 || !resources[ri].enabled {
                    continue;
                }
                let share = scratch.residual[ri] / scratch.count[ri] as f64;
                if bottleneck.is_none_or(|(_, s)| share < s) {
                    bottleneck = Some((ri, share));
                }
            }
            let Some((ri, share)) = bottleneck else { break };

            for &fi in &flows_on_resource[ri] {
                if scratch.flow_mark[fi] != gen || scratch.frozen_mark[fi] == gen {
                    continue;
                }
                scratch.frozen_mark[fi] = gen;
                rates[fi] = share;
                stats.solver_flow_visits += 1;
                for r in &flows[fi].spec.path {
                    scratch.residual[r.0] = (scratch.residual[r.0] - share).max(0.0);
                    scratch.count[r.0] -= 1;
                }
            }
        }
    }

    /// Runs the network to quiescence; returns outcomes for every flow
    /// that finished. Flows blocked by disabled resources are omitted.
    pub fn run(&mut self) -> std::collections::HashMap<FlowId, TransferOutcome> {
        self.run_inner(None)
    }

    /// Like [`run`](Self::run), but also records the piecewise-constant
    /// rate schedule of every flow — the raw material for contention
    /// timelines.
    pub fn run_traced(
        &mut self,
    ) -> (
        std::collections::HashMap<FlowId, TransferOutcome>,
        Vec<RateSegment>,
    ) {
        let mut trace = Vec::new();
        let outcomes = self.run_inner(Some(&mut trace));
        (outcomes, trace)
    }

    /// The retained from-scratch solver: rebuilds the active set and
    /// re-solves the whole allocation every segment. Kept as the
    /// equivalence oracle for the incremental [`run`](Self::run) — the
    /// `flow_equivalence` property suite asserts bit-identical outcomes.
    pub fn run_reference(&mut self) -> std::collections::HashMap<FlowId, TransferOutcome> {
        self.run_reference_inner(None)
    }

    /// [`run_reference`](Self::run_reference) with the rate-segment
    /// schedule, mirroring [`run_traced`](Self::run_traced).
    pub fn run_reference_traced(
        &mut self,
    ) -> (
        std::collections::HashMap<FlowId, TransferOutcome>,
        Vec<RateSegment>,
    ) {
        let mut trace = Vec::new();
        let outcomes = self.run_reference_inner(Some(&mut trace));
        (outcomes, trace)
    }

    /// Emits one rate-resegmentation instant plus per-resource
    /// saturation gauges for the segment `[now, now+dt]`. No-op when
    /// the tracer is disabled. `rates` is indexed by flow.
    fn trace_segment(&self, now: Time, dt: f64, active: &[usize], rates: &[f64]) {
        if !self.tracer.enabled() {
            return;
        }
        let t = self.trace_epoch + now.as_secs();
        self.tracer.instant(
            Layer::Simrt,
            "flow.reseg",
            t,
            vec![
                ("active_flows", active.len().into()),
                ("segment_secs", dt.into()),
            ],
        );
        // Per-resource utilization: allocated rate over capacity. Only
        // resources touched by an active flow get a sample — idle
        // tracks stay flat at their last value.
        let mut alloc = vec![0.0f64; self.resources.len()];
        let mut touched = vec![false; self.resources.len()];
        for &fi in active {
            for r in &self.flows[fi].spec.path {
                alloc[r.0] += rates[fi];
                touched[r.0] = true;
            }
        }
        for (ri, res) in self.resources.iter().enumerate() {
            if touched[ri] {
                let name = match &res.label {
                    Some(l) => format!("util:{l}"),
                    None => format!("util:res{ri}"),
                };
                self.tracer
                    .sample(Layer::Simrt, name, t, alloc[ri] / res.capacity);
            }
        }
    }

    /// Emits the completed-transfer span for flow `fi`. No-op when the
    /// tracer is disabled.
    fn trace_flow_done(&self, fi: usize, finished: Time) {
        if !self.tracer.enabled() {
            return;
        }
        let f = &self.flows[fi];
        let began = f.began.expect("finished flow must have begun");
        let dt = finished - began;
        let bw = if dt > 0.0 { f.spec.bytes / dt } else { f64::INFINITY };
        let name = match &f.label {
            Some(l) => l.clone(),
            None => format!("flow{fi}"),
        };
        self.tracer.span(
            Layer::Simrt,
            name,
            self.trace_epoch + began.as_secs(),
            self.trace_epoch + finished.as_secs(),
            vec![
                ("bytes", f.spec.bytes.into()),
                ("avg_gbs", (bw / 1e9).into()),
                ("resources", f.spec.path.len().into()),
            ],
        );
    }

    /// The incremental event loop: a sorted arrival calendar replaces
    /// the per-segment min-scan over all flows, a shrinking active list
    /// replaces the per-segment rebuild, and rates persist across
    /// segments with only dirty components re-solved.
    fn run_inner(
        &mut self,
        mut trace: Option<&mut Vec<RateSegment>>,
    ) -> std::collections::HashMap<FlowId, TransferOutcome> {
        const EPS_BYTES: f64 = 1e-6;
        let nf = self.flows.len();
        let stats_at_entry = self.stats;

        // Arrival calendar: unfinished flows ordered by begin time
        // (ties by index); a cursor advances as flows are admitted.
        let mut calendar: Vec<usize> = (0..nf)
            .filter(|&fi| self.flows[fi].finished.is_none())
            .collect();
        calendar.sort_by(|&a, &b| {
            let ka = self.flows[a].spec.start + self.flows[a].spec.latency;
            let kb = self.flows[b].spec.start + self.flows[b].spec.latency;
            ka.cmp(&kb).then(a.cmp(&b))
        });
        let mut cursor = 0usize;

        // Active flows in ascending index order — the freeze/debit order
        // the reference solver uses.
        let mut active: Vec<usize> = Vec::new();
        let mut is_active = vec![false; nf];
        let mut blocked = vec![false; nf];
        let mut rates = vec![0.0f64; nf];
        // Flows whose arrival/completion invalidates their component's
        // allocation before the next segment.
        let mut dirty: Vec<usize> = Vec::new();
        let mut now = Time::ZERO;

        loop {
            // Admit every flow whose begin time has been reached.
            while let Some(&fi) = calendar.get(cursor) {
                if self.flows[fi].spec.start + self.flows[fi].spec.latency > now {
                    break;
                }
                cursor += 1;
                let pos = active.partition_point(|&x| x < fi);
                active.insert(pos, fi);
                is_active[fi] = true;
                blocked[fi] = self.flows[fi]
                    .spec
                    .path
                    .iter()
                    .any(|r| !self.resources[r.0].enabled);
                if self.flows[fi].began.is_none() {
                    self.flows[fi].began = Some(now);
                }
                dirty.push(fi);
            }
            let next_arrival: Option<Time> = calendar
                .get(cursor)
                .map(|&fi| self.flows[fi].spec.start + self.flows[fi].spec.latency);

            if active.is_empty() {
                match next_arrival {
                    Some(t) => {
                        now = t;
                        continue;
                    }
                    None => break,
                }
            }

            if !dirty.is_empty() {
                self.resolve_dirty(&dirty, &is_active, &blocked, &mut rates);
                dirty.clear();
            }

            // Earliest completion among progressing flows.
            let mut horizon: Option<f64> = None;
            for &fi in &active {
                if rates[fi] > 0.0 {
                    let dt = self.flows[fi].remaining / rates[fi];
                    horizon = Some(horizon.map_or(dt, |h: f64| h.min(dt)));
                }
            }
            self.stats.active_flow_visits += active.len() as u64;
            // Blocked forever (all rates zero) and nothing will arrive to
            // change that: stop. Otherwise jump to the next arrival.
            let Some(mut dt) = horizon else {
                match next_arrival {
                    Some(t) => {
                        now = t;
                        continue;
                    }
                    None => break,
                }
            };
            if let Some(arr) = next_arrival {
                dt = dt.min(arr - now);
            }

            if let Some(t) = trace.as_deref_mut() {
                for &fi in &active {
                    t.push(RateSegment {
                        flow: FlowId(fi),
                        from: now,
                        to: now + dt,
                        rate: rates[fi],
                    });
                }
            }
            self.trace_segment(now, dt, &active, &rates);
            self.stats.segments += 1;

            now += dt;
            let mut finished_any = false;
            for &fi in &active {
                let f = &mut self.flows[fi];
                f.remaining -= rates[fi] * dt;
                if f.remaining <= EPS_BYTES {
                    f.remaining = 0.0;
                    f.finished = Some(now);
                    finished_any = true;
                    self.trace_flow_done(fi, now);
                }
            }
            if finished_any {
                let flows = &self.flows;
                active.retain(|&fi| {
                    if flows[fi].finished.is_some() {
                        is_active[fi] = false;
                        rates[fi] = 0.0;
                        // The freed bandwidth re-opens this component.
                        dirty.push(fi);
                        false
                    } else {
                        true
                    }
                });
            }
        }

        // Export this run's solver work to any ambient metrics sink
        // (the serve/scenario layers attribute effort per request this
        // way). The reference oracle deliberately does not export —
        // `simrt.flow.*` counts production-solver work only.
        if pvc_obs::Metrics::ambient_installed() {
            let d = self.stats;
            let b = stats_at_entry;
            pvc_obs::Metrics::with_ambient(|m| {
                m.count("simrt.flow.runs", 1);
                m.count("simrt.flow.segments", d.segments - b.segments);
                m.count("simrt.flow.solves", d.solves - b.solves);
                m.count(
                    "simrt.flow.solver_flow_visits",
                    d.solver_flow_visits - b.solver_flow_visits,
                );
                m.count(
                    "simrt.flow.active_flow_visits",
                    d.active_flow_visits - b.active_flow_visits,
                );
            });
        }

        self.collect_outcomes()
    }

    /// The original full-rescan event loop, kept verbatim as the
    /// equivalence oracle (see [`run_reference`](Self::run_reference)).
    fn run_reference_inner(
        &mut self,
        mut trace: Option<&mut Vec<RateSegment>>,
    ) -> std::collections::HashMap<FlowId, TransferOutcome> {
        const EPS_BYTES: f64 = 1e-6;

        let mut now = Time::ZERO;
        loop {
            // Partition flows: active = begun and unfinished; pending =
            // not yet begun.
            let mut active: Vec<usize> = Vec::new();
            let mut next_arrival: Option<Time> = None;
            for (fi, f) in self.flows.iter().enumerate() {
                if f.finished.is_some() {
                    continue;
                }
                let begins = f.spec.start + f.spec.latency;
                if begins <= now {
                    active.push(fi);
                } else {
                    next_arrival = Some(next_arrival.map_or(begins, |t: Time| t.min(begins)));
                }
            }

            if active.is_empty() {
                match next_arrival {
                    Some(t) => {
                        now = t;
                        continue;
                    }
                    None => break,
                }
            }

            for &fi in &active {
                if self.flows[fi].began.is_none() {
                    self.flows[fi].began = Some(now);
                }
            }

            let rates = self.allocate(&active);

            // Earliest completion among progressing flows.
            let mut horizon: Option<f64> = None;
            for (ai, &fi) in active.iter().enumerate() {
                if rates[ai] > 0.0 {
                    let dt = self.flows[fi].remaining / rates[ai];
                    horizon = Some(horizon.map_or(dt, |h: f64| h.min(dt)));
                }
            }
            let Some(mut dt) = horizon else {
                match next_arrival {
                    Some(t) => {
                        now = t;
                        continue;
                    }
                    None => break,
                }
            };
            if let Some(arr) = next_arrival {
                dt = dt.min(arr - now);
            }

            if let Some(t) = trace.as_deref_mut() {
                for (ai, &fi) in active.iter().enumerate() {
                    t.push(RateSegment {
                        flow: FlowId(fi),
                        from: now,
                        to: now + dt,
                        rate: rates[ai],
                    });
                }
            }

            now += dt;
            for (ai, &fi) in active.iter().enumerate() {
                let f = &mut self.flows[fi];
                f.remaining -= rates[ai] * dt;
                if f.remaining <= EPS_BYTES {
                    f.remaining = 0.0;
                    f.finished = Some(now);
                    self.trace_flow_done(fi, now);
                }
            }
        }

        self.collect_outcomes()
    }

    fn collect_outcomes(&self) -> std::collections::HashMap<FlowId, TransferOutcome> {
        self.flows
            .iter()
            .enumerate()
            .filter_map(|(fi, f)| {
                let finished = f.finished?;
                Some((
                    FlowId(fi),
                    TransferOutcome {
                        flow: FlowId(fi),
                        began: f.began.expect("finished flow must have begun"),
                        finished,
                        bytes: f.spec.bytes,
                    },
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(start: f64, bytes: f64, path: Vec<ResourceId>) -> FlowSpec {
        FlowSpec {
            start: Time::from_secs(start),
            bytes,
            path,
            latency: 0.0,
        }
    }

    #[test]
    fn single_flow_runs_at_capacity() {
        let mut net = FlowNetwork::new();
        let link = net.add_resource(50.0);
        let f = net.add_flow(spec(0.0, 100.0, vec![link]));
        let done = net.run();
        assert!((done[&f].finished.as_secs() - 2.0).abs() < 1e-9);
        assert!((done[&f].bandwidth() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn startup_latency_delays_begin() {
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        let f = net.add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: 100.0,
            path: vec![link],
            latency: 0.5,
        });
        let done = net.run();
        assert!((done[&f].began.as_secs() - 0.5).abs() < 1e-9);
        assert!((done[&f].finished.as_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn unequal_flows_release_bandwidth() {
        // Flow a: 50 B, flow b: 150 B on a 100 B/s link. Share until a
        // finishes at t=1 (50 B each), then b runs alone: 100 B left at
        // 100 B/s -> finishes t=2.
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        let a = net.add_flow(spec(0.0, 50.0, vec![link]));
        let b = net.add_flow(spec(0.0, 150.0, vec![link]));
        let done = net.run();
        assert!((done[&a].finished.as_secs() - 1.0).abs() < 1e-9);
        assert!((done[&b].finished.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn staggered_arrival() {
        // b arrives at t=1 while a (200 B @ 100 B/s) is mid-flight.
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        let a = net.add_flow(spec(0.0, 200.0, vec![link]));
        let b = net.add_flow(spec(1.0, 100.0, vec![link]));
        let done = net.run();
        // a: 100 B alone (t=0..1), then 100 B at 50 B/s -> t=3.
        assert!((done[&a].finished.as_secs() - 3.0).abs() < 1e-9);
        // b: 100 B at 50 B/s from t=1 .. but a finishes at 3 with b having
        // moved 100 B at t=3 too.
        assert!((done[&b].finished.as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn shared_pool_caps_aggregate() {
        // Two directions of 60 each, plus a duplex pool of 84 (1.4x):
        // bidirectional transfers get 42 each, not 60.
        let mut net = FlowNetwork::new();
        let h2d = net.add_resource(60.0);
        let d2h = net.add_resource(60.0);
        let duplex = net.add_resource(84.0);
        let up = net.add_flow(spec(0.0, 84.0, vec![h2d, duplex]));
        let dn = net.add_flow(spec(0.0, 84.0, vec![d2h, duplex]));
        let done = net.run();
        assert!((done[&up].bandwidth() - 42.0).abs() < 1e-6);
        assert!((done[&dn].bandwidth() - 42.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_not_proportional() {
        // Three flows: two short-path on separate links, one crossing
        // both. Max–min gives the crossing flow the min fair share.
        let mut net = FlowNetwork::new();
        let l1 = net.add_resource(100.0);
        let l2 = net.add_resource(50.0);
        let a = net.add_flow(spec(0.0, 1000.0, vec![l1]));
        let b = net.add_flow(spec(0.0, 1000.0, vec![l2]));
        let c = net.add_flow(spec(0.0, 1000.0, vec![l1, l2]));
        // Allocation at t=0: l2 is tightest (50/2=25): b=c=25. Then l1
        // residual 75 for a alone -> a=75.
        let rates = net.allocate(&[0, 1, 2]);
        let _ = (a, b, c);
        assert!((rates[2] - 25.0).abs() < 1e-9);
        assert!((rates[1] - 25.0).abs() < 1e-9);
        assert!((rates[0] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_resource_blocks_flow() {
        let mut net = FlowNetwork::new();
        let l1 = net.add_resource(100.0);
        let l2 = net.add_resource(100.0);
        net.disable_resource(l2);
        let ok = net.add_flow(spec(0.0, 100.0, vec![l1]));
        let blocked = net.add_flow(spec(0.0, 100.0, vec![l2]));
        let done = net.run();
        assert!(done.contains_key(&ok));
        assert!(!done.contains_key(&blocked));
    }

    #[test]
    fn twelve_ranks_contend_on_two_sockets() {
        // Miniature of the paper's full-node H2D run: 12 flows, each on
        // its own device link (cap 55), 6 per socket pool (cap 165).
        // Per-flow rate = 165/6 = 27.5, aggregate = 330 < 12*55 = 660.
        let mut net = FlowNetwork::new();
        let mut flows = Vec::new();
        for s in 0..2 {
            let pool = net.add_resource(165.0);
            let _ = s;
            for _ in 0..6 {
                let dev = net.add_resource(55.0);
                flows.push(net.add_flow(spec(0.0, 275.0, vec![dev, pool])));
            }
        }
        let done = net.run();
        let agg: f64 = flows.iter().map(|f| done[f].bandwidth()).sum();
        assert!((agg - 330.0).abs() < 1e-6);
    }

    #[test]
    fn traced_run_records_rate_changes() {
        // a (50 B) and b (150 B) share a 100 B/s link: a's one segment at
        // 50 B/s; b has two segments (50 then 100 B/s after a finishes).
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        let a = net.add_flow(spec(0.0, 50.0, vec![link]));
        let b = net.add_flow(spec(0.0, 150.0, vec![link]));
        let (done, trace) = net.run_traced();
        assert!(done.contains_key(&a) && done.contains_key(&b));
        let b_segs: Vec<_> = trace.iter().filter(|s| s.flow == b).collect();
        assert_eq!(b_segs.len(), 2);
        assert!((b_segs[0].rate - 50.0).abs() < 1e-9);
        assert!((b_segs[1].rate - 100.0).abs() < 1e-9);
        // Byte conservation: integral of rate over segments == bytes.
        let moved: f64 = b_segs.iter().map(|s| s.rate * (s.to - s.from)).sum();
        assert!((moved - 150.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "flow path must not be empty")]
    fn empty_path_rejected() {
        let mut net = FlowNetwork::new();
        net.add_flow(spec(0.0, 1.0, vec![]));
    }

    #[test]
    #[should_panic(expected = "resource capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut net = FlowNetwork::new();
        net.add_resource(0.0);
    }

    #[test]
    fn traced_network_emits_spans_and_gauges() {
        use pvc_obs::Tracer;
        let mut net = FlowNetwork::new();
        let tracer = Tracer::recording();
        net.set_tracer(tracer.clone(), 0.0);
        let link = net.add_resource_labeled(100.0, "link");
        let a = net.add_flow_labeled(spec(0.0, 50.0, vec![link]), "a");
        let b = net.add_flow(spec(0.0, 150.0, vec![link]));
        let done = net.run();
        assert!(done.contains_key(&a) && done.contains_key(&b));
        let recs = tracer.records();
        // Two segments (before/after a finishes) -> two reseg instants
        // plus two utilization samples, then two completion spans.
        let spans: Vec<_> = recs
            .iter()
            .filter_map(|r| match r {
                pvc_obs::trace::Record::Span { name, t0, t1, .. } => {
                    Some((name.clone(), *t0, *t1))
                }
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, "a");
        assert!((spans[0].2 - 1.0).abs() < 1e-9);
        assert_eq!(spans[1].0, "flow1");
        let samples: Vec<_> = recs
            .iter()
            .filter_map(|r| match r {
                pvc_obs::trace::Record::Sample { name, value, .. } => {
                    Some((name.clone(), *value))
                }
                _ => None,
            })
            .collect();
        assert_eq!(samples.len(), 2, "one utilization sample per segment");
        assert!(samples.iter().all(|(n, v)| n == "util:link" && (*v - 1.0).abs() < 1e-9));
        assert!(recs.iter().any(|r| matches!(
            r,
            pvc_obs::trace::Record::Instant { name, .. } if name == "flow.reseg"
        )));
    }

    #[test]
    fn trace_epoch_shifts_timestamps() {
        use pvc_obs::Tracer;
        let mut net = FlowNetwork::new();
        let tracer = Tracer::recording();
        net.set_tracer(tracer.clone(), 10.0);
        let link = net.add_resource(100.0);
        net.add_flow(spec(0.0, 100.0, vec![link]));
        net.run();
        let recs = tracer.records();
        assert!(recs.iter().all(|r| r.start() >= 10.0));
    }

    #[test]
    fn untraced_run_is_unchanged() {
        // The disabled tracer must not perturb outcomes (zero-cost
        // hooks): identical results with and without tracing.
        let build = |traced: bool| {
            let mut net = FlowNetwork::new();
            if traced {
                net.set_tracer(pvc_obs::Tracer::recording(), 0.0);
            }
            let l1 = net.add_resource(100.0);
            let l2 = net.add_resource(50.0);
            let a = net.add_flow(spec(0.0, 1000.0, vec![l1]));
            let c = net.add_flow(spec(0.5, 600.0, vec![l1, l2]));
            let done = net.run();
            (done[&a].finished, done[&c].finished)
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn default_labels_materialize_at_trace_time() {
        // Unlabeled flows/resources carry no String until traced.
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        assert_eq!(net.resource_label(link), "res0");
        let labeled = net.add_resource_labeled(10.0, "pool");
        assert_eq!(net.resource_label(labeled), "pool");
    }

    #[test]
    fn stats_count_segments_and_solves() {
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        net.add_flow(spec(0.0, 50.0, vec![link]));
        net.add_flow(spec(0.0, 150.0, vec![link]));
        net.run();
        let s = net.stats();
        // Two segments (before/after the short flow finishes), two
        // solves (initial arrivals, then the completion).
        assert_eq!(s.segments, 2);
        assert_eq!(s.solves, 2);
        assert!(s.solver_flow_visits >= 3); // 2 initial + 1 re-solve
    }

    #[test]
    fn reference_solver_matches_on_basics() {
        let build = || {
            let mut net = FlowNetwork::new();
            let l1 = net.add_resource(100.0);
            let l2 = net.add_resource(50.0);
            net.add_flow(spec(0.0, 1000.0, vec![l1]));
            net.add_flow(spec(0.5, 600.0, vec![l1, l2]));
            net.add_flow(spec(1.5, 250.0, vec![l2]));
            net
        };
        let inc = build().run_traced();
        let mut rnet = build();
        let refr = rnet.run_reference_traced();
        assert_eq!(inc.1, refr.1, "rate schedules must be bit-identical");
        for (id, out) in &inc.0 {
            let r = &refr.0[id];
            assert_eq!(out.finished.as_secs().to_bits(), r.finished.as_secs().to_bits());
            assert_eq!(out.began.as_secs().to_bits(), r.began.as_secs().to_bits());
        }
    }
}

//! Fluid-flow network with max–min fair bandwidth sharing.
//!
//! Bulk data transfers on a node (PCIe host↔device copies, MDFI
//! stack-to-stack traffic, Xe-Link peer traffic) are modelled as *flows*
//! that each traverse a set of capacity-limited *resources*. A resource
//! is anything that can saturate: one direction of a PCIe x16 link, the
//! per-socket root-complex aggregate, a duplex pool that caps the sum of
//! both directions of a link below 2× (the paper observes a 1.4×
//! bidirectional factor, §IV-B4), or an Xe-Link plane.
//!
//! Concurrent flows share each resource with **max–min fairness**
//! (progressive filling): all flows ramp together until some resource
//! saturates; flows through a saturated resource are frozen at their fair
//! share; remaining flows continue ramping. This reproduces, from first
//! principles, effects such as the paper's 40% full-node H2D scaling
//! (12 ranks sharing two root complexes) without per-row calibration.
//!
//! The simulation itself is event-driven on the *fluid* timescale: rates
//! are piecewise constant between flow arrivals/completions, so we
//! repeatedly (1) solve the max–min allocation, (2) jump to the next
//! arrival or completion, (3) debit transferred bytes.

use crate::time::Time;

/// Identifies a capacity-limited resource in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(pub usize);

/// Identifies a flow returned by [`FlowNetwork::add_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// A transfer request: `bytes` moving across every resource in `path`
/// starting at `start`.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Absolute start time of the transfer.
    pub start: Time,
    /// Payload size in bytes. Must be positive.
    pub bytes: f64,
    /// Resources the flow consumes simultaneously (link directions,
    /// shared pools, …). Must be non-empty.
    pub path: Vec<ResourceId>,
    /// Fixed startup latency (seconds) before the fluid transfer begins —
    /// models software/launch latency of a copy or message.
    pub latency: f64,
}

/// Completion record for one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// The flow this outcome describes.
    pub flow: FlowId,
    /// Time the flow became active (start + latency).
    pub began: Time,
    /// Time the last byte arrived.
    pub finished: Time,
    /// Payload bytes (as requested).
    pub bytes: f64,
}

impl TransferOutcome {
    /// Achieved bandwidth over the active period, bytes/second.
    pub fn bandwidth(&self) -> f64 {
        let dt = self.finished - self.began;
        if dt <= 0.0 {
            f64::INFINITY
        } else {
            self.bytes / dt
        }
    }

    /// End-to-end duration including startup latency, measured from the
    /// original request start.
    pub fn duration_from(&self, start: Time) -> f64 {
        self.finished - start
    }
}

/// One piecewise-constant segment of a flow's achieved rate, produced by
/// [`FlowNetwork::run_traced`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateSegment {
    /// The flow this segment belongs to.
    pub flow: FlowId,
    /// Segment start.
    pub from: Time,
    /// Segment end.
    pub to: Time,
    /// Allocated rate during the segment, bytes/s.
    pub rate: f64,
}

#[derive(Debug, Clone)]
struct Resource {
    capacity: f64, // bytes/s
    enabled: bool,
}

#[derive(Debug, Clone)]
struct Flow {
    spec: FlowSpec,
    remaining: f64,
    began: Option<Time>,
    finished: Option<Time>,
}

/// A fluid-flow network. Build resources with [`add_resource`], submit
/// flows with [`add_flow`], then [`run`] to completion.
///
/// [`add_resource`]: FlowNetwork::add_resource
/// [`add_flow`]: FlowNetwork::add_flow
/// [`run`]: FlowNetwork::run
///
/// # Example: two flows share a link fairly
/// ```
/// use pvc_simrt::{FlowNetwork, FlowSpec, Time};
///
/// let mut net = FlowNetwork::new();
/// let link = net.add_resource(100.0); // 100 B/s
/// let a = net.add_flow(FlowSpec { start: Time::ZERO, bytes: 100.0, path: vec![link], latency: 0.0 });
/// let b = net.add_flow(FlowSpec { start: Time::ZERO, bytes: 100.0, path: vec![link], latency: 0.0 });
/// let done = net.run();
/// // both make 50 B/s while sharing, so both finish at t = 2 s
/// assert!((done[&a].finished.as_secs() - 2.0).abs() < 1e-9);
/// assert!((done[&b].finished.as_secs() - 2.0).abs() < 1e-9);
/// ```
#[derive(Default)]
pub struct FlowNetwork {
    resources: Vec<Resource>,
    flows: Vec<Flow>,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a resource with `capacity` bytes/second; returns its id.
    ///
    /// # Panics
    /// Panics if `capacity` is not positive and finite.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "resource capacity must be positive and finite, got {capacity}"
        );
        self.resources.push(Resource {
            capacity,
            enabled: true,
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Disables a resource (failure injection): flows whose path contains
    /// a disabled resource never progress. [`run`](Self::run) reports them
    /// as unfinished.
    pub fn disable_resource(&mut self, id: ResourceId) {
        self.resources[id.0].enabled = false;
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// A fresh network sharing this one's resource definitions but with
    /// no flows — useful for probing a path's isolated capacity without
    /// disturbing queued work.
    pub fn clone_resources(&self) -> FlowNetwork {
        FlowNetwork {
            resources: self.resources.clone(),
            flows: Vec::new(),
        }
    }

    /// Submits a flow; returns its id.
    ///
    /// # Panics
    /// Panics on empty paths, non-positive byte counts, out-of-range
    /// resource ids, or negative latency.
    pub fn add_flow(&mut self, spec: FlowSpec) -> FlowId {
        assert!(!spec.path.is_empty(), "flow path must not be empty");
        assert!(
            spec.bytes.is_finite() && spec.bytes > 0.0,
            "flow bytes must be positive, got {}",
            spec.bytes
        );
        assert!(
            spec.latency.is_finite() && spec.latency >= 0.0,
            "flow latency must be non-negative"
        );
        for r in &spec.path {
            assert!(r.0 < self.resources.len(), "unknown resource {:?}", r);
        }
        let remaining = spec.bytes;
        self.flows.push(Flow {
            spec,
            remaining,
            began: None,
            finished: None,
        });
        FlowId(self.flows.len() - 1)
    }

    /// Max–min fair rate allocation over currently-active flows.
    ///
    /// `active` holds indices into `self.flows`. Returns rates aligned
    /// with `active`. Flows through disabled resources get rate 0.
    fn allocate(&self, active: &[usize]) -> Vec<f64> {
        let nr = self.resources.len();
        let mut rates = vec![0.0f64; active.len()];
        let mut frozen = vec![false; active.len()];
        // Residual capacity and unfrozen-flow count per resource.
        let mut residual: Vec<f64> = self.resources.iter().map(|r| r.capacity).collect();
        let mut count = vec![0usize; nr];
        for (ai, &fi) in active.iter().enumerate() {
            let blocked = self.flows[fi]
                .spec
                .path
                .iter()
                .any(|r| !self.resources[r.0].enabled);
            if blocked {
                frozen[ai] = true; // rate stays 0
            } else {
                for r in &self.flows[fi].spec.path {
                    count[r.0] += 1;
                }
            }
        }

        // Progressive filling: repeatedly saturate the tightest resource.
        loop {
            let mut bottleneck: Option<(usize, f64)> = None;
            for (ri, res) in self.resources.iter().enumerate() {
                if count[ri] == 0 || !res.enabled {
                    continue;
                }
                let share = residual[ri] / count[ri] as f64;
                if bottleneck.is_none_or(|(_, s)| share < s) {
                    bottleneck = Some((ri, share));
                }
            }
            let Some((ri, share)) = bottleneck else { break };

            // Freeze every unfrozen flow crossing the bottleneck at its
            // current fair share, then debit that bandwidth everywhere.
            for (ai, &fi) in active.iter().enumerate() {
                if frozen[ai] {
                    continue;
                }
                let flow = &self.flows[fi];
                if !flow.spec.path.iter().any(|r| r.0 == ri) {
                    continue;
                }
                frozen[ai] = true;
                rates[ai] = share;
                for r in &flow.spec.path {
                    residual[r.0] = (residual[r.0] - share).max(0.0);
                    count[r.0] -= 1;
                }
            }
        }
        rates
    }

    /// Runs the network to quiescence; returns outcomes for every flow
    /// that finished. Flows blocked by disabled resources are omitted.
    pub fn run(&mut self) -> std::collections::HashMap<FlowId, TransferOutcome> {
        self.run_inner(None)
    }

    /// Like [`run`](Self::run), but also records the piecewise-constant
    /// rate schedule of every flow — the raw material for contention
    /// timelines.
    pub fn run_traced(
        &mut self,
    ) -> (
        std::collections::HashMap<FlowId, TransferOutcome>,
        Vec<RateSegment>,
    ) {
        let mut trace = Vec::new();
        let outcomes = self.run_inner(Some(&mut trace));
        (outcomes, trace)
    }

    fn run_inner(
        &mut self,
        mut trace: Option<&mut Vec<RateSegment>>,
    ) -> std::collections::HashMap<FlowId, TransferOutcome> {
        const EPS_BYTES: f64 = 1e-6;

        let mut now = Time::ZERO;
        loop {
            // Partition flows: active = begun and unfinished; pending =
            // not yet begun.
            let mut active: Vec<usize> = Vec::new();
            let mut next_arrival: Option<Time> = None;
            for (fi, f) in self.flows.iter().enumerate() {
                if f.finished.is_some() {
                    continue;
                }
                let begins = f.spec.start + f.spec.latency;
                if begins <= now {
                    active.push(fi);
                } else {
                    next_arrival = Some(next_arrival.map_or(begins, |t: Time| t.min(begins)));
                }
            }

            if active.is_empty() {
                match next_arrival {
                    Some(t) => {
                        now = t;
                        continue;
                    }
                    None => break,
                }
            }

            for &fi in &active {
                if self.flows[fi].began.is_none() {
                    self.flows[fi].began = Some(now);
                }
            }

            let rates = self.allocate(&active);

            // Earliest completion among progressing flows.
            let mut horizon: Option<f64> = None;
            for (ai, &fi) in active.iter().enumerate() {
                if rates[ai] > 0.0 {
                    let dt = self.flows[fi].remaining / rates[ai];
                    horizon = Some(horizon.map_or(dt, |h: f64| h.min(dt)));
                }
            }
            // Blocked forever (all rates zero) and nothing will arrive to
            // change that: stop. Otherwise jump to the next arrival.
            let Some(mut dt) = horizon else {
                match next_arrival {
                    Some(t) => {
                        now = t;
                        continue;
                    }
                    None => break,
                }
            };
            if let Some(arr) = next_arrival {
                dt = dt.min(arr - now);
            }

            if let Some(t) = trace.as_deref_mut() {
                for (ai, &fi) in active.iter().enumerate() {
                    t.push(RateSegment {
                        flow: FlowId(fi),
                        from: now,
                        to: now + dt,
                        rate: rates[ai],
                    });
                }
            }

            now += dt;
            for (ai, &fi) in active.iter().enumerate() {
                let f = &mut self.flows[fi];
                f.remaining -= rates[ai] * dt;
                if f.remaining <= EPS_BYTES {
                    f.remaining = 0.0;
                    f.finished = Some(now);
                }
            }
        }

        self.flows
            .iter()
            .enumerate()
            .filter_map(|(fi, f)| {
                let finished = f.finished?;
                Some((
                    FlowId(fi),
                    TransferOutcome {
                        flow: FlowId(fi),
                        began: f.began.expect("finished flow must have begun"),
                        finished,
                        bytes: f.spec.bytes,
                    },
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(start: f64, bytes: f64, path: Vec<ResourceId>) -> FlowSpec {
        FlowSpec {
            start: Time::from_secs(start),
            bytes,
            path,
            latency: 0.0,
        }
    }

    #[test]
    fn single_flow_runs_at_capacity() {
        let mut net = FlowNetwork::new();
        let link = net.add_resource(50.0);
        let f = net.add_flow(spec(0.0, 100.0, vec![link]));
        let done = net.run();
        assert!((done[&f].finished.as_secs() - 2.0).abs() < 1e-9);
        assert!((done[&f].bandwidth() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn startup_latency_delays_begin() {
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        let f = net.add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: 100.0,
            path: vec![link],
            latency: 0.5,
        });
        let done = net.run();
        assert!((done[&f].began.as_secs() - 0.5).abs() < 1e-9);
        assert!((done[&f].finished.as_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn unequal_flows_release_bandwidth() {
        // Flow a: 50 B, flow b: 150 B on a 100 B/s link. Share until a
        // finishes at t=1 (50 B each), then b runs alone: 100 B left at
        // 100 B/s -> finishes t=2.
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        let a = net.add_flow(spec(0.0, 50.0, vec![link]));
        let b = net.add_flow(spec(0.0, 150.0, vec![link]));
        let done = net.run();
        assert!((done[&a].finished.as_secs() - 1.0).abs() < 1e-9);
        assert!((done[&b].finished.as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn staggered_arrival() {
        // b arrives at t=1 while a (200 B @ 100 B/s) is mid-flight.
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        let a = net.add_flow(spec(0.0, 200.0, vec![link]));
        let b = net.add_flow(spec(1.0, 100.0, vec![link]));
        let done = net.run();
        // a: 100 B alone (t=0..1), then 100 B at 50 B/s -> t=3.
        assert!((done[&a].finished.as_secs() - 3.0).abs() < 1e-9);
        // b: 100 B at 50 B/s from t=1 .. but a finishes at 3 with b having
        // moved 100 B at t=3 too.
        assert!((done[&b].finished.as_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn shared_pool_caps_aggregate() {
        // Two directions of 60 each, plus a duplex pool of 84 (1.4x):
        // bidirectional transfers get 42 each, not 60.
        let mut net = FlowNetwork::new();
        let h2d = net.add_resource(60.0);
        let d2h = net.add_resource(60.0);
        let duplex = net.add_resource(84.0);
        let up = net.add_flow(spec(0.0, 84.0, vec![h2d, duplex]));
        let dn = net.add_flow(spec(0.0, 84.0, vec![d2h, duplex]));
        let done = net.run();
        assert!((done[&up].bandwidth() - 42.0).abs() < 1e-6);
        assert!((done[&dn].bandwidth() - 42.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_not_proportional() {
        // Three flows: two short-path on separate links, one crossing
        // both. Max–min gives the crossing flow the min fair share.
        let mut net = FlowNetwork::new();
        let l1 = net.add_resource(100.0);
        let l2 = net.add_resource(50.0);
        let a = net.add_flow(spec(0.0, 1000.0, vec![l1]));
        let b = net.add_flow(spec(0.0, 1000.0, vec![l2]));
        let c = net.add_flow(spec(0.0, 1000.0, vec![l1, l2]));
        // Allocation at t=0: l2 is tightest (50/2=25): b=c=25. Then l1
        // residual 75 for a alone -> a=75.
        let rates = net.allocate(&[0, 1, 2]);
        let _ = (a, b, c);
        assert!((rates[2] - 25.0).abs() < 1e-9);
        assert!((rates[1] - 25.0).abs() < 1e-9);
        assert!((rates[0] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_resource_blocks_flow() {
        let mut net = FlowNetwork::new();
        let l1 = net.add_resource(100.0);
        let l2 = net.add_resource(100.0);
        net.disable_resource(l2);
        let ok = net.add_flow(spec(0.0, 100.0, vec![l1]));
        let blocked = net.add_flow(spec(0.0, 100.0, vec![l2]));
        let done = net.run();
        assert!(done.contains_key(&ok));
        assert!(!done.contains_key(&blocked));
    }

    #[test]
    fn twelve_ranks_contend_on_two_sockets() {
        // Miniature of the paper's full-node H2D run: 12 flows, each on
        // its own device link (cap 55), 6 per socket pool (cap 165).
        // Per-flow rate = 165/6 = 27.5, aggregate = 330 < 12*55 = 660.
        let mut net = FlowNetwork::new();
        let mut flows = Vec::new();
        for s in 0..2 {
            let pool = net.add_resource(165.0);
            let _ = s;
            for _ in 0..6 {
                let dev = net.add_resource(55.0);
                flows.push(net.add_flow(spec(0.0, 275.0, vec![dev, pool])));
            }
        }
        let done = net.run();
        let agg: f64 = flows.iter().map(|f| done[f].bandwidth()).sum();
        assert!((agg - 330.0).abs() < 1e-6);
    }

    #[test]
    fn traced_run_records_rate_changes() {
        // a (50 B) and b (150 B) share a 100 B/s link: a's one segment at
        // 50 B/s; b has two segments (50 then 100 B/s after a finishes).
        let mut net = FlowNetwork::new();
        let link = net.add_resource(100.0);
        let a = net.add_flow(spec(0.0, 50.0, vec![link]));
        let b = net.add_flow(spec(0.0, 150.0, vec![link]));
        let (done, trace) = net.run_traced();
        assert!(done.contains_key(&a) && done.contains_key(&b));
        let b_segs: Vec<_> = trace.iter().filter(|s| s.flow == b).collect();
        assert_eq!(b_segs.len(), 2);
        assert!((b_segs[0].rate - 50.0).abs() < 1e-9);
        assert!((b_segs[1].rate - 100.0).abs() < 1e-9);
        // Byte conservation: integral of rate over segments == bytes.
        let moved: f64 = b_segs.iter().map(|s| s.rate * (s.to - s.from)).sum();
        assert!((moved - 150.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "flow path must not be empty")]
    fn empty_path_rejected() {
        let mut net = FlowNetwork::new();
        net.add_flow(spec(0.0, 1.0, vec![]));
    }

    #[test]
    #[should_panic(expected = "resource capacity must be positive")]
    fn zero_capacity_rejected() {
        let mut net = FlowNetwork::new();
        net.add_resource(0.0);
    }
}

//! Virtual simulation time.
//!
//! Simulated time is a non-negative `f64` number of seconds. `f64` gives
//! more than enough resolution for the nanosecond-to-minute spans that
//! node-level benchmarking covers, and keeps the analytic performance
//! models (which naturally produce fractional seconds) free of rounding
//! ceremony. [`Time`] is a thin ordered wrapper that rejects NaN at
//! construction so the event queue ordering is total.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
///
/// The default value is [`Time::ZERO`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Time(f64);

impl Time {
    /// Simulation epoch (t = 0).
    pub const ZERO: Time = Time(0.0);

    /// Creates a time stamp from seconds.
    ///
    /// # Panics
    /// Panics if `secs` is NaN or negative — either indicates a broken
    /// performance model upstream and must not silently corrupt event
    /// ordering.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "invalid simulation time: {secs}"
        );
        Time(secs)
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Nanoseconds since simulation start (saturating on overflow of f64
    /// precision; fine for reporting).
    #[inline]
    pub fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// `self + secs`, panicking on NaN/negative results.
    pub fn advanced_by(self, secs: f64) -> Self {
        Time::from_secs(self.0 + secs)
    }
}

impl Eq for Time {}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        // Constructor guarantees non-NaN, so partial_cmp is total here.
        self.0.partial_cmp(&other.0).expect("Time is never NaN")
    }
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for Time {
    type Output = Time;
    fn add(self, rhs: f64) -> Time {
        self.advanced_by(rhs)
    }
}

impl AddAssign<f64> for Time {
    fn add_assign(&mut self, rhs: f64) {
        *self = self.advanced_by(rhs);
    }
}

impl Sub for Time {
    type Output = f64;
    fn sub(self, rhs: Time) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1e-6 {
            write!(f, "{:.3} ns", self.0 * 1e9)
        } else if self.0 < 1e-3 {
            write!(f, "{:.3} µs", self.0 * 1e6)
        } else if self.0 < 1.0 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.6} s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_sane() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(Time::ZERO.min(a), Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1.5) + 0.5;
        assert_eq!(t.as_secs(), 2.0);
        assert_eq!(t - Time::from_secs(0.5), 1.5);
        let mut u = Time::ZERO;
        u += 3.0;
        assert_eq!(u.as_secs(), 3.0);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn nan_rejected() {
        let _ = Time::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid simulation time")]
    fn negative_rejected() {
        let _ = Time::from_secs(-1.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Time::from_secs(2e-9)), "2.000 ns");
        assert_eq!(format!("{}", Time::from_secs(2e-6)), "2.000 µs");
        assert_eq!(format!("{}", Time::from_secs(2e-3)), "2.000 ms");
        assert_eq!(format!("{}", Time::from_secs(2.0)), "2.000000 s");
    }
}

//! Classic event-queue discrete-event simulator.
//!
//! [`EventSim`] owns a virtual clock and a priority queue of events. Each
//! event is a boxed `FnOnce(&mut EventSim)` handler; handlers may schedule
//! further events. Ties in time are broken by insertion order, so a given
//! schedule is fully deterministic.
//!
//! This simulator is intentionally minimal: the heavy lifting for
//! bandwidth contention is done by the fluid [`crate::flow::FlowNetwork`];
//! `EventSim` is used where explicit sequencing matters (host/device
//! overlap, pipelined mini-app phases, failure injection in tests).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::Time;
use pvc_obs::{Layer, Tracer};

type Handler = Box<dyn FnOnce(&mut EventSim)>;

/// Handle to a scheduled event, returned by the `schedule*` methods and
/// accepted by [`EventSim::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Scheduled {
    at: Time,
    seq: u64,
    label: Option<&'static str>,
    handler: Handler,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event simulator.
///
/// # Example
/// ```
/// use pvc_simrt::{EventSim, Time};
///
/// let mut sim = EventSim::new();
/// sim.schedule(Time::from_secs(1.0), |sim| {
///     // chain a follow-up event 0.5 s later
///     let next = sim.now() + 0.5;
///     sim.schedule(next, |_| {});
/// });
/// sim.run();
/// assert_eq!(sim.now().as_secs(), 1.5);
/// ```
#[derive(Default)]
pub struct EventSim {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    /// Ids scheduled and not yet fired or cancelled.
    pending: HashSet<u64>,
    /// Lazily-deleted ids: still in the heap, dropped on pop instead of
    /// paying an O(n) heap rebuild at cancel time.
    cancelled: HashSet<u64>,
    processed: u64,
    tracer: Tracer,
}

impl EventSim {
    /// Creates an empty simulator at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a tracer: every dispatched event emits an instant on
    /// the `simrt` lane (named by its schedule label when one was
    /// given) plus an event-queue occupancy sample. Default is the
    /// no-op sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer (no-op sink unless [`set_tracer`] was
    /// called) — handlers can emit their own spans through it.
    ///
    /// [`set_tracer`]: Self::set_tracer
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `handler` to run at absolute time `at`; returns a
    /// handle usable with [`cancel`](Self::cancel).
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — causality violations are
    /// model bugs and must fail loudly.
    pub fn schedule<F>(&mut self, at: Time, handler: F) -> EventId
    where
        F: FnOnce(&mut EventSim) + 'static,
    {
        self.push(at, None, Box::new(handler))
    }

    /// Like [`schedule`](Self::schedule) with a dispatch label shown in
    /// the trace.
    pub fn schedule_labeled<F>(&mut self, at: Time, label: &'static str, handler: F) -> EventId
    where
        F: FnOnce(&mut EventSim) + 'static,
    {
        self.push(at, Some(label), Box::new(handler))
    }

    /// Schedules `handler` to run `delay` seconds from now.
    pub fn schedule_in<F>(&mut self, delay: f64, handler: F) -> EventId
    where
        F: FnOnce(&mut EventSim) + 'static,
    {
        let at = self.now + delay;
        self.schedule(at, handler)
    }

    fn push(&mut self, at: Time, label: Option<&'static str>, handler: Handler) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.pending.insert(seq);
        self.queue.push(Scheduled {
            at,
            seq,
            label,
            handler,
        });
        EventId(seq)
    }

    /// Cancels a pending event: its handler will never run and it does
    /// not advance the clock. Returns `true` if the event was still
    /// pending, `false` if it already fired or was already cancelled.
    ///
    /// Cancellation is lazy: the entry stays in the heap and is dropped
    /// when it reaches the front, so cancel is O(1) amortized.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Runs until the event queue is empty, returning the final time.
    pub fn run(&mut self) -> Time {
        let before = self.processed;
        while self.step() {}
        self.export_processed(before);
        self.now
    }

    /// Runs events with `at <= deadline`, leaving later events queued.
    /// The clock ends at `max(deadline, now)`.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        let before = self.processed;
        loop {
            self.drop_cancelled_head();
            match self.queue.peek() {
                Some(head) if head.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.export_processed(before);
        self.now = self.now.max(deadline);
        self.now
    }

    /// Exports the events processed since `before` to any ambient
    /// metrics sink, so event-loop work is attributable per scenario.
    fn export_processed(&self, before: u64) {
        if pvc_obs::Metrics::ambient_installed() {
            let d = self.processed - before;
            pvc_obs::Metrics::with_ambient(|m| m.count("simrt.events.processed", d));
        }
    }

    /// Pops cancelled entries off the front so `peek` sees a live event.
    fn drop_cancelled_head(&mut self) {
        while !self.cancelled.is_empty() {
            match self.queue.peek() {
                Some(head) if self.cancelled.contains(&head.seq) => {
                    let ev = self.queue.pop().expect("peeked entry must pop");
                    self.cancelled.remove(&ev.seq);
                }
                _ => break,
            }
        }
    }

    /// Pops and executes a single live event (skipping lazily-cancelled
    /// entries). Returns false when idle.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            if !self.cancelled.is_empty() && self.cancelled.remove(&ev.seq) {
                continue; // lazily dropped, no clock advance
            }
            self.pending.remove(&ev.seq);
            debug_assert!(ev.at >= self.now);
            self.now = ev.at;
            self.processed += 1;
            if self.tracer.enabled() {
                let t = self.now.as_secs();
                self.tracer.instant(
                    Layer::Simrt,
                    ev.label.unwrap_or("event.dispatch"),
                    t,
                    vec![("seq", (ev.seq as i64).into())],
                );
                self.tracer.sample(
                    Layer::Simrt,
                    "event_queue_depth",
                    t,
                    (self.queue.len() - self.cancelled.len()) as f64,
                );
            }
            (ev.handler)(self);
            return true;
        }
    }

    /// True when no live events remain (cancelled stragglers in the
    /// heap do not count).
    pub fn is_idle(&self) -> bool {
        self.queue.len() == self.cancelled.len()
    }

    /// Number of live (scheduled, not yet fired or cancelled) events.
    pub fn pending_events(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = EventSim::new();
        for &(t, tag) in &[(3.0, 'c'), (1.0, 'a'), (2.0, 'b')] {
            let order = Rc::clone(&order);
            sim.schedule(Time::from_secs(t), move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(sim.now().as_secs(), 3.0);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = EventSim::new();
        for tag in 0..10u32 {
            let order = Rc::clone(&order);
            sim.schedule(Time::from_secs(1.0), move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = EventSim::new();
        sim.schedule(Time::from_secs(1.0), |sim| {
            sim.schedule_in(0.5, |sim| {
                sim.schedule_in(0.25, |_| {});
            });
        });
        let end = sim.run();
        assert!((end.as_secs() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let fired = Rc::new(RefCell::new(0u32));
        let mut sim = EventSim::new();
        for t in [1.0, 2.0, 3.0] {
            let fired = Rc::clone(&fired);
            sim.schedule(Time::from_secs(t), move |_| *fired.borrow_mut() += 1);
        }
        sim.run_until(Time::from_secs(2.0));
        assert_eq!(*fired.borrow(), 2);
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(*fired.borrow(), 3);
    }

    #[test]
    fn traced_dispatch_emits_instants_and_queue_depth() {
        let tracer = Tracer::recording();
        let mut sim = EventSim::new();
        sim.set_tracer(tracer.clone());
        sim.schedule_labeled(Time::from_secs(1.0), "tick", |_| {});
        sim.schedule(Time::from_secs(2.0), |_| {});
        sim.run();
        let recs = tracer.records();
        let names: Vec<_> = recs
            .iter()
            .filter_map(|r| match r {
                pvc_obs::trace::Record::Instant { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["tick", "event.dispatch"]);
        let depths: Vec<f64> = recs
            .iter()
            .filter_map(|r| match r {
                pvc_obs::trace::Record::Sample { name, value, .. }
                    if name == "event_queue_depth" =>
                {
                    Some(*value)
                }
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![1.0, 0.0]);
    }

    #[test]
    fn cancelled_event_never_fires() {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = EventSim::new();
        let keep = {
            let fired = Rc::clone(&fired);
            sim.schedule(Time::from_secs(1.0), move |_| fired.borrow_mut().push('a'))
        };
        let drop_me = {
            let fired = Rc::clone(&fired);
            sim.schedule(Time::from_secs(2.0), move |_| fired.borrow_mut().push('b'))
        };
        {
            let fired = Rc::clone(&fired);
            sim.schedule(Time::from_secs(3.0), move |_| fired.borrow_mut().push('c'));
        }
        assert_eq!(sim.pending_events(), 3);
        assert!(sim.cancel(drop_me));
        assert!(!sim.cancel(drop_me), "double cancel reports false");
        assert_eq!(sim.pending_events(), 2);
        sim.run();
        assert_eq!(*fired.borrow(), vec!['a', 'c']);
        // The cancelled event neither counts as processed nor leaves a
        // 2.0s clock stop: the run ends at the last live event.
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(sim.now().as_secs(), 3.0);
        assert!(!sim.cancel(keep), "already-fired events cannot be cancelled");
    }

    #[test]
    fn cancelled_head_does_not_stall_run_until() {
        let fired = Rc::new(RefCell::new(0u32));
        let mut sim = EventSim::new();
        let head = sim.schedule(Time::from_secs(1.0), |_| {});
        {
            let fired = Rc::clone(&fired);
            sim.schedule(Time::from_secs(2.0), move |_| *fired.borrow_mut() += 1);
        }
        let tail = sim.schedule(Time::from_secs(5.0), |_| {});
        sim.cancel(head);
        sim.run_until(Time::from_secs(3.0));
        assert_eq!(*fired.borrow(), 1);
        assert_eq!(sim.now().as_secs(), 3.0);
        assert!(!sim.is_idle());
        sim.cancel(tail);
        assert!(sim.is_idle(), "a queue of only cancelled events is idle");
        assert_eq!(sim.run().as_secs(), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn past_scheduling_panics() {
        let mut sim = EventSim::new();
        sim.schedule(Time::from_secs(5.0), |sim| {
            sim.schedule(Time::from_secs(1.0), |_| {});
        });
        sim.run();
    }
}

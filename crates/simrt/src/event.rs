//! Classic event-queue discrete-event simulator.
//!
//! [`EventSim`] owns a virtual clock and a priority queue of events. Each
//! event is a boxed `FnOnce(&mut EventSim)` handler; handlers may schedule
//! further events. Ties in time are broken by insertion order, so a given
//! schedule is fully deterministic.
//!
//! This simulator is intentionally minimal: the heavy lifting for
//! bandwidth contention is done by the fluid [`crate::flow::FlowNetwork`];
//! `EventSim` is used where explicit sequencing matters (host/device
//! overlap, pipelined mini-app phases, failure injection in tests).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;
use pvc_obs::{Layer, Tracer};

type Handler = Box<dyn FnOnce(&mut EventSim)>;

struct Scheduled {
    at: Time,
    seq: u64,
    label: Option<&'static str>,
    handler: Handler,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event simulator.
///
/// # Example
/// ```
/// use pvc_simrt::{EventSim, Time};
///
/// let mut sim = EventSim::new();
/// sim.schedule(Time::from_secs(1.0), |sim| {
///     // chain a follow-up event 0.5 s later
///     let next = sim.now() + 0.5;
///     sim.schedule(next, |_| {});
/// });
/// sim.run();
/// assert_eq!(sim.now().as_secs(), 1.5);
/// ```
#[derive(Default)]
pub struct EventSim {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Scheduled>,
    processed: u64,
    tracer: Tracer,
}

impl EventSim {
    /// Creates an empty simulator at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a tracer: every dispatched event emits an instant on
    /// the `simrt` lane (named by its schedule label when one was
    /// given) plus an event-queue occupancy sample. Default is the
    /// no-op sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The attached tracer (no-op sink unless [`set_tracer`] was
    /// called) — handlers can emit their own spans through it.
    ///
    /// [`set_tracer`]: Self::set_tracer
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Schedules `handler` to run at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — causality violations are
    /// model bugs and must fail loudly.
    pub fn schedule<F>(&mut self, at: Time, handler: F)
    where
        F: FnOnce(&mut EventSim) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            label: None,
            handler: Box::new(handler),
        });
    }

    /// Like [`schedule`](Self::schedule) with a dispatch label shown in
    /// the trace.
    pub fn schedule_labeled<F>(&mut self, at: Time, label: &'static str, handler: F)
    where
        F: FnOnce(&mut EventSim) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq,
            label: Some(label),
            handler: Box::new(handler),
        });
    }

    /// Schedules `handler` to run `delay` seconds from now.
    pub fn schedule_in<F>(&mut self, delay: f64, handler: F)
    where
        F: FnOnce(&mut EventSim) + 'static,
    {
        let at = self.now + delay;
        self.schedule(at, handler);
    }

    /// Runs until the event queue is empty, returning the final time.
    pub fn run(&mut self) -> Time {
        while self.step() {}
        self.now
    }

    /// Runs events with `at <= deadline`, leaving later events queued.
    /// The clock ends at `max(deadline, now)`.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        while let Some(head) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
        self.now
    }

    /// Pops and executes a single event. Returns false when idle.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now);
                self.now = ev.at;
                self.processed += 1;
                if self.tracer.enabled() {
                    let t = self.now.as_secs();
                    self.tracer.instant(
                        Layer::Simrt,
                        ev.label.unwrap_or("event.dispatch"),
                        t,
                        vec![("seq", (ev.seq as i64).into())],
                    );
                    self.tracer
                        .sample(Layer::Simrt, "event_queue_depth", t, self.queue.len() as f64);
                }
                (ev.handler)(self);
                true
            }
            None => false,
        }
    }

    /// True when no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = EventSim::new();
        for &(t, tag) in &[(3.0, 'c'), (1.0, 'a'), (2.0, 'b')] {
            let order = Rc::clone(&order);
            sim.schedule(Time::from_secs(t), move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec!['a', 'b', 'c']);
        assert_eq!(sim.now().as_secs(), 3.0);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let order = Rc::new(RefCell::new(Vec::new()));
        let mut sim = EventSim::new();
        for tag in 0..10u32 {
            let order = Rc::clone(&order);
            sim.schedule(Time::from_secs(1.0), move |_| order.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = EventSim::new();
        sim.schedule(Time::from_secs(1.0), |sim| {
            sim.schedule_in(0.5, |sim| {
                sim.schedule_in(0.25, |_| {});
            });
        });
        let end = sim.run();
        assert!((end.as_secs() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let fired = Rc::new(RefCell::new(0u32));
        let mut sim = EventSim::new();
        for t in [1.0, 2.0, 3.0] {
            let fired = Rc::clone(&fired);
            sim.schedule(Time::from_secs(t), move |_| *fired.borrow_mut() += 1);
        }
        sim.run_until(Time::from_secs(2.0));
        assert_eq!(*fired.borrow(), 2);
        assert!(!sim.is_idle());
        sim.run();
        assert_eq!(*fired.borrow(), 3);
    }

    #[test]
    fn traced_dispatch_emits_instants_and_queue_depth() {
        let tracer = Tracer::recording();
        let mut sim = EventSim::new();
        sim.set_tracer(tracer.clone());
        sim.schedule_labeled(Time::from_secs(1.0), "tick", |_| {});
        sim.schedule(Time::from_secs(2.0), |_| {});
        sim.run();
        let recs = tracer.records();
        let names: Vec<_> = recs
            .iter()
            .filter_map(|r| match r {
                pvc_obs::trace::Record::Instant { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["tick", "event.dispatch"]);
        let depths: Vec<f64> = recs
            .iter()
            .filter_map(|r| match r {
                pvc_obs::trace::Record::Sample { name, value, .. }
                    if name == "event_queue_depth" =>
                {
                    Some(*value)
                }
                _ => None,
            })
            .collect();
        assert_eq!(depths, vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn past_scheduling_panics() {
        let mut sim = EventSim::new();
        sim.schedule(Time::from_secs(5.0), |sim| {
            sim.schedule(Time::from_secs(1.0), |_| {});
        });
        sim.run();
    }
}

//! # pvc-simrt — discrete-event simulation runtime
//!
//! A small deterministic discrete-event simulation (DES) substrate used by
//! the Ponte Vecchio node-benchmarking reproduction. Two facilities are
//! provided:
//!
//! * [`EventSim`] — a classic event-queue simulator with a virtual clock
//!   and `FnOnce` event handlers, used for host/device overlap modelling.
//! * [`FlowNetwork`] — a fluid-flow network in which *flows* (bulk data
//!   transfers) traverse sets of capacity-limited *resources* (PCIe
//!   directions, root-complex pools, Xe-Link planes, …) and share
//!   bandwidth with **max–min fairness**. Contention effects such as the
//!   paper's 40% full-node PCIe scaling emerge from this model rather
//!   than from lookup tables.
//!
//! Time is modelled as `f64` seconds wrapped in [`Time`]; all event
//! ordering is deterministic (ties broken by insertion sequence).

pub mod event;
pub mod flow;
pub mod time;

pub use event::{EventId, EventSim};
pub use flow::{
    FlowError, FlowId, FlowNetwork, FlowSpec, FlowStats, RateSegment, ResourceId, TransferOutcome,
};
pub use time::Time;

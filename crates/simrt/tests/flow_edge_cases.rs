//! Edge-case tests for the fluid flow network: the degenerate corners a
//! randomized property sweep rarely lands on exactly — zero-latency
//! flows, single-resource saturation, simultaneous completion ties, and
//! malformed-input rejection.

use pvc_simrt::{FlowError, FlowNetwork, FlowSpec, ResourceId, Time};

fn spec(start: f64, bytes: f64, path: Vec<ResourceId>) -> FlowSpec {
    FlowSpec {
        start: Time::from_secs(start),
        bytes,
        path,
        latency: 0.0,
    }
}

/// A zero-latency flow begins exactly at its start time, and the
/// reported bandwidth equals bytes over the fluid-transfer window.
#[test]
fn zero_latency_flow_begins_at_start() {
    let mut net = FlowNetwork::new();
    let link = net.add_resource(200.0);
    let f = net.add_flow(spec(3.25, 100.0, vec![link]));
    let done = net.run();
    let out = done[&f];
    assert!((out.began.as_secs() - 3.25).abs() < 1e-12);
    assert!((out.finished.as_secs() - 3.75).abs() < 1e-9);
    assert!((out.bandwidth() - 200.0).abs() < 1e-9);
    assert!((out.duration_from(Time::from_secs(3.25)) - 0.5).abs() < 1e-9);
}

/// Many flows saturating one resource: aggregate bandwidth equals the
/// capacity exactly while all are active, and equal-size flows all
/// finish together at total/capacity.
#[test]
fn single_resource_saturation_is_work_conserving() {
    let mut net = FlowNetwork::new();
    let link = net.add_resource(64.0);
    let n = 16;
    let ids: Vec<_> = (0..n)
        .map(|_| net.add_flow(spec(0.0, 32.0, vec![link])))
        .collect();
    let done = net.run();
    let expect = (n as f64 * 32.0) / 64.0; // 8 s
    for id in &ids {
        assert!((done[id].finished.as_secs() - expect).abs() < 1e-9);
        // Per-flow fair share: capacity / n.
        assert!((done[id].bandwidth() - 64.0 / n as f64).abs() < 1e-9);
    }
}

/// Flows engineered to complete at the same instant all get the same
/// finish time, and the network keeps progressing past the tie (a
/// later-arriving flow still completes).
#[test]
fn simultaneous_completion_ties_resolve_cleanly() {
    let mut net = FlowNetwork::new();
    let l1 = net.add_resource(100.0);
    let l2 = net.add_resource(50.0);
    // a and b never share a resource; sized to tie at t = 2.
    let a = net.add_flow(spec(0.0, 200.0, vec![l1]));
    let b = net.add_flow(spec(0.0, 100.0, vec![l2]));
    // c arrives after the tie and must still run to completion.
    let c = net.add_flow(spec(2.0, 100.0, vec![l1]));
    let done = net.run();
    assert!((done[&a].finished.as_secs() - 2.0).abs() < 1e-9);
    assert!((done[&b].finished.as_secs() - 2.0).abs() < 1e-9);
    assert!((done[&c].finished.as_secs() - 3.0).abs() < 1e-9);
}

/// Two identical flows sharing a link tie exactly, and neither is
/// reported twice or dropped.
#[test]
fn identical_flows_tie_exactly() {
    let mut net = FlowNetwork::new();
    let link = net.add_resource(10.0);
    let a = net.add_flow(spec(0.0, 40.0, vec![link]));
    let b = net.add_flow(spec(0.0, 40.0, vec![link]));
    let done = net.run();
    assert_eq!(done.len(), 2);
    assert_eq!(
        done[&a].finished.as_secs().to_bits(),
        done[&b].finished.as_secs().to_bits(),
        "equal flows must tie bit-exactly"
    );
    assert!((done[&a].finished.as_secs() - 8.0).abs() < 1e-9);
}

/// Empty paths are rejected at submission time, not at run time, with
/// the precise [`FlowError`] variant rather than a free-form message.
#[test]
fn empty_path_rejected_at_add() {
    let mut net = FlowNetwork::new();
    let _ = net.add_resource(100.0);
    assert!(matches!(
        net.try_add_flow(spec(0.0, 1.0, vec![])),
        Err(FlowError::EmptyPath)
    ));
}

/// Non-positive byte counts are rejected, carrying the offending value.
#[test]
fn zero_bytes_rejected() {
    let mut net = FlowNetwork::new();
    let link = net.add_resource(100.0);
    assert!(matches!(
        net.try_add_flow(spec(0.0, 0.0, vec![link])),
        Err(FlowError::NonPositiveBytes(b)) if b == 0.0
    ));
    assert!(matches!(
        net.try_add_flow(spec(0.0, -3.0, vec![link])),
        Err(FlowError::NonPositiveBytes(b)) if b == -3.0
    ));
}

/// Negative latency is rejected, carrying the offending value.
#[test]
fn negative_latency_rejected() {
    let mut net = FlowNetwork::new();
    let link = net.add_resource(100.0);
    let err = net
        .try_add_flow(FlowSpec {
            start: Time::ZERO,
            bytes: 1.0,
            path: vec![link],
            latency: -0.1,
        })
        .unwrap_err();
    assert!(matches!(err, FlowError::NegativeLatency(l) if l == -0.1));
}

/// Unknown resource ids are rejected, naming the bad id.
#[test]
fn out_of_range_resource_rejected() {
    let mut net = FlowNetwork::new();
    let _ = net.add_resource(100.0);
    assert!(matches!(
        net.try_add_flow(spec(0.0, 1.0, vec![ResourceId(7)])),
        Err(FlowError::UnknownResource(ResourceId(7)))
    ));
}

/// Non-positive or non-finite capacities are rejected.
#[test]
fn bad_capacity_rejected() {
    let mut net = FlowNetwork::new();
    assert!(matches!(
        net.try_add_resource(0.0),
        Err(FlowError::NonPositiveCapacity(c)) if c == 0.0
    ));
    assert!(matches!(
        net.try_add_resource(f64::INFINITY),
        Err(FlowError::NonPositiveCapacity(c)) if c.is_infinite()
    ));
}

/// The panicking `add_flow` wrapper still fails loudly with the same
/// message text the error variant renders, so call sites that cannot
/// recover keep their crash semantics.
#[test]
#[should_panic(expected = "flow path must not be empty")]
fn panicking_wrapper_preserves_message() {
    let mut net = FlowNetwork::new();
    let _ = net.add_resource(100.0);
    net.add_flow(spec(0.0, 1.0, vec![]));
}

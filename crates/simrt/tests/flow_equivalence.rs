//! Equivalence suite for the incremental max–min solver: on any flow
//! set — staggered arrivals, latencies, disabled resources — the
//! incremental `run()` must reproduce the retained from-scratch
//! reference solver **bit for bit**, and do it in near-linear work,
//! pinned here via the solver's own counters rather than wall clock.

use pvc_core::check::{check, Gen};
use pvc_simrt::{FlowNetwork, FlowSpec, RateSegment, ResourceId, Time, TransferOutcome};
use std::collections::HashMap;

/// A random scenario: resource capacities, flows (bytes, path, start,
/// latency), and the indices of resources to disable before running.
#[derive(Debug, Clone)]
struct Scenario {
    caps: Vec<f64>,
    flows: Vec<(f64, Vec<usize>, f64, f64)>,
    disabled: Vec<usize>,
}

fn scenario(g: &mut Gen) -> Scenario {
    let caps = g.vec_f64(1..6, 1.0..1000.0);
    let n = caps.len();
    let nflows = g.usize_in(1..12);
    let flows = (0..nflows)
        .map(|_| {
            let bytes = g.f64_in(1.0..1e6);
            let path = g.subset(n, 1..n.min(3) + 1);
            let path = if path.is_empty() { vec![0] } else { path };
            let start = g.f64_in(0.0..10.0);
            let latency = if g.bool() { g.f64_in(0.0..2.0) } else { 0.0 };
            (bytes, path, start, latency)
        })
        .collect();
    // Half the cases inject failures: disable up to half the resources,
    // so some flows are blocked while their neighbours still run.
    let disabled = if g.bool() {
        g.subset(n, 0..n / 2 + 1)
    } else {
        Vec::new()
    };
    Scenario {
        caps,
        flows,
        disabled,
    }
}

fn build(s: &Scenario) -> FlowNetwork {
    let mut net = FlowNetwork::new();
    let rs: Vec<ResourceId> = s.caps.iter().map(|&c| net.add_resource(c)).collect();
    for (bytes, path, start, latency) in &s.flows {
        net.add_flow(FlowSpec {
            start: Time::from_secs(*start),
            bytes: *bytes,
            path: path.iter().map(|&i| rs[i]).collect(),
            latency: *latency,
        });
    }
    for &i in &s.disabled {
        net.disable_resource(rs[i]);
    }
    net
}

/// Bit-exact comparison of two outcome maps and two rate schedules.
/// Returns a description of the first divergence, if any.
fn diff(
    inc: &(HashMap<pvc_simrt::FlowId, TransferOutcome>, Vec<RateSegment>),
    refr: &(HashMap<pvc_simrt::FlowId, TransferOutcome>, Vec<RateSegment>),
) -> Result<(), String> {
    let (io, is) = inc;
    let (ro, rs) = refr;
    if io.len() != ro.len() {
        return Err(format!("outcome counts differ: {} vs {}", io.len(), ro.len()));
    }
    for (id, a) in io {
        let b = ro
            .get(id)
            .ok_or_else(|| format!("flow {id:?} finished incrementally but not in reference"))?;
        for (what, x, y) in [
            ("began", a.began.as_secs(), b.began.as_secs()),
            ("finished", a.finished.as_secs(), b.finished.as_secs()),
            ("bytes", a.bytes, b.bytes),
        ] {
            if x.to_bits() != y.to_bits() {
                return Err(format!("flow {id:?} {what}: {x:?} ({:#x}) vs {y:?} ({:#x})",
                    x.to_bits(), y.to_bits()));
            }
        }
    }
    if is.len() != rs.len() {
        return Err(format!("segment counts differ: {} vs {}", is.len(), rs.len()));
    }
    for (i, (a, b)) in is.iter().zip(rs.iter()).enumerate() {
        let same = a.flow == b.flow
            && a.from.as_secs().to_bits() == b.from.as_secs().to_bits()
            && a.to.as_secs().to_bits() == b.to.as_secs().to_bits()
            && a.rate.to_bits() == b.rate.to_bits();
        if !same {
            return Err(format!("segment {i} differs: {a:?} vs {b:?}"));
        }
    }
    Ok(())
}

/// The headline property: on random topologies, flow sets, arrival
/// times, latencies and disabled-resource subsets, the incremental
/// solver's outcomes AND rate schedule match the reference solver
/// bit for bit.
#[test]
fn incremental_matches_reference_bit_for_bit() {
    check("simrt::incremental_matches_reference_bit_for_bit", 128, |g| {
        let s = scenario(g);
        let inc = build(&s).run_traced();
        let refr = build(&s).run_reference_traced();
        diff(&inc, &refr).map_err(|e| format!("{e}\nscenario: {s:?}"))
    });
}

/// Disabled-resource edge case, pinned explicitly (not left to the
/// generator): a blocked flow is omitted from the outcomes of BOTH
/// solvers while an unblocked neighbour sharing no disabled resource
/// still finishes, identically.
#[test]
fn disabled_resource_blocks_exactly_the_crossing_flows() {
    let s = Scenario {
        caps: vec![100.0, 50.0],
        flows: vec![
            (1000.0, vec![0], 0.0, 0.0),    // healthy
            (1000.0, vec![1], 0.0, 0.5),    // blocked
            (1000.0, vec![0, 1], 1.0, 0.0), // blocked (path crosses r1)
        ],
        disabled: vec![1],
    };
    let (io, iseg) = build(&s).run_traced();
    let (ro, rseg) = build(&s).run_reference_traced();
    assert_eq!(io.len(), 1, "only the healthy flow finishes: {io:?}");
    let out = io.values().next().unwrap();
    assert_eq!(out.finished.as_secs().to_bits(), (10.0f64).to_bits());
    diff(&(io, iseg), &(ro, rseg)).unwrap();
}

/// All-blocked edge case: every resource disabled. Both solvers return
/// empty outcome maps and an empty schedule, and neither hangs.
#[test]
fn all_blocked_network_yields_no_outcomes() {
    let s = Scenario {
        caps: vec![10.0, 20.0, 30.0],
        flows: vec![
            (100.0, vec![0, 1], 0.0, 0.0),
            (100.0, vec![2], 3.0, 1.0),
        ],
        disabled: vec![0, 1, 2],
    };
    let (io, iseg) = build(&s).run_traced();
    let (ro, rseg) = build(&s).run_reference_traced();
    assert!(io.is_empty() && ro.is_empty(), "{io:?} / {ro:?}");
    assert!(iseg.is_empty() && rseg.is_empty());
}

/// Complexity pin for the arrival calendar + incremental re-solve: 10k
/// strictly sequential flows (each finishes before the next starts)
/// must cost O(F) solver work, asserted via the network's own counters
/// — NOT wall clock, so the test is robust on slow CI machines.
///
/// Before this rewrite the run loop re-scanned every unfinished flow
/// per segment (O(F²) ≈ 10⁸ visits here); the calendar admits each
/// flow once and the component re-solve only ever touches the one
/// active flow.
#[test]
fn ten_thousand_sequential_flows_do_linear_work() {
    const F: u64 = 10_000;
    let mut net = FlowNetwork::new();
    let r = net.add_resource(100.0);
    for i in 0..F {
        net.add_flow(FlowSpec {
            start: Time::from_secs(i as f64 * 2.0),
            bytes: 100.0, // one second each at cap; never overlaps
            path: vec![r],
            latency: 0.0,
        });
    }
    let done = net.run();
    assert_eq!(done.len(), F as usize);
    let st = net.stats();
    // Each flow contributes one rate segment (arrival → finish) plus at
    // most one idle-gap resegmentation; a small constant per flow, not
    // F per flow.
    assert!(
        st.segments <= 3 * F,
        "segments blew up: {} for {F} flows",
        st.segments
    );
    assert!(
        st.solves <= 3 * F,
        "solver invoked superlinearly: {} solves",
        st.solves
    );
    // The O(F²) failure mode: ~F/2 visits per segment. Linear work is
    // a small constant per flow.
    assert!(
        st.solver_flow_visits <= 20 * F,
        "solver visited {} flows total — quadratic rescan is back",
        st.solver_flow_visits
    );
    assert!(
        st.active_flow_visits <= 20 * F,
        "run loop visited {} active entries — quadratic rescan is back",
        st.active_flow_visits
    );
}

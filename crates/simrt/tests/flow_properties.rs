//! Property-based tests of the max–min fair flow network: the invariants
//! any fluid bandwidth-sharing model must satisfy, on randomly generated
//! topologies and flow sets. Runs on the deterministic
//! `pvc_core::check` harness.

use pvc_core::check::{check, Gen};
use pvc_core::ensure;
use pvc_simrt::{FlowNetwork, FlowSpec, ResourceId, Time};

/// A random scenario: `caps` resources, flows picking 1–3 resources each.
#[derive(Debug, Clone)]
struct Scenario {
    caps: Vec<f64>,
    flows: Vec<(f64, Vec<usize>, f64)>, // (bytes, path, start)
}

fn scenario(g: &mut Gen) -> Scenario {
    let caps = g.vec_f64(1..6, 1.0..1000.0);
    let n = caps.len();
    let nflows = g.usize_in(1..10);
    let flows = (0..nflows)
        .map(|_| {
            let bytes = g.f64_in(1.0..1e6);
            let path = g.subset(n, 1..n.min(3) + 1);
            let path = if path.is_empty() { vec![0] } else { path };
            let start = g.f64_in(0.0..10.0);
            (bytes, path, start)
        })
        .collect();
    Scenario { caps, flows }
}

fn build(s: &Scenario) -> (FlowNetwork, Vec<pvc_simrt::FlowId>) {
    let mut net = FlowNetwork::new();
    let rs: Vec<ResourceId> = s.caps.iter().map(|&c| net.add_resource(c)).collect();
    let ids = s
        .flows
        .iter()
        .map(|(bytes, path, start)| {
            net.add_flow(FlowSpec {
                start: Time::from_secs(*start),
                bytes: *bytes,
                path: path.iter().map(|&i| rs[i]).collect(),
                latency: 0.0,
            })
        })
        .collect();
    (net, ids)
}

/// Every flow finishes (no starvation under max–min fairness), and
/// no earlier than physics allows.
#[test]
fn all_flows_complete_and_respect_capacity() {
    check("simrt::all_flows_complete_and_respect_capacity", 64, |g| {
        let s = scenario(g);
        let (mut net, ids) = build(&s);
        let done = net.run();
        for (id, (bytes, path, start)) in ids.iter().zip(s.flows.iter()) {
            let out = done.get(id).ok_or("starved flow")?;
            // A flow can never beat its bottleneck running alone.
            let best_bw = path.iter().map(|&i| s.caps[i]).fold(f64::INFINITY, f64::min);
            let min_time = bytes / best_bw;
            let elapsed = out.finished.as_secs() - start;
            ensure!(
                elapsed >= min_time * (1.0 - 1e-9) - 1e-9,
                "flow finished faster than its bottleneck: {elapsed} < {min_time}"
            );
        }
        Ok(())
    });
}

/// Aggregate achieved bandwidth through any single shared resource
/// never exceeds its capacity (checked via the one-resource case
/// where the math is exact).
#[test]
fn single_resource_aggregate_is_exactly_capacity() {
    check(
        "simrt::single_resource_aggregate_is_exactly_capacity",
        64,
        |g| {
            let cap = g.f64_in(1.0..1000.0);
            let sizes = g.vec_f64(2..8, 1.0..1e5);
            let mut net = FlowNetwork::new();
            let r = net.add_resource(cap);
            let ids: Vec<_> = sizes
                .iter()
                .map(|&b| {
                    net.add_flow(FlowSpec {
                        start: Time::ZERO,
                        bytes: b,
                        path: vec![r],
                        latency: 0.0,
                    })
                })
                .collect();
            let done = net.run();
            // Work conservation: total bytes / makespan == capacity while
            // anything is running, so makespan == total/capacity.
            let total: f64 = sizes.iter().sum();
            let makespan = ids
                .iter()
                .map(|id| done[id].finished.as_secs())
                .fold(0.0f64, f64::max);
            ensure!((makespan - total / cap).abs() / (total / cap) < 1e-6);
            Ok(())
        },
    );
}

/// Adding a competing flow never helps an existing flow (bandwidth
/// monotonicity).
#[test]
fn competition_never_speeds_you_up() {
    check("simrt::competition_never_speeds_you_up", 64, |g| {
        let cap = g.f64_in(10.0..500.0);
        let mine = g.f64_in(100.0..1e5);
        let theirs = g.f64_in(100.0..1e5);
        let solo = {
            let mut net = FlowNetwork::new();
            let r = net.add_resource(cap);
            let id = net.add_flow(FlowSpec {
                start: Time::ZERO,
                bytes: mine,
                path: vec![r],
                latency: 0.0,
            });
            net.run()[&id].finished.as_secs()
        };
        let contested = {
            let mut net = FlowNetwork::new();
            let r = net.add_resource(cap);
            let id = net.add_flow(FlowSpec {
                start: Time::ZERO,
                bytes: mine,
                path: vec![r],
                latency: 0.0,
            });
            let _ = net.add_flow(FlowSpec {
                start: Time::ZERO,
                bytes: theirs,
                path: vec![r],
                latency: 0.0,
            });
            net.run()[&id].finished.as_secs()
        };
        ensure!(contested >= solo - 1e-9);
        Ok(())
    });
}

/// Doubling every capacity halves every completion time (scale
/// invariance).
#[test]
fn scale_invariance() {
    check("simrt::scale_invariance", 64, |g| {
        let s = scenario(g);
        let (mut net1, ids1) = build(&s);
        let done1 = net1.run();
        let mut s2 = s.clone();
        for c in &mut s2.caps {
            *c *= 2.0;
        }
        for f in &mut s2.flows {
            f.2 /= 2.0; // starts scale with time too
        }
        let (mut net2, ids2) = build(&s2);
        let done2 = net2.run();
        for (a, b) in ids1.iter().zip(ids2.iter()) {
            let t1 = done1[a].finished.as_secs();
            let t2 = done2[b].finished.as_secs();
            ensure!((t2 - t1 / 2.0).abs() < 1e-6 * t1.max(1.0), "{t1} vs {t2}");
        }
        Ok(())
    });
}

//! Property-based tests of the max–min fair flow network: the invariants
//! any fluid bandwidth-sharing model must satisfy, on randomly generated
//! topologies and flow sets.

use proptest::prelude::*;
use pvc_simrt::{FlowNetwork, FlowSpec, ResourceId, Time};

/// A random scenario: `caps` resources, flows picking 1–3 resources each.
#[derive(Debug, Clone)]
struct Scenario {
    caps: Vec<f64>,
    flows: Vec<(f64, Vec<usize>, f64)>, // (bytes, path, start)
}

fn scenario() -> impl Strategy<Value = Scenario> {
    let caps = prop::collection::vec(1.0f64..1000.0, 1..6);
    caps.prop_flat_map(|caps| {
        let n = caps.len();
        let flow = (
            1.0f64..1e6,
            prop::collection::btree_set(0..n, 1..=n.min(3)),
            0.0f64..10.0,
        )
            .prop_map(|(bytes, path, start)| (bytes, path.into_iter().collect::<Vec<_>>(), start));
        prop::collection::vec(flow, 1..10).prop_map(move |flows| Scenario {
            caps: caps.clone(),
            flows,
        })
    })
}

fn build(s: &Scenario) -> (FlowNetwork, Vec<pvc_simrt::FlowId>) {
    let mut net = FlowNetwork::new();
    let rs: Vec<ResourceId> = s.caps.iter().map(|&c| net.add_resource(c)).collect();
    let ids = s
        .flows
        .iter()
        .map(|(bytes, path, start)| {
            net.add_flow(FlowSpec {
                start: Time::from_secs(*start),
                bytes: *bytes,
                path: path.iter().map(|&i| rs[i]).collect(),
                latency: 0.0,
            })
        })
        .collect();
    (net, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every flow finishes (no starvation under max–min fairness), and
    /// no earlier than physics allows.
    #[test]
    fn all_flows_complete_and_respect_capacity(s in scenario()) {
        let (mut net, ids) = build(&s);
        let done = net.run();
        for (id, (bytes, path, start)) in ids.iter().zip(s.flows.iter()) {
            let out = done.get(id).expect("no starvation");
            // A flow can never beat its bottleneck running alone.
            let best_bw = path.iter().map(|&i| s.caps[i]).fold(f64::INFINITY, f64::min);
            let min_time = bytes / best_bw;
            let elapsed = out.finished.as_secs() - start;
            prop_assert!(
                elapsed >= min_time * (1.0 - 1e-9) - 1e-9,
                "flow finished faster than its bottleneck: {elapsed} < {min_time}"
            );
        }
    }

    /// Aggregate achieved bandwidth through any single shared resource
    /// never exceeds its capacity (checked via the one-resource case
    /// where the math is exact).
    #[test]
    fn single_resource_aggregate_is_exactly_capacity(
        cap in 1.0f64..1000.0,
        sizes in prop::collection::vec(1.0f64..1e5, 2..8)
    ) {
        let mut net = FlowNetwork::new();
        let r = net.add_resource(cap);
        let ids: Vec<_> = sizes
            .iter()
            .map(|&b| {
                net.add_flow(FlowSpec {
                    start: Time::ZERO,
                    bytes: b,
                    path: vec![r],
                    latency: 0.0,
                })
            })
            .collect();
        let done = net.run();
        // Work conservation: total bytes / makespan == capacity while
        // anything is running, so makespan == total/capacity.
        let total: f64 = sizes.iter().sum();
        let makespan = ids
            .iter()
            .map(|id| done[id].finished.as_secs())
            .fold(0.0f64, f64::max);
        prop_assert!((makespan - total / cap).abs() / (total / cap) < 1e-6);
    }

    /// Adding a competing flow never helps an existing flow (bandwidth
    /// monotonicity).
    #[test]
    fn competition_never_speeds_you_up(
        cap in 10.0f64..500.0,
        mine in 100.0f64..1e5,
        theirs in 100.0f64..1e5
    ) {
        let solo = {
            let mut net = FlowNetwork::new();
            let r = net.add_resource(cap);
            let id = net.add_flow(FlowSpec { start: Time::ZERO, bytes: mine, path: vec![r], latency: 0.0 });
            net.run()[&id].finished.as_secs()
        };
        let contested = {
            let mut net = FlowNetwork::new();
            let r = net.add_resource(cap);
            let id = net.add_flow(FlowSpec { start: Time::ZERO, bytes: mine, path: vec![r], latency: 0.0 });
            let _ = net.add_flow(FlowSpec { start: Time::ZERO, bytes: theirs, path: vec![r], latency: 0.0 });
            net.run()[&id].finished.as_secs()
        };
        prop_assert!(contested >= solo - 1e-9);
    }

    /// Doubling every capacity halves every completion time (scale
    /// invariance).
    #[test]
    fn scale_invariance(s in scenario()) {
        let (mut net1, ids1) = build(&s);
        let done1 = net1.run();
        let mut s2 = s.clone();
        for c in &mut s2.caps { *c *= 2.0; }
        for f in &mut s2.flows { f.2 /= 2.0; } // starts scale with time too
        let (mut net2, ids2) = build(&s2);
        let done2 = net2.run();
        for (a, b) in ids1.iter().zip(ids2.iter()) {
            let t1 = done1[a].finished.as_secs();
            let t2 = done2[b].finished.as_secs();
            prop_assert!((t2 - t1 / 2.0).abs() < 1e-6 * t1.max(1.0), "{t1} vs {t2}");
        }
    }
}

//! The golden conformance gate: every published value in the catalog
//! must be reproduced within its tolerance band, and the whole pipeline
//! must be bit-reproducible run-to-run.

use pvc_validate::{catalog, conformance};

/// The headline acceptance test: the full catalog is conformant. On
/// failure the panic message carries every offending citation so the
/// report reads like an erratum, not a stack trace.
#[test]
fn every_published_value_is_reproduced_within_tolerance() {
    let report = conformance::run();
    assert!(report.total() >= 25, "catalog shrank below the floor");
    let failures: Vec<String> = report
        .failures()
        .iter()
        .map(|c| {
            format!(
                "{}: published {:.4e}, simulated {:.4e} ({:.2}% > {:.2}%)",
                c.source,
                c.published,
                c.simulated,
                c.rel_err() * 100.0,
                c.rel_tol * 100.0
            )
        })
        .collect();
    assert!(
        report.pass(),
        "{} of {} conformance checks failed:\n{}",
        failures.len(),
        report.total(),
        failures.join("\n")
    );
}

/// Two independent end-to-end invocations render byte-identical
/// markdown and JSON — the determinism contract of the hermetic
/// substrate (no wall clock, no ambient randomness anywhere in the
/// producer pipeline).
#[test]
fn conformance_report_is_byte_reproducible() {
    let a = conformance::run();
    let b = conformance::run();
    assert_eq!(a.markdown(), b.markdown(), "markdown differs run-to-run");
    assert_eq!(a.json(), b.json(), "JSON differs run-to-run");
    // Bit-level, not just display-level: every simulated f64 matches.
    for (ea, eb) in a.elements.iter().zip(&b.elements) {
        for (ca, cb) in ea.checks.iter().zip(&eb.checks) {
            assert_eq!(
                ca.simulated.to_bits(),
                cb.simulated.to_bits(),
                "{} is not bit-reproducible",
                ca.id
            );
        }
    }
}

/// The renderings carry the per-element verdicts and each citation.
#[test]
fn renderings_carry_citations_and_verdicts() {
    let report = conformance::run();
    let md = report.markdown();
    for element in ["Table II", "Table III", "Table VI", "Figure 2"] {
        assert!(md.contains(&format!("## {element}")), "missing {element}");
    }
    assert!(md.contains("CONFORMANT"));
    let js = report.json();
    for exp in catalog() {
        assert!(js.contains(exp.id), "JSON missing check {}", exp.id);
    }
}

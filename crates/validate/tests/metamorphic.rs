//! Randomized sweep of the cross-layer metamorphic relations, on the
//! deterministic `pvc_core::check` harness.

use pvc_arch::System;
use pvc_core::check::check;
use pvc_validate::metamorphic::{
    bandwidth_monotone_in_message_size, benchmarks_respect_rooflines, flow_conserves_bytes,
    power_stays_under_cap, scaling_is_monotone_and_subperfect, FlowReq,
};

const SYSTEMS: [System; 4] = [
    System::Aurora,
    System::Dawn,
    System::JlseH100,
    System::JlseMi250,
];

/// Random topologies, random flows: bytes are always conserved and
/// capacities never exceeded.
#[test]
fn flow_conservation_over_random_networks() {
    check("validate::flow_conservation", 64, |g| {
        let caps = g.vec_f64(1..6, 1.0..1000.0);
        let n_flows = g.usize_in(1..9);
        let flows: Vec<FlowReq> = (0..n_flows)
            .map(|_| FlowReq {
                bytes: g.f64_in(1.0..1e6),
                path: g.subset(caps.len(), 1..caps.len().min(3) + 1),
                start: g.f64_in(0.0..10.0),
            })
            .collect();
        flow_conserves_bytes(&caps, &flows)
    });
}

/// Amortizing a fixed latency: effective bandwidth never falls as the
/// message grows, and never beats the link.
#[test]
fn bandwidth_monotone_in_size_over_random_links() {
    check("validate::bandwidth_monotone_in_size", 64, |g| {
        let capacity = g.f64_in(1.0..1e12);
        let latency = g.f64_in(0.0..1e-3);
        let small = g.f64_in(1.0..1e6);
        let large = small * g.f64_in(1.0..1e4);
        bandwidth_monotone_in_message_size(capacity, latency, small, large)
    });
}

/// Monotone, sub-perfect scaling on every system.
#[test]
fn scaling_monotonicity_on_every_system() {
    check("validate::scaling_monotonicity", 8, |g| {
        scaling_is_monotone_and_subperfect(*g.choose(&SYSTEMS))
    });
}

/// No benchmark beats its roofline on any system.
#[test]
fn rooflines_on_every_system() {
    check("validate::rooflines", 8, |g| {
        benchmarks_respect_rooflines(*g.choose(&SYSTEMS))
    });
}

/// The governed power model never exceeds the §III caps.
#[test]
fn power_caps_on_every_system() {
    check("validate::power_caps", 8, |g| {
        power_stays_under_cap(*g.choose(&SYSTEMS))
    });
}

//! # pvc-validate — paper conformance and metamorphic validation
//!
//! The repo's answer to "does the simulation still reproduce the
//! paper?", in three layers:
//!
//! * [`expectations`] — the golden catalog: every published value we
//!   pin, as a typed [`expectations::Expectation`] with the printed
//!   number, a tolerance band, and a citation
//!   (`"Table II row 3, Aurora 6 PVC"`). Grid expectations bind to a
//!   `pvc_scenario::ScenarioId` and recompute through the scenario
//!   registry, so [`expectations::uncovered_scenarios`] can flag
//!   registered pairs with no published pin.
//! * [`conformance`] — the runner: recomputes each expectation from
//!   `pvc-microbench` / `pvc-miniapps` / `pvc-predict` and groups
//!   pass/fail per paper element. [`conformance::run`] returns the
//!   report; `markdown()` / `json()` render it (the markdown feeds
//!   `pvc-report`).
//! * [`metamorphic`] — cross-layer relations that must hold for *any*
//!   parameter values: flow conservation in the fluid network,
//!   bandwidth monotonicity across scaling levels, roofline bounds on
//!   every library benchmark, and governor/TDP power caps.
//!
//! Everything here is hermetic and deterministic: no registry crates,
//! no wall clock, no ambient randomness — two invocations produce
//! byte-identical reports (pinned by a test in `tests/golden.rs`).

pub mod conformance;
pub mod expectations;
pub mod metamorphic;

pub use conformance::{run, Conformance, ConformanceReport, ElementReport};
pub use expectations::{catalog, uncovered_scenarios, Expectation};

//! The golden expectation catalog: published paper values, each typed
//! with a tolerance band, a citation, and a producer closure that
//! recomputes the matching quantity from the simulation crates.
//!
//! Every record cites exactly where in the paper the number is printed
//! (`source`), so a conformance failure reads as "Table II row 3,
//! Aurora full node is off by 9%" rather than an anonymous assert.
//! Values are stored in SI units (flop/s, bytes/s) or the FOM's native
//! unit for Table VI.

use pvc_arch::{Precision, System};
use pvc_engine::fft_model::FftDim;
use pvc_microbench::{fftbench, gemmbench, membw, p2p, pcie, peakflops};
use pvc_microbench::{p2p::PairKind, pcie::PcieMode};
use pvc_miniapps::ScaleLevel;
use pvc_predict::{figure2, fom, AppKind};

/// One published value with its provenance and tolerance band.
#[derive(Debug, Clone, Copy)]
pub struct Expectation {
    /// Stable machine-readable key (`t2_fp64_aurora_stack`, …).
    pub id: &'static str,
    /// Paper element the value belongs to — the grouping key of the
    /// conformance report ("Table II", "Table III", "Table VI", …).
    pub element: &'static str,
    /// Citation of the printed number, row and column included.
    pub source: &'static str,
    /// The published value (SI units; FOM units for Table VI).
    pub value: f64,
    /// Allowed relative error `|sim - value| / |value|`.
    pub rel_tol: f64,
    /// Recomputes the quantity from the simulation crates.
    pub produce: fn() -> f64,
}

/// Default tolerance band: the paper prints two significant figures for
/// most cells, so 5% covers print rounding plus model error.
pub const DEFAULT_TOL: f64 = 0.05;

macro_rules! expect {
    ($id:ident, $element:expr, $source:expr, $value:expr, $tol:expr, $body:expr) => {{
        fn $id() -> f64 {
            $body
        }
        Expectation {
            id: stringify!($id),
            element: $element,
            source: $source,
            value: $value,
            rel_tol: $tol,
            produce: $id,
        }
    }};
}

/// The full catalog: ≥25 published values spanning Tables II, III and
/// VI plus the §II machine facts and the §V-A expected-ratio quote.
pub fn catalog() -> Vec<Expectation> {
    use System::{Aurora, Dawn, JlseH100};
    vec![
        // ---- Table II: microbenchmark rates ------------------------------
        expect!(
            t2_fp64_aurora_stack,
            "Table II",
            "Table II row 1 (Double Precision Peak Flops), Aurora 1 Stack: 17 TFlop/s",
            17e12,
            DEFAULT_TOL,
            peakflops::run(Aurora, Precision::Fp64).rates.one_stack
        ),
        expect!(
            t2_fp64_aurora_node,
            "Table II",
            "Table II row 1 (Double Precision Peak Flops), Aurora 6 PVC: 195 TFlop/s",
            195e12,
            DEFAULT_TOL,
            peakflops::run(Aurora, Precision::Fp64).rates.full_node
        ),
        expect!(
            t2_fp64_dawn_stack,
            "Table II",
            "Table II row 1 (Double Precision Peak Flops), Dawn 1 Stack: 20 TFlop/s",
            20e12,
            DEFAULT_TOL,
            peakflops::run(Dawn, Precision::Fp64).rates.one_stack
        ),
        expect!(
            t2_fp32_aurora_stack,
            "Table II",
            "Table II row 2 (Single Precision Peak Flops), Aurora 1 Stack: 23 TFlop/s",
            23e12,
            DEFAULT_TOL,
            peakflops::run(Aurora, Precision::Fp32).rates.one_stack
        ),
        expect!(
            t2_fp32_dawn_node,
            "Table II",
            "Table II row 2 (Single Precision Peak Flops), Dawn 4 PVC: 207 TFlop/s",
            207e12,
            DEFAULT_TOL,
            peakflops::run(Dawn, Precision::Fp32).rates.full_node
        ),
        expect!(
            t2_triad_aurora_node,
            "Table II",
            "Table II row 3 (Memory Bandwidth, triad), Aurora 6 PVC: 12 TB/s",
            12e12,
            DEFAULT_TOL,
            membw::run(Aurora).bandwidth.full_node
        ),
        expect!(
            t2_triad_dawn_node,
            "Table II",
            "Table II row 3 (Memory Bandwidth, triad), Dawn 4 PVC: 8 TB/s",
            8e12,
            DEFAULT_TOL,
            membw::run(Dawn).bandwidth.full_node
        ),
        expect!(
            t2_pcie_h2d_aurora_stack,
            "Table II",
            "Table II row 4 (PCIe Unidirectional H2D), Aurora 1 Stack: 54 GB/s",
            54e9,
            DEFAULT_TOL,
            pcie::run(Aurora, PcieMode::H2d).bandwidth.one_stack
        ),
        expect!(
            t2_pcie_h2d_aurora_node,
            "Table II",
            "Table II row 4 (PCIe Unidirectional H2D), Aurora 6 PVC: 329 GB/s",
            329e9,
            DEFAULT_TOL,
            pcie::run(Aurora, PcieMode::H2d).bandwidth.full_node
        ),
        expect!(
            t2_pcie_d2h_dawn_stack,
            "Table II",
            "Table II row 5 (PCIe Unidirectional D2H), Dawn 1 Stack: 51 GB/s",
            51e9,
            DEFAULT_TOL,
            pcie::run(Dawn, PcieMode::D2h).bandwidth.one_stack
        ),
        expect!(
            t2_pcie_bidi_aurora_stack,
            "Table II",
            "Table II row 6 (PCIe Bidirectional), Aurora 1 Stack: 76 GB/s",
            76e9,
            DEFAULT_TOL,
            pcie::run(Aurora, PcieMode::Bidirectional).bandwidth.one_stack
        ),
        expect!(
            t2_pcie_bidi_dawn_node,
            "Table II",
            "Table II row 6 (PCIe Bidirectional), Dawn 4 PVC: 285 GB/s",
            285e9,
            DEFAULT_TOL,
            pcie::run(Dawn, PcieMode::Bidirectional).bandwidth.full_node
        ),
        expect!(
            t2_dgemm_aurora_stack,
            "Table II",
            "Table II row 7 (DGEMM), Aurora 1 Stack: 13 TFlop/s",
            13e12,
            DEFAULT_TOL,
            gemmbench::run(Aurora, Precision::Fp64).rates.one_stack
        ),
        expect!(
            t2_dgemm_dawn_node,
            "Table II",
            "Table II row 7 (DGEMM), Dawn 4 PVC: 120 TFlop/s",
            120e12,
            DEFAULT_TOL,
            gemmbench::run(Dawn, Precision::Fp64).rates.full_node
        ),
        expect!(
            t2_sgemm_aurora_node,
            "Table II",
            "Table II row 8 (SGEMM), Aurora 6 PVC: 242 TFlop/s",
            242e12,
            DEFAULT_TOL,
            gemmbench::run(Aurora, Precision::Fp32).rates.full_node
        ),
        expect!(
            t2_i8gemm_aurora_stack,
            "Table II",
            "Table II row 12 (I8GEMM), Aurora 1 Stack: 448 TIop/s",
            448e12,
            DEFAULT_TOL,
            gemmbench::run(Aurora, Precision::Int8).rates.one_stack
        ),
        expect!(
            t2_fft1d_aurora_stack,
            "Table II",
            "Table II row 13 (FFT C2C 1D), Aurora 1 Stack: 3.1 TFlop/s",
            3.1e12,
            DEFAULT_TOL,
            fftbench::run(Aurora, FftDim::OneD).rates.one_stack
        ),
        expect!(
            t2_fft2d_dawn_stack,
            "Table II",
            "Table II row 14 (FFT C2C 2D), Dawn 1 Stack: 3.6 TFlop/s",
            3.6e12,
            DEFAULT_TOL,
            fftbench::run(Dawn, FftDim::TwoD).rates.one_stack
        ),
        // ---- Table III: point-to-point fabric bandwidths -----------------
        expect!(
            t3_local_uni_aurora_pair,
            "Table III",
            "Table III row 1 (Local Stack Unidirectional), Aurora 1 pair: 197 GB/s",
            197e9,
            DEFAULT_TOL,
            p2p::run(Aurora, PairKind::LocalStack).one_pair_uni
        ),
        expect!(
            t3_local_bidi_aurora_all,
            "Table III",
            "Table III row 2 (Local Stack Bidirectional), Aurora 6 pairs: 1661 GB/s",
            1661e9,
            DEFAULT_TOL,
            p2p::run(Aurora, PairKind::LocalStack).all_pairs_bidi
        ),
        expect!(
            t3_local_uni_dawn_pair,
            "Table III",
            "Table III row 1 (Local Stack Unidirectional), Dawn 1 pair: 196 GB/s",
            196e9,
            DEFAULT_TOL,
            p2p::run(Dawn, PairKind::LocalStack).one_pair_uni
        ),
        expect!(
            t3_remote_uni_aurora_pair,
            "Table III",
            "Table III row 3 (Remote Stack Unidirectional), Aurora 1 pair: 15 GB/s",
            15e9,
            DEFAULT_TOL,
            p2p::run(Aurora, PairKind::RemoteStack).one_pair_uni
        ),
        expect!(
            t3_remote_bidi_aurora_all,
            "Table III",
            "Table III row 4 (Remote Stack Bidirectional), Aurora 6 pairs: 142 GB/s",
            142e9,
            DEFAULT_TOL,
            p2p::run(Aurora, PairKind::RemoteStack).all_pairs_bidi
        ),
        // ---- Table VI: mini-app figures of merit -------------------------
        expect!(
            t6_minibude_aurora_stack,
            "Table VI",
            "Table VI row 1 (miniBUDE), Aurora One Stack: 293.02",
            293.02,
            DEFAULT_TOL,
            fom(AppKind::MiniBude, Aurora, ScaleLevel::OneStack).unwrap()
        ),
        expect!(
            t6_cloverleaf_dawn_stack,
            "Table VI",
            "Table VI row 2 (CloverLeaf), Dawn One Stack: 22.46",
            22.46,
            DEFAULT_TOL,
            fom(AppKind::CloverLeaf, Dawn, ScaleLevel::OneStack).unwrap()
        ),
        expect!(
            t6_cloverleaf_h100_gpu,
            "Table VI",
            "Table VI row 2 (CloverLeaf), H100 One GPU: 65.87",
            65.87,
            DEFAULT_TOL,
            fom(AppKind::CloverLeaf, JlseH100, ScaleLevel::OneGpu).unwrap()
        ),
        expect!(
            t6_miniqmc_aurora_node,
            "Table VI",
            "Table VI row 3 (miniQMC), Aurora node: 15.64",
            15.64,
            DEFAULT_TOL,
            fom(AppKind::MiniQmc, Aurora, ScaleLevel::FullNode).unwrap()
        ),
        expect!(
            t6_minigamess_dawn_stack,
            "Table VI",
            "Table VI row 4 (mini-GAMESS), Dawn One Stack: 24.57",
            24.57,
            DEFAULT_TOL,
            fom(AppKind::MiniGamess, Dawn, ScaleLevel::OneStack).unwrap()
        ),
        expect!(
            t6_openmc_h100_node,
            "Table VI",
            "Table VI row 5 (OpenMC), H100 node: 1191.0",
            1191.0,
            DEFAULT_TOL,
            fom(AppKind::OpenMc, JlseH100, ScaleLevel::FullNode).unwrap()
        ),
        expect!(
            t6_hacc_aurora_node,
            "Table VI",
            "Table VI row 6 (HACC), Aurora node: 13.81",
            13.81,
            DEFAULT_TOL,
            fom(AppKind::Hacc, Aurora, ScaleLevel::FullNode).unwrap()
        ),
        // ---- Machine facts and figure quotes -----------------------------
        expect!(
            sec2_aurora_partitions,
            "Section II",
            "\u{a7}II-A: an Aurora node has 6 PVC cards \u{d7} 2 stacks = 12 partitions",
            12.0,
            1e-12,
            System::Aurora.node().partitions() as f64
        ),
        expect!(
            sec2_dawn_partitions,
            "Section II",
            "\u{a7}II-B: a Dawn node has 4 PVC cards \u{d7} 2 stacks = 8 partitions",
            8.0,
            1e-12,
            System::Dawn.node().partitions() as f64
        ),
        expect!(
            sec3_aurora_power_cap,
            "Section III",
            "\u{a7}III: each Aurora PVC card is power-capped to 500 W",
            500.0,
            1e-12,
            System::Aurora.node().gpu_power_cap_w
        ),
        expect!(
            fig2_minibude_expected_ratio,
            "Figure 2",
            "\u{a7}V-A: miniBUDE expected Aurora/Dawn ratio 0.88\u{d7} (23 / 26 TFlop/s)",
            0.88,
            0.02,
            figure2()
                .into_iter()
                .find(|b| {
                    b.app == AppKind::MiniBude && b.level == ScaleLevel::OneStack
                })
                .and_then(|b| b.expected)
                .unwrap()
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_meets_the_size_floor() {
        assert!(catalog().len() >= 25, "ISSUE requires >=25 expectations");
    }

    #[test]
    fn ids_are_unique_and_sources_cite_rows() {
        let cat = catalog();
        let mut ids: Vec<&str> = cat.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cat.len(), "duplicate expectation id");
        for e in &cat {
            assert!(
                e.source.contains("row") || e.source.contains('\u{a7}'),
                "{}: source must cite a row or section, got {:?}",
                e.id,
                e.source
            );
            assert!(e.rel_tol >= 0.0 && e.value.is_finite());
        }
    }
}

//! The golden expectation catalog: published paper values, each typed
//! with a tolerance band, a citation, and a producer closure that
//! recomputes the matching quantity from the simulation crates.
//!
//! Every record cites exactly where in the paper the number is printed
//! (`source`), so a conformance failure reads as "Table II row 3,
//! Aurora full node is off by 9%" rather than an anonymous assert.
//! Values are stored in SI units (flop/s, bytes/s) or the FOM's native
//! unit for Table VI.
//!
//! Grid quantities additionally bind to a typed
//! [`pvc_scenario::ScenarioId`] and recompute through the scenario
//! [`Registry`] — the same dispatch path the tables, profiles and the
//! serve executor use — so [`uncovered_scenarios`] can report which
//! registered pairs carry no published pin.

use pvc_arch::System;
use pvc_predict::figure2;
use pvc_scenario::{Params, Registry, ScenarioId, Workload};
use std::collections::BTreeSet;
use std::sync::OnceLock;

/// One published value with its provenance and tolerance band.
#[derive(Debug, Clone, Copy)]
pub struct Expectation {
    /// Stable machine-readable key (`t2_fp64_aurora_stack`, …).
    pub id: &'static str,
    /// Paper element the value belongs to — the grouping key of the
    /// conformance report ("Table II", "Table III", "Table VI", …).
    pub element: &'static str,
    /// Citation of the printed number, row and column included.
    pub source: &'static str,
    /// The published value (SI units; FOM units for Table VI).
    pub value: f64,
    /// Allowed relative error `|sim - value| / |value|`.
    pub rel_tol: f64,
    /// The scenario this pin exercises (`None` for machine facts that
    /// are not workload runs, e.g. partition counts).
    pub scenario: Option<ScenarioId>,
    /// Recomputes the quantity from the simulation crates.
    pub produce: fn() -> f64,
}

/// Default tolerance band: the paper prints two significant figures for
/// most cells, so 5% covers print rounding plus model error.
pub const DEFAULT_TOL: f64 = 0.05;

/// The standard scenario grid every grid expectation recomputes through.
fn reg() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(Registry::standard)
}

/// Resolves a slug to its registered [`ScenarioId`] — panicking here
/// means the catalog pins an orphan scenario, which the completeness
/// tests treat as a bug.
fn sid(slug: &str, system: System) -> Option<ScenarioId> {
    Some(
        reg()
            .get(slug, system)
            .unwrap_or_else(|e| panic!("expectation binds an orphan scenario: {e}"))
            .id(),
    )
}

/// Runs a registered scenario and reads one detail key.
fn grid(slug: &str, system: System, key: &str) -> f64 {
    let out = reg()
        .run(slug, system)
        .unwrap_or_else(|e| panic!("expectation scenario {slug}: {e}"));
    out.detail(key)
        .unwrap_or_else(|| panic!("{slug}@{system:?} outcome lacks detail '{key}'"))
}

macro_rules! expect {
    ($id:ident, $element:expr, $source:expr, $value:expr, $tol:expr, $scenario:expr, $body:expr) => {{
        fn $id() -> f64 {
            $body
        }
        Expectation {
            id: stringify!($id),
            element: $element,
            source: $source,
            value: $value,
            rel_tol: $tol,
            scenario: $scenario,
            produce: $id,
        }
    }};
}

/// The full catalog: ≥25 published values spanning Tables II, III and
/// VI plus the §II machine facts and the §V-A expected-ratio quote.
pub fn catalog() -> Vec<Expectation> {
    use System::{Aurora, Dawn, JlseH100};
    vec![
        // ---- Table II: microbenchmark rates ------------------------------
        expect!(
            t2_fp64_aurora_stack,
            "Table II",
            "Table II row 1 (Double Precision Peak Flops), Aurora 1 Stack: 17 TFlop/s",
            17e12,
            DEFAULT_TOL,
            sid("peakflops-fp64", Aurora),
            grid("peakflops-fp64", System::Aurora, "one_stack")
        ),
        expect!(
            t2_fp64_aurora_node,
            "Table II",
            "Table II row 1 (Double Precision Peak Flops), Aurora 6 PVC: 195 TFlop/s",
            195e12,
            DEFAULT_TOL,
            sid("peakflops-fp64", Aurora),
            grid("peakflops-fp64", System::Aurora, "full_node")
        ),
        expect!(
            t2_fp64_dawn_stack,
            "Table II",
            "Table II row 1 (Double Precision Peak Flops), Dawn 1 Stack: 20 TFlop/s",
            20e12,
            DEFAULT_TOL,
            sid("peakflops-fp64", Dawn),
            grid("peakflops-fp64", System::Dawn, "one_stack")
        ),
        expect!(
            t2_fp32_aurora_stack,
            "Table II",
            "Table II row 2 (Single Precision Peak Flops), Aurora 1 Stack: 23 TFlop/s",
            23e12,
            DEFAULT_TOL,
            sid("peakflops-fp32", Aurora),
            grid("peakflops-fp32", System::Aurora, "one_stack")
        ),
        expect!(
            t2_fp32_dawn_node,
            "Table II",
            "Table II row 2 (Single Precision Peak Flops), Dawn 4 PVC: 207 TFlop/s",
            207e12,
            DEFAULT_TOL,
            sid("peakflops-fp32", Dawn),
            grid("peakflops-fp32", System::Dawn, "full_node")
        ),
        expect!(
            t2_triad_aurora_node,
            "Table II",
            "Table II row 3 (Memory Bandwidth, triad), Aurora 6 PVC: 12 TB/s",
            12e12,
            DEFAULT_TOL,
            sid("stream-triad", Aurora),
            grid("stream-triad", System::Aurora, "full_node")
        ),
        expect!(
            t2_triad_dawn_node,
            "Table II",
            "Table II row 3 (Memory Bandwidth, triad), Dawn 4 PVC: 8 TB/s",
            8e12,
            DEFAULT_TOL,
            sid("stream-triad", Dawn),
            grid("stream-triad", System::Dawn, "full_node")
        ),
        expect!(
            t2_pcie_h2d_aurora_stack,
            "Table II",
            "Table II row 4 (PCIe Unidirectional H2D), Aurora 1 Stack: 54 GB/s",
            54e9,
            DEFAULT_TOL,
            sid("pcie-h2d", Aurora),
            grid("pcie-h2d", System::Aurora, "one_stack")
        ),
        expect!(
            t2_pcie_h2d_aurora_node,
            "Table II",
            "Table II row 4 (PCIe Unidirectional H2D), Aurora 6 PVC: 329 GB/s",
            329e9,
            DEFAULT_TOL,
            sid("pcie-h2d", Aurora),
            grid("pcie-h2d", System::Aurora, "full_node")
        ),
        expect!(
            t2_pcie_d2h_dawn_stack,
            "Table II",
            "Table II row 5 (PCIe Unidirectional D2H), Dawn 1 Stack: 51 GB/s",
            51e9,
            DEFAULT_TOL,
            sid("pcie-d2h", Dawn),
            grid("pcie-d2h", System::Dawn, "one_stack")
        ),
        expect!(
            t2_pcie_bidi_aurora_stack,
            "Table II",
            "Table II row 6 (PCIe Bidirectional), Aurora 1 Stack: 76 GB/s",
            76e9,
            DEFAULT_TOL,
            sid("pcie-bidir", Aurora),
            grid("pcie-bidir", System::Aurora, "one_stack")
        ),
        expect!(
            t2_pcie_bidi_dawn_node,
            "Table II",
            "Table II row 6 (PCIe Bidirectional), Dawn 4 PVC: 285 GB/s",
            285e9,
            DEFAULT_TOL,
            sid("pcie-bidir", Dawn),
            grid("pcie-bidir", System::Dawn, "full_node")
        ),
        expect!(
            t2_dgemm_aurora_stack,
            "Table II",
            "Table II row 7 (DGEMM), Aurora 1 Stack: 13 TFlop/s",
            13e12,
            DEFAULT_TOL,
            sid("gemm-fp64", Aurora),
            grid("gemm-fp64", System::Aurora, "one_stack")
        ),
        expect!(
            t2_dgemm_dawn_node,
            "Table II",
            "Table II row 7 (DGEMM), Dawn 4 PVC: 120 TFlop/s",
            120e12,
            DEFAULT_TOL,
            sid("gemm-fp64", Dawn),
            grid("gemm-fp64", System::Dawn, "full_node")
        ),
        expect!(
            t2_sgemm_aurora_node,
            "Table II",
            "Table II row 8 (SGEMM), Aurora 6 PVC: 242 TFlop/s",
            242e12,
            DEFAULT_TOL,
            sid("gemm-fp32", Aurora),
            grid("gemm-fp32", System::Aurora, "full_node")
        ),
        expect!(
            t2_i8gemm_aurora_stack,
            "Table II",
            "Table II row 12 (I8GEMM), Aurora 1 Stack: 448 TIop/s",
            448e12,
            DEFAULT_TOL,
            sid("gemm-int8", Aurora),
            grid("gemm-int8", System::Aurora, "one_stack")
        ),
        expect!(
            t2_fft1d_aurora_stack,
            "Table II",
            "Table II row 13 (FFT C2C 1D), Aurora 1 Stack: 3.1 TFlop/s",
            3.1e12,
            DEFAULT_TOL,
            sid("fft-1d", Aurora),
            grid("fft-1d", System::Aurora, "one_stack")
        ),
        expect!(
            t2_fft2d_dawn_stack,
            "Table II",
            "Table II row 14 (FFT C2C 2D), Dawn 1 Stack: 3.6 TFlop/s",
            3.6e12,
            DEFAULT_TOL,
            sid("fft-2d", Dawn),
            grid("fft-2d", System::Dawn, "one_stack")
        ),
        // ---- Table III: point-to-point fabric bandwidths -----------------
        expect!(
            t3_local_uni_aurora_pair,
            "Table III",
            "Table III row 1 (Local Stack Unidirectional), Aurora 1 pair: 197 GB/s",
            197e9,
            DEFAULT_TOL,
            sid("p2p-local", Aurora),
            grid("p2p-local", System::Aurora, "one_pair_uni")
        ),
        expect!(
            t3_local_bidi_aurora_all,
            "Table III",
            "Table III row 2 (Local Stack Bidirectional), Aurora 6 pairs: 1661 GB/s",
            1661e9,
            DEFAULT_TOL,
            sid("p2p-local", Aurora),
            grid("p2p-local", System::Aurora, "all_pairs_bidi")
        ),
        expect!(
            t3_local_uni_dawn_pair,
            "Table III",
            "Table III row 1 (Local Stack Unidirectional), Dawn 1 pair: 196 GB/s",
            196e9,
            DEFAULT_TOL,
            sid("p2p-local", Dawn),
            grid("p2p-local", System::Dawn, "one_pair_uni")
        ),
        expect!(
            t3_remote_uni_aurora_pair,
            "Table III",
            "Table III row 3 (Remote Stack Unidirectional), Aurora 1 pair: 15 GB/s",
            15e9,
            DEFAULT_TOL,
            sid("p2p-remote", Aurora),
            grid("p2p-remote", System::Aurora, "one_pair_uni")
        ),
        expect!(
            t3_remote_bidi_aurora_all,
            "Table III",
            "Table III row 4 (Remote Stack Bidirectional), Aurora 6 pairs: 142 GB/s",
            142e9,
            DEFAULT_TOL,
            sid("p2p-remote", Aurora),
            grid("p2p-remote", System::Aurora, "all_pairs_bidi")
        ),
        // ---- Table VI: mini-app figures of merit -------------------------
        expect!(
            t6_minibude_aurora_stack,
            "Table VI",
            "Table VI row 1 (miniBUDE), Aurora One Stack: 293.02",
            293.02,
            DEFAULT_TOL,
            sid("minibude", Aurora),
            grid("minibude", System::Aurora, "stack")
        ),
        expect!(
            t6_cloverleaf_dawn_stack,
            "Table VI",
            "Table VI row 2 (CloverLeaf), Dawn One Stack: 22.46",
            22.46,
            DEFAULT_TOL,
            sid("cloverleaf", Dawn),
            grid("cloverleaf", System::Dawn, "stack")
        ),
        expect!(
            t6_cloverleaf_h100_gpu,
            "Table VI",
            "Table VI row 2 (CloverLeaf), H100 One GPU: 65.87",
            65.87,
            DEFAULT_TOL,
            sid("cloverleaf", JlseH100),
            grid("cloverleaf", System::JlseH100, "gpu")
        ),
        expect!(
            t6_miniqmc_aurora_node,
            "Table VI",
            "Table VI row 3 (miniQMC), Aurora node: 15.64",
            15.64,
            DEFAULT_TOL,
            sid("miniqmc", Aurora),
            grid("miniqmc", System::Aurora, "node")
        ),
        expect!(
            t6_minigamess_dawn_stack,
            "Table VI",
            "Table VI row 4 (mini-GAMESS), Dawn One Stack: 24.57",
            24.57,
            DEFAULT_TOL,
            sid("minigamess", Dawn),
            grid("minigamess", System::Dawn, "stack")
        ),
        expect!(
            t6_openmc_h100_node,
            "Table VI",
            "Table VI row 5 (OpenMC), H100 node: 1191.0",
            1191.0,
            DEFAULT_TOL,
            sid("openmc", JlseH100),
            grid("openmc", System::JlseH100, "node")
        ),
        expect!(
            t6_hacc_aurora_node,
            "Table VI",
            "Table VI row 6 (HACC), Aurora node: 13.81",
            13.81,
            DEFAULT_TOL,
            sid("hacc", Aurora),
            grid("hacc", System::Aurora, "node")
        ),
        // ---- Machine facts and figure quotes -----------------------------
        expect!(
            sec2_aurora_partitions,
            "Section II",
            "\u{a7}II-A: an Aurora node has 6 PVC cards \u{d7} 2 stacks = 12 partitions",
            12.0,
            1e-12,
            None,
            System::Aurora.node().partitions() as f64
        ),
        expect!(
            sec2_dawn_partitions,
            "Section II",
            "\u{a7}II-B: a Dawn node has 4 PVC cards \u{d7} 2 stacks = 8 partitions",
            8.0,
            1e-12,
            None,
            System::Dawn.node().partitions() as f64
        ),
        expect!(
            sec3_aurora_power_cap,
            "Section III",
            "\u{a7}III: each Aurora PVC card is power-capped to 500 W",
            500.0,
            1e-12,
            None,
            System::Aurora.node().gpu_power_cap_w
        ),
        expect!(
            fig2_minibude_expected_ratio,
            "Figure 2",
            "\u{a7}V-A: miniBUDE expected Aurora/Dawn ratio 0.88\u{d7} (23 / 26 TFlop/s)",
            0.88,
            0.02,
            // The figure pipeline is registered up in pvc-report (it
            // draws on the report's renderers), so this id is built
            // directly rather than looked up in the standard grid.
            Some(ScenarioId::new(Workload::Figures, Params::None, System::Aurora)),
            figure2()
                .into_iter()
                .find(|b| {
                    b.app == pvc_predict::AppKind::MiniBude
                        && b.level == pvc_miniapps::ScaleLevel::OneStack
                })
                .and_then(|b| b.expected)
                .unwrap()
        ),
    ]
}

/// Scenario-coverage diagnostic: every standard-grid scenario key that
/// no expectation binds to. Non-empty by design (the paper does not pin
/// a number for all 61 pairs), but the completeness tests assert the
/// headline pairs are NOT in this list and that it never grows to the
/// whole grid.
pub fn uncovered_scenarios() -> Vec<String> {
    let bound: BTreeSet<String> = catalog()
        .iter()
        .filter_map(|e| e.scenario.map(|s| s.key()))
        .collect();
    reg()
        .iter()
        .map(|s| s.id().key())
        .filter(|k| !bound.contains(k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_meets_the_size_floor() {
        assert!(catalog().len() >= 25, "ISSUE requires >=25 expectations");
    }

    #[test]
    fn ids_are_unique_and_sources_cite_rows() {
        let cat = catalog();
        let mut ids: Vec<&str> = cat.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), cat.len(), "duplicate expectation id");
        for e in &cat {
            assert!(
                e.source.contains("row") || e.source.contains('\u{a7}'),
                "{}: source must cite a row or section, got {:?}",
                e.id,
                e.source
            );
            assert!(e.rel_tol >= 0.0 && e.value.is_finite());
        }
    }

    #[test]
    fn every_grid_expectation_binds_a_registered_scenario() {
        for e in catalog() {
            let Some(id) = e.scenario else { continue };
            if id.workload == Workload::Figures {
                continue; // registered up in pvc-report
            }
            let resolved = reg()
                .get(&id.slug(), id.system)
                .unwrap_or_else(|err| panic!("{}: {err}", e.id));
            assert_eq!(resolved.id(), id, "{}: binding drifted", e.id);
        }
    }

    #[test]
    fn uncovered_scenarios_excludes_the_headline_pairs() {
        let uncovered = uncovered_scenarios();
        for pinned in ["peakflops-fp64@aurora", "stream-triad@dawn", "minibude@aurora"] {
            assert!(!uncovered.contains(&pinned.to_string()), "{pinned} IS pinned");
        }
        // Coverage is partial but real: strictly between zero and all.
        assert!(!uncovered.is_empty());
        assert!(uncovered.len() < reg().len());
        // Pairs the paper prints no number for stay flagged.
        assert!(uncovered.contains(&"lats@h100".to_string()));
    }
}

//! The conformance runner: evaluates every golden [`Expectation`]
//! against the simulation crates and groups the outcomes per paper
//! element, so a report reads like the paper's own table of contents
//! ("Table II: 18/18", "Figure 2: 1/1", …).

use crate::expectations::{catalog, Expectation};
use pvc_core::json::{Json, ToJson};

/// One evaluated expectation.
#[derive(Debug, Clone)]
pub struct Conformance {
    /// Stable key from the catalog.
    pub id: &'static str,
    /// Paper element ("Table II", …).
    pub element: &'static str,
    /// Citation of the published value.
    pub source: &'static str,
    /// The published value.
    pub published: f64,
    /// The recomputed value.
    pub simulated: f64,
    /// Allowed relative error.
    pub rel_tol: f64,
}

impl Conformance {
    /// Relative error of the simulated value against the published one.
    pub fn rel_err(&self) -> f64 {
        if self.published == 0.0 {
            self.simulated.abs()
        } else {
            (self.simulated - self.published).abs() / self.published.abs()
        }
    }

    /// Whether the simulated value is inside the tolerance band.
    pub fn pass(&self) -> bool {
        self.simulated.is_finite() && self.rel_err() <= self.rel_tol
    }
}

/// All evaluated expectations of one paper element.
#[derive(Debug, Clone)]
pub struct ElementReport {
    /// The element ("Table II", "Figure 2", …).
    pub element: &'static str,
    /// Evaluated expectations, catalog order.
    pub checks: Vec<Conformance>,
}

impl ElementReport {
    /// Number of passing checks.
    pub fn passed(&self) -> usize {
        self.checks.iter().filter(|c| c.pass()).count()
    }

    /// Whether every check of this element passes.
    pub fn pass(&self) -> bool {
        self.passed() == self.checks.len()
    }
}

/// The full conformance report: one [`ElementReport`] per paper element,
/// in catalog order.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    pub elements: Vec<ElementReport>,
}

impl ConformanceReport {
    /// Total number of checks.
    pub fn total(&self) -> usize {
        self.elements.iter().map(|e| e.checks.len()).sum()
    }

    /// Total number of passing checks.
    pub fn passed(&self) -> usize {
        self.elements.iter().map(|e| e.passed()).sum()
    }

    /// Whether every check passes.
    pub fn pass(&self) -> bool {
        self.passed() == self.total()
    }

    /// Every failing check, flattened.
    pub fn failures(&self) -> Vec<&Conformance> {
        self.elements
            .iter()
            .flat_map(|e| e.checks.iter())
            .filter(|c| !c.pass())
            .collect()
    }

    /// Markdown rendering: one section per element with a per-check
    /// table, then a one-line verdict.
    pub fn markdown(&self) -> String {
        let mut out = String::from("# Conformance report\n");
        for e in &self.elements {
            out.push_str(&format!(
                "\n## {} \u{2014} {}/{} {}\n\n",
                e.element,
                e.passed(),
                e.checks.len(),
                if e.pass() { "PASS" } else { "FAIL" }
            ));
            out.push_str("| Check | Published | Simulated | Rel. err | Tol | Status |\n");
            out.push_str("|---|---|---|---|---|---|\n");
            for c in &e.checks {
                out.push_str(&format!(
                    "| {} | {} | {} | {:.2}% | {:.2}% | {} |\n",
                    c.source,
                    fmt_value(c.published),
                    fmt_value(c.simulated),
                    c.rel_err() * 100.0,
                    c.rel_tol * 100.0,
                    if c.pass() { "pass" } else { "FAIL" }
                ));
            }
        }
        out.push_str(&format!(
            "\n{}/{} checks pass \u{2014} {}\n",
            self.passed(),
            self.total(),
            if self.pass() { "CONFORMANT" } else { "NON-CONFORMANT" }
        ));
        out
    }

    /// JSON rendering (via the hermetic `pvc_core::json` encoder).
    pub fn json(&self) -> String {
        self.to_json().pretty()
    }
}

fn fmt_value(v: f64) -> String {
    if v.abs() >= 1e9 {
        format!("{v:.3e}")
    } else {
        format!("{v:.2}")
    }
}

impl ToJson for Conformance {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::str(self.id)),
            ("element", Json::str(self.element)),
            ("source", Json::str(self.source)),
            ("published", self.published.to_json()),
            ("simulated", self.simulated.to_json()),
            ("rel_err", self.rel_err().to_json()),
            ("rel_tol", self.rel_tol.to_json()),
            ("pass", self.pass().to_json()),
        ])
    }
}

impl ToJson for ConformanceReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total", Json::Int(self.total() as i64)),
            ("passed", Json::Int(self.passed() as i64)),
            ("pass", self.pass().to_json()),
            (
                "elements",
                Json::Arr(
                    self.elements
                        .iter()
                        .map(|e| {
                            Json::obj(vec![
                                ("element", Json::str(e.element)),
                                ("passed", Json::Int(e.passed() as i64)),
                                ("total", Json::Int(e.checks.len() as i64)),
                                (
                                    "checks",
                                    Json::Arr(
                                        e.checks.iter().map(|c| c.to_json()).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Evaluates one expectation.
pub fn evaluate(e: &Expectation) -> Conformance {
    Conformance {
        id: e.id,
        element: e.element,
        source: e.source,
        published: e.value,
        simulated: (e.produce)(),
        rel_tol: e.rel_tol,
    }
}

/// Evaluates the whole catalog and groups it per element, preserving
/// catalog order of both elements and checks.
pub fn run() -> ConformanceReport {
    let mut elements: Vec<ElementReport> = Vec::new();
    for exp in catalog() {
        let c = evaluate(&exp);
        match elements.iter_mut().find(|e| e.element == c.element) {
            Some(e) => e.checks.push(c),
            None => elements.push(ElementReport {
                element: c.element,
                checks: vec![c],
            }),
        }
    }
    ConformanceReport { elements }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_logic_uses_the_band() {
        let mut c = Conformance {
            id: "x",
            element: "Table II",
            source: "row 1",
            published: 100.0,
            simulated: 104.0,
            rel_tol: 0.05,
        };
        assert!(c.pass());
        c.simulated = 106.0;
        assert!(!c.pass());
        c.simulated = f64::NAN;
        assert!(!c.pass());
    }

    #[test]
    fn grouping_preserves_catalog_order() {
        let r = run();
        let names: Vec<&str> = r.elements.iter().map(|e| e.element).collect();
        assert_eq!(
            names,
            ["Table II", "Table III", "Table VI", "Section II", "Section III", "Figure 2"]
        );
        assert_eq!(r.total(), crate::expectations::catalog().len());
    }
}

//! Cross-layer metamorphic properties: relations that must hold between
//! the subsystem crates regardless of parameter values. Each function
//! returns `Err(description)` on violation so callers can run them from
//! the deterministic `pvc_core::check` harness or standalone.
//!
//! The four families the validation plan names:
//!
//! 1. **Flow conservation** — the max–min fluid network neither creates
//!    nor destroys bytes, and no resource carries more than its
//!    capacity ([`flow_conserves_bytes`]).
//! 2. **Bandwidth monotonicity** — every microbenchmark's aggregate
//!    rate is non-decreasing across the Table II scaling levels, and
//!    never beats perfect scaling of one stack
//!    ([`scaling_is_monotone_and_subperfect`]).
//! 3. **Roofline bounds** — no library benchmark exceeds the vector
//!    peak of its precision on any system
//!    ([`benchmarks_respect_rooflines`]).
//! 4. **Governor caps** — sustained card power never exceeds the
//!    operational TDP cap from §III ([`power_stays_under_cap`]).

use pvc_arch::{power, Precision, System};
use pvc_engine::fft_model::FftDim;
use pvc_microbench::{fftbench, gemmbench, membw, peakflops, ScaleTriplet};
use pvc_simrt::{FlowNetwork, FlowSpec, Time};

/// Numeric slack for accumulated floating-point error.
const EPS: f64 = 1e-6;

/// A flow request for [`flow_conserves_bytes`]: bytes, resource
/// indices of the path, start time (s).
#[derive(Debug, Clone)]
pub struct FlowReq {
    pub bytes: f64,
    pub path: Vec<usize>,
    pub start: f64,
}

/// Runs the fluid network over `caps`/`flows` and checks conservation:
/// every flow finishes, transfers exactly its bytes (mean bandwidth ×
/// active window), and no flow's mean bandwidth exceeds the tightest
/// capacity on its path.
pub fn flow_conserves_bytes(caps: &[f64], flows: &[FlowReq]) -> Result<(), String> {
    let mut net = FlowNetwork::new();
    let ids: Vec<_> = caps.iter().map(|&c| net.add_resource(c)).collect();
    let fids: Vec<_> = flows
        .iter()
        .map(|f| {
            net.add_flow(FlowSpec {
                start: Time::from_secs(f.start),
                bytes: f.bytes,
                path: f.path.iter().map(|&i| ids[i]).collect(),
                latency: 0.0,
            })
        })
        .collect();
    let done = net.run();
    for (f, id) in flows.iter().zip(&fids) {
        let out = done
            .get(id)
            .ok_or_else(|| format!("flow {id:?} never completed"))?;
        let window = out.finished.as_secs() - out.began.as_secs();
        if window <= 0.0 {
            return Err(format!("flow {id:?} has empty transfer window"));
        }
        let moved = out.bandwidth() * window;
        if (moved - f.bytes).abs() > EPS * f.bytes.max(1.0) {
            return Err(format!(
                "flow {id:?} moved {moved} of {} bytes (bytes not conserved)",
                f.bytes
            ));
        }
        let tightest = f
            .path
            .iter()
            .map(|&i| caps[i])
            .fold(f64::INFINITY, f64::min);
        if out.bandwidth() > tightest * (1.0 + EPS) {
            return Err(format!(
                "flow {id:?} mean bandwidth {} beats path capacity {tightest}",
                out.bandwidth()
            ));
        }
    }
    Ok(())
}

/// Effective bandwidth (bytes over start-to-finish wall time, latency
/// included) is non-decreasing in message size on an otherwise idle
/// link: bigger transfers amortize the fixed latency.
pub fn bandwidth_monotone_in_message_size(
    capacity: f64,
    latency: f64,
    small: f64,
    large: f64,
) -> Result<(), String> {
    if !(small > 0.0 && large >= small && capacity > 0.0 && latency >= 0.0) {
        return Err(format!(
            "bad inputs: cap={capacity} lat={latency} small={small} large={large}"
        ));
    }
    let effective = |bytes: f64| -> f64 {
        let mut net = FlowNetwork::new();
        let link = net.add_resource(capacity);
        let id = net.add_flow(FlowSpec {
            start: Time::from_secs(0.0),
            bytes,
            path: vec![link],
            latency,
        });
        let done = net.run();
        bytes / done[&id].finished.as_secs()
    };
    let (bw_small, bw_large) = (effective(small), effective(large));
    if bw_large < bw_small * (1.0 - EPS) {
        return Err(format!(
            "effective bandwidth fell with message size: {small} B -> {bw_small}, \
             {large} B -> {bw_large} (cap {capacity}, latency {latency})"
        ));
    }
    if bw_large > capacity * (1.0 + EPS) {
        return Err(format!(
            "effective bandwidth {bw_large} beats link capacity {capacity}"
        ));
    }
    Ok(())
}

fn check_triplet(what: &str, system: System, t: &ScaleTriplet) -> Result<(), String> {
    let parts = system.node().partitions() as f64;
    let per_card = system.node().gpu.partitions as f64;
    if !(t.one_stack > 0.0 && t.one_pvc > 0.0 && t.full_node > 0.0) {
        return Err(format!("{what} on {system:?}: non-positive rate {t:?}"));
    }
    if t.one_pvc < t.one_stack * (1.0 - EPS) || t.full_node < t.one_pvc * (1.0 - EPS) {
        return Err(format!(
            "{what} on {system:?}: aggregate rate not monotone across scaling levels {t:?}"
        ));
    }
    if t.one_pvc > t.one_stack * per_card * (1.0 + EPS)
        || t.full_node > t.one_stack * parts * (1.0 + EPS)
    {
        return Err(format!(
            "{what} on {system:?}: beats perfect scaling of one stack {t:?}"
        ));
    }
    Ok(())
}

/// Every microbenchmark triplet grows monotonically with scale and
/// never beats perfect scaling of its one-stack value (derates only
/// slow things down).
pub fn scaling_is_monotone_and_subperfect(system: System) -> Result<(), String> {
    for p in [Precision::Fp64, Precision::Fp32] {
        check_triplet("peakflops", system, &peakflops::run(system, p).rates)?;
    }
    check_triplet("membw", system, &membw::run(system).bandwidth)?;
    for p in Precision::GEMM_ORDER {
        if matches!((system, p), (System::JlseMi250, Precision::Tf32)) {
            continue; // CDNA2 has no TF32 library path (no Table II cell)
        }
        check_triplet("gemm", system, &gemmbench::run(system, p).rates)?;
    }
    for dim in [FftDim::OneD, FftDim::TwoD] {
        check_triplet("fft", system, &fftbench::run(system, dim).rates)?;
    }
    Ok(())
}

/// Library benchmarks never exceed the matching theoretical peak:
/// GEMM under the un-derated matrix unit peak of its precision (on
/// MI250 the matrix FP64 rate legitimately beats the *vector* peak, so
/// the vector rate is not the bound), FFT under the FP32 vector peak.
pub fn benchmarks_respect_rooflines(system: System) -> Result<(), String> {
    let node = system.node();
    for p in [Precision::Fp64, Precision::Fp32] {
        let peak = pvc_engine::gemm::theoretical_unit_peak(system, p);
        let gemm = gemmbench::run(system, p).rates.one_stack;
        if gemm > peak * (1.0 + EPS) {
            return Err(format!(
                "{system:?} {p}: GEMM {gemm:.3e} beats theoretical peak {peak:.3e}"
            ));
        }
    }
    let fp32_peak = node.gpu.vector_peak_per_partition(Precision::Fp32, 1);
    for dim in [FftDim::OneD, FftDim::TwoD] {
        let fft = fftbench::run(system, dim).rates.one_stack;
        if fft > fp32_peak * (1.0 + EPS) {
            return Err(format!(
                "{system:?} {dim:?}: FFT {fft:.3e} beats FP32 vector peak {fp32_peak:.3e}"
            ));
        }
    }
    Ok(())
}

/// The governed clock and the sustained card power both stay under
/// their TDP-derived caps for every precision and activity level (and
/// power never drops to zero — static draw is real).
pub fn power_stays_under_cap(system: System) -> Result<(), String> {
    let node = system.node();
    let cap = node.gpu_power_cap_w;
    let max_hz = node.gpu.clock.max_hz();
    for p in [
        Precision::Fp64,
        Precision::Fp32,
        Precision::Fp16,
        Precision::Bf16,
    ] {
        for active in 1..=node.partitions() {
            let hz = node.gpu.clock.vector_clock_hz(p) * node.gpu.clock.scale_derate(p, active);
            if hz > max_hz * (1.0 + EPS) {
                return Err(format!(
                    "{system:?} {p} active={active}: governed clock {hz:.3e} beats max {max_hz:.3e}"
                ));
            }
            let w = power::card_power(&node, p, active);
            if w > cap * (1.0 + EPS) {
                return Err(format!(
                    "{system:?} {p} active={active}: card power {w:.1} W beats cap {cap} W"
                ));
            }
            if w <= 0.0 {
                return Err(format!("{system:?} {p} active={active}: non-positive power"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_detects_a_violating_capacity_claim() {
        // Sanity: the helper itself flags an impossible claim by
        // checking against a *smaller* declared cap than the network ran
        // with; done by lying about caps in the tightest-path check.
        let flows = [FlowReq {
            bytes: 100.0,
            path: vec![0],
            start: 0.0,
        }];
        assert!(flow_conserves_bytes(&[50.0], &flows).is_ok());
    }

    #[test]
    fn all_four_families_hold_on_the_pvc_systems() {
        for sys in [System::Aurora, System::Dawn] {
            scaling_is_monotone_and_subperfect(sys).unwrap();
            benchmarks_respect_rooflines(sys).unwrap();
            power_stays_under_cap(sys).unwrap();
        }
    }
}

//! # pvc-predict — expected relative performance (the black bars)
//!
//! Figures 2–4 of the paper overlay each measured FOM ratio with an
//! *expected* ratio computed from the microbenchmarks (Table II) and the
//! vendor reference peaks (Table IV), according to each mini-app's bound
//! classification (Table V). This crate implements that arithmetic
//! exactly as the artifact appendix describes — e.g. "miniBUDE is …
//! bound by the single precision (FP32) flop-rate. Thus the expected
//! relative performance is the ratio of the peak single precision
//! performance on Aurora to that on Dawn, 0.88X (23 Tflops/s / 26
//! Tflop/s)."

pub mod figures;
pub mod fomsource;
pub mod metrics;

pub use figures::{figure2, figure3, figure4, FigureBar};
pub use fomsource::{fom, AppKind};
pub use metrics::bound_metric;

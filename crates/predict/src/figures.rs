//! Figures 2–4: measured FOM ratios + expected (black-bar) ratios.

use crate::fomsource::{fom, AppKind};
use crate::metrics::bound_metric;
use pvc_arch::{Precision, System};
use pvc_engine::BoundKind;
use pvc_miniapps::ScaleLevel;

/// One bar of a relative-performance figure.
#[derive(Debug, Clone, Copy)]
pub struct FigureBar {
    /// Mini-app.
    pub app: AppKind,
    /// Numerator system (the denominator is fixed per figure).
    pub system: System,
    /// Scaling level of both sides.
    pub level: ScaleLevel,
    /// Measured (simulated Table VI) FOM ratio; `None` where Table VI has
    /// a dash on either side.
    pub measured: Option<f64>,
    /// Expected ratio from the microbenchmarks (the black bar); `None`
    /// where the paper draws no bar (miniQMC).
    pub expected: Option<f64>,
}

/// The bound used for each mini-app's black bar. miniQMC gets `None`:
/// §V-B1 — its full-node bottleneck (CPU congestion) "is not captured by
/// the microbenchmarks", so Figure 2 omits its bars.
fn bar_bound(app: AppKind) -> Option<BoundKind> {
    match app {
        AppKind::MiniBude => Some(BoundKind::Compute(Precision::Fp32)),
        AppKind::CloverLeaf => Some(BoundKind::MemoryBandwidth),
        AppKind::MiniQmc => None,
        AppKind::MiniGamess => Some(BoundKind::Dgemm),
        AppKind::OpenMc | AppKind::Hacc => None,
    }
}

fn ratio(
    app: AppKind,
    num: System,
    num_level: ScaleLevel,
    den: System,
    den_level: ScaleLevel,
) -> FigureBar {
    let measured = match (fom(app, num, num_level), fom(app, den, den_level)) {
        (Some(a), Some(b)) => Some(a / b),
        _ => None,
    };
    let expected = bar_bound(app).and_then(|bound| {
        match (
            bound_metric(num, bound, num_level),
            bound_metric(den, bound, den_level),
        ) {
            (Some(a), Some(b)) => Some(a / b),
            _ => None,
        }
    });
    FigureBar {
        app,
        system: num,
        level: num_level,
        measured,
        expected,
    }
}

/// Figure 2: Aurora relative to Dawn at all three levels.
pub fn figure2() -> Vec<FigureBar> {
    let mut bars = Vec::new();
    for app in AppKind::MINIAPPS {
        for level in ScaleLevel::ALL {
            bars.push(ratio(app, System::Aurora, level, System::Dawn, level));
        }
    }
    bars
}

/// Figure 3: Aurora and Dawn relative to JLSE-H100, per GPU and per
/// node.
pub fn figure3() -> Vec<FigureBar> {
    let mut bars = Vec::new();
    for app in AppKind::MINIAPPS {
        for sys in System::PVC {
            for level in [ScaleLevel::OneGpu, ScaleLevel::FullNode] {
                bars.push(ratio(app, sys, level, System::JlseH100, level));
            }
        }
    }
    bars
}

/// Figure 4: Aurora and Dawn relative to JLSE-MI250, per Stack-vs-GCD
/// and per node.
pub fn figure4() -> Vec<FigureBar> {
    let mut bars = Vec::new();
    for app in AppKind::MINIAPPS {
        for sys in System::PVC {
            for level in [ScaleLevel::OneStack, ScaleLevel::FullNode] {
                bars.push(ratio(app, sys, level, System::JlseMi250, level));
            }
        }
    }
    bars
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    fn bar(bars: &[FigureBar], app: AppKind, sys: System, level: ScaleLevel) -> FigureBar {
        *bars
            .iter()
            .find(|b| b.app == app && b.system == sys && b.level == level)
            .expect("bar present")
    }

    #[test]
    fn figure2_minibude_expected_is_0_88() {
        let bars = figure2();
        let b = bar(&bars, AppKind::MiniBude, System::Aurora, ScaleLevel::OneStack);
        assert!(rel_err(b.expected.unwrap(), 0.88) < 0.02);
        // Measured (293.02/366.17 = 0.80) sits close to the bar.
        assert!(rel_err(b.measured.unwrap(), 0.80) < 0.03);
    }

    #[test]
    fn figure2_cloverleaf_expected_is_1() {
        // Same per-stack memory bandwidth on both systems.
        let bars = figure2();
        let b = bar(&bars, AppKind::CloverLeaf, System::Aurora, ScaleLevel::OneStack);
        assert!(rel_err(b.expected.unwrap(), 1.0) < 0.01);
    }

    #[test]
    fn figure2_miniqmc_has_no_black_bar() {
        let bars = figure2();
        for level in ScaleLevel::ALL {
            let b = bar(&bars, AppKind::MiniQmc, System::Aurora, level);
            assert!(b.expected.is_none());
            assert!(b.measured.is_some());
        }
    }

    #[test]
    fn figure3_cloverleaf_expected_is_0_59_per_gpu() {
        let bars = figure3();
        let b = bar(&bars, AppKind::CloverLeaf, System::Aurora, ScaleLevel::OneGpu);
        assert!(rel_err(b.expected.unwrap(), 0.597) < 0.02, "{:?}", b.expected);
        // Measured 40.41/65.87 = 0.61 — "close to the black bars".
        assert!(rel_err(b.measured.unwrap(), 0.613) < 0.03);
    }

    #[test]
    fn figure3_single_gpu_range_matches_abstract() {
        // Abstract: single-PVC FOMs range 0.6x–1.8x of H100.
        let bars = figure3();
        let measured: Vec<f64> = bars
            .iter()
            .filter(|b| b.level == ScaleLevel::OneGpu)
            .filter_map(|b| b.measured)
            .collect();
        let min = measured.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = measured.iter().cloned().fold(0.0f64, f64::max);
        assert!((0.55..0.72).contains(&min), "min {min:.2}");
        assert!((1.5..2.0).contains(&max), "max {max:.2}");
    }

    #[test]
    fn figure4_minibude_expected_near_1() {
        // Appendix: 1.0X for Aurora, 1.1X for Dawn per Stack-vs-GCD.
        let bars = figure4();
        let a = bar(&bars, AppKind::MiniBude, System::Aurora, ScaleLevel::OneStack);
        let d = bar(&bars, AppKind::MiniBude, System::Dawn, ScaleLevel::OneStack);
        assert!(rel_err(a.expected.unwrap(), 1.0) < 0.03);
        assert!(rel_err(d.expected.unwrap(), 1.15) < 0.03);
    }

    #[test]
    fn figure4_stack_range_matches_abstract() {
        // Abstract: per-Stack FOMs range 0.8x–7.5x of an MI250 GCD.
        let bars = figure4();
        let measured: Vec<f64> = bars
            .iter()
            .filter(|b| b.level == ScaleLevel::OneStack)
            .filter_map(|b| b.measured)
            .collect();
        let min = measured.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = measured.iter().cloned().fold(0.0f64, f64::max);
        assert!((0.7..0.95).contains(&min), "min {min:.2}");
        assert!((6.0..8.0).contains(&max), "max {max:.2}");
    }

    #[test]
    fn figure4_minigamess_absent() {
        let bars = figure4();
        let b = bar(&bars, AppKind::MiniGamess, System::Aurora, ScaleLevel::OneStack);
        assert!(b.measured.is_none(), "MI250 build failure -> no ratio");
        assert!(b.expected.is_none());
    }

    #[test]
    fn figure2_miniqmc_node_ratio_below_one() {
        // §V-B1: Aurora's 6-GPU miniQMC FOM < Dawn's 4-GPU FOM.
        let bars = figure2();
        let b = bar(&bars, AppKind::MiniQmc, System::Aurora, ScaleLevel::FullNode);
        assert!(b.measured.unwrap() < 1.0);
    }
}

//! Unified access to every Table VI FOM (simulated).

use pvc_arch::System;
use pvc_miniapps::{cloverleaf, minibude, minigamess, miniqmc, ScaleLevel};

/// The six Table V/VI applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    MiniBude,
    CloverLeaf,
    MiniQmc,
    MiniGamess,
    OpenMc,
    Hacc,
}

impl AppKind {
    /// All apps in Table VI row order.
    pub const ALL: [AppKind; 6] = [
        AppKind::MiniBude,
        AppKind::CloverLeaf,
        AppKind::MiniQmc,
        AppKind::MiniGamess,
        AppKind::OpenMc,
        AppKind::Hacc,
    ];

    /// The four mini-apps (Figures 2–4 cover only these).
    pub const MINIAPPS: [AppKind; 4] = [
        AppKind::MiniBude,
        AppKind::CloverLeaf,
        AppKind::MiniQmc,
        AppKind::MiniGamess,
    ];

    /// Row label as printed in Table VI.
    pub fn label(self) -> &'static str {
        match self {
            AppKind::MiniBude => "miniBUDE",
            AppKind::CloverLeaf => "CloverLeaf",
            AppKind::MiniQmc => "miniQMC",
            AppKind::MiniGamess => "mini-GAMESS",
            AppKind::OpenMc => "OpenMC",
            AppKind::Hacc => "HACC",
        }
    }
}

/// Simulated FOM for one Table VI cell; `None` where the model (like the
/// paper) has no value.
pub fn fom(app: AppKind, system: System, level: ScaleLevel) -> Option<f64> {
    match app {
        AppKind::MiniBude => minibude::fom(system, level),
        AppKind::CloverLeaf => cloverleaf::fom(system, level),
        AppKind::MiniQmc => miniqmc::fom(system, level),
        AppKind::MiniGamess => minigamess::fom(system, level),
        AppKind::OpenMc => match level {
            ScaleLevel::FullNode => Some(pvc_apps::openmc::fom_node(system)),
            _ => None,
        },
        AppKind::Hacc => match level {
            ScaleLevel::FullNode => Some(pvc_apps::hacc::fom_node(system)),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_miniapps_have_stack_foms_on_pvc() {
        for app in AppKind::MINIAPPS {
            for sys in System::PVC {
                assert!(
                    fom(app, sys, ScaleLevel::OneStack).is_some(),
                    "{app:?} on {sys:?}"
                );
            }
        }
    }

    #[test]
    fn applications_are_node_level_only() {
        for app in [AppKind::OpenMc, AppKind::Hacc] {
            assert!(fom(app, System::Aurora, ScaleLevel::OneStack).is_none());
            assert!(fom(app, System::Aurora, ScaleLevel::FullNode).is_some());
        }
    }

    #[test]
    fn table_vi_dashes_reproduced() {
        // mini-GAMESS on MI250 failed to build (§V-B3).
        assert!(fom(AppKind::MiniGamess, System::JlseMi250, ScaleLevel::OneStack).is_none());
        // miniBUDE has no full-node value (not MPI).
        assert!(fom(AppKind::MiniBude, System::Aurora, ScaleLevel::FullNode).is_none());
    }
}

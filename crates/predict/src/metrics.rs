//! Bound metrics: the quantity each mini-app's performance is expected
//! to track, per system and scaling level.
//!
//! For the PVC systems the *measured* microbenchmark values (Table II)
//! are used; for H100 and MI250 the *theoretical* peaks of Table IV —
//! exactly the paper's convention, which is why it notes "the black bars
//! are a lower bound since the measured values are likely lower than the
//! theoretical ones" (§V-B2).

use pvc_arch::reference;
use pvc_arch::{Precision, System};
use pvc_engine::gemm::gemm_rate;
use pvc_engine::Engine;
use pvc_miniapps::ScaleLevel;
use pvc_engine::BoundKind;

/// Value of the bound metric (flop/s or bytes/s) at a Table VI scaling
/// level. `None` when the paper's tables provide no basis (e.g. a
/// latency "metric" for Fig 2–4 apps, or miniQMC's congestion bound,
/// which §V-B1 says no microbenchmark captures).
pub fn bound_metric(system: System, bound: BoundKind, level: ScaleLevel) -> Option<f64> {
    let n = level.ranks(system);
    match bound {
        BoundKind::Compute(p) => Some(compute_metric(system, p, n)),
        BoundKind::MemoryBandwidth => Some(bandwidth_metric(system, n)),
        BoundKind::Dgemm => dgemm_metric(system, n),
        BoundKind::MemoryLatency | BoundKind::HostCongestion => None,
    }
}

/// FP peak: Table II measured values on PVC; Table IV theoretical on the
/// comparison systems.
fn compute_metric(system: System, p: Precision, n: u32) -> f64 {
    match system {
        System::Aurora | System::Dawn => {
            let engine = Engine::new(system);
            engine.vector_peak(p, n) * n as f64
        }
        System::JlseH100 => {
            let per_gpu = match p {
                Precision::Fp64 => reference::H100.fp64_peak.unwrap(),
                _ => reference::H100.fp32_peak.unwrap(),
            };
            per_gpu * n as f64
        }
        System::JlseMi250 => {
            // Table IV peaks are per card (2 GCDs); ranks count GCDs.
            let per_card = match p {
                Precision::Fp64 => reference::MI250.fp64_peak.unwrap(),
                _ => reference::MI250.fp32_peak.unwrap(),
            };
            per_card / 2.0 * n as f64
        }
    }
}

/// Memory bandwidth: Table II triad on PVC; Table IV specs elsewhere
/// (3.35 TB/s per H100, 3.2 TB/s per MI250 card).
fn bandwidth_metric(system: System, n: u32) -> f64 {
    match system {
        System::Aurora | System::Dawn => {
            let engine = Engine::new(system);
            engine.stream_bandwidth(n) * n as f64
        }
        System::JlseH100 => reference::H100.mem_bw.unwrap() * n as f64,
        System::JlseMi250 => reference::MI250.mem_bw.unwrap() / 2.0 * n as f64,
    }
}

/// DGEMM: Table II measured on PVC; the FP64 theoretical peak on H100
/// (Table IV lists no H100 DGEMM); MI250 is absent from the mini-GAMESS
/// comparison (build failure).
fn dgemm_metric(system: System, n: u32) -> Option<f64> {
    match system {
        System::Aurora | System::Dawn => {
            Some(gemm_rate(system, Precision::Fp64, n) * n as f64)
        }
        System::JlseH100 => Some(reference::H100.fp64_peak.unwrap() * n as f64),
        System::JlseMi250 => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pvc_arch::units::rel_err;

    #[test]
    fn minibude_black_bar_fig2_is_0_88() {
        // Appendix: "the expected relative performance is the ratio of
        // the peak single precision performance on Aurora to that on
        // Dawn, 0.88X (23 Tflops/s / 26 Tflop/s)".
        let a = bound_metric(
            System::Aurora,
            BoundKind::Compute(Precision::Fp32),
            ScaleLevel::OneStack,
        )
        .unwrap();
        let d = bound_metric(
            System::Dawn,
            BoundKind::Compute(Precision::Fp32),
            ScaleLevel::OneStack,
        )
        .unwrap();
        assert!(rel_err(a / d, 0.88) < 0.02, "ratio {:.3}", a / d);
    }

    #[test]
    fn cloverleaf_black_bar_fig3_is_0_59() {
        // Appendix: "the ratio of the peak memory bandwidth on Aurora or
        // Dawn to that on JLSE-H100, 0.59X (2 TB/s / 3.35 TB/s)" per GPU.
        let pvc = bound_metric(System::Aurora, BoundKind::MemoryBandwidth, ScaleLevel::OneGpu)
            .unwrap();
        let h100 = bound_metric(
            System::JlseH100,
            BoundKind::MemoryBandwidth,
            ScaleLevel::OneGpu,
        )
        .unwrap();
        assert!(rel_err(pvc / h100, 0.597) < 0.02, "ratio {:.3}", pvc / h100);
    }

    #[test]
    fn minibude_black_bar_fig4_per_stack() {
        // Appendix: "For Aurora it's 1.0X (23 / (45.3/2)) and for Dawn
        // 1.1X (26 / (45.3/2))".
        let gcd = bound_metric(
            System::JlseMi250,
            BoundKind::Compute(Precision::Fp32),
            ScaleLevel::OneStack,
        )
        .unwrap();
        let a = bound_metric(
            System::Aurora,
            BoundKind::Compute(Precision::Fp32),
            ScaleLevel::OneStack,
        )
        .unwrap();
        let d = bound_metric(
            System::Dawn,
            BoundKind::Compute(Precision::Fp32),
            ScaleLevel::OneStack,
        )
        .unwrap();
        assert!(rel_err(a / gcd, 1.0) < 0.03, "Aurora {:.3}", a / gcd);
        assert!(rel_err(d / gcd, 1.15) < 0.03, "Dawn {:.3}", d / gcd);
    }

    #[test]
    fn congestion_bound_has_no_metric() {
        // §V-B1: "none of the microbenchmarks represented the CPU
        // congestion bottleneck" — miniQMC gets no black bar in Fig 2.
        assert!(bound_metric(
            System::Aurora,
            BoundKind::HostCongestion,
            ScaleLevel::FullNode
        )
        .is_none());
    }

    #[test]
    fn mi250_dgemm_metric_absent() {
        assert!(dgemm_metric(System::JlseMi250, 1).is_none());
    }
}

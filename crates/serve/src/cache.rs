//! Content-addressed LRU result cache.
//!
//! Entries are keyed by the request's FNV-1a 64 content hash; the
//! canonical request text is stored alongside and compared on lookup,
//! so a (vanishingly unlikely) hash collision degrades to a miss rather
//! than serving the wrong response. Recency is a plain vector —
//! most-recently-used at the back — which keeps iteration order (and
//! therefore every test and metric derived from it) fully
//! deterministic.

use pvc_core::Json;

#[derive(Debug, Clone)]
struct Entry {
    key: u64,
    text: String,
    value: Json,
}

/// A bounded LRU cache of response bodies.
#[derive(Debug)]
pub struct ResultCache {
    cap: usize,
    /// LRU order: index 0 is the eviction candidate.
    entries: Vec<Entry>,
}

impl ResultCache {
    /// A cache holding at most `cap` entries. `cap == 0` disables
    /// caching entirely (every insert is an immediate no-op).
    pub fn new(cap: usize) -> Self {
        ResultCache { cap, entries: Vec::new() }
    }

    /// Looks up `key`, verifying `text` to guard against collisions.
    /// A hit refreshes the entry's recency.
    pub fn get(&mut self, key: u64, text: &str) -> Option<Json> {
        let i = self
            .entries
            .iter()
            .position(|e| e.key == key && e.text == text)?;
        let e = self.entries.remove(i);
        let v = e.value.clone();
        self.entries.push(e);
        Some(v)
    }

    /// Inserts (or refreshes) an entry; returns the number of entries
    /// evicted to make room (0 or 1).
    pub fn insert(&mut self, key: u64, text: &str, value: Json) -> usize {
        if self.cap == 0 {
            return 0;
        }
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.key == key && e.text == text)
        {
            self.entries.remove(i);
        }
        let mut evicted = 0;
        while self.entries.len() >= self.cap {
            self.entries.remove(0);
            evicted += 1;
        }
        self.entries.push(Entry { key, text: text.to_string(), value });
        evicted
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys in LRU order (front = next eviction candidate). For tests
    /// and introspection.
    pub fn keys_lru_order(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.key).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: i64) -> Json {
        Json::Int(i)
    }

    #[test]
    fn eviction_is_lru_not_fifo() {
        let mut c = ResultCache::new(2);
        assert_eq!(c.insert(1, "a", v(1)), 0);
        assert_eq!(c.insert(2, "b", v(2)), 0);
        // Touch 1: it becomes most-recent, so inserting 3 evicts 2.
        assert_eq!(c.get(1, "a"), Some(v(1)));
        assert_eq!(c.insert(3, "c", v(3)), 1);
        assert_eq!(c.keys_lru_order(), vec![1, 3]);
        assert_eq!(c.get(2, "b"), None, "2 was the LRU victim");
    }

    #[test]
    fn reinsert_refreshes_without_growing() {
        let mut c = ResultCache::new(2);
        c.insert(1, "a", v(1));
        c.insert(2, "b", v(2));
        assert_eq!(c.insert(1, "a", v(10)), 0, "refresh evicts nothing");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1, "a"), Some(v(10)));
        assert_eq!(c.keys_lru_order(), vec![2, 1]);
    }

    #[test]
    fn collision_with_different_text_misses() {
        let mut c = ResultCache::new(4);
        c.insert(42, "request A", v(1));
        assert_eq!(c.get(42, "request B"), None, "text guard must hold");
        assert_eq!(c.get(42, "request A"), Some(v(1)));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        assert_eq!(c.insert(1, "a", v(1)), 0);
        assert!(c.is_empty());
        assert_eq!(c.get(1, "a"), None);
    }
}

//! # pvc-serve — the simulation-query service core
//!
//! Every paper element this repository reproduces (tables, figures,
//! ablations, profiles) is a **pure deterministic function** of its
//! request: the same request always produces byte-identical output.
//! That makes the results perfectly cacheable and batchable, and this
//! crate is the serving layer exploiting it:
//!
//! * [`request`] — the canonical request envelope: a JSON object with a
//!   `kind` field, normalised to sorted-key canonical bytes and
//!   content-addressed with an FNV-1a 64-bit hash.
//! * [`cache`] — an LRU result cache keyed by that hash (with a
//!   full-text guard against hash collisions).
//! * [`batch`] — the execution plan for one admitted batch:
//!   single-flight dedup of identical requests plus **atom
//!   coalescing** — compatible sweep requests decompose into shared
//!   atoms, each unique atom simulated once per pass.
//! * [`shard`] — the worker-shard layer: Lamping–Veach jump consistent
//!   hashing partitions the canonical key space across N shards, each
//!   the exclusive owner of its LRU slice, optional disk-store tier and
//!   bounded admission queue. Entries are never duplicated across
//!   shards, and growing the cluster moves keys only onto the new
//!   shard.
//! * [`dispatch`] — [`Dispatcher`](dispatch::Dispatcher): routes single
//!   requests to their owning shard, fans batches out, and merges atom
//!   results deterministically (index order — fan-out responses are
//!   byte-identical to the single-shard output). Carries admission
//!   control (per-shard bounded queues, typed
//!   [`ServeError::Overloaded`] load shedding), deterministic
//!   per-request cost budgets, and parallel atom execution on
//!   [`pvc_core::par`]. Global `serve.*` and per-shard
//!   `serve.shard<i>.*` counters are exported through a
//!   [`pvc_obs::Metrics`] registry; a reserved `stats` request kind
//!   answers with the full snapshot (counters, gauges, cost quantiles,
//!   per-shard breakdown) and a reserved `shutdown` kind latches
//!   graceful frontend shutdown.
//! * [`service`] — the [`Executor`](service::Executor) contract, the
//!   [`ServeConfig`] knobs, and the [`Service`](service::Service) alias
//!   (a one-shard dispatcher — the monolith is the degenerate case).
//! * [`http`] — a zero-dependency HTTP/1.1 server primitive
//!   (keep-alive, chunked responses, bounded parsing, no `Date`
//!   header) that the `reproduce serve --http` frontend builds on.
//! * [`telemetry`] — per-request records behind a typed
//!   [`Outcome`](telemetry::Outcome): a structured JSON access log,
//!   per-kind virtual-cost histograms, and a bounded **flight
//!   recorder** retaining the last N requests plus the full trace of
//!   the most recent failure. Observation only — a service with
//!   telemetry attached produces byte-identical responses.
//!
//! The crate is domain-agnostic: what a request *means* is supplied by
//! an [`Executor`](service::Executor) implementation (the paper catalog
//! executor lives in `pvc-report`, which also wires the `reproduce
//! serve` / `reproduce query` frontends). Because execution is
//! deterministic, a cached response and a freshly computed one are
//! byte-identical — the test suites here and in `pvc-report` enforce
//! that end to end.

pub mod batch;
pub mod cache;
pub mod dispatch;
pub mod http;
pub mod request;
pub mod service;
pub mod shard;
pub mod telemetry;

pub use batch::{Atom, BatchPlan};
pub use cache::ResultCache;
pub use dispatch::Dispatcher;
pub use http::{After, HttpRequest, HttpResponse};
pub use request::{fnv1a64, Request};
pub use service::{Executor, ServeConfig, Service, SHUTDOWN_KIND, STATS_KIND};
pub use shard::{shard_metric, shard_of, Shard};
pub use telemetry::{Anomaly, Outcome, RequestTelemetry, Telemetry};

/// Typed service-level rejections. Every variant renders as a JSON
/// error envelope (never a panic, never an indefinite block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request line was not a well-formed request object.
    BadRequest(String),
    /// Admission control shed the request: the bounded queue was full.
    Overloaded {
        /// The configured queue depth that was exceeded.
        depth: usize,
    },
    /// The request's deterministic cost estimate exceeded its budget.
    DeadlineExceeded {
        /// Estimated cost of the request in abstract cost units.
        cost: u64,
        /// The budget it had to fit in.
        budget: u64,
    },
    /// The executor failed while computing the response.
    Failed(String),
}

impl ServeError {
    /// Stable machine-readable discriminant used in error envelopes.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Failed(_) => "failed",
        }
    }

    /// The error as a JSON object (the `error` field of an envelope).
    pub fn to_json(&self) -> pvc_core::Json {
        use pvc_core::Json;
        let mut pairs = vec![("kind", Json::str(self.kind()))];
        match self {
            ServeError::BadRequest(msg) | ServeError::Failed(msg) => {
                pairs.push(("detail", Json::str(msg.clone())));
            }
            ServeError::Overloaded { depth } => {
                pairs.push(("queue_depth", Json::Int(*depth as i64)));
            }
            ServeError::DeadlineExceeded { cost, budget } => {
                pairs.push(("cost", Json::Int(*cost as i64)));
                pairs.push(("budget", Json::Int(*budget as i64)));
            }
        }
        Json::obj(pairs)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Overloaded { depth } => {
                write!(f, "overloaded: queue depth {depth} exceeded")
            }
            ServeError::DeadlineExceeded { cost, budget } => {
                write!(f, "deadline exceeded: cost {cost} > budget {budget}")
            }
            ServeError::Failed(msg) => write!(f, "execution failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

//! A zero-dependency HTTP/1.1 server primitive for the serve frontends.
//!
//! Deliberately minimal — `std::net` only, no TLS, no compression, no
//! async — but correct on the subset the serving stack needs:
//!
//! * request-line + header parsing with bounded sizes (oversized or
//!   malformed input answers `400`/`431` and closes);
//! * `Content-Length` request bodies (the only kind a query client
//!   sends);
//! * **keep-alive** by default on HTTP/1.1 (`Connection: close`
//!   honoured, HTTP/1.0 closes unless `keep-alive` is asked for);
//! * **chunked** transfer-encoding for large response bodies, fixed
//!   `Content-Length` for small ones;
//! * content-type negotiation left to the handler via the parsed
//!   `Accept` header.
//!
//! Determinism note: responses carry **no `Date` header** and no other
//! wall-clock artifact, so two replays of the same request script
//! produce byte-identical response streams — the HTTP frontend inherits
//! the workspace's double-run gate.
//!
//! The accept loop is single-threaded: one connection is served to
//! completion before the next is accepted. That is not a scalability
//! sin here — the service itself is single-process by design (the
//! shards partition state, not OS threads), and a serial accept loop is
//! what makes `cmp`-based byte-identity CI gates meaningful.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

/// Largest accepted request head (request line + headers), bytes.
const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted request body, bytes.
const MAX_BODY: usize = 4 * 1024 * 1024;
/// Response bodies above this are sent chunked (exercises the client's
/// de-chunking path and keeps memory bounded on huge tables).
const CHUNK_THRESHOLD: usize = 4096;
/// Chunk payload size for chunked responses.
const CHUNK_SIZE: usize = 4096;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// The request target as sent (path + optional query string).
    pub target: String,
    /// The path component of the target (no query string).
    pub path: String,
    /// Lowercased header name → value (last occurrence wins).
    pub headers: Vec<(String, String)>,
    /// The request body (empty when none was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The value of header `name` (ASCII case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Accept` header, defaulting to `*/*`.
    pub fn accept(&self) -> &str {
        self.header("accept").unwrap_or("*/*")
    }

    /// True when the client asked to keep the connection open after
    /// this exchange (HTTP/1.1 default; HTTP/1.0 opt-in).
    fn keep_alive(&self, http11: bool) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => http11,
        }
    }
}

/// One response under construction. Status + content type + body;
/// framing (content-length vs chunked, keep-alive) is the writer's job.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` response.
    pub fn ok(content_type: &str, body: Vec<u8>) -> HttpResponse {
        HttpResponse { status: 200, content_type: content_type.to_string(), body }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, message: &str) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: format!("{message}\n").into_bytes(),
        }
    }
}

/// The canonical reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        _ => "Internal Server Error",
    }
}

/// What reading one request off a connection produced.
enum ReadOutcome {
    /// A parsed request and whether the connection was HTTP/1.1.
    Request(Box<HttpRequest>, bool),
    /// Clean end of connection (EOF before any request byte).
    Closed,
    /// Malformed or oversized input: answer this status and close.
    Reject(u16, &'static str),
}

/// Reads one request head + body. Bounded: never reads more than
/// `MAX_HEAD` + `MAX_BODY` bytes per request.
fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<ReadOutcome> {
    let mut head = String::new();
    let mut first = true;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(if first && head.is_empty() {
                ReadOutcome::Closed
            } else {
                ReadOutcome::Reject(400, "truncated request")
            });
        }
        if first && line.trim_end().is_empty() {
            // Tolerate leading blank lines between pipelined requests.
            continue;
        }
        first = false;
        if line.trim_end().is_empty() {
            break;
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD {
            return Ok(ReadOutcome::Reject(431, "request head too large"));
        }
    }
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Reject(400, "malformed request line"));
    };
    let http11 = version == "HTTP/1.1";
    if !http11 && version != "HTTP/1.0" {
        return Ok(ReadOutcome::Reject(400, "unsupported protocol version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Reject(400, "malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut req = HttpRequest {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        path: target.split('?').next().unwrap_or(target).to_string(),
        headers,
        body: Vec::new(),
    };
    if let Some(len) = req.header("content-length") {
        let Ok(len) = len.parse::<usize>() else {
            return Ok(ReadOutcome::Reject(400, "bad content-length"));
        };
        if len > MAX_BODY {
            return Ok(ReadOutcome::Reject(413, "request body too large"));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        req.body = body;
    } else if req
        .header("transfer-encoding")
        .is_some_and(|t| !t.eq_ignore_ascii_case("identity"))
    {
        return Ok(ReadOutcome::Reject(400, "chunked request bodies unsupported"));
    }
    Ok(ReadOutcome::Request(Box::new(req), http11))
}

/// Writes `resp`, choosing fixed-length or chunked framing. No `Date`
/// header: byte-determinism is part of this server's contract.
fn write_response(
    stream: &mut TcpStream,
    resp: &HttpResponse,
    keep_alive: bool,
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: {connection}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
    );
    if resp.body.len() > CHUNK_THRESHOLD {
        head.push_str("Transfer-Encoding: chunked\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        for chunk in resp.body.chunks(CHUNK_SIZE) {
            stream.write_all(format!("{:x}\r\n", chunk.len()).as_bytes())?;
            stream.write_all(chunk)?;
            stream.write_all(b"\r\n")?;
        }
        stream.write_all(b"0\r\n\r\n")?;
    } else {
        head.push_str(&format!("Content-Length: {}\r\n\r\n", resp.body.len()));
        stream.write_all(head.as_bytes())?;
        stream.write_all(&resp.body)?;
    }
    stream.flush()
}

/// Control flow returned by an HTTP handler alongside the response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum After {
    /// Keep serving (connection policy decided by the client headers).
    Continue,
    /// Finish this connection, then stop accepting: graceful shutdown.
    Shutdown,
}

/// Serves `listener` until a handler asks for shutdown. The handler
/// maps one parsed request to one response plus an [`After`] verdict;
/// per-connection I/O errors (client disconnects mid-request) drop the
/// connection and keep the server accepting — they are a client
/// problem, never a server-fatal one.
pub fn serve_http<H>(listener: &TcpListener, mut handler: H) -> std::io::Result<()>
where
    H: FnMut(&HttpRequest) -> (HttpResponse, After),
{
    for stream in listener.incoming() {
        // An accept-time error on one connection must not kill the
        // server; skip it and keep listening.
        let Ok(stream) = stream else { continue };
        match serve_connection(stream, &mut handler) {
            Ok(After::Shutdown) => return Ok(()),
            Ok(After::Continue) => {}
            // Client went away mid-exchange: their loss, next caller.
            Err(_) => {}
        }
    }
    Ok(())
}

/// Serves one connection to completion (keep-alive loop).
fn serve_connection<H>(stream: TcpStream, handler: &mut H) -> std::io::Result<After>
where
    H: FnMut(&HttpRequest) -> (HttpResponse, After),
{
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader)? {
            ReadOutcome::Closed => return Ok(After::Continue),
            ReadOutcome::Reject(status, msg) => {
                let resp = HttpResponse::error(status, msg);
                write_response(&mut writer, &resp, false)?;
                return Ok(After::Continue);
            }
            ReadOutcome::Request(req, http11) => {
                let (resp, after) = handler(&req);
                let keep_alive = req.keep_alive(http11) && after == After::Continue;
                write_response(&mut writer, &resp, keep_alive)?;
                if after == After::Shutdown {
                    return Ok(After::Shutdown);
                }
                if !keep_alive {
                    return Ok(After::Continue);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Reads one full response (head + fixed or chunked body) from a
    /// test client connection.
    fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>, Vec<u8>) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            let (n, v) = line.split_once(':').unwrap();
            headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
        let find = |name: &str| {
            headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        let mut body = Vec::new();
        if find("transfer-encoding").as_deref() == Some("chunked") {
            loop {
                let mut size_line = String::new();
                reader.read_line(&mut size_line).unwrap();
                let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
                let mut chunk = vec![0u8; size + 2];
                reader.read_exact(&mut chunk).unwrap();
                if size == 0 {
                    break;
                }
                body.extend_from_slice(&chunk[..size]);
            }
        } else if let Some(len) = find("content-length") {
            let mut fixed = vec![0u8; len.parse().unwrap()];
            reader.read_exact(&mut fixed).unwrap();
            body = fixed;
        }
        (status, headers, body)
    }

    #[test]
    fn keep_alive_chunking_and_shutdown_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_http(&listener, |req| match req.path.as_str() {
                "/big" => (
                    HttpResponse::ok("text/plain", vec![b'x'; 10_000]),
                    After::Continue,
                ),
                "/echo" => (
                    HttpResponse::ok("application/json", req.body.clone()),
                    After::Continue,
                ),
                "/shutdown" => (
                    HttpResponse::ok("text/plain", b"bye\n".to_vec()),
                    After::Shutdown,
                ),
                _ => (HttpResponse::error(404, "no such route"), After::Continue),
            })
            .unwrap();
        });

        // One connection, three keep-alive exchanges.
        let client = TcpStream::connect(addr).unwrap();
        let mut w = client.try_clone().unwrap();
        let mut r = BufReader::new(client);
        let body = b"{\"a\":true}";
        w.write_all(
            format!(
                "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
        w.write_all(body).unwrap();
        let (status, headers, echoed) = read_response(&mut r);
        assert_eq!(status, 200);
        assert_eq!(echoed, body);
        assert!(
            !headers.iter().any(|(n, _)| n == "date"),
            "no Date header: responses must be byte-deterministic"
        );

        w.write_all(b"GET /big HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, headers, big) = read_response(&mut r);
        assert_eq!(status, 200);
        assert_eq!(
            headers
                .iter()
                .find(|(n, _)| n == "transfer-encoding")
                .map(|(_, v)| v.as_str()),
            Some("chunked")
        );
        assert_eq!(big, vec![b'x'; 10_000]);

        w.write_all(b"GET /missing HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, _, _) = read_response(&mut r);
        assert_eq!(status, 404);

        // Close the keep-alive connection so the serial accept loop can
        // take the next one, which shuts the server down cleanly.
        drop(w);
        drop(r);
        let client2 = TcpStream::connect(addr).unwrap();
        let mut w2 = client2.try_clone().unwrap();
        let mut r2 = BufReader::new(client2);
        w2.write_all(b"POST /shutdown HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, _, bye) = read_response(&mut r2);
        assert_eq!(status, 200);
        assert_eq!(bye, b"bye\n");
        server.join().unwrap();
    }

    #[test]
    fn client_disconnect_mid_request_does_not_kill_the_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            serve_http(&listener, |req| match req.path.as_str() {
                "/shutdown" => (HttpResponse::ok("text/plain", Vec::new()), After::Shutdown),
                _ => (HttpResponse::ok("text/plain", b"ok\n".to_vec()), After::Continue),
            })
            .unwrap();
        });

        // Half a request line, then hang up.
        {
            let mut broken = TcpStream::connect(addr).unwrap();
            broken.write_all(b"GET /par").unwrap();
        }
        // A promised body that never arrives.
        {
            let mut liar = TcpStream::connect(addr).unwrap();
            liar.write_all(b"POST /q HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
                .unwrap();
        }

        // The server must still answer a well-behaved client.
        let client = TcpStream::connect(addr).unwrap();
        let mut w = client.try_clone().unwrap();
        let mut r = BufReader::new(client);
        w.write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, _, body) = read_response(&mut r);
        assert_eq!(status, 200);
        assert_eq!(body, b"ok\n");
        drop(w);
        drop(r);

        let client2 = TcpStream::connect(addr).unwrap();
        let mut w2 = client2.try_clone().unwrap();
        let mut r2 = BufReader::new(client2);
        w2.write_all(b"POST /shutdown HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, _, _) = read_response(&mut r2);
        assert_eq!(status, 200);
        server.join().unwrap();
    }
}

//! The shard layer: consistent-hash partitioning of the canonical
//! request-key space, and the per-shard worker state.
//!
//! A sharded service runs N workers, each owning an exclusive partition
//! of the FNV-1a 64 key space. The partition function is Lamping &
//! Veach's *jump consistent hash*: deterministic, allocation-free, and
//! **consistent** — growing the cluster from `n` to `n+1` shards moves
//! only the ~`1/(n+1)` of keys that land on the new shard, every other
//! key stays put. That property is what lets a per-shard disk store
//! survive a resize audit: a key either kept its owner or moved to the
//! newest shard, never to an arbitrary peer.
//!
//! Each [`Shard`] owns the state that must never be duplicated across
//! the cluster:
//!
//! * its slice of the LRU result cache — an entry lives on exactly the
//!   shard owning its key, so cluster cache capacity scales linearly
//!   with shard count and an eviction on one shard cannot disturb a hot
//!   entry on another;
//! * an optional [`pvc_store::Store`] disk tier — per-shard segment
//!   files partition the warmed catalog the same way;
//! * its bounded admission queue (the dispatcher tracks the depth and
//!   sheds per shard, so overload on a hot partition never rejects
//!   traffic owned by an idle one).
//!
//! Routing happens in [`crate::dispatch`]; this module is deliberately
//! mechanism-only so the partitioning invariants stay property-testable
//! in isolation.

use crate::cache::ResultCache;
use pvc_core::Json;

/// The shard owning `key` in an `shards`-worker cluster — Lamping &
/// Veach's jump consistent hash. Deterministic pure integer/float math,
/// so every process, test and CI gate agrees on the partition.
///
/// Guarantees (property-tested in `tests/shard_properties.rs`):
/// * the result is always in `0..shards`;
/// * every key maps to exactly one shard (it is a function);
/// * growing `shards` by one only ever reassigns keys *to the new
///   shard* — no key moves between pre-existing shards.
pub fn shard_of(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "a cluster has at least one shard");
    let mut k = key;
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < shards as i64 {
        b = j;
        k = k.wrapping_mul(2862933555777941757).wrapping_add(1);
        j = (((b + 1) as f64) * ((1u64 << 31) as f64 / (((k >> 33) + 1) as f64))) as i64;
    }
    b as usize
}

/// The per-shard spelling of a `serve.*` instrument: the global name
/// with the `serve.` prefix replaced by `serve.shard<i>.` — e.g.
/// `serve.cache.hit` labels as `serve.shard3.cache.hit`. One function
/// so counters, gauges, tests and CI greps can never drift apart.
pub fn shard_metric(shard: usize, global: &str) -> String {
    match global.strip_prefix("serve.") {
        Some(rest) => format!("serve.shard{shard}.{rest}"),
        None => format!("serve.shard{shard}.{global}"),
    }
}

/// How a shard resolved a cache probe.
pub enum ShardProbe {
    /// In-memory LRU hit.
    Hit(Json),
    /// Disk-store hit; the value was promoted into the LRU (the report
    /// carries how many entries that promotion evicted).
    StoreHit(Json, usize),
    /// A store record framed correctly but did not parse back into
    /// JSON; the caller should degrade to a recompute.
    StoreBadValue,
    /// The disk tier was probed and does not hold the key.
    StoreMiss,
    /// No entry anywhere (and no disk tier attached to probe).
    Cold,
}

/// What committing a computed response into a shard did.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShardCommit {
    /// LRU entries evicted by the insert (0 or 1).
    pub evicted: usize,
    /// A new record was appended to the disk tier.
    pub wrote: bool,
    /// The disk append failed (disk full, permissions); the shard
    /// degrades to serving without persistence.
    pub write_error: bool,
}

/// One worker shard: the exclusive owner of its key partition's LRU
/// slice and optional disk tier.
pub struct Shard {
    /// Cluster-wide shard index (stable, 0-based).
    pub id: usize,
    cache: ResultCache,
    store: Option<pvc_store::Store>,
}

impl Shard {
    /// A shard with an LRU of `cache_capacity` entries and no disk
    /// tier.
    pub fn new(id: usize, cache_capacity: usize) -> Shard {
        Shard {
            id,
            cache: ResultCache::new(cache_capacity),
            store: None,
        }
    }

    /// Attaches this shard's persistent disk tier.
    pub fn attach_store(&mut self, store: pvc_store::Store) {
        self.store = Some(store);
    }

    /// True when a disk tier is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Records in the attached disk tier (0 without one).
    pub fn store_len(&self) -> usize {
        self.store.as_ref().map_or(0, pvc_store::Store::len)
    }

    /// True when the disk tier holds `key` (text-verified).
    pub fn store_contains(&self, key: u64, text: &str) -> bool {
        self.store.as_ref().is_some_and(|s| s.contains(key, text))
    }

    /// Live LRU entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// The LRU's keys, eviction candidate first (for the partitioning
    /// property suite: no key may appear on two shards).
    pub fn cache_keys(&self) -> Vec<u64> {
        self.cache.keys_lru_order()
    }

    /// Probes the shard's tiers in order: LRU, then disk. A store hit
    /// promotes into the LRU so the next identical request stays in
    /// memory; an LRU hit never touches disk.
    pub fn probe(&mut self, key: u64, text: &str) -> ShardProbe {
        if let Some(body) = self.cache.get(key, text) {
            return ShardProbe::Hit(body);
        }
        let Some(store) = self.store.as_ref() else {
            return ShardProbe::Cold;
        };
        match store.get(key, text) {
            Some(bytes) => match parse_stored_body(bytes) {
                Some(body) => {
                    let evicted = self.cache.insert(key, text, body.clone());
                    ShardProbe::StoreHit(body, evicted)
                }
                None => ShardProbe::StoreBadValue,
            },
            None => ShardProbe::StoreMiss,
        }
    }

    /// Commits a freshly computed response: persists it to the disk
    /// tier (when one is attached) and inserts it into the LRU. The
    /// store write happens first so the stored bytes are always the
    /// compact body — a later store hit re-parses to byte-identical
    /// JSON.
    pub fn commit(&mut self, key: u64, text: &str, body: &Json) -> ShardCommit {
        let mut report = ShardCommit::default();
        if let Some(store) = self.store.as_mut() {
            match store.put(key, text, body.compact().as_bytes()) {
                Ok(true) => report.wrote = true,
                Ok(false) => {}
                Err(_) => report.write_error = true,
            }
        }
        report.evicted = self.cache.insert(key, text, body.clone());
        report
    }
}

/// Decodes a stored record back into a response body. Stored values are
/// the compact JSON bytes of the body; parsing preserves key order, so
/// re-serialisation reproduces the original bytes exactly.
fn parse_stored_body(bytes: &[u8]) -> Option<Json> {
    let text = std::str::from_utf8(bytes).ok()?;
    pvc_core::json::parse(text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jump_hash_is_in_range_and_deterministic() {
        for n in [1usize, 2, 3, 4, 7, 16, 100] {
            for key in [0u64, 1, 42, u64::MAX, 0xcbf29ce484222325] {
                let s = shard_of(key, n);
                assert!(s < n, "shard_of({key}, {n}) = {s} out of range");
                assert_eq!(s, shard_of(key, n), "must be a pure function");
            }
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        for key in 0..64u64 {
            assert_eq!(shard_of(key.wrapping_mul(0x9e3779b97f4a7c15), 1), 0);
        }
    }

    #[test]
    fn shard_metric_spelling() {
        assert_eq!(shard_metric(0, "serve.cache.hit"), "serve.shard0.cache.hit");
        assert_eq!(
            shard_metric(3, "serve.rejected.overload"),
            "serve.shard3.rejected.overload"
        );
        assert_eq!(shard_metric(1, "requests"), "serve.shard1.requests");
    }

    #[test]
    fn probe_hits_lru_before_disk_and_commit_round_trips() {
        let mut shard = Shard::new(0, 4);
        assert!(matches!(shard.probe(9, "req"), ShardProbe::Cold));
        let body = Json::obj(vec![("x", Json::Int(7))]);
        let commit = shard.commit(9, "req", &body);
        assert_eq!(commit.evicted, 0);
        assert!(!commit.wrote, "no disk tier attached");
        match shard.probe(9, "req") {
            ShardProbe::Hit(b) => assert_eq!(b, body),
            _ => panic!("expected an LRU hit"),
        }
    }
}

//! The dispatcher: routing, per-shard admission, cross-shard atom
//! coalescing and deterministic merge.
//!
//! A [`Dispatcher`] is the front of a shard cluster (one shard by
//! default — the monolithic service is just the 1-shard special case).
//! One call to [`Dispatcher::handle_batch`] processes one admitted
//! batch deterministically:
//!
//! 1. malformed inputs are answered with `bad_request` envelopes;
//! 2. reserved `stats` introspection requests are intercepted — they
//!    consume no queue slot and are answered from the cluster's own
//!    metrics after the rest of the batch resolves; the reserved
//!    `shutdown` kind is acknowledged immediately and latches the
//!    [`Dispatcher::shutdown_requested`] flag frontends poll to exit
//!    their accept loops gracefully;
//! 3. every other request is **routed to the shard owning its
//!    canonical key** ([`crate::shard::shard_of`], jump consistent
//!    hash), so cache and store entries partition cleanly and are never
//!    duplicated across shards;
//! 4. the owning shard's tiers are probed — an LRU hit is answered
//!    immediately and consumes no queue slot; a disk-store hit is
//!    answered from the shard's segment file and promoted into its LRU;
//! 5. identical in-flight requests are collapsed (single-flight) onto
//!    one computation — identical requests always hash to the same
//!    shard, so dedup is a per-shard affair by construction;
//! 6. each shard's bounded queue admits at most `queue_depth` unique
//!    computations; the rest are shed with a typed
//!    [`ServeError::Overloaded`] — overload on a hot partition never
//!    rejects traffic owned by an idle one;
//! 7. each admitted request's deterministic cost estimate must fit its
//!    budget or it is rejected with [`ServeError::DeadlineExceeded`];
//! 8. admitted requests decompose into atoms and the dispatcher builds
//!    **one cluster-wide plan**: overlapping sweep atoms coalesce
//!    across shards ([`BatchPlan`]), and the unique atoms execute in
//!    parallel on [`pvc_core::par`];
//! 9. atom results merge back per request in index order — fan-out
//!    responses are byte-identical to the single-shard output — then
//!    each response is committed (disk store + LRU) to the shard owning
//!    its request key and fanned out to every waiter in input order.
//!
//! Every step resolves to a typed [`Outcome`]; per-shard counters
//! (`serve.shard<i>.*`, one spelling via [`crate::shard::shard_metric`])
//! ride alongside the global `serve.*` registry so a hot partition is
//! visible instead of averaged away.
//!
//! Because every executor is deterministic, a response served from any
//! tier of any shard is byte-identical to one computed fresh — only the
//! counters can tell them apart.

use crate::batch::{Atom, BatchPlan};
use crate::request::{fnv1a64, Request};
use crate::service::{Executor, ServeConfig};
use crate::shard::{shard_metric, shard_of, Shard, ShardProbe};
use crate::telemetry::{Outcome, RequestTelemetry, Telemetry};
use crate::ServeError;
use pvc_core::{par, Json};
use pvc_obs::Metrics;
use std::cell::{Cell, RefCell};

/// The reserved introspection request kind answered by the dispatcher
/// itself (never forwarded to the executor, never cached).
pub const STATS_KIND: &str = "stats";

/// The reserved graceful-shutdown request kind: acknowledged with a
/// `{"shutting_down":true}` result and latched on the dispatcher so
/// frontends can drain and exit their accept loops. Never forwarded to
/// the executor, never cached, consumes no queue slot.
pub const SHUTDOWN_KIND: &str = "shutdown";

/// Virtual-cost histogram bucket bounds: powers of two covering the
/// catalog's cost range (1 .. default budget and beyond).
const COST_BOUNDS: [f64; 11] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];

/// The sharded batching/caching query service around an [`Executor`].
///
/// [`crate::Service`] is an alias for this type: the monolithic service
/// of earlier revisions is exactly a one-shard dispatcher, and every
/// frontend (stdin, TCP, HTTP) is a thin adapter over this one type.
pub struct Dispatcher<E> {
    cfg: ServeConfig,
    exec: E,
    shards: RefCell<Vec<Shard>>,
    metrics: Metrics,
    telemetry: Telemetry,
    shutdown: Cell<bool>,
}

enum Slot {
    /// Answered already (error, cache hit, or shutdown ack).
    Done(Json),
    /// Waiting on unique computation `u`.
    Waiting(usize),
    /// A reserved stats request, answered after the batch resolves.
    Stats,
}

/// Per-input telemetry captured while the admission loop decides; the
/// final outcome and envelope are bound after assembly.
struct PendingTelemetry {
    kind: String,
    key: Option<String>,
    outcome: Outcome,
    cost: Option<u64>,
    budget: Option<u64>,
    queue_depth: Option<u64>,
    shard: Option<u64>,
    /// Unique computation index, for records whose outcome/atom count
    /// depends on how the computation resolved.
    waiting: Option<usize>,
    chaos: Option<String>,
}

/// What the admission pipeline decided for one routed request.
struct Admission {
    outcome: Outcome,
    /// The owning shard (None for dispatcher-level outcomes: stats,
    /// shutdown, bad_request).
    shard: Option<usize>,
    /// The owning shard's queue depth when this request was considered.
    depth: Option<u64>,
}

impl<E: Executor> Dispatcher<E> {
    /// A dispatcher over `exec` with the given knobs; `cfg.shards`
    /// workers (min 1), each owning a `cfg.cache_capacity`-entry LRU
    /// slice and a `cfg.queue_depth`-deep admission queue. Telemetry
    /// starts disabled; attach a recorder with
    /// [`Dispatcher::set_telemetry`].
    pub fn new(exec: E, cfg: ServeConfig) -> Self {
        let n = cfg.shards.max(1);
        let shards = (0..n).map(|i| Shard::new(i, cfg.cache_capacity)).collect();
        Dispatcher {
            cfg,
            exec,
            shards: RefCell::new(shards),
            metrics: Metrics::new(),
            telemetry: Telemetry::disabled(),
            shutdown: Cell::new(false),
        }
    }

    /// The cluster's metrics registry (`serve.*` global counters plus
    /// the `serve.shard<i>.*` per-shard spellings).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Worker shards in this cluster.
    pub fn shard_count(&self) -> usize {
        self.shards.borrow().len()
    }

    /// The shard owning canonical key `key`.
    pub fn shard_of_key(&self, key: u64) -> usize {
        shard_of(key, self.shard_count())
    }

    /// Attaches a persistent result store as shard 0's second cache
    /// tier. Only valid on a single-shard cluster — a sharded cluster
    /// partitions its disk tier too; use
    /// [`Dispatcher::attach_shard_store`] per shard there.
    pub fn attach_store(&mut self, store: pvc_store::Store, report: &pvc_store::OpenReport) {
        assert_eq!(
            self.shard_count(),
            1,
            "attach_store is the single-shard convenience; \
             sharded clusters attach one store per shard"
        );
        self.attach_shard_store(0, store, report);
    }

    /// Attaches `store` as shard `shard`'s persistent tier (probe order
    /// LRU → store → compute for keys that shard owns) and exports the
    /// open report through the cluster metrics: `store.open.records`
    /// (valid prefix loaded), `store.open.invalidated` (stale
    /// fingerprint reset the store), `store.open.tail_corrupt` /
    /// `store.open.dropped_bytes` (torn or bit-flipped tail truncated
    /// away), and the `store.entries` gauge.
    pub fn attach_shard_store(
        &mut self,
        shard: usize,
        store: pvc_store::Store,
        report: &pvc_store::OpenReport,
    ) {
        self.metrics.count("store.open.records", report.records as u64);
        if report.invalidated() {
            self.metrics.count("store.open.invalidated", 1);
        }
        if report.tail_corrupt() {
            self.metrics.count("store.open.tail_corrupt", 1);
            self.metrics.count("store.open.dropped_bytes", report.dropped_bytes);
        }
        let mut shards = self.shards.borrow_mut();
        shards[shard].attach_store(store);
        let total: usize = shards.iter().map(Shard::store_len).sum();
        self.metrics.gauge("store.entries", total as f64);
        self.metrics
            .gauge(&shard_metric(shard, "serve.store.entries"), shards[shard].store_len() as f64);
    }

    /// True when any shard has a persistent store attached.
    pub fn has_store(&self) -> bool {
        self.shards.borrow().iter().any(Shard::has_store)
    }

    /// Records across every shard's attached store (0 when none).
    pub fn store_len(&self) -> usize {
        self.shards.borrow().iter().map(Shard::store_len).sum()
    }

    /// True when shard `shard`'s disk tier holds `key` (text-verified).
    /// For the partitioning property suite.
    pub fn shard_store_contains(&self, shard: usize, key: u64, text: &str) -> bool {
        self.shards.borrow()[shard].store_contains(key, text)
    }

    /// Shard `shard`'s LRU keys, eviction candidate first. For the
    /// partitioning property suite: no key may appear on two shards.
    pub fn shard_cache_keys(&self, shard: usize) -> Vec<u64> {
        self.shards.borrow()[shard].cache_keys()
    }

    /// Attaches a telemetry recorder (access log + flight recorder).
    pub fn set_telemetry(&mut self, t: Telemetry) {
        self.telemetry = t;
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Live cache entries across every shard.
    pub fn cache_len(&self) -> usize {
        self.shards.borrow().iter().map(Shard::cache_len).sum()
    }

    /// The executor (for frontends that need catalog introspection).
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// True once a reserved `shutdown` request was acknowledged; sticky
    /// — frontends poll this after each batch to drain and exit.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.get()
    }

    /// Parses and serves one line-delimited batch; one response
    /// envelope per input line, in order.
    pub fn handle_lines(&self, lines: &[&str]) -> Vec<Json> {
        self.handle_batch(lines.iter().map(|l| Request::parse(l)).collect())
    }

    /// Serves one batch of parsed requests (parse failures included, so
    /// their envelopes stay in position). Never panics, never blocks
    /// indefinitely: every input gets exactly one envelope.
    pub fn handle_batch(&self, inputs: Vec<Result<Request, ServeError>>) -> Vec<Json> {
        self.metrics.count("serve.requests", inputs.len() as u64);
        let recording = self.telemetry.enabled();
        let mut slots: Vec<Slot> = Vec::with_capacity(inputs.len());
        let mut pending: Vec<PendingTelemetry> = Vec::new();
        // Unique admitted computations and their owning shards, in
        // arrival order (cluster-wide — the merge is index-ordered so
        // fan-out output is byte-identical to the single-shard run).
        let mut unique: Vec<Request> = Vec::new();
        let mut unique_shard: Vec<usize> = Vec::new();
        let mut shards = self.shards.borrow_mut();
        for input in &inputs {
            let req = match input {
                Ok(r) => r,
                Err(e) => {
                    self.metrics.count(Outcome::BadRequest.as_metric_name(), 1);
                    slots.push(Slot::Done(err_envelope(None, e)));
                    if recording {
                        pending.push(PendingTelemetry {
                            kind: "?".to_string(),
                            key: None,
                            outcome: Outcome::BadRequest,
                            cost: None,
                            budget: None,
                            queue_depth: None,
                            shard: None,
                            waiting: None,
                            chaos: None,
                        });
                    }
                    continue;
                }
            };
            let admission =
                self.admit(req, &mut unique, &mut unique_shard, &mut slots, &mut shards);
            if recording {
                let reserved =
                    matches!(admission.outcome, Outcome::Stats | Outcome::Shutdown);
                let cost = if reserved {
                    None
                } else {
                    // Pure and deterministic, so observing the cost of
                    // hits and shed requests perturbs nothing.
                    Some(self.exec.cost(req))
                };
                if let Some(c) = cost {
                    self.observe_cost(req, c);
                }
                pending.push(PendingTelemetry {
                    kind: request_kind(req),
                    key: Some(req.key_hex()),
                    outcome: admission.outcome,
                    cost,
                    budget: if reserved {
                        None
                    } else {
                        Some(req.budget().unwrap_or(self.cfg.default_budget))
                    },
                    queue_depth: admission.depth,
                    shard: admission.shard.map(|s| s as u64),
                    waiting: match slots.last() {
                        Some(Slot::Waiting(u)) => Some(*u),
                        _ => None,
                    },
                    chaos: request_chaos(req),
                });
            }
        }

        // Per-shard admitted queue depth for this batch, visible in
        // `/metrics` and the stats breakdown.
        for shard in shards.iter() {
            let depth = unique_shard.iter().filter(|&&s| s == shard.id).count();
            self.metrics
                .gauge(&shard_metric(shard.id, "serve.queue.depth"), depth as f64);
        }

        // Decompose admitted requests into atoms; decomposition errors
        // resolve that request (and its waiters) to a Failed envelope.
        let mut decomposed: Vec<Result<Vec<Atom>, String>> = Vec::with_capacity(unique.len());
        for req in &unique {
            decomposed.push(self.exec.atoms(req));
        }
        let plan = BatchPlan::build(
            decomposed
                .iter()
                .map(|d| d.as_ref().cloned().unwrap_or_default())
                .collect(),
        );
        self.metrics
            .count("serve.atoms.requested", plan.atoms_requested as u64);
        self.metrics.count("serve.atoms.executed", plan.atoms.len() as u64);
        // Atom-level shard attribution: an atom is owned by the shard
        // its id hashes to (atoms have no request key — two requests on
        // different shards can coalesce onto one atom).
        let shard_count = shards.len();
        for atom in &plan.atoms {
            let owner = shard_of(fnv1a64(atom.id.as_bytes()), shard_count);
            self.metrics
                .count(&shard_metric(owner, "serve.atoms.executed"), 1);
        }

        // One parallel pass over the unique atoms.
        let exec = &self.exec;
        let atoms = &plan.atoms;
        let atom_results: Vec<Result<Json, String>> =
            par::map_collect(atoms.len(), |i| exec.execute_atom(&atoms[i]));

        // Merge executor-reported work counters on the main thread, in
        // atom order (cache hits re-run nothing, so they add none).
        for (atom, result) in atoms.iter().zip(&atom_results) {
            if let Ok(body) = result {
                for (name, n) in self.exec.work_counters(atom, body) {
                    self.metrics.count(&name, n);
                }
            }
        }

        // Assemble one envelope per unique computation and commit it to
        // the shard owning the request key (disk store, then LRU).
        let mut outcomes: Vec<Json> = Vec::with_capacity(unique.len());
        let mut unique_failed: Vec<bool> = Vec::with_capacity(unique.len());
        for (u, req) in unique.iter().enumerate() {
            let body = match &decomposed[u] {
                Err(msg) => Err(msg.clone()),
                Ok(_) => plan.assignments[u]
                    .iter()
                    .map(|&a| atom_results[a].clone())
                    .collect::<Result<Vec<Json>, String>>()
                    .and_then(|parts| self.exec.assemble(req, parts)),
            };
            match body {
                Ok(body) => {
                    let owner = unique_shard[u];
                    let commit = shards[owner].commit(req.key(), req.text(), &body);
                    self.metrics.count("serve.cache.evict", commit.evicted as u64);
                    if commit.wrote {
                        self.metrics.count("serve.store.write", 1);
                    }
                    if commit.write_error {
                        // An append failure (disk full, permissions)
                        // degrades to serving without persistence.
                        self.metrics.count("serve.store.write_error", 1);
                    }
                    outcomes.push(ok_envelope(req, body));
                    unique_failed.push(false);
                }
                Err(msg) => {
                    self.metrics.count(Outcome::Failed.as_metric_name(), 1);
                    self.metrics
                        .count(&shard_metric(unique_shard[u], Outcome::Failed.as_metric_name()), 1);
                    outcomes.push(err_envelope(Some(req), &ServeError::Failed(msg)));
                    unique_failed.push(true);
                }
            }
        }
        let mut cache_total = 0usize;
        let mut store_total = 0usize;
        for shard in shards.iter() {
            cache_total += shard.cache_len();
            self.metrics.gauge(
                &shard_metric(shard.id, "serve.cache.entries"),
                shard.cache_len() as f64,
            );
            if shard.has_store() {
                store_total += shard.store_len();
                self.metrics.gauge(
                    &shard_metric(shard.id, "serve.store.entries"),
                    shard.store_len() as f64,
                );
            }
        }
        self.metrics.gauge("serve.cache.entries", cache_total as f64);
        if shards.iter().any(Shard::has_store) {
            self.metrics.gauge("store.entries", store_total as f64);
        }
        drop(shards);

        // Record telemetry for every non-stats input, in input order,
        // before the stats body is built — so a stats request in the
        // same batch already sees this batch in the flight recorder.
        if recording {
            for (i, p) in pending.iter().enumerate() {
                if p.outcome == Outcome::Stats {
                    continue;
                }
                let (outcome, atoms_n) = match p.waiting {
                    Some(u) if unique_failed[u] => (Outcome::Failed, None),
                    Some(u) => (p.outcome, Some(plan.assignments[u].len() as u64)),
                    None => (p.outcome, None),
                };
                let envelope = match &slots[i] {
                    Slot::Done(env) => env,
                    Slot::Waiting(u) => &outcomes[*u],
                    Slot::Stats => unreachable!("stats filtered above"),
                };
                let text = inputs[i].as_ref().ok().map(|r| r.text());
                self.telemetry.record(
                    RequestTelemetry {
                        seq: 0,
                        kind: p.kind.clone(),
                        key: p.key.clone(),
                        outcome,
                        cost: p.cost,
                        budget: p.budget,
                        queue_depth: p.queue_depth,
                        shard: p.shard,
                        atoms: atoms_n,
                        chaos: p.chaos.clone(),
                    },
                    text,
                    envelope,
                );
            }
        }

        // Answer stats requests last: one body reflecting the whole
        // batch, shared by every stats input, never cached.
        let stats_body = slots
            .iter()
            .any(|s| matches!(s, Slot::Stats))
            .then(|| self.stats_body());

        let responses: Vec<Json> = slots
            .iter()
            .enumerate()
            .map(|(i, s)| match s {
                Slot::Done(env) => env.clone(),
                Slot::Waiting(u) => outcomes[*u].clone(),
                Slot::Stats => {
                    let req = inputs[i].as_ref().expect("stats slots carry a request");
                    ok_envelope(req, stats_body.clone().expect("built above"))
                }
            })
            .collect();

        if recording {
            for (i, p) in pending.iter().enumerate() {
                if p.outcome != Outcome::Stats {
                    continue;
                }
                self.telemetry.record(
                    RequestTelemetry {
                        seq: 0,
                        kind: p.kind.clone(),
                        key: p.key.clone(),
                        outcome: Outcome::Stats,
                        cost: None,
                        budget: None,
                        queue_depth: None,
                        shard: None,
                        atoms: None,
                        chaos: None,
                    },
                    inputs[i].as_ref().ok().map(|r| r.text()),
                    &responses[i],
                );
            }
        }

        responses
    }

    /// Runs one parsed request through the routed admission pipeline,
    /// pushing its slot and returning the admission decision. `Miss`
    /// may still become `Failed` at assembly time.
    fn admit(
        &self,
        req: &Request,
        unique: &mut Vec<Request>,
        unique_shard: &mut Vec<usize>,
        slots: &mut Vec<Slot>,
        shards: &mut [Shard],
    ) -> Admission {
        let reserved = |outcome: Outcome| Admission { outcome, shard: None, depth: None };
        if request_kind(req) == STATS_KIND {
            self.metrics.count(Outcome::Stats.as_metric_name(), 1);
            slots.push(Slot::Stats);
            return reserved(Outcome::Stats);
        }
        if request_kind(req) == SHUTDOWN_KIND {
            self.metrics.count(Outcome::Shutdown.as_metric_name(), 1);
            self.shutdown.set(true);
            let ack = Json::obj(vec![("shutting_down", Json::Bool(true))]);
            slots.push(Slot::Done(ok_envelope(req, ack)));
            return reserved(Outcome::Shutdown);
        }
        // Route by canonical key: this shard exclusively owns the
        // request's cache and store entries.
        let owner = shard_of(req.key(), shards.len());
        let depth = unique_shard.iter().filter(|&&s| s == owner).count() as u64;
        let decided = |outcome: Outcome| {
            self.metrics.count(outcome.as_metric_name(), 1);
            self.metrics
                .count(&shard_metric(owner, outcome.as_metric_name()), 1);
            Admission { outcome, shard: Some(owner), depth: Some(depth) }
        };
        self.metrics.count(&shard_metric(owner, "serve.requests"), 1);
        match shards[owner].probe(req.key(), req.text()) {
            ShardProbe::Hit(body) => {
                slots.push(Slot::Done(ok_envelope(req, body)));
                return decided(Outcome::Hit);
            }
            ShardProbe::StoreHit(body, evicted) => {
                self.metrics.count("serve.cache.evict", evicted as u64);
                slots.push(Slot::Done(ok_envelope(req, body)));
                return decided(Outcome::StoreHit);
            }
            ShardProbe::StoreBadValue => {
                // A record that frames correctly but does not parse as
                // JSON: degrade to recompute, count it.
                self.metrics.count("serve.store.bad_value", 1);
            }
            ShardProbe::StoreMiss => {
                self.metrics.count("serve.store.miss", 1);
                self.metrics
                    .count(&shard_metric(owner, "serve.store.miss"), 1);
            }
            ShardProbe::Cold => {}
        }
        if let Some(u) = unique
            .iter()
            .position(|p| p.key() == req.key() && p.text() == req.text())
        {
            slots.push(Slot::Waiting(u));
            return decided(Outcome::Dedup);
        }
        // The bounded queue is per shard: a hot partition sheds its own
        // overflow while idle shards keep admitting.
        if depth >= self.cfg.queue_depth as u64 {
            let e = ServeError::Overloaded { depth: self.cfg.queue_depth };
            slots.push(Slot::Done(err_envelope(Some(req), &e)));
            return decided(Outcome::Overload);
        }
        let cost = self.exec.cost(req);
        let budget = req.budget().unwrap_or(self.cfg.default_budget);
        if cost > budget {
            let e = ServeError::DeadlineExceeded { cost, budget };
            slots.push(Slot::Done(err_envelope(Some(req), &e)));
            return decided(Outcome::Deadline);
        }
        slots.push(Slot::Waiting(unique.len()));
        unique.push(req.clone());
        unique_shard.push(owner);
        decided(Outcome::Miss)
    }

    /// Records `cost` into the per-kind virtual-cost histogram
    /// (`serve.cost.<kind>`), declaring it on first use.
    fn observe_cost(&self, req: &Request, cost: u64) {
        let name = format!("serve.cost.{}", request_kind(req));
        if !self.metrics.has_histogram(&name) {
            self.metrics.declare_histogram(&name, &COST_BOUNDS);
        }
        self.metrics.record(&name, cost as f64);
    }

    /// The per-shard breakdown served inside the stats body: one entry
    /// per shard with its admitted queue depth, hit/miss/shed counters
    /// and live cache size — the ISSUE's "hot partitions are visible,
    /// not averaged away" requirement.
    fn shards_breakdown(&self) -> Json {
        let shards = self.shards.borrow();
        let entries: Vec<Json> = shards
            .iter()
            .map(|shard| {
                let c = |global: &str| {
                    Json::Int(self.metrics.counter(&shard_metric(shard.id, global)) as i64)
                };
                let g = |global: &str| {
                    self.metrics
                        .gauge_value(&shard_metric(shard.id, global))
                        .map_or(Json::Int(0), |v| Json::Int(v as i64))
                };
                Json::obj(vec![
                    ("shard", Json::Int(shard.id as i64)),
                    ("requests", c("serve.requests")),
                    ("queue_depth", g("serve.queue.depth")),
                    ("cache_hits", c("serve.cache.hit")),
                    ("store_hits", c("serve.store.hit")),
                    ("misses", c("serve.cache.miss")),
                    ("deduped", c("serve.singleflight.deduped")),
                    ("sheds", c("serve.rejected.overload")),
                    ("deadlines", c("serve.rejected.deadline")),
                    ("failed", c("serve.failed")),
                    ("atoms_executed", c("serve.atoms.executed")),
                    ("cache_entries", Json::Int(shard.cache_len() as i64)),
                    ("store_entries", Json::Int(shard.store_len() as i64)),
                ])
            })
            .collect();
        Json::Arr(entries)
    }

    /// The stats snapshot served for a `stats` request: every counter,
    /// every set gauge, p50/p90/p99 + count/sum per declared histogram,
    /// the per-shard breakdown, and — when telemetry records — the
    /// flight-recorder dump. All name-sorted, all virtual quantities:
    /// byte-deterministic.
    pub fn stats_body(&self) -> Json {
        let counters = Json::Obj(
            self.metrics
                .counters("")
                .into_iter()
                .map(|(n, v)| (n, Json::Int(v as i64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.metrics
                .gauges("")
                .into_iter()
                .map(|(n, v)| (n, Json::Num(v)))
                .collect(),
        );
        let quantiles = Json::Obj(
            self.metrics
                .histogram_names("")
                .into_iter()
                .map(|n| {
                    let (_, count, sum) =
                        self.metrics.histogram(&n).expect("name just listed");
                    let q = |p: f64| {
                        self.metrics.quantile(&n, p).map_or(Json::Null, Json::Num)
                    };
                    let body = Json::obj(vec![
                        ("count", Json::Int(count as i64)),
                        ("p50", q(0.50)),
                        ("p90", q(0.90)),
                        ("p99", q(0.99)),
                        ("sum", Json::Num(sum)),
                    ]);
                    (n, body)
                })
                .collect(),
        );
        let mut pairs = vec![
            ("counters", counters),
            ("gauges", gauges),
            ("quantiles", quantiles),
            ("shards", self.shards_breakdown()),
        ];
        if self.telemetry.enabled() {
            pairs.push(("flight_recorder", self.telemetry.to_json()));
        }
        Json::obj(pairs).sorted()
    }
}

/// The request's `kind` field (guaranteed present by request parsing).
fn request_kind(req: &Request) -> String {
    match req.canon().get("kind") {
        Some(Json::Str(k)) => k.clone(),
        _ => "?".to_string(),
    }
}

/// The request's chaos spec, if it carries one.
fn request_chaos(req: &Request) -> Option<String> {
    match req.canon().get("chaos") {
        Some(Json::Str(s)) => Some(s.clone()),
        Some(other) => Some(other.compact()),
        None => None,
    }
}

/// Success envelope: content address, normalised request, result body.
fn ok_envelope(req: &Request, body: Json) -> Json {
    Json::obj(vec![
        ("key", Json::str(req.key_hex())),
        ("request", req.canon().clone()),
        ("result", body),
    ])
}

/// Error envelope; carries the request context when it parsed.
fn err_envelope(req: Option<&Request>, err: &ServeError) -> Json {
    let mut pairs = Vec::new();
    if let Some(req) = req {
        pairs.push(("key", Json::str(req.key_hex())));
        pairs.push(("request", req.canon().clone()));
    }
    pairs.push(("error", err.to_json()));
    Json::obj(pairs)
}

//! Canonical request envelope and content addressing.
//!
//! A request is a JSON object carrying at least a string `kind` field.
//! Two optional transport fields are stripped before hashing because
//! they do not change *what* is computed:
//!
//! * `budget` — per-request deadline budget in abstract cost units
//!   (admission control compares it against the executor's
//!   deterministic cost estimate).
//!
//! What remains is canonicalised (keys sorted at every level, 2-space
//! pretty layout) and hashed with FNV-1a 64; the hash is the cache key
//! and the `key` field echoed in every response envelope.

use crate::ServeError;
use pvc_core::json::{self, Json};

/// FNV-1a, 64-bit: the canonical content hash for request addressing —
/// the same convention `pvc-store` uses for frame checksums, so request
/// keys and store keys are one vocabulary.
pub use pvc_store::fnv1a64;

/// A parsed, normalised, content-addressed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    canon: Json,
    text: String,
    key: u64,
    budget: Option<u64>,
}

impl Request {
    /// Parses one request document from its JSON text.
    pub fn parse(input: &str) -> Result<Request, ServeError> {
        let doc = json::parse(input)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        Request::from_json(doc)
    }

    /// Builds a request from an already-parsed JSON value.
    pub fn from_json(doc: Json) -> Result<Request, ServeError> {
        let Json::Obj(pairs) = doc else {
            return Err(ServeError::BadRequest(
                "request must be a JSON object".into(),
            ));
        };
        let mut budget = None;
        let mut kept: Vec<(String, Json)> = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            if k == "budget" {
                match v {
                    Json::Int(n) if n >= 0 => budget = Some(n as u64),
                    other => {
                        return Err(ServeError::BadRequest(format!(
                            "budget must be a non-negative integer, got {}",
                            other.compact()
                        )))
                    }
                }
            } else {
                kept.push((k, v));
            }
        }
        let canon = Json::Obj(kept).sorted();
        match canon.get("kind") {
            Some(Json::Str(_)) => {}
            _ => {
                return Err(ServeError::BadRequest(
                    "request needs a string 'kind' field".into(),
                ))
            }
        }
        let text = canon.canonical();
        let key = fnv1a64(text.as_bytes());
        Ok(Request { canon, text, key, budget })
    }

    /// The request kind (validated to exist at parse time).
    pub fn kind(&self) -> &str {
        match self.canon.get("kind") {
            Some(Json::Str(s)) => s,
            _ => unreachable!("validated in from_json"),
        }
    }

    /// Field lookup on the normalised request body.
    pub fn get(&self, field: &str) -> Option<&Json> {
        self.canon.get(field)
    }

    /// The normalised request body (sorted keys, budget stripped).
    pub fn canon(&self) -> &Json {
        &self.canon
    }

    /// Canonical bytes — the hash input.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Content-address of this request.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The content-address rendered for response envelopes.
    pub fn key_hex(&self) -> String {
        format!("fnv64:{:016x}", self.key)
    }

    /// Per-request deadline budget, if the client set one.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_ignores_field_order_and_budget() {
        let a = Request::parse(r#"{"kind":"table","id":2}"#).unwrap();
        let b = Request::parse(r#"{"id":2,"kind":"table"}"#).unwrap();
        let c = Request::parse(r#"{"id":2,"kind":"table","budget":5}"#).unwrap();
        assert_eq!(a.key(), b.key(), "field order must not change the key");
        assert_eq!(a.key(), c.key(), "budget is transport, not content");
        assert_eq!(c.budget(), Some(5));
        assert_eq!(a.budget(), None);
        assert_eq!(a.text(), c.text());
    }

    #[test]
    fn distinct_requests_get_distinct_keys() {
        let a = Request::parse(r#"{"kind":"table","id":2}"#).unwrap();
        let b = Request::parse(r#"{"kind":"table","id":3}"#).unwrap();
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn malformed_requests_are_typed_bad_request() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"no_kind":1}"#,
            r#"{"kind":7}"#,
            r#"{"kind":"x","budget":-1}"#,
            r#"{"kind":"x","budget":"lots"}"#,
        ] {
            let err = Request::parse(bad).unwrap_err();
            assert_eq!(err.kind(), "bad_request", "{bad}: {err}");
        }
    }

    #[test]
    fn key_hex_is_stable() {
        let r = Request::parse(r#"{"kind":"devices"}"#).unwrap();
        assert!(r.key_hex().starts_with("fnv64:"));
        assert_eq!(r.key_hex().len(), "fnv64:".len() + 16);
        assert_eq!(r.key_hex(), Request::parse(r#"{"kind":"devices"}"#).unwrap().key_hex());
    }
}

//! The service contract: the [`Executor`] trait an application plugs
//! into the cluster, the [`ServeConfig`] knobs, and the [`Service`]
//! alias.
//!
//! Earlier revisions implemented the whole pipeline here as a
//! monolithic `Service`. The pipeline now lives in [`crate::dispatch`]
//! (routing, admission, coalescing, merge) over the worker shards of
//! [`crate::shard`]; `Service` remains as an alias for the one-shard
//! default so every existing call site — and the mental model "a
//! service answers batches" — keeps working unchanged.

use crate::batch::Atom;
use crate::request::Request;
use pvc_core::Json;

pub use crate::dispatch::{Dispatcher, SHUTDOWN_KIND, STATS_KIND};

/// What a request means: decomposition into simulation passes and
/// reassembly of their results. Implementations must be deterministic —
/// equal atoms must always produce byte-identical results.
pub trait Executor: Sync {
    /// Deterministic cost estimate in abstract units, compared against
    /// the request's budget at admission time.
    fn cost(&self, req: &Request) -> u64;

    /// Decomposes `req` into ≥ 1 atoms. Equal atom ids across requests
    /// coalesce into one execution per batch.
    fn atoms(&self, req: &Request) -> Result<Vec<Atom>, String>;

    /// Executes one atom (called from worker threads; must be pure).
    fn execute_atom(&self, atom: &Atom) -> Result<Json, String>;

    /// Reassembles the response body from the request's atom results,
    /// in the order [`Executor::atoms`] returned them.
    fn assemble(&self, req: &Request, parts: Vec<Json>) -> Result<Json, String>;

    /// Work counters to merge into the service metrics after `atom`
    /// executed successfully with `result` — the hook that surfaces
    /// solver effort (`simrt.*`) in the service's stats snapshot.
    /// Must be a pure function of the atom and its result so cached
    /// and recomputed paths stay byte-identical. Default: none.
    fn work_counters(&self, _atom: &Atom, _result: &Json) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum unique computations admitted per batch **per shard**;
    /// the rest shed. With one shard this is the global queue depth.
    pub queue_depth: usize,
    /// LRU cache capacity in entries **per shard** (0 disables
    /// caching).
    pub cache_capacity: usize,
    /// Budget applied when a request carries no `budget` field.
    pub default_budget: u64,
    /// Worker shards partitioning the request-key space (values below
    /// 1 are treated as 1). Each shard owns an exclusive consistent-
    /// hash slice of the key space with its own LRU, admission queue,
    /// and optional disk store.
    pub shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 32,
            cache_capacity: 64,
            default_budget: 64,
            shards: 1,
        }
    }
}

/// The batching, caching query service around an [`Executor`] — an
/// alias for the sharded [`Dispatcher`] (one shard by default).
pub type Service<E> = Dispatcher<E>;

//! The service: admission control, budgets, single-flight, cache and
//! parallel atom execution.
//!
//! One call to [`Service::handle_batch`] processes one admitted batch
//! deterministically:
//!
//! 1. malformed inputs are answered with `bad_request` envelopes;
//! 2. reserved `stats` introspection requests are intercepted — they
//!    consume no queue slot and are answered from the service's own
//!    metrics after the rest of the batch resolves;
//! 3. the LRU cache is probed — hits are answered immediately and
//!    consume **no** queue slot, so a warm cache keeps serving under
//!    overload;
//! 4. when a persistent [`pvc_store::Store`] is attached
//!    ([`Service::attach_store`]), it is probed next: a store hit is
//!    answered from disk, **promoted into the LRU**, and consumes no
//!    queue slot either — a warmed store makes every catalog request a
//!    first-query hit;
//! 5. identical in-flight requests are collapsed (single-flight) onto
//!    one computation — duplicates consume no queue slot either;
//! 6. the bounded queue admits at most `queue_depth` unique
//!    computations; the rest are shed with a typed
//!    [`ServeError::Overloaded`];
//! 7. each admitted request's deterministic cost estimate must fit its
//!    budget (request `budget` field, else the configured default) or
//!    it is rejected with [`ServeError::DeadlineExceeded`];
//! 8. admitted requests decompose into atoms, overlapping sweep atoms
//!    coalesce ([`BatchPlan`]), and the unique atoms execute in
//!    parallel on [`pvc_core::par`];
//! 9. responses are assembled, cached (LRU), persisted to the store
//!    when one is attached, and fanned out to every waiter in input
//!    order.
//!
//! Every step resolves to a typed [`Outcome`], which is the single
//! source of truth for the `serve.*` counter spelling and — when a
//! [`Telemetry`] handle is attached — the per-request access-log
//! record and flight-recorder entry.
//!
//! Because every executor is deterministic, a response served from
//! cache is byte-identical to one computed fresh — only the
//! `serve.cache.*` counters can tell them apart.

use crate::batch::{Atom, BatchPlan};
use crate::cache::ResultCache;
use crate::request::Request;
use crate::telemetry::{Outcome, RequestTelemetry, Telemetry};
use crate::ServeError;
use pvc_core::{par, Json};
use pvc_obs::Metrics;
use std::cell::RefCell;

/// The reserved introspection request kind answered by the service
/// itself (never forwarded to the executor, never cached).
pub const STATS_KIND: &str = "stats";

/// Virtual-cost histogram bucket bounds: powers of two covering the
/// catalog's cost range (1 .. default budget and beyond).
const COST_BOUNDS: [f64; 11] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
];

/// What a request means: decomposition into simulation passes and
/// reassembly of their results. Implementations must be deterministic —
/// equal atoms must always produce byte-identical results.
pub trait Executor: Sync {
    /// Deterministic cost estimate in abstract units, compared against
    /// the request's budget at admission time.
    fn cost(&self, req: &Request) -> u64;

    /// Decomposes `req` into ≥ 1 atoms. Equal atom ids across requests
    /// coalesce into one execution per batch.
    fn atoms(&self, req: &Request) -> Result<Vec<Atom>, String>;

    /// Executes one atom (called from worker threads; must be pure).
    fn execute_atom(&self, atom: &Atom) -> Result<Json, String>;

    /// Reassembles the response body from the request's atom results,
    /// in the order [`Executor::atoms`] returned them.
    fn assemble(&self, req: &Request, parts: Vec<Json>) -> Result<Json, String>;

    /// Work counters to merge into the service metrics after `atom`
    /// executed successfully with `result` — the hook that surfaces
    /// solver effort (`simrt.*`) in the service's stats snapshot.
    /// Must be a pure function of the atom and its result so cached
    /// and recomputed paths stay byte-identical. Default: none.
    fn work_counters(&self, _atom: &Atom, _result: &Json) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum unique computations admitted per batch; the rest shed.
    pub queue_depth: usize,
    /// LRU cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Budget applied when a request carries no `budget` field.
    pub default_budget: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 32,
            cache_capacity: 64,
            default_budget: 64,
        }
    }
}

/// The batching, caching query service around an [`Executor`].
pub struct Service<E> {
    cfg: ServeConfig,
    exec: E,
    cache: RefCell<ResultCache>,
    /// The persistent second tier, probed on LRU misses.
    store: RefCell<Option<pvc_store::Store>>,
    metrics: Metrics,
    telemetry: Telemetry,
}

enum Slot {
    /// Answered already (error or cache hit).
    Done(Json),
    /// Waiting on unique computation `u`.
    Waiting(usize),
    /// A reserved stats request, answered after the batch resolves.
    Stats,
}

/// Per-input telemetry captured while the admission loop decides; the
/// final outcome and envelope are bound after assembly.
struct PendingTelemetry {
    kind: String,
    key: Option<String>,
    outcome: Outcome,
    cost: Option<u64>,
    budget: Option<u64>,
    queue_depth: Option<u64>,
    /// Unique computation index, for records whose outcome/atom count
    /// depends on how the computation resolved.
    waiting: Option<usize>,
    chaos: Option<String>,
}

impl<E: Executor> Service<E> {
    /// A service over `exec` with the given knobs. Telemetry starts
    /// disabled; attach a recorder with [`Service::set_telemetry`].
    pub fn new(exec: E, cfg: ServeConfig) -> Self {
        let cache = RefCell::new(ResultCache::new(cfg.cache_capacity));
        Service {
            cfg,
            exec,
            cache,
            store: RefCell::new(None),
            metrics: Metrics::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// The service's metrics registry (`serve.*` counters).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Attaches a persistent result store as the second cache tier
    /// (LRU → store → compute) and exports the open report through the
    /// service metrics: `store.open.records` (valid prefix loaded),
    /// `store.open.invalidated` (stale fingerprint reset the store),
    /// `store.open.tail_corrupt` / `store.open.dropped_bytes` (torn or
    /// bit-flipped tail truncated away), and the `store.entries` gauge.
    pub fn attach_store(&mut self, store: pvc_store::Store, report: &pvc_store::OpenReport) {
        self.metrics.count("store.open.records", report.records as u64);
        if report.invalidated() {
            self.metrics.count("store.open.invalidated", 1);
        }
        if report.tail_corrupt() {
            self.metrics.count("store.open.tail_corrupt", 1);
            self.metrics.count("store.open.dropped_bytes", report.dropped_bytes);
        }
        self.metrics.gauge("store.entries", store.len() as f64);
        *self.store.borrow_mut() = Some(store);
    }

    /// True when a persistent store is attached.
    pub fn has_store(&self) -> bool {
        self.store.borrow().is_some()
    }

    /// Records in the attached store (0 when none is attached).
    pub fn store_len(&self) -> usize {
        self.store.borrow().as_ref().map_or(0, pvc_store::Store::len)
    }

    /// Attaches a telemetry recorder (access log + flight recorder).
    pub fn set_telemetry(&mut self, t: Telemetry) {
        self.telemetry = t;
    }

    /// The attached telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Live cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// The executor (for frontends that need catalog introspection).
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// Parses and serves one line-delimited batch; one response
    /// envelope per input line, in order.
    pub fn handle_lines(&self, lines: &[&str]) -> Vec<Json> {
        self.handle_batch(lines.iter().map(|l| Request::parse(l)).collect())
    }

    /// Serves one batch of parsed requests (parse failures included, so
    /// their envelopes stay in position). Never panics, never blocks
    /// indefinitely: every input gets exactly one envelope.
    pub fn handle_batch(&self, inputs: Vec<Result<Request, ServeError>>) -> Vec<Json> {
        self.metrics.count("serve.requests", inputs.len() as u64);
        let recording = self.telemetry.enabled();
        let mut slots: Vec<Slot> = Vec::with_capacity(inputs.len());
        let mut pending: Vec<PendingTelemetry> = Vec::new();
        // Unique admitted computations, their waiters, in arrival order.
        let mut unique: Vec<Request> = Vec::new();
        let mut cache = self.cache.borrow_mut();
        for input in &inputs {
            let req = match input {
                Ok(r) => r,
                Err(e) => {
                    self.metrics.count(Outcome::BadRequest.as_metric_name(), 1);
                    slots.push(Slot::Done(err_envelope(None, e)));
                    if recording {
                        pending.push(PendingTelemetry {
                            kind: "?".to_string(),
                            key: None,
                            outcome: Outcome::BadRequest,
                            cost: None,
                            budget: None,
                            queue_depth: None,
                            waiting: None,
                            chaos: None,
                        });
                    }
                    continue;
                }
            };
            let depth_at_admission = unique.len() as u64;
            let outcome = self.admit(req, &mut unique, &mut slots, &mut cache);
            if recording {
                let cost = if outcome == Outcome::Stats {
                    None
                } else {
                    // Pure and deterministic, so observing the cost of
                    // hits and shed requests perturbs nothing.
                    Some(self.exec.cost(req))
                };
                if let Some(c) = cost {
                    self.observe_cost(req, c);
                }
                pending.push(PendingTelemetry {
                    kind: request_kind(req),
                    key: Some(req.key_hex()),
                    outcome,
                    cost,
                    budget: match outcome {
                        Outcome::Stats => None,
                        _ => Some(req.budget().unwrap_or(self.cfg.default_budget)),
                    },
                    queue_depth: (outcome != Outcome::Stats).then_some(depth_at_admission),
                    waiting: match slots.last() {
                        Some(Slot::Waiting(u)) => Some(*u),
                        _ => None,
                    },
                    chaos: request_chaos(req),
                });
            }
        }

        // Decompose admitted requests into atoms; decomposition errors
        // resolve that request (and its waiters) to a Failed envelope.
        let mut decomposed: Vec<Result<Vec<Atom>, String>> = Vec::with_capacity(unique.len());
        for req in &unique {
            decomposed.push(self.exec.atoms(req));
        }
        let plan = BatchPlan::build(
            decomposed
                .iter()
                .map(|d| d.as_ref().cloned().unwrap_or_default())
                .collect(),
        );
        self.metrics
            .count("serve.atoms.requested", plan.atoms_requested as u64);
        self.metrics.count("serve.atoms.executed", plan.atoms.len() as u64);

        // One parallel pass over the unique atoms.
        let exec = &self.exec;
        let atoms = &plan.atoms;
        let atom_results: Vec<Result<Json, String>> =
            par::map_collect(atoms.len(), |i| exec.execute_atom(&atoms[i]));

        // Merge executor-reported work counters on the main thread, in
        // atom order (cache hits re-run nothing, so they add none).
        for (atom, result) in atoms.iter().zip(&atom_results) {
            if let Ok(body) = result {
                for (name, n) in self.exec.work_counters(atom, body) {
                    self.metrics.count(&name, n);
                }
            }
        }

        // Assemble one envelope per unique computation.
        let mut outcomes: Vec<Json> = Vec::with_capacity(unique.len());
        let mut unique_failed: Vec<bool> = Vec::with_capacity(unique.len());
        for (u, req) in unique.iter().enumerate() {
            let body = match &decomposed[u] {
                Err(msg) => Err(msg.clone()),
                Ok(_) => plan.assignments[u]
                    .iter()
                    .map(|&a| atom_results[a].clone())
                    .collect::<Result<Vec<Json>, String>>()
                    .and_then(|parts| self.exec.assemble(req, parts)),
            };
            match body {
                Ok(body) => {
                    // Persist before caching: the stored bytes are the
                    // compact body, whose parse re-serialises to the
                    // same bytes, so a store hit is byte-identical to
                    // this fresh computation.
                    if let Some(store) = self.store.borrow_mut().as_mut() {
                        match store.put(req.key(), req.text(), body.compact().as_bytes()) {
                            Ok(true) => self.metrics.count("serve.store.write", 1),
                            Ok(false) => {}
                            // An append failure (disk full, permissions)
                            // degrades to serving without persistence.
                            Err(_) => self.metrics.count("serve.store.write_error", 1),
                        }
                    }
                    let evicted = cache.insert(req.key(), req.text(), body.clone());
                    self.metrics.count("serve.cache.evict", evicted as u64);
                    outcomes.push(ok_envelope(req, body));
                    unique_failed.push(false);
                }
                Err(msg) => {
                    self.metrics.count(Outcome::Failed.as_metric_name(), 1);
                    outcomes.push(err_envelope(Some(req), &ServeError::Failed(msg)));
                    unique_failed.push(true);
                }
            }
        }
        self.metrics.gauge("serve.cache.entries", cache.len() as f64);
        if let Some(store) = self.store.borrow().as_ref() {
            self.metrics.gauge("store.entries", store.len() as f64);
        }
        drop(cache);

        // Record telemetry for every non-stats input, in input order,
        // before the stats body is built — so a stats request in the
        // same batch already sees this batch in the flight recorder.
        if recording {
            for (i, p) in pending.iter().enumerate() {
                if p.outcome == Outcome::Stats {
                    continue;
                }
                let (outcome, atoms_n) = match p.waiting {
                    Some(u) if unique_failed[u] => (Outcome::Failed, None),
                    Some(u) => (p.outcome, Some(plan.assignments[u].len() as u64)),
                    None => (p.outcome, None),
                };
                let envelope = match &slots[i] {
                    Slot::Done(env) => env,
                    Slot::Waiting(u) => &outcomes[*u],
                    Slot::Stats => unreachable!("stats filtered above"),
                };
                let text = inputs[i].as_ref().ok().map(|r| r.text());
                self.telemetry.record(
                    RequestTelemetry {
                        seq: 0,
                        kind: p.kind.clone(),
                        key: p.key.clone(),
                        outcome,
                        cost: p.cost,
                        budget: p.budget,
                        queue_depth: p.queue_depth,
                        atoms: atoms_n,
                        chaos: p.chaos.clone(),
                    },
                    text,
                    envelope,
                );
            }
        }

        // Answer stats requests last: one body reflecting the whole
        // batch, shared by every stats input, never cached.
        let stats_body = slots
            .iter()
            .any(|s| matches!(s, Slot::Stats))
            .then(|| self.stats_body());

        let responses: Vec<Json> = slots
            .iter()
            .enumerate()
            .map(|(i, s)| match s {
                Slot::Done(env) => env.clone(),
                Slot::Waiting(u) => outcomes[*u].clone(),
                Slot::Stats => {
                    let req = inputs[i].as_ref().expect("stats slots carry a request");
                    ok_envelope(req, stats_body.clone().expect("built above"))
                }
            })
            .collect();

        if recording {
            for (i, p) in pending.iter().enumerate() {
                if p.outcome != Outcome::Stats {
                    continue;
                }
                self.telemetry.record(
                    RequestTelemetry {
                        seq: 0,
                        kind: p.kind.clone(),
                        key: p.key.clone(),
                        outcome: Outcome::Stats,
                        cost: None,
                        budget: None,
                        queue_depth: None,
                        atoms: None,
                        chaos: None,
                    },
                    inputs[i].as_ref().ok().map(|r| r.text()),
                    &responses[i],
                );
            }
        }

        responses
    }

    /// Runs one parsed request through the admission pipeline, pushing
    /// its slot and returning its (provisional) outcome. `Miss` may
    /// still become `Failed` at assembly time.
    fn admit(
        &self,
        req: &Request,
        unique: &mut Vec<Request>,
        slots: &mut Vec<Slot>,
        cache: &mut ResultCache,
    ) -> Outcome {
        if request_kind(req) == STATS_KIND {
            self.metrics.count(Outcome::Stats.as_metric_name(), 1);
            slots.push(Slot::Stats);
            return Outcome::Stats;
        }
        if let Some(body) = cache.get(req.key(), req.text()) {
            self.metrics.count(Outcome::Hit.as_metric_name(), 1);
            slots.push(Slot::Done(ok_envelope(req, body)));
            return Outcome::Hit;
        }
        // Second tier: the persistent store. Only reached on an LRU
        // miss — an LRU hit never touches disk. A hit is promoted into
        // the LRU so the next identical request stays in memory.
        if let Some(store) = self.store.borrow().as_ref() {
            match store.get(req.key(), req.text()) {
                Some(bytes) => match parse_stored_body(bytes) {
                    Some(body) => {
                        self.metrics.count(Outcome::StoreHit.as_metric_name(), 1);
                        let evicted = cache.insert(req.key(), req.text(), body.clone());
                        self.metrics.count("serve.cache.evict", evicted as u64);
                        slots.push(Slot::Done(ok_envelope(req, body)));
                        return Outcome::StoreHit;
                    }
                    None => {
                        // A record that frames correctly but does not
                        // parse as JSON: degrade to recompute, count it.
                        self.metrics.count("serve.store.bad_value", 1);
                    }
                },
                None => {
                    self.metrics.count("serve.store.miss", 1);
                }
            }
        }
        if let Some(u) = unique
            .iter()
            .position(|p| p.key() == req.key() && p.text() == req.text())
        {
            self.metrics.count(Outcome::Dedup.as_metric_name(), 1);
            slots.push(Slot::Waiting(u));
            return Outcome::Dedup;
        }
        if unique.len() >= self.cfg.queue_depth {
            self.metrics.count(Outcome::Overload.as_metric_name(), 1);
            let e = ServeError::Overloaded { depth: self.cfg.queue_depth };
            slots.push(Slot::Done(err_envelope(Some(req), &e)));
            return Outcome::Overload;
        }
        let cost = self.exec.cost(req);
        let budget = req.budget().unwrap_or(self.cfg.default_budget);
        if cost > budget {
            self.metrics.count(Outcome::Deadline.as_metric_name(), 1);
            let e = ServeError::DeadlineExceeded { cost, budget };
            slots.push(Slot::Done(err_envelope(Some(req), &e)));
            return Outcome::Deadline;
        }
        self.metrics.count(Outcome::Miss.as_metric_name(), 1);
        slots.push(Slot::Waiting(unique.len()));
        unique.push(req.clone());
        Outcome::Miss
    }

    /// Records `cost` into the per-kind virtual-cost histogram
    /// (`serve.cost.<kind>`), declaring it on first use.
    fn observe_cost(&self, req: &Request, cost: u64) {
        let name = format!("serve.cost.{}", request_kind(req));
        if !self.metrics.has_histogram(&name) {
            self.metrics.declare_histogram(&name, &COST_BOUNDS);
        }
        self.metrics.record(&name, cost as f64);
    }

    /// The stats snapshot served for a `stats` request: every counter,
    /// every set gauge, p50/p90/p99 + count/sum per declared histogram,
    /// and — when telemetry records — the flight-recorder dump. All
    /// name-sorted, all virtual quantities: byte-deterministic.
    pub fn stats_body(&self) -> Json {
        let counters = Json::Obj(
            self.metrics
                .counters("")
                .into_iter()
                .map(|(n, v)| (n, Json::Int(v as i64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.metrics
                .gauges("")
                .into_iter()
                .map(|(n, v)| (n, Json::Num(v)))
                .collect(),
        );
        let quantiles = Json::Obj(
            self.metrics
                .histogram_names("")
                .into_iter()
                .map(|n| {
                    let (_, count, sum) =
                        self.metrics.histogram(&n).expect("name just listed");
                    let q = |p: f64| {
                        self.metrics.quantile(&n, p).map_or(Json::Null, Json::Num)
                    };
                    let body = Json::obj(vec![
                        ("count", Json::Int(count as i64)),
                        ("p50", q(0.50)),
                        ("p90", q(0.90)),
                        ("p99", q(0.99)),
                        ("sum", Json::Num(sum)),
                    ]);
                    (n, body)
                })
                .collect(),
        );
        let mut pairs = vec![
            ("counters", counters),
            ("gauges", gauges),
            ("quantiles", quantiles),
        ];
        if self.telemetry.enabled() {
            pairs.push(("flight_recorder", self.telemetry.to_json()));
        }
        Json::obj(pairs).sorted()
    }
}

/// Decodes a stored record back into a response body. Stored values are
/// the compact JSON bytes of the body; parsing preserves key order, so
/// re-serialisation reproduces the original bytes exactly.
fn parse_stored_body(bytes: &[u8]) -> Option<Json> {
    let text = std::str::from_utf8(bytes).ok()?;
    pvc_core::json::parse(text).ok()
}

/// The request's `kind` field (guaranteed present by request parsing).
fn request_kind(req: &Request) -> String {
    match req.canon().get("kind") {
        Some(Json::Str(k)) => k.clone(),
        _ => "?".to_string(),
    }
}

/// The request's chaos spec, if it carries one.
fn request_chaos(req: &Request) -> Option<String> {
    match req.canon().get("chaos") {
        Some(Json::Str(s)) => Some(s.clone()),
        Some(other) => Some(other.compact()),
        None => None,
    }
}

/// Success envelope: content address, normalised request, result body.
fn ok_envelope(req: &Request, body: Json) -> Json {
    Json::obj(vec![
        ("key", Json::str(req.key_hex())),
        ("request", req.canon().clone()),
        ("result", body),
    ])
}

/// Error envelope; carries the request context when it parsed.
fn err_envelope(req: Option<&Request>, err: &ServeError) -> Json {
    let mut pairs = Vec::new();
    if let Some(req) = req {
        pairs.push(("key", Json::str(req.key_hex())));
        pairs.push(("request", req.canon().clone()));
    }
    pairs.push(("error", err.to_json()));
    Json::obj(pairs)
}

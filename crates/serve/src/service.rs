//! The service: admission control, budgets, single-flight, cache and
//! parallel atom execution.
//!
//! One call to [`Service::handle_batch`] processes one admitted batch
//! deterministically:
//!
//! 1. malformed inputs are answered with `bad_request` envelopes;
//! 2. the cache is probed — hits are answered immediately and consume
//!    **no** queue slot, so a warm cache keeps serving under overload;
//! 3. identical in-flight requests are collapsed (single-flight) onto
//!    one computation — duplicates consume no queue slot either;
//! 4. the bounded queue admits at most `queue_depth` unique
//!    computations; the rest are shed with a typed
//!    [`ServeError::Overloaded`];
//! 5. each admitted request's deterministic cost estimate must fit its
//!    budget (request `budget` field, else the configured default) or
//!    it is rejected with [`ServeError::DeadlineExceeded`];
//! 6. admitted requests decompose into atoms, overlapping sweep atoms
//!    coalesce ([`BatchPlan`]), and the unique atoms execute in
//!    parallel on [`pvc_core::par`];
//! 7. responses are assembled, cached (LRU), and fanned out to every
//!    waiter in input order.
//!
//! Because every executor is deterministic, a response served from
//! cache is byte-identical to one computed fresh — only the
//! `serve.cache.*` counters can tell them apart.

use crate::batch::{Atom, BatchPlan};
use crate::cache::ResultCache;
use crate::request::Request;
use crate::ServeError;
use pvc_core::{par, Json};
use pvc_obs::Metrics;
use std::cell::RefCell;

/// What a request means: decomposition into simulation passes and
/// reassembly of their results. Implementations must be deterministic —
/// equal atoms must always produce byte-identical results.
pub trait Executor: Sync {
    /// Deterministic cost estimate in abstract units, compared against
    /// the request's budget at admission time.
    fn cost(&self, req: &Request) -> u64;

    /// Decomposes `req` into ≥ 1 atoms. Equal atom ids across requests
    /// coalesce into one execution per batch.
    fn atoms(&self, req: &Request) -> Result<Vec<Atom>, String>;

    /// Executes one atom (called from worker threads; must be pure).
    fn execute_atom(&self, atom: &Atom) -> Result<Json, String>;

    /// Reassembles the response body from the request's atom results,
    /// in the order [`Executor::atoms`] returned them.
    fn assemble(&self, req: &Request, parts: Vec<Json>) -> Result<Json, String>;
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum unique computations admitted per batch; the rest shed.
    pub queue_depth: usize,
    /// LRU cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Budget applied when a request carries no `budget` field.
    pub default_budget: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_depth: 32,
            cache_capacity: 64,
            default_budget: 64,
        }
    }
}

/// The batching, caching query service around an [`Executor`].
pub struct Service<E> {
    cfg: ServeConfig,
    exec: E,
    cache: RefCell<ResultCache>,
    metrics: Metrics,
}

enum Slot {
    /// Answered already (error or cache hit).
    Done(Json),
    /// Waiting on unique computation `u`.
    Waiting(usize),
}

impl<E: Executor> Service<E> {
    /// A service over `exec` with the given knobs.
    pub fn new(exec: E, cfg: ServeConfig) -> Self {
        let cache = RefCell::new(ResultCache::new(cfg.cache_capacity));
        Service { cfg, exec, cache, metrics: Metrics::new() }
    }

    /// The service's metrics registry (`serve.*` counters).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Live cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// The executor (for frontends that need catalog introspection).
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// Parses and serves one line-delimited batch; one response
    /// envelope per input line, in order.
    pub fn handle_lines(&self, lines: &[&str]) -> Vec<Json> {
        self.handle_batch(lines.iter().map(|l| Request::parse(l)).collect())
    }

    /// Serves one batch of parsed requests (parse failures included, so
    /// their envelopes stay in position). Never panics, never blocks
    /// indefinitely: every input gets exactly one envelope.
    pub fn handle_batch(&self, inputs: Vec<Result<Request, ServeError>>) -> Vec<Json> {
        self.metrics.count("serve.requests", inputs.len() as u64);
        let mut slots: Vec<Slot> = Vec::with_capacity(inputs.len());
        // Unique admitted computations, their waiters, in arrival order.
        let mut unique: Vec<Request> = Vec::new();
        let mut cache = self.cache.borrow_mut();
        for input in &inputs {
            let req = match input {
                Ok(r) => r,
                Err(e) => {
                    self.metrics.count("serve.rejected.bad_request", 1);
                    slots.push(Slot::Done(err_envelope(None, e)));
                    continue;
                }
            };
            if let Some(body) = cache.get(req.key(), req.text()) {
                self.metrics.count("serve.cache.hit", 1);
                slots.push(Slot::Done(ok_envelope(req, body)));
                continue;
            }
            if let Some(u) = unique
                .iter()
                .position(|p| p.key() == req.key() && p.text() == req.text())
            {
                self.metrics.count("serve.singleflight.deduped", 1);
                slots.push(Slot::Waiting(u));
                continue;
            }
            if unique.len() >= self.cfg.queue_depth {
                self.metrics.count("serve.rejected.overload", 1);
                let e = ServeError::Overloaded { depth: self.cfg.queue_depth };
                slots.push(Slot::Done(err_envelope(Some(req), &e)));
                continue;
            }
            let cost = self.exec.cost(req);
            let budget = req.budget().unwrap_or(self.cfg.default_budget);
            if cost > budget {
                self.metrics.count("serve.rejected.deadline", 1);
                let e = ServeError::DeadlineExceeded { cost, budget };
                slots.push(Slot::Done(err_envelope(Some(req), &e)));
                continue;
            }
            self.metrics.count("serve.cache.miss", 1);
            slots.push(Slot::Waiting(unique.len()));
            unique.push(req.clone());
        }

        // Decompose admitted requests into atoms; decomposition errors
        // resolve that request (and its waiters) to a Failed envelope.
        let mut decomposed: Vec<Result<Vec<Atom>, String>> = Vec::with_capacity(unique.len());
        for req in &unique {
            decomposed.push(self.exec.atoms(req));
        }
        let plan = BatchPlan::build(
            decomposed
                .iter()
                .map(|d| d.as_ref().cloned().unwrap_or_default())
                .collect(),
        );
        self.metrics
            .count("serve.atoms.requested", plan.atoms_requested as u64);
        self.metrics.count("serve.atoms.executed", plan.atoms.len() as u64);

        // One parallel pass over the unique atoms.
        let exec = &self.exec;
        let atoms = &plan.atoms;
        let atom_results: Vec<Result<Json, String>> =
            par::map_collect(atoms.len(), |i| exec.execute_atom(&atoms[i]));

        // Assemble one envelope per unique computation.
        let mut outcomes: Vec<Json> = Vec::with_capacity(unique.len());
        for (u, req) in unique.iter().enumerate() {
            let body = match &decomposed[u] {
                Err(msg) => Err(msg.clone()),
                Ok(_) => plan.assignments[u]
                    .iter()
                    .map(|&a| atom_results[a].clone())
                    .collect::<Result<Vec<Json>, String>>()
                    .and_then(|parts| self.exec.assemble(req, parts)),
            };
            match body {
                Ok(body) => {
                    let evicted = cache.insert(req.key(), req.text(), body.clone());
                    self.metrics.count("serve.cache.evict", evicted as u64);
                    outcomes.push(ok_envelope(req, body));
                }
                Err(msg) => {
                    self.metrics.count("serve.failed", 1);
                    outcomes.push(err_envelope(Some(req), &ServeError::Failed(msg)));
                }
            }
        }

        slots
            .into_iter()
            .map(|s| match s {
                Slot::Done(env) => env,
                Slot::Waiting(u) => outcomes[u].clone(),
            })
            .collect()
    }
}

/// Success envelope: content address, normalised request, result body.
fn ok_envelope(req: &Request, body: Json) -> Json {
    Json::obj(vec![
        ("key", Json::str(req.key_hex())),
        ("request", req.canon().clone()),
        ("result", body),
    ])
}

/// Error envelope; carries the request context when it parsed.
fn err_envelope(req: Option<&Request>, err: &ServeError) -> Json {
    let mut pairs = Vec::new();
    if let Some(req) = req {
        pairs.push(("key", Json::str(req.key_hex())));
        pairs.push(("request", req.canon().clone()));
    }
    pairs.push(("error", err.to_json()));
    Json::obj(pairs)
}

//! Per-request telemetry: typed outcomes, a structured JSON access
//! log, and a bounded ring-buffer **flight recorder**.
//!
//! Everything here is observation only. A disabled [`Telemetry`] handle
//! costs one `Option` branch per touch point and a service with
//! telemetry off produces byte-identical responses to one with it on —
//! the record is derived from decisions the service already made, never
//! the other way around.
//!
//! All recorded quantities are **virtual**: abstract cost units, queue
//! depths, atom counts, sequence numbers. No wall clock ever enters a
//! record, so access logs and flight-recorder dumps inherit the
//! workspace's double-run byte-identity guarantee.

use pvc_core::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// How the service resolved one request. The single source of truth
/// binding the counter spelling, the access-log field, and the flight
/// recorder together — they can never drift apart because each is
/// derived from this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The input line did not parse into a request.
    BadRequest,
    /// Answered from the in-memory LRU result cache.
    Hit,
    /// Answered from the persistent disk store (and promoted into the
    /// LRU, so the next identical request is a plain `Hit`).
    StoreHit,
    /// Collapsed onto an identical in-flight computation.
    Dedup,
    /// Shed by bounded-queue admission control.
    Overload,
    /// Rejected because the cost estimate exceeded the budget.
    Deadline,
    /// Admitted and computed fresh.
    Miss,
    /// Admitted but the executor failed while computing it.
    Failed,
    /// A reserved `stats` introspection request.
    Stats,
    /// A reserved `shutdown` request: acknowledged and latched so the
    /// frontend drains and exits its accept loop gracefully.
    Shutdown,
}

impl Outcome {
    /// The `serve.*` counter this outcome increments. These spellings
    /// are the crate's public metric names — tests and CI grep them.
    pub fn as_metric_name(&self) -> &'static str {
        match self {
            Outcome::BadRequest => "serve.rejected.bad_request",
            Outcome::Hit => "serve.cache.hit",
            Outcome::StoreHit => "serve.store.hit",
            Outcome::Dedup => "serve.singleflight.deduped",
            Outcome::Overload => "serve.rejected.overload",
            Outcome::Deadline => "serve.rejected.deadline",
            Outcome::Miss => "serve.cache.miss",
            Outcome::Failed => "serve.failed",
            Outcome::Stats => "serve.stats",
            Outcome::Shutdown => "serve.shutdown",
        }
    }

    /// The access-log / flight-recorder field value.
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::BadRequest => "bad_request",
            Outcome::Hit => "hit",
            Outcome::StoreHit => "store_hit",
            Outcome::Dedup => "dedup",
            Outcome::Overload => "shed",
            Outcome::Deadline => "deadline",
            Outcome::Miss => "miss",
            Outcome::Failed => "failed",
            Outcome::Stats => "stats",
            Outcome::Shutdown => "shutdown",
        }
    }

    /// True when the request was answered with a result body.
    pub fn is_ok(&self) -> bool {
        matches!(
            self,
            Outcome::Hit
                | Outcome::StoreHit
                | Outcome::Dedup
                | Outcome::Miss
                | Outcome::Stats
                | Outcome::Shutdown
        )
    }

    /// Every outcome, in a stable order (for exhaustiveness tests).
    pub const ALL: [Outcome; 10] = [
        Outcome::BadRequest,
        Outcome::Hit,
        Outcome::StoreHit,
        Outcome::Dedup,
        Outcome::Overload,
        Outcome::Deadline,
        Outcome::Miss,
        Outcome::Failed,
        Outcome::Stats,
        Outcome::Shutdown,
    ];
}

/// One request's telemetry record. Fields that were never reached on
/// the request's path through the service (e.g. `cost` for a cache
/// hit shed before estimation) are `None` and render as JSON `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTelemetry {
    /// Monotonic per-recorder sequence number (admission order).
    pub seq: u64,
    /// The request's `kind` field; `"?"` when the input did not parse.
    pub kind: String,
    /// Canonical content address (`fnv64:…`) when the input parsed.
    pub key: Option<String>,
    /// How the service resolved it.
    pub outcome: Outcome,
    /// Deterministic cost estimate, when one was computed.
    pub cost: Option<u64>,
    /// The budget the cost was compared against.
    pub budget: Option<u64>,
    /// Unique computations already queued **on the owning shard** when
    /// this request was considered (the admission-time queue depth; the
    /// global depth on a one-shard service).
    pub queue_depth: Option<u64>,
    /// The shard owning this request's key partition. `None` for
    /// dispatcher-level outcomes (bad_request, stats, shutdown).
    pub shard: Option<u64>,
    /// Atoms assigned to this request's computation after coalescing.
    pub atoms: Option<u64>,
    /// The canonical chaos spec carried by the request, if any.
    pub chaos: Option<String>,
}

impl RequestTelemetry {
    /// The record as a sorted-key JSON object (the access-log schema).
    pub fn to_json(&self) -> Json {
        fn opt_u64(v: Option<u64>) -> Json {
            v.map_or(Json::Null, |n| Json::Int(n as i64))
        }
        fn opt_str(v: &Option<String>) -> Json {
            v.as_ref().map_or(Json::Null, |s| Json::str(s.clone()))
        }
        Json::obj(vec![
            ("atoms", opt_u64(self.atoms)),
            ("budget", opt_u64(self.budget)),
            ("chaos", opt_str(&self.chaos)),
            ("cost", opt_u64(self.cost)),
            ("key", opt_str(&self.key)),
            ("kind", Json::str(self.kind.clone())),
            ("ok", Json::Bool(self.outcome.is_ok())),
            ("outcome", Json::str(self.outcome.as_str())),
            ("queue_depth", opt_u64(self.queue_depth)),
            ("seq", Json::Int(self.seq as i64)),
            ("shard", opt_u64(self.shard)),
        ])
    }
}

/// The full trace of the most recent request that was not answered
/// with a result: its telemetry record, the raw input text, and the
/// exact error envelope that went back to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// The request's telemetry record.
    pub telemetry: RequestTelemetry,
    /// The raw input text, when it was available.
    pub request_text: Option<String>,
    /// The response envelope the client received.
    pub envelope: Json,
}

impl Anomaly {
    /// The anomaly as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "request_text",
                self.request_text
                    .as_ref()
                    .map_or(Json::Null, |t| Json::str(t.clone())),
            ),
            ("response", self.envelope.clone()),
            ("telemetry", self.telemetry.to_json()),
        ])
    }
}

#[derive(Debug, Default)]
struct Recorder {
    cap: usize,
    seq: u64,
    ring: VecDeque<RequestTelemetry>,
    last_anomaly: Option<Anomaly>,
    access_log: String,
}

/// The telemetry handle: a cheap cloneable recorder reference, or a
/// no-op when built with [`Telemetry::disabled`]. Same pattern as
/// [`pvc_obs::Tracer`] — one code path, one branch when off.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl Telemetry {
    /// A no-op handle: every touch point is a single branch.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A recording handle whose flight recorder retains the last
    /// `cap` request records (plus the most recent anomaly, which is
    /// pinned independently of the ring).
    pub fn recording(cap: usize) -> Self {
        Telemetry {
            inner: Some(Rc::new(RefCell::new(Recorder {
                cap: cap.max(1),
                ..Recorder::default()
            }))),
        }
    }

    /// True when this handle records.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one resolved request: assigns its sequence number,
    /// appends the access-log line, pushes it into the flight-recorder
    /// ring (evicting the oldest past capacity), and — for any outcome
    /// that did not produce a result — pins the full anomaly trace.
    pub fn record(
        &self,
        mut t: RequestTelemetry,
        request_text: Option<&str>,
        envelope: &Json,
    ) {
        let Some(inner) = &self.inner else { return };
        let mut r = inner.borrow_mut();
        t.seq = r.seq;
        r.seq += 1;
        r.access_log.push_str(&t.to_json().compact());
        r.access_log.push('\n');
        if !t.outcome.is_ok() {
            r.last_anomaly = Some(Anomaly {
                telemetry: t.clone(),
                request_text: request_text.map(str::to_string),
                envelope: envelope.clone(),
            });
        }
        if r.ring.len() == r.cap {
            r.ring.pop_front();
        }
        r.ring.push_back(t);
    }

    /// The retained records, oldest first.
    pub fn recent(&self) -> Vec<RequestTelemetry> {
        match &self.inner {
            Some(inner) => inner.borrow().ring.iter().cloned().collect(),
            None => Vec::new(),
        }
    }

    /// The pinned most-recent anomaly, if any request ever failed.
    pub fn last_anomaly(&self) -> Option<Anomaly> {
        self.inner.as_ref().and_then(|i| i.borrow().last_anomaly.clone())
    }

    /// Takes the accumulated access log (one compact JSON line per
    /// recorded request), leaving the buffer empty. Lets a frontend
    /// stream the log to a file batch by batch.
    pub fn drain_access_log(&self) -> String {
        match &self.inner {
            Some(inner) => std::mem::take(&mut inner.borrow_mut().access_log),
            None => String::new(),
        }
    }

    /// The flight recorder as a JSON object: the retained records
    /// (oldest first) and the pinned anomaly.
    pub fn to_json(&self) -> Json {
        let recent = Json::Arr(self.recent().iter().map(|t| t.to_json()).collect());
        let anomaly = self
            .last_anomaly()
            .map_or(Json::Null, |a| a.to_json());
        Json::obj(vec![
            ("last_anomaly", anomaly),
            ("recent", recent),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: &str, outcome: Outcome) -> RequestTelemetry {
        RequestTelemetry {
            seq: 0,
            kind: kind.to_string(),
            key: Some("fnv64:0000000000000000".to_string()),
            outcome,
            cost: Some(3),
            budget: Some(64),
            queue_depth: Some(0),
            shard: Some(0),
            atoms: Some(1),
            chaos: None,
        }
    }

    #[test]
    fn outcome_metric_names_are_the_published_spellings() {
        // These exact strings are public API: ci.sh and downstream
        // tests grep for them. Changing one is a breaking change.
        let spellings: Vec<&str> = Outcome::ALL.iter().map(|o| o.as_metric_name()).collect();
        assert_eq!(
            spellings,
            vec![
                "serve.rejected.bad_request",
                "serve.cache.hit",
                "serve.store.hit",
                "serve.singleflight.deduped",
                "serve.rejected.overload",
                "serve.rejected.deadline",
                "serve.cache.miss",
                "serve.failed",
                "serve.stats",
                "serve.shutdown",
            ]
        );
        // Every metric name and log label is distinct.
        for (i, a) in Outcome::ALL.iter().enumerate() {
            for b in &Outcome::ALL[i + 1..] {
                assert_ne!(a.as_metric_name(), b.as_metric_name());
                assert_ne!(a.as_str(), b.as_str());
            }
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let t = Telemetry::recording(3);
        for i in 0..5 {
            t.record(record(&format!("k{i}"), Outcome::Miss), None, &Json::Null);
        }
        let recent = t.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(
            recent.iter().map(|r| r.kind.as_str()).collect::<Vec<_>>(),
            vec!["k2", "k3", "k4"]
        );
        assert_eq!(
            recent.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "sequence numbers are assigned in admission order"
        );
    }

    #[test]
    fn anomaly_pins_most_recent_failure_beyond_ring_eviction() {
        let t = Telemetry::recording(2);
        let env = Json::obj(vec![("error", Json::str("queue full"))]);
        t.record(record("run", Outcome::Overload), Some("{\"kind\":\"run\"}"), &env);
        // Enough successes to evict the shed record from the ring.
        for _ in 0..4 {
            t.record(record("table", Outcome::Hit), None, &Json::Null);
        }
        assert!(t.recent().iter().all(|r| r.outcome == Outcome::Hit));
        let a = t.last_anomaly().expect("anomaly pinned");
        assert_eq!(a.telemetry.outcome, Outcome::Overload);
        assert_eq!(a.request_text.as_deref(), Some("{\"kind\":\"run\"}"));
        assert_eq!(a.envelope, env);
    }

    #[test]
    fn access_log_lines_are_compact_sorted_json() {
        let t = Telemetry::recording(8);
        t.record(record("table", Outcome::Hit), None, &Json::Null);
        let log = t.drain_access_log();
        assert!(log.ends_with('\n'));
        let line = log.trim_end();
        let parsed = pvc_core::json::parse(line).expect("log line parses");
        assert_eq!(parsed.get("outcome"), Some(&Json::str("hit")));
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            line,
            parsed.sorted().compact(),
            "log lines are canonical sorted-key compact JSON"
        );
        // Draining empties the buffer.
        assert_eq!(t.drain_access_log(), "");
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.record(record("x", Outcome::Failed), Some("txt"), &Json::Null);
        assert!(t.recent().is_empty());
        assert!(t.last_anomaly().is_none());
        assert_eq!(t.drain_access_log(), "");
    }
}

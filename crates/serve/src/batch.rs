//! Batch planning: atom coalescing across compatible requests.
//!
//! The executor decomposes every request into one or more **atoms** —
//! the indivisible simulation passes it needs. Identical requests are
//! already collapsed by the service's single-flight dedup; atom
//! coalescing goes further: two *different* sweep requests that share
//! atoms (say, both want the Aurora `pcie h2d` pass) cause that pass to
//! be simulated exactly once per batch. The plan records which atoms
//! each request consumes so responses can be reassembled afterwards.

use pvc_core::Json;

/// One indivisible simulation pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Identity of the pass: equal ids ⇒ identical computation.
    pub id: String,
    /// Executor-defined parameters of the pass.
    pub params: Json,
}

impl Atom {
    /// Convenience constructor.
    pub fn new(id: impl Into<String>, params: Json) -> Atom {
        Atom { id: id.into(), params }
    }
}

/// The coalesced execution plan for one batch of unique requests.
#[derive(Debug)]
pub struct BatchPlan {
    /// Deduplicated atoms, in first-appearance order.
    pub atoms: Vec<Atom>,
    /// For each input request (same order as given), the indices into
    /// [`BatchPlan::atoms`] of its parts, in the request's own order.
    pub assignments: Vec<Vec<usize>>,
    /// Total atoms before coalescing; `atoms_requested / atoms.len()`
    /// is the batch's coalescing factor.
    pub atoms_requested: usize,
}

impl BatchPlan {
    /// Builds a plan from each request's atom decomposition.
    pub fn build(per_request: Vec<Vec<Atom>>) -> BatchPlan {
        let mut atoms: Vec<Atom> = Vec::new();
        let mut assignments = Vec::with_capacity(per_request.len());
        let mut atoms_requested = 0;
        for request_atoms in per_request {
            atoms_requested += request_atoms.len();
            let mut idxs = Vec::with_capacity(request_atoms.len());
            for atom in request_atoms {
                let i = match atoms.iter().position(|a| a.id == atom.id) {
                    Some(i) => {
                        debug_assert_eq!(
                            atoms[i].params, atom.params,
                            "atom id '{}' reused with different params",
                            atom.id
                        );
                        i
                    }
                    None => {
                        atoms.push(atom);
                        atoms.len() - 1
                    }
                };
                idxs.push(i);
            }
            assignments.push(idxs);
        }
        BatchPlan { atoms, assignments, atoms_requested }
    }

    /// `requested / executed` — 1.0 when nothing coalesced.
    pub fn coalescing_factor(&self) -> f64 {
        if self.atoms.is_empty() {
            return 1.0;
        }
        self.atoms_requested as f64 / self.atoms.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(id: &str) -> Atom {
        Atom::new(id, Json::Null)
    }

    #[test]
    fn overlapping_sweeps_share_atoms() {
        let plan = BatchPlan::build(vec![
            vec![atom("pcie:aurora:h2d"), atom("pcie:aurora:d2h")],
            vec![atom("pcie:aurora:d2h"), atom("pcie:aurora:bidir")],
        ]);
        assert_eq!(plan.atoms.len(), 3, "d2h computed once");
        assert_eq!(plan.atoms_requested, 4);
        assert_eq!(plan.assignments, vec![vec![0, 1], vec![1, 2]]);
        assert!((plan.coalescing_factor() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_requests_do_not_coalesce() {
        let plan = BatchPlan::build(vec![vec![atom("a")], vec![atom("b")]]);
        assert_eq!(plan.atoms.len(), 2);
        assert_eq!(plan.coalescing_factor(), 1.0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let plan = BatchPlan::build(vec![]);
        assert!(plan.atoms.is_empty());
        assert_eq!(plan.coalescing_factor(), 1.0);
    }
}

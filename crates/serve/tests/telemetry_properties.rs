//! Telemetry-layer properties: the access log and flight recorder are
//! pure observations (bit-non-perturbing when attached, inert when
//! disabled), the `stats` request kind is served by the service itself,
//! and the typed [`Outcome`] keeps counters and log fields in lockstep.

use pvc_core::Json;
use pvc_serve::{
    Atom, Executor, Outcome, Request, ServeConfig, Service, Telemetry,
};
use std::sync::atomic::{AtomicUsize, Ordering};

fn pin_threads() {
    std::env::set_var("PVC_THREADS", "2");
}

/// Same deterministic toy executor as `service_properties`.
#[derive(Default)]
struct Toy {
    executions: AtomicUsize,
}

impl Executor for Toy {
    fn cost(&self, req: &Request) -> u64 {
        match req.get("cost") {
            Some(Json::Int(n)) => *n as u64,
            _ => 1,
        }
    }

    fn atoms(&self, req: &Request) -> Result<Vec<Atom>, String> {
        match req.kind() {
            "item" => {
                let Some(Json::Int(n)) = req.get("n") else {
                    return Err("item needs integer n".into());
                };
                Ok(vec![Atom::new(format!("item:{n}"), Json::Int(*n))])
            }
            other => Err(format!("unknown kind '{other}'")),
        }
    }

    fn execute_atom(&self, atom: &Atom) -> Result<Json, String> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        let Json::Int(n) = atom.params else {
            return Err("non-integer atom".into());
        };
        if n < 0 {
            return Err(format!("negative item {n}"));
        }
        Ok(Json::obj(vec![("square", Json::Int(n * n))]))
    }

    fn assemble(&self, _req: &Request, mut parts: Vec<Json>) -> Result<Json, String> {
        Ok(parts.pop().expect("one atom per item"))
    }

    fn work_counters(&self, _atom: &Atom, result: &Json) -> Vec<(String, u64)> {
        // A fixed per-atom work report, like the catalog executor's
        // `simrt.*` extraction — pure in (atom, result).
        match result.get("square") {
            Some(_) => vec![("toy.work.squares".to_string(), 1)],
            None => vec![],
        }
    }
}

fn item(n: i64) -> String {
    format!(r#"{{"kind":"item","n":{n}}}"#)
}

/// A batch that exercises every outcome except Stats: warm hit, fresh
/// miss, dedup, shed, deadline, bad_request, failed.
fn mixed_batch() -> (Vec<String>, String) {
    let warm = item(1);
    let batch = vec![
        warm.clone(),                                // hit (after warmup)
        r#"{"kind":"item","n":5,"cost":99}"#.into(), // deadline (no slot)
        item(-6),                                    // miss → failed at exec
        item(2),                                     // miss (fills queue)
        item(2),                                     // dedup
        item(4),                                     // shed (queue_depth 2)
        "not json".into(),                           // bad_request
    ];
    (batch, warm)
}

fn cfg() -> ServeConfig {
    ServeConfig {
        queue_depth: 2,
        ..ServeConfig::default()
    }
}

#[test]
fn telemetry_attachment_is_bit_non_perturbing() {
    pin_threads();
    let run = |telemetry: bool| -> Vec<String> {
        let mut s = Service::new(Toy::default(), cfg());
        if telemetry {
            s.set_telemetry(Telemetry::recording(16));
        }
        let (batch, warm) = mixed_batch();
        s.handle_lines(&[&warm]);
        let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
        s.handle_lines(&refs).iter().map(Json::canonical).collect()
    };
    assert_eq!(run(false), run(true), "telemetry must never change response bytes");
}

#[test]
fn outcome_counters_match_access_log_exactly() {
    pin_threads();
    let mut s = Service::new(Toy::default(), cfg());
    s.set_telemetry(Telemetry::recording(32));
    let (batch, warm) = mixed_batch();
    s.handle_lines(&[&warm]);
    s.telemetry().drain_access_log(); // drop the warmup line
    let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
    s.handle_lines(&refs);
    let log = s.telemetry().drain_access_log();
    // Every non-stats outcome's counter equals the number of log lines
    // carrying its label — the typed enum keeps them in lockstep.
    // (Failed at the counter level means executor failures; the log's
    // `failed` label additionally covers them per request.)
    let lines: Vec<Json> = log
        .lines()
        .map(|l| pvc_core::json::parse(l).expect("log line parses"))
        .collect();
    assert_eq!(lines.len(), batch.len());
    let labelled = |label: &str| {
        lines
            .iter()
            .filter(|l| l.get("outcome").and_then(Json::as_str) == Some(label))
            .count() as u64
    };
    let m = s.metrics();
    assert_eq!(m.counter(Outcome::Hit.as_metric_name()), labelled("hit"));
    assert_eq!(m.counter(Outcome::Dedup.as_metric_name()), labelled("dedup"));
    assert_eq!(m.counter(Outcome::Overload.as_metric_name()), labelled("shed"));
    assert_eq!(m.counter(Outcome::Deadline.as_metric_name()), labelled("deadline"));
    assert_eq!(
        m.counter(Outcome::BadRequest.as_metric_name()),
        labelled("bad_request")
    );
    // n=-6 was admitted as a miss but resolved as the executor failure;
    // the log label follows the resolution while the admission counter
    // (serve.cache.miss) keeps the admission decision.
    assert_eq!(labelled("failed"), 1);
    assert_eq!(labelled("miss"), 1);
    assert_eq!(labelled("shed"), 1);
    assert_eq!(m.counter("serve.failed"), 1);
    // queue_depth records the admission-time depth: the dedup of
    // item(2) saw both queued computations (-6 and 2) ahead of it.
    let dedup_line = lines
        .iter()
        .find(|l| l.get("outcome").and_then(Json::as_str) == Some("dedup"))
        .unwrap();
    assert_eq!(dedup_line.get("queue_depth"), Some(&Json::Int(2)));
}

#[test]
fn failed_requests_log_failed_and_pin_the_anomaly() {
    pin_threads();
    let mut s = Service::new(Toy::default(), ServeConfig::default());
    s.set_telemetry(Telemetry::recording(16));
    let bad = item(-4);
    let responses = s.handle_lines(&[&bad]);
    let log = s.telemetry().drain_access_log();
    let line = pvc_core::json::parse(log.trim_end()).unwrap();
    // Counted as a miss at admission, resolved as failed.
    assert_eq!(line.get("outcome"), Some(&Json::str("failed")));
    assert_eq!(line.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(s.metrics().counter("serve.cache.miss"), 1);
    assert_eq!(s.metrics().counter("serve.failed"), 1);
    let a = s.telemetry().last_anomaly().expect("failure pinned");
    assert_eq!(a.telemetry.outcome, Outcome::Failed);
    assert_eq!(a.request_text.as_deref(), Some(
        Request::parse(&bad).unwrap().text()
    ));
    assert_eq!(a.envelope, responses[0], "anomaly keeps the exact response");
}

#[test]
fn flight_recorder_retains_most_recent_shed_request_trace() {
    pin_threads();
    let mut s = Service::new(Toy::default(), ServeConfig { queue_depth: 1, ..cfg() });
    s.set_telemetry(Telemetry::recording(4));
    // Two sheds; the anomaly must be the second one.
    let responses = s.handle_lines(&[&item(1), &item(2), &item(3)]);
    let a = s.telemetry().last_anomaly().expect("shed pinned");
    assert_eq!(a.telemetry.outcome, Outcome::Overload);
    assert_eq!(a.telemetry.kind, "item");
    assert_eq!(a.envelope, responses[2], "most recent shed, not the first");
    // Ring keeps the newest records within capacity.
    let mut seen = s.telemetry().recent();
    assert!(seen.len() <= 4);
    assert_eq!(seen.pop().unwrap().outcome, Outcome::Overload);
}

#[test]
fn stats_kind_is_served_by_the_service_not_the_executor() {
    pin_threads();
    let mut s = Service::new(Toy::default(), ServeConfig::default());
    s.set_telemetry(Telemetry::recording(8));
    let stats = r#"{"kind":"stats"}"#;
    let batch = [item(2), stats.to_string(), item(2)];
    let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
    let responses = s.handle_lines(&refs);
    // The executor never saw the stats request (it would have failed:
    // Toy only knows "item"), and only ran the one unique item atom.
    assert_eq!(s.executor().executions.load(Ordering::SeqCst), 1);
    let body = responses[1].get("result").expect("stats answered ok");
    let counters = body.get("counters").expect("counters section");
    assert_eq!(counters.get("serve.requests"), Some(&Json::Int(3)));
    assert_eq!(counters.get("serve.stats"), Some(&Json::Int(1)));
    // Work counters reported by the executor surface in the snapshot.
    assert_eq!(counters.get("toy.work.squares"), Some(&Json::Int(1)));
    // The same-batch item requests are already in the flight recorder.
    let recent = body
        .get("flight_recorder")
        .and_then(|f| f.get("recent"))
        .and_then(Json::as_array)
        .expect("recorder dumped");
    assert_eq!(recent.len(), 2, "both item records, stats itself excluded");
    // Cost quantiles per request kind are present and ordered.
    let q = body
        .get("quantiles")
        .and_then(|q| q.get("serve.cost.item"))
        .expect("per-kind cost histogram");
    let (p50, p99) = (
        q.get("p50").and_then(Json::as_num).unwrap(),
        q.get("p99").and_then(Json::as_num).unwrap(),
    );
    assert!(p50 <= p99);
    assert_eq!(q.get("count"), Some(&Json::Int(2)));
    // Stats responses are never cached: asking again reflects the new
    // counter values instead of replaying stale bytes.
    let again = s.handle_lines(&[stats]).remove(0);
    let c2 = again.get("result").unwrap().get("counters").unwrap();
    assert_eq!(c2.get("serve.requests"), Some(&Json::Int(4)));
    assert_eq!(c2.get("serve.stats"), Some(&Json::Int(2)));
    assert_eq!(s.metrics().counter("serve.cache.hit"), 0);
}

#[test]
fn stats_works_with_telemetry_disabled_too() {
    pin_threads();
    let s = Service::new(Toy::default(), ServeConfig::default());
    let r = s.handle_lines(&[r#"{"kind":"stats"}"#]).remove(0);
    let body = r.get("result").expect("answered");
    assert!(body.get("counters").is_some());
    assert!(
        body.get("flight_recorder").is_none(),
        "no recorder attached, no dump"
    );
}

// ---------------------------------------------------------------- //
// Two-tier cache: in-memory LRU over the persistent disk store.    //
// ---------------------------------------------------------------- //

/// Collision-free scratch path for a store file (no tempfile crate in
/// the hermetic workspace); the guard removes it on drop.
fn scratch_store(tag: &str) -> (std::path::PathBuf, Cleanup) {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "pvc-serve-telemetry-{tag}-{}-{}.bin",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_file(&path);
    (path.clone(), Cleanup(path))
}

struct Cleanup(std::path::PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

const STORE_FP: u64 = 0x7e57_f19e_4b41_d001;

fn service_with_store(path: &std::path::Path) -> (Service<Toy>, pvc_store::OpenReport) {
    let (store, report) = pvc_store::Store::open(path, STORE_FP).expect("store opens");
    let mut s = Service::new(Toy::default(), ServeConfig::default());
    s.set_telemetry(Telemetry::recording(8));
    s.attach_store(store, &report);
    (s, report)
}

#[test]
fn store_hit_promotes_into_lru_and_lru_hit_never_probes_disk() {
    pin_threads();
    let (path, _guard) = scratch_store("promote");

    // Pass 1: a cold service with an empty store computes and persists.
    let (first, computed) = {
        let (s, report) = service_with_store(&path);
        assert_eq!(report.status, pvc_store::OpenStatus::Created);
        let computed = s.handle_lines(&[&item(3)]).remove(0);
        let m = s.metrics();
        assert_eq!(m.counter("serve.cache.miss"), 1, "cold compute");
        assert_eq!(m.counter("serve.store.miss"), 1, "empty store probed");
        assert_eq!(m.counter("serve.store.write"), 1, "response persisted");
        (s.executor().executions.load(Ordering::SeqCst), computed)
    };
    assert_eq!(first, 1);

    // Pass 2: a fresh process (new LRU, same file) answers from disk.
    let (s, report) = service_with_store(&path);
    assert_eq!(report.status, pvc_store::OpenStatus::Loaded);
    assert_eq!(report.records, 1);
    s.telemetry().drain_access_log();
    let from_disk = s.handle_lines(&[&item(3)]).remove(0);
    assert_eq!(
        from_disk.canonical(),
        computed.canonical(),
        "store-served bytes must equal freshly computed bytes"
    );
    let m = s.metrics();
    assert_eq!(m.counter("serve.store.hit"), 1);
    assert_eq!(m.counter("serve.cache.miss"), 0, "no cold compute");
    assert_eq!(
        s.executor().executions.load(Ordering::SeqCst),
        0,
        "disk hit runs no atoms"
    );
    assert_eq!(
        m.counter("toy.work.squares"),
        0,
        "disk hits attribute zero new solver work"
    );
    let log = s.telemetry().drain_access_log();
    let line = pvc_core::json::parse(log.trim_end()).unwrap();
    assert_eq!(line.get("outcome"), Some(&Json::str("store_hit")));
    assert_eq!(line.get("ok"), Some(&Json::Bool(true)));

    // Pass 2 again: the store hit was promoted, so this is a plain LRU
    // hit and the disk tier is not consulted (its counters stand still).
    let from_lru = s.handle_lines(&[&item(3)]).remove(0);
    assert_eq!(from_lru.canonical(), computed.canonical());
    let m = s.metrics();
    assert_eq!(m.counter("serve.cache.hit"), 1, "promoted into the LRU");
    assert_eq!(m.counter("serve.store.hit"), 1, "LRU hit never probes disk");
    assert_eq!(m.counter("serve.store.miss"), 0);
    let log = s.telemetry().drain_access_log();
    let line = pvc_core::json::parse(log.trim_end()).unwrap();
    assert_eq!(line.get("outcome"), Some(&Json::str("hit")));
}

#[test]
fn store_attachment_is_bit_non_perturbing() {
    pin_threads();
    let run = |with_store: bool| -> Vec<String> {
        let (path, _guard) = scratch_store("perturb");
        let mut s = Service::new(Toy::default(), cfg());
        s.set_telemetry(Telemetry::recording(16));
        if with_store {
            let (store, report) =
                pvc_store::Store::open(&path, STORE_FP).expect("store opens");
            s.attach_store(store, &report);
        }
        let (batch, warm) = mixed_batch();
        s.handle_lines(&[&warm]);
        let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
        s.handle_lines(&refs).iter().map(Json::canonical).collect()
    };
    assert_eq!(
        run(false),
        run(true),
        "the disk tier must never change response bytes"
    );
}

#[test]
fn corrupt_store_degrades_to_recompute_not_failure() {
    pin_threads();
    let (path, _guard) = scratch_store("corrupt");
    {
        let (s, _) = service_with_store(&path);
        s.handle_lines(&[&item(7)]);
    }
    // Flip a byte inside the one persisted record: the checksum fails
    // at open, the record drops, and the service recomputes instead of
    // serving garbage.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = pvc_store::HEADER_LEN + (bytes.len() - pvc_store::HEADER_LEN) / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    let (s, report) = service_with_store(&path);
    assert!(report.tail_corrupt(), "byte flip detected at open");
    assert_eq!(report.records, 0, "store degraded to the valid prefix");
    assert_eq!(s.metrics().counter("store.open.tail_corrupt"), 1);
    let r = s.handle_lines(&[&item(7)]).remove(0);
    assert!(r.get("result").is_some(), "service still answers by computing");
    assert_eq!(s.metrics().counter("serve.cache.miss"), 1);
    assert_eq!(s.executor().executions.load(Ordering::SeqCst), 1);
    assert_eq!(
        s.metrics().counter("serve.store.write"),
        1,
        "recomputed result is re-persisted"
    );
}

#[test]
fn access_log_is_deterministic_across_identical_services() {
    pin_threads();
    let run = || {
        let mut s = Service::new(Toy::default(), cfg());
        s.set_telemetry(Telemetry::recording(16));
        let (batch, warm) = mixed_batch();
        s.handle_lines(&[&warm]);
        let refs: Vec<&str> = batch.iter().map(String::as_str).collect();
        s.handle_lines(&refs);
        (
            s.telemetry().drain_access_log(),
            s.stats_body().canonical(),
            s.metrics().expose_text(),
        )
    };
    assert_eq!(run(), run(), "log, stats body and exposition are all byte-stable");
}

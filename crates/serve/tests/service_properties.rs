//! Service-level properties: single-flight dedup, admission control,
//! deadline budgets, LRU behaviour and byte-identity of cached vs
//! recomputed responses. Uses a toy deterministic executor so the
//! properties are tested independently of the paper catalog (which has
//! its own suite in `pvc-report`).
//!
//! Every test in this binary pins `PVC_THREADS=2` so the parallel atom
//! pass really runs multi-threaded (the ISSUE's single-flight-under-
//! parallelism requirement) while staying deterministic.

use pvc_core::Json;
use pvc_serve::{Atom, Executor, Request, ServeConfig, Service};
use std::sync::atomic::{AtomicUsize, Ordering};

fn pin_threads() {
    // Test binaries run tests on multiple threads; setting the same
    // value from every test keeps this race-free in practice.
    std::env::set_var("PVC_THREADS", "2");
}

/// Deterministic toy executor counting real atom executions.
#[derive(Default)]
struct Toy {
    executions: AtomicUsize,
}

impl Executor for Toy {
    fn cost(&self, req: &Request) -> u64 {
        match req.get("cost") {
            Some(Json::Int(n)) => *n as u64,
            _ => 1,
        }
    }

    fn atoms(&self, req: &Request) -> Result<Vec<Atom>, String> {
        match req.kind() {
            "item" => {
                let Some(Json::Int(n)) = req.get("n") else {
                    return Err("item needs integer n".into());
                };
                Ok(vec![Atom::new(format!("item:{n}"), Json::Int(*n))])
            }
            "sweep" => {
                let Some(ids) = req.get("ids").and_then(Json::as_array) else {
                    return Err("sweep needs ids array".into());
                };
                ids.iter()
                    .map(|id| match id {
                        Json::Int(n) => Ok(Atom::new(format!("item:{n}"), Json::Int(*n))),
                        _ => Err("ids must be integers".to_string()),
                    })
                    .collect()
            }
            other => Err(format!("unknown kind '{other}'")),
        }
    }

    fn execute_atom(&self, atom: &Atom) -> Result<Json, String> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        let Json::Int(n) = atom.params else {
            return Err("non-integer atom".into());
        };
        if n < 0 {
            return Err(format!("negative item {n}"));
        }
        Ok(Json::obj(vec![
            ("id", Json::str(atom.id.clone())),
            ("square", Json::Int(n * n)),
        ]))
    }

    fn assemble(&self, _req: &Request, mut parts: Vec<Json>) -> Result<Json, String> {
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Json::Arr(parts)
        })
    }
}

fn service(cfg: ServeConfig) -> Service<Toy> {
    Service::new(Toy::default(), cfg)
}

fn item(n: i64) -> String {
    format!(r#"{{"kind":"item","n":{n}}}"#)
}

#[test]
fn single_flight_collapses_identical_requests_under_parallelism() {
    pin_threads();
    let s = service(ServeConfig::default());
    let line = item(7);
    let batch: Vec<&str> = vec![&line; 6];
    let responses = s.handle_lines(&batch);
    assert_eq!(responses.len(), 6);
    // All six answers are byte-identical and correct.
    for r in &responses {
        assert_eq!(r.canonical(), responses[0].canonical());
        assert_eq!(r.get("result").unwrap().get("square"), Some(&Json::Int(49)));
    }
    // …but the work ran exactly once.
    assert_eq!(s.executor().executions.load(Ordering::SeqCst), 1);
    assert_eq!(s.metrics().counter("serve.singleflight.deduped"), 5);
    assert_eq!(s.metrics().counter("serve.cache.miss"), 1);
}

#[test]
fn cached_response_is_byte_identical_to_recomputed() {
    pin_threads();
    let s = service(ServeConfig::default());
    let line = item(3);
    let cold = s.handle_lines(&[&line]).remove(0);
    assert_eq!(s.metrics().counter("serve.cache.hit"), 0);
    let warm = s.handle_lines(&[&line]).remove(0);
    assert_eq!(s.metrics().counter("serve.cache.hit"), 1);
    assert_eq!(cold.canonical(), warm.canonical(), "cache must not perturb bytes");
    // A fresh service recomputes the same bytes from scratch.
    let fresh = service(ServeConfig::default()).handle_lines(&[&line]).remove(0);
    assert_eq!(cold.canonical(), fresh.canonical());
}

#[test]
fn saturated_queue_sheds_with_typed_overloaded() {
    pin_threads();
    let s = service(ServeConfig { queue_depth: 2, ..ServeConfig::default() });
    let lines: Vec<String> = (0..5).map(item).collect();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let responses = s.handle_lines(&refs);
    let shed: Vec<&Json> = responses
        .iter()
        .filter(|r| {
            r.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str)
                == Some("overloaded")
        })
        .collect();
    assert_eq!(shed.len(), 3, "2 admitted, 3 shed");
    for r in shed {
        assert_eq!(
            r.get("error").unwrap().get("queue_depth"),
            Some(&Json::Int(2)),
            "rejection names the configured depth"
        );
    }
    assert_eq!(s.metrics().counter("serve.rejected.overload"), 3);
    // The admitted two really ran.
    assert_eq!(s.executor().executions.load(Ordering::SeqCst), 2);
}

#[test]
fn cache_hits_bypass_admission_under_overload() {
    pin_threads();
    let s = service(ServeConfig { queue_depth: 1, ..ServeConfig::default() });
    let a = item(1);
    s.handle_lines(&[&a]); // warm the cache with 'a'
    let b = item(2);
    let c = item(3);
    let responses = s.handle_lines(&[&a, &b, &c]);
    // 'a' is served from cache without a queue slot; 'b' takes the one
    // slot; 'c' is shed.
    assert!(responses[0].get("result").is_some(), "warm entry served");
    assert!(responses[1].get("result").is_some(), "one slot admitted");
    assert_eq!(
        responses[2].get("error").and_then(|e| e.get("kind")).and_then(Json::as_str),
        Some("overloaded")
    );
    assert_eq!(s.metrics().counter("serve.cache.hit"), 1);
}

#[test]
fn over_budget_requests_get_deadline_exceeded() {
    pin_threads();
    let s = service(ServeConfig { default_budget: 10, ..ServeConfig::default() });
    let pricey = r#"{"kind":"item","n":1,"cost":50}"#;
    let r = s.handle_lines(&[pricey]).remove(0);
    let err = r.get("error").unwrap();
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("deadline_exceeded"));
    assert_eq!(err.get("cost"), Some(&Json::Int(50)));
    assert_eq!(err.get("budget"), Some(&Json::Int(10)));
    // An explicit per-request budget overrides the default.
    let funded = r#"{"kind":"item","n":1,"cost":50,"budget":60}"#;
    let r = s.handle_lines(&[funded]).remove(0);
    assert!(r.get("result").is_some(), "explicit budget admits it: {}", r.pretty());
    assert_eq!(s.metrics().counter("serve.rejected.deadline"), 1);
}

#[test]
fn overlapping_sweeps_coalesce_into_one_pass_per_atom() {
    pin_threads();
    let s = service(ServeConfig::default());
    let a = r#"{"kind":"sweep","ids":[1,2,3]}"#;
    let b = r#"{"kind":"sweep","ids":[2,3,4]}"#;
    let responses = s.handle_lines(&[a, b]);
    // 6 atoms requested, 4 unique executed.
    assert_eq!(s.metrics().counter("serve.atoms.requested"), 6);
    assert_eq!(s.metrics().counter("serve.atoms.executed"), 4);
    assert_eq!(s.executor().executions.load(Ordering::SeqCst), 4);
    // Each response still sees its own slice, in its own order.
    let squares = |r: &Json| -> Vec<i64> {
        r.get("result")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|p| match p.get("square") {
                Some(Json::Int(n)) => *n,
                _ => panic!("square missing"),
            })
            .collect()
    };
    assert_eq!(squares(&responses[0]), vec![1, 4, 9]);
    assert_eq!(squares(&responses[1]), vec![4, 9, 16]);
}

#[test]
fn lru_eviction_order_and_counter() {
    pin_threads();
    let s = service(ServeConfig { cache_capacity: 2, ..ServeConfig::default() });
    let (one, two, three) = (item(1), item(2), item(3));
    s.handle_lines(&[&one]);
    s.handle_lines(&[&two]);
    s.handle_lines(&[&one]); // touch 1 → 2 becomes LRU victim
    s.handle_lines(&[&three]); // evicts 2
    assert_eq!(s.metrics().counter("serve.cache.evict"), 1);
    assert_eq!(s.cache_len(), 2);
    let before = s.executor().executions.load(Ordering::SeqCst);
    s.handle_lines(&[&one, &three]); // both still cached
    assert_eq!(s.executor().executions.load(Ordering::SeqCst), before);
    s.handle_lines(&[&two]); // 2 was evicted → recomputed
    assert_eq!(s.executor().executions.load(Ordering::SeqCst), before + 1);
}

#[test]
fn failures_are_enveloped_not_panicked() {
    pin_threads();
    let s = service(ServeConfig::default());
    let responses = s.handle_lines(&[
        r#"{"kind":"item","n":-4}"#, // atom execution fails
        r#"{"kind":"mystery"}"#,     // decomposition fails
        "not json at all",           // parse fails
        &item(5),                    // healthy neighbour
    ]);
    let kind = |r: &Json| {
        r.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    assert_eq!(kind(&responses[0]).as_deref(), Some("failed"));
    assert_eq!(kind(&responses[1]).as_deref(), Some("failed"));
    assert_eq!(kind(&responses[2]).as_deref(), Some("bad_request"));
    assert!(responses[3].get("result").is_some(), "healthy request unaffected");
    // Failed computations are never cached.
    assert_eq!(s.cache_len(), 1);
}

#[test]
fn envelope_echoes_canonical_request_and_key() {
    pin_threads();
    let s = service(ServeConfig::default());
    // Scrambled field order and a budget field: the envelope echoes the
    // canonical (sorted, budget-stripped) request.
    let r = s
        .handle_lines(&[r#"{"n":9,"budget":30,"kind":"item"}"#])
        .remove(0);
    let req = Request::parse(r#"{"kind":"item","n":9}"#).unwrap();
    assert_eq!(r.get("key").and_then(Json::as_str), Some(req.key_hex().as_str()));
    assert_eq!(r.get("request"), Some(req.canon()));
}

//! Shard-partitioning invariants (the ISSUE's property suite):
//!
//! * every canonical key maps to exactly one shard, for every cluster
//!   size — the partition function is total and deterministic;
//! * jump consistent hashing really is consistent: growing the cluster
//!   from `n` to `n+1` shards only ever moves keys to the new shard;
//! * no cache or store entry is ever present on two shards;
//! * dispatcher-merged batch/sweep responses are **byte-identical** to
//!   the single-shard output for shard counts 1, 2, 4, 7;
//! * overload shedding is per shard: a hot partition sheds while idle
//!   partitions keep admitting.

use pvc_core::Json;
use pvc_serve::shard::{shard_metric, shard_of};
use pvc_serve::{fnv1a64, Atom, Executor, Request, ServeConfig, Service};
use std::sync::atomic::{AtomicUsize, Ordering};

fn pin_threads() {
    std::env::set_var("PVC_THREADS", "2");
}

/// Deterministic toy executor (same shape as the service-property
/// suite's): squares integers, sweeps share `item:<n>` atoms.
#[derive(Default)]
struct Toy {
    executions: AtomicUsize,
}

impl Executor for Toy {
    fn cost(&self, _req: &Request) -> u64 {
        1
    }

    fn atoms(&self, req: &Request) -> Result<Vec<Atom>, String> {
        match req.kind() {
            "item" => {
                let Some(Json::Int(n)) = req.get("n") else {
                    return Err("item needs integer n".into());
                };
                Ok(vec![Atom::new(format!("item:{n}"), Json::Int(*n))])
            }
            "sweep" => {
                let Some(ids) = req.get("ids").and_then(Json::as_array) else {
                    return Err("sweep needs ids array".into());
                };
                ids.iter()
                    .map(|id| match id {
                        Json::Int(n) => Ok(Atom::new(format!("item:{n}"), Json::Int(*n))),
                        _ => Err("ids must be integers".to_string()),
                    })
                    .collect()
            }
            other => Err(format!("unknown kind '{other}'")),
        }
    }

    fn execute_atom(&self, atom: &Atom) -> Result<Json, String> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        let Json::Int(n) = atom.params else {
            return Err("non-integer atom".into());
        };
        Ok(Json::obj(vec![
            ("id", Json::str(atom.id.clone())),
            ("square", Json::Int(n * n)),
        ]))
    }

    fn assemble(&self, _req: &Request, mut parts: Vec<Json>) -> Result<Json, String> {
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Json::Arr(parts)
        })
    }
}

fn sharded(shards: usize) -> Service<Toy> {
    Service::new(Toy::default(), ServeConfig { shards, ..ServeConfig::default() })
}

fn item(n: i64) -> String {
    format!(r#"{{"kind":"item","n":{n}}}"#)
}

/// A seeded pseudo-random key stream (splitmix-style) so the property
/// sweeps cover the key space without wall-clock randomness.
fn keys(seed: u64, count: usize) -> Vec<u64> {
    let mut state = seed;
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

#[test]
fn every_key_maps_to_exactly_one_shard() {
    for n in [1usize, 2, 3, 4, 7, 16] {
        for key in keys(0xA11CE, 512) {
            let owner = shard_of(key, n);
            assert!(owner < n, "owner in range");
            // Total function: re-evaluation agrees, so there is exactly
            // one owner — ownership is never split or ambiguous.
            assert_eq!(owner, shard_of(key, n));
        }
    }
}

#[test]
fn growing_the_cluster_moves_keys_only_to_the_new_shard() {
    for n in 1usize..12 {
        for key in keys(0xBEE5, 512) {
            let before = shard_of(key, n);
            let after = shard_of(key, n + 1);
            assert!(
                after == before || after == n,
                "key {key:#x}: {n}→{} shards moved it {before}→{after}, \
                 not to the new shard",
                n + 1
            );
        }
    }
}

#[test]
fn partition_is_reasonably_balanced() {
    // Not a correctness invariant, but a badly skewed jump hash would
    // defeat the point of sharding; 4 shards over 4096 keys should each
    // own a recognisable fraction.
    let n = 4usize;
    let mut counts = vec![0usize; n];
    for key in keys(0xD15C0, 4096) {
        counts[shard_of(key, n)] += 1;
    }
    for (i, c) in counts.iter().enumerate() {
        assert!(
            (512..=1536).contains(c),
            "shard {i} owns {c}/4096 keys — severe imbalance"
        );
    }
}

#[test]
fn no_cache_entry_is_ever_present_on_two_shards() {
    pin_threads();
    for n in [2usize, 4, 7] {
        let s = sharded(n);
        let lines: Vec<String> = (0..40).map(item).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        s.handle_lines(&refs);
        s.handle_lines(&refs); // hits must not replicate entries
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for shard in 0..n {
            for key in s.shard_cache_keys(shard) {
                if let Some(prev) = seen.insert(key, shard) {
                    panic!("key {key:#x} cached on shard {prev} AND {shard}");
                }
                assert_eq!(
                    shard_of(key, n),
                    shard,
                    "key {key:#x} cached on a shard that does not own it"
                );
            }
        }
        assert_eq!(seen.len(), 40, "all entries cached exactly once");
    }
}

#[test]
fn no_store_entry_is_ever_present_on_two_shards() {
    pin_threads();
    let n = 4usize;
    let mut s = sharded(n);
    let mut guards = Vec::new();
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    for shard in 0..n {
        let path = std::env::temp_dir().join(format!(
            "pvc-serve-shardprop-{}-{}-{shard}.bin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_file(&path);
        let (store, report) = pvc_store::Store::open(&path, 0x5ad_f00d).expect("store opens");
        s.attach_shard_store(shard, store, &report);
        guards.push(Cleanup(path));
    }
    let lines: Vec<String> = (0..24).map(item).collect();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    s.handle_lines(&refs);
    assert_eq!(s.store_len(), 24, "every response persisted exactly once");
    for line in &refs {
        let req = Request::parse(line).expect("parses");
        let owner = shard_of(req.key(), n);
        for shard in 0..n {
            assert_eq!(
                s.shard_store_contains(shard, req.key(), req.text()),
                shard == owner,
                "store entry for {line} on shard {shard}, owner {owner}"
            );
        }
    }
}

struct Cleanup(std::path::PathBuf);

impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn merged_responses_are_byte_identical_across_shard_counts() {
    pin_threads();
    // A mixed batch: overlapping sweeps (cross-shard atom coalescing),
    // duplicates (single-flight), plain items, and a parse failure —
    // everything but sheds, which are depth-dependent by design.
    let refs = [
        r#"{"kind":"sweep","ids":[1,2,3,4,5]}"#,
        r#"{"kind":"item","n":3}"#,
        r#"{"kind":"sweep","ids":[4,5,6,7]}"#,
        r#"{"kind":"item","n":3}"#,
        "definitely not json",
        r#"{"kind":"sweep","ids":[1,2,3,4,5]}"#,
        r#"{"kind":"item","n":11}"#,
    ];
    let run = |shards: usize| -> Vec<String> {
        let s = sharded(shards);
        let mut out: Vec<String> = s
            .handle_lines(&refs)
            .iter()
            .map(Json::canonical)
            .collect();
        // Replay: warm answers must stay byte-identical too.
        out.extend(s.handle_lines(&refs).iter().map(Json::canonical));
        out
    };
    let single = run(1);
    for n in [2usize, 4, 7] {
        assert_eq!(
            run(n),
            single,
            "{n}-shard dispatcher output diverged from single-shard bytes"
        );
    }
}

#[test]
fn work_runs_once_regardless_of_shard_count() {
    pin_threads();
    let a = r#"{"kind":"sweep","ids":[1,2,3]}"#;
    let b = r#"{"kind":"sweep","ids":[2,3,4]}"#;
    for n in [1usize, 2, 4, 7] {
        let s = sharded(n);
        s.handle_lines(&[a, b]);
        // 6 atoms requested, 4 unique — coalescing is cluster-wide,
        // so shard count never duplicates atom executions.
        assert_eq!(s.metrics().counter("serve.atoms.requested"), 6, "shards={n}");
        assert_eq!(s.metrics().counter("serve.atoms.executed"), 4, "shards={n}");
        assert_eq!(s.executor().executions.load(Ordering::SeqCst), 4, "shards={n}");
    }
}

#[test]
fn overload_sheds_per_shard_not_globally() {
    pin_threads();
    let n = 2usize;
    // Find three requests owned by shard 0 and one owned by shard 1.
    let mut hot = Vec::new();
    let mut cold = Vec::new();
    for i in 0..200 {
        let line = item(i);
        let req = Request::parse(&line).expect("parses");
        match shard_of(req.key(), n) {
            0 if hot.len() < 3 => hot.push(line),
            1 if cold.is_empty() => cold.push(line),
            _ => {}
        }
        if hot.len() == 3 && !cold.is_empty() {
            break;
        }
    }
    assert_eq!((hot.len(), cold.len()), (3, 1), "key space covers both shards");

    let s = Service::new(
        Toy::default(),
        ServeConfig { queue_depth: 1, shards: n, ..ServeConfig::default() },
    );
    let batch: Vec<&str> = hot
        .iter()
        .chain(cold.iter())
        .map(String::as_str)
        .collect();
    let responses = s.handle_lines(&batch);
    let is_shed = |r: &Json| {
        r.get("error").and_then(|e| e.get("kind")).and_then(Json::as_str)
            == Some("overloaded")
    };
    // Shard 0: one admitted, two shed. Shard 1: admitted despite the
    // cluster being "full" by the old global accounting.
    assert!(!is_shed(&responses[0]), "first hot request admitted");
    assert!(is_shed(&responses[1]) && is_shed(&responses[2]), "hot shard sheds its overflow");
    assert!(
        !is_shed(&responses[3]),
        "idle shard keeps admitting while the hot one sheds"
    );
    assert_eq!(s.metrics().counter("serve.rejected.overload"), 2);
    assert_eq!(s.metrics().counter(&shard_metric(0, "serve.rejected.overload")), 2);
    assert_eq!(s.metrics().counter(&shard_metric(1, "serve.rejected.overload")), 0);
    assert_eq!(s.metrics().counter(&shard_metric(1, "serve.cache.miss")), 1);
}

#[test]
fn per_shard_counters_sum_to_the_global_spellings() {
    pin_threads();
    let n = 4usize;
    let s = sharded(n);
    let lines: Vec<String> = (0..20).map(item).collect();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    s.handle_lines(&refs);
    s.handle_lines(&refs);
    for global in ["serve.cache.hit", "serve.cache.miss", "serve.atoms.executed"] {
        let sum: u64 = (0..n)
            .map(|i| s.metrics().counter(&shard_metric(i, global)))
            .sum();
        assert_eq!(
            sum,
            s.metrics().counter(global),
            "per-shard {global} spellings must sum to the global counter"
        );
    }
}

#[test]
fn stats_body_carries_a_per_shard_breakdown() {
    pin_threads();
    let n = 2usize;
    let s = sharded(n);
    let lines: Vec<String> = (0..8).map(item).collect();
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    s.handle_lines(&refs);
    let stats = s
        .handle_lines(&[r#"{"kind":"stats"}"#])
        .remove(0);
    let shards = stats
        .get("result")
        .and_then(|r| r.get("shards"))
        .and_then(Json::as_array)
        .expect("stats result carries a shards array");
    assert_eq!(shards.len(), n);
    let total_misses: i64 = shards
        .iter()
        .map(|e| match e.get("misses") {
            Some(Json::Int(v)) => *v,
            _ => panic!("shard entry missing misses"),
        })
        .sum();
    assert_eq!(total_misses, 8);
    for (i, entry) in shards.iter().enumerate() {
        assert_eq!(entry.get("shard"), Some(&Json::Int(i as i64)));
        for field in ["queue_depth", "cache_hits", "store_hits", "sheds", "cache_entries"] {
            assert!(entry.get(field).is_some(), "shard entry missing {field}");
        }
    }
}

#[test]
fn shutdown_kind_latches_and_answers_ok() {
    pin_threads();
    let s = sharded(2);
    assert!(!s.shutdown_requested());
    let r = s.handle_lines(&[r#"{"kind":"shutdown"}"#]).remove(0);
    assert_eq!(
        r.get("result").and_then(|b| b.get("shutting_down")),
        Some(&Json::Bool(true))
    );
    assert!(s.shutdown_requested(), "flag latches");
    assert_eq!(s.metrics().counter("serve.shutdown"), 1);
    // Still serves the rest of the drain.
    let r = s.handle_lines(&[&item(1)]).remove(0);
    assert!(r.get("result").is_some());
}

#[test]
fn request_key_routing_matches_fnv_content_address() {
    // The dispatcher routes on the request's canonical FNV-1a key; the
    // two must agree or cache ownership and store partitioning split.
    let line = r#"{"kind":"item","n":9}"#;
    let req = Request::parse(line).expect("parses");
    assert_eq!(req.key(), fnv1a64(req.text().as_bytes()));
    for n in [1usize, 2, 4, 7] {
        let s = sharded(n);
        assert_eq!(s.shard_of_key(req.key()), shard_of(req.key(), n));
    }
}

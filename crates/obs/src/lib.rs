//! # pvc-obs — deterministic tracing and metrics for the simulator
//!
//! Every timestamp in this crate is **virtual simulation time** (seconds
//! since simulation start, the same clock as [`pvc-simrt`]'s `Time`) —
//! never wall clock. Two runs of the same workload with the same seed
//! therefore produce byte-identical traces, extending the workspace's
//! reproducibility guarantee to observability artifacts.
//!
//! Three pieces:
//!
//! * [`Tracer`] — nestable spans and instant events carrying typed
//!   key/value attributes, grouped into per-layer lanes ([`Layer`]).
//!   The default tracer is a **no-op sink**: every hook collapses to a
//!   single branch on an `Option`, so instrumented hot paths cost
//!   nothing when tracing is off.
//! * [`Metrics`] — a registry of counters (saturating at `u64::MAX`),
//!   gauges, and fixed-bucket histograms with quantile estimation,
//!   deterministic name-sorted snapshots/deltas, and a
//!   Prometheus-style text exposition ([`Metrics::expose_text`]).
//!   A thread-local **ambient sink** ([`Metrics::install_ambient`])
//!   lets low layers export work counters without API plumbing.
//! * [`export`] — Chrome `trace_event` JSON (loadable in
//!   `chrome://tracing` / Perfetto) and a plain-text summary, built on
//!   the in-tree `pvc-core` JSON writer.
//!
//! [`pvc-simrt`]: ../pvc_simrt/index.html

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{chrome_trace, chrome_trace_json, span_totals, top_table, SpanTotal};
pub use metrics::{AmbientGuard, GaugeState, InstrumentSnapshot, Metrics, MetricsSnapshot};
pub use trace::{AttrValue, Layer, SpanHandle, Tracer};

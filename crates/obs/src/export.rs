//! Exporters: Chrome `trace_event` JSON and the span-total table.
//!
//! The Chrome export uses complete (`"ph": "X"`) events with explicit
//! `ts`/`dur` in microseconds of **virtual** time, instant (`"i"`)
//! events, and counter (`"C"`) tracks, plus metadata naming one thread
//! lane per [`Layer`]. Records are sorted by `(start, -end, seq)` —
//! total, deterministic — so enclosing spans precede their children and
//! two identical runs serialize byte-identically.

use crate::metrics::Metrics;
use crate::trace::{AttrValue, Layer, Record, Tracer};
use pvc_core::Json;

fn attrs_json(attrs: &[(&'static str, AttrValue)]) -> Json {
    Json::Obj(
        attrs
            .iter()
            .map(|(k, v)| {
                let jv = match v {
                    AttrValue::Int(i) => Json::Int(*i),
                    AttrValue::Num(x) => Json::Num(*x),
                    AttrValue::Str(s) => Json::Str(s.clone()),
                    AttrValue::Bool(b) => Json::Bool(*b),
                };
                (k.to_string(), jv)
            })
            .collect(),
    )
}

/// Seconds of virtual time → Chrome-trace microseconds.
fn us(t: f64) -> f64 {
    t * 1e6
}

/// Deterministic export order: by start time, then longest-first (so a
/// parent precedes the children it contains), then insertion sequence.
fn sorted_records(tracer: &Tracer) -> Vec<Record> {
    let mut recs = tracer.records();
    recs.sort_by(|a, b| {
        let (a0, b0) = (a.start(), b.start());
        a0.partial_cmp(&b0)
            .expect("trace timestamps are finite")
            .then_with(|| {
                let end = |r: &Record| match r {
                    Record::Span { t1, .. } => *t1,
                    Record::Instant { t, .. } | Record::Sample { t, .. } => *t,
                };
                end(b).partial_cmp(&end(a)).expect("finite")
            })
            .then_with(|| a.seq().cmp(&b.seq()))
    });
    recs
}

/// Builds the Chrome `trace_event` document as a JSON tree.
pub fn chrome_trace(tracer: &Tracer, metrics: Option<&Metrics>) -> Json {
    let mut events: Vec<Json> = Vec::new();

    // Metadata: one process, one named lane per layer.
    events.push(Json::obj(vec![
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::Int(1)),
        ("tid", Json::Int(0)),
        (
            "args",
            Json::obj(vec![("name", Json::str("pvc-sim (virtual time)"))]),
        ),
    ]));
    for layer in Layer::ALL {
        events.push(Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::Int(1)),
            ("tid", Json::Int(layer.tid())),
            ("args", Json::obj(vec![("name", Json::str(layer.cat()))])),
        ]));
    }

    for rec in sorted_records(tracer) {
        let ev = match &rec {
            Record::Span {
                layer,
                name,
                t0,
                t1,
                attrs,
                ..
            } => Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("cat", Json::str(layer.cat())),
                ("ph", Json::str("X")),
                ("ts", Json::Num(us(*t0))),
                ("dur", Json::Num(us(*t1 - *t0))),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(layer.tid())),
                ("args", attrs_json(attrs)),
            ]),
            Record::Instant {
                layer,
                name,
                t,
                attrs,
                ..
            } => Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("cat", Json::str(layer.cat())),
                ("ph", Json::str("i")),
                ("ts", Json::Num(us(*t))),
                ("pid", Json::Int(1)),
                ("tid", Json::Int(layer.tid())),
                ("s", Json::str("t")),
                ("args", attrs_json(attrs)),
            ]),
            Record::Sample {
                layer, name, t, value, ..
            } => Json::obj(vec![
                ("name", Json::str(name.clone())),
                ("cat", Json::str(layer.cat())),
                ("ph", Json::str("C")),
                ("ts", Json::Num(us(*t))),
                ("pid", Json::Int(1)),
                ("args", Json::obj(vec![("value", Json::Num(*value))])),
            ]),
        };
        events.push(ev);
    }

    let mut top = vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ms")),
    ];
    if let Some(m) = metrics {
        if !m.is_empty() {
            top.push(("metrics", m.to_json()));
        }
    }
    Json::obj(top)
}

/// The Chrome trace serialized to a pretty-printed JSON string.
pub fn chrome_trace_json(tracer: &Tracer, metrics: Option<&Metrics>) -> String {
    let mut s = chrome_trace(tracer, metrics).pretty();
    s.push('\n');
    s
}

/// Aggregated time for one span name on one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTotal {
    pub layer: Layer,
    pub name: String,
    /// Number of span instances.
    pub count: u64,
    /// Summed inclusive duration, virtual seconds.
    pub total: f64,
}

/// Aggregates spans by `(layer, name)`, sorted by total inclusive time
/// descending (ties by first appearance) — the raw "where did the time
/// go" data.
pub fn span_totals(tracer: &Tracer) -> Vec<SpanTotal> {
    let mut totals: Vec<SpanTotal> = Vec::new();
    for rec in tracer.records() {
        if let Record::Span {
            layer, name, t0, t1, ..
        } = rec
        {
            match totals
                .iter_mut()
                .find(|s| s.layer == layer && s.name == name)
            {
                Some(s) => {
                    s.count += 1;
                    s.total += t1 - t0;
                }
                None => totals.push(SpanTotal {
                    layer,
                    name,
                    count: 1,
                    total: t1 - t0,
                }),
            }
        }
    }
    totals.sort_by(|a, b| b.total.partial_cmp(&a.total).expect("finite totals"));
    totals
}

/// Renders the top-`n` span totals as a plain-text table.
pub fn top_table(tracer: &Tracer, n: usize) -> String {
    let totals = span_totals(tracer);
    let shown = totals.iter().take(n);
    let grand: f64 = totals.iter().map(|s| s.total).sum();
    let mut out = String::from("Where did the (virtual) time go:\n");
    out.push_str(&format!(
        "{:<10} {:<34} {:>6} {:>14} {:>7}\n",
        "layer", "span", "count", "total", "share"
    ));
    out.push_str(&"-".repeat(75));
    out.push('\n');
    for s in shown {
        let share = if grand > 0.0 { s.total / grand * 100.0 } else { 0.0 };
        out.push_str(&format!(
            "{:<10} {:<34} {:>6} {:>11.6} s {:>6.1}%\n",
            s.layer.cat(),
            s.name,
            s.count,
            s.total,
            share
        ));
    }
    if totals.len() > n {
        out.push_str(&format!("({} more spans not shown)\n", totals.len() - n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_trace_contains_lanes_and_events() {
        let t = Tracer::recording();
        t.span(Layer::Workload, "phase", 0.0, 2.0, vec![("n", 3i64.into())]);
        t.instant(Layer::Simrt, "tick", 1.0, vec![]);
        t.sample(Layer::Fabric, "util", 0.5, 0.75);
        let s = chrome_trace_json(&t, None);
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("\"ph\": \"X\""));
        assert!(s.contains("\"ph\": \"i\""));
        assert!(s.contains("\"ph\": \"C\""));
        assert!(s.contains("\"thread_name\""));
        assert!(s.contains("\"workload\""));
        // span ts in µs: 0, dur 2e6.
        assert!(s.contains("\"dur\": 2000000"));
    }

    #[test]
    fn export_sorts_by_virtual_time_not_emission_order() {
        let t = Tracer::recording();
        t.span(Layer::Workload, "late", 5.0, 6.0, vec![]);
        t.span(Layer::Workload, "outer", 0.0, 10.0, vec![]);
        t.span(Layer::Workload, "early", 0.0, 1.0, vec![]);
        let s = chrome_trace_json(&t, None);
        let outer = s.find("\"outer\"").unwrap();
        let early = s.find("\"early\"").unwrap();
        let late = s.find("\"late\"").unwrap();
        // Same start: the enclosing (longer) span comes first; later
        // starts follow.
        assert!(outer < early, "parent precedes contained child");
        assert!(early < late);
    }

    #[test]
    fn span_totals_aggregate_and_rank() {
        let t = Tracer::recording();
        t.span(Layer::Workload, "compute", 0.0, 3.0, vec![]);
        t.span(Layer::Workload, "compute", 3.0, 6.0, vec![]);
        t.span(Layer::Fabric, "halo", 6.0, 7.0, vec![]);
        let totals = span_totals(&t);
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].name, "compute");
        assert_eq!(totals[0].count, 2);
        assert!((totals[0].total - 6.0).abs() < 1e-12);
        let table = top_table(&t, 1);
        assert!(table.contains("compute"));
        assert!(table.contains("1 more spans not shown"));
    }

    #[test]
    fn empty_tracer_exports_valid_skeleton() {
        let t = Tracer::recording();
        let s = chrome_trace_json(&t, None);
        assert!(s.contains("traceEvents"));
        let doc = pvc_core::json::parse(&s).expect("skeleton parses");
        let Json::Obj(pairs) = doc else { panic!("object") };
        assert!(pairs.iter().any(|(k, _)| k == "traceEvents"));
    }
}

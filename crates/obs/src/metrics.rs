//! Metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Insertion-ordered (never hash-ordered) so every rendering of the
//! registry is deterministic. Like [`crate::Tracer`], the registry is a
//! cheap cloneable handle sharing one buffer; a disabled registry is
//! not needed — an unused `Metrics` simply stays empty.

use pvc_core::Json;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone, PartialEq)]
enum Instrument {
    /// Monotonic count; saturates at `u64::MAX` instead of wrapping.
    Counter { value: u64 },
    /// Last-set value plus observed range.
    Gauge { value: f64, min: f64, max: f64, set: bool },
    /// Fixed upper-bound buckets plus an overflow bucket.
    Histogram {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        count: u64,
        sum: f64,
    },
}

#[derive(Debug, Default)]
struct Registry {
    names: Vec<String>,
    instruments: Vec<Instrument>,
}

impl Registry {
    fn index(&mut self, name: &str, make: impl FnOnce() -> Instrument) -> usize {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.names.push(name.to_string());
                self.instruments.push(make());
                self.names.len() - 1
            }
        }
    }
}

/// The metrics registry handle.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    reg: Rc<RefCell<Registry>>,
}

impl Metrics {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name` (created at 0 on first use),
    /// saturating at `u64::MAX`.
    pub fn count(&self, name: &str, n: u64) {
        let mut r = self.reg.borrow_mut();
        let i = r.index(name, || Instrument::Counter { value: 0 });
        if let Instrument::Counter { value } = &mut r.instruments[i] {
            *value = value.saturating_add(n);
        } else {
            panic!("metric '{name}' is not a counter");
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let r = self.reg.borrow();
        match r.names.iter().position(|n| n == name) {
            Some(i) => match &r.instruments[i] {
                Instrument::Counter { value } => *value,
                _ => panic!("metric '{name}' is not a counter"),
            },
            None => 0,
        }
    }

    /// Sets gauge `name` to `v`, tracking the observed min/max.
    pub fn gauge(&self, name: &str, v: f64) {
        assert!(v.is_finite(), "gauge '{name}' set to non-finite {v}");
        let mut r = self.reg.borrow_mut();
        let i = r.index(name, || Instrument::Gauge {
            value: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            set: false,
        });
        if let Instrument::Gauge { value, min, max, set } = &mut r.instruments[i] {
            *value = v;
            *min = min.min(v);
            *max = max.max(v);
            *set = true;
        } else {
            panic!("metric '{name}' is not a gauge");
        }
    }

    /// Last-set value of gauge `name`.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        let r = self.reg.borrow();
        let i = r.names.iter().position(|n| n == name)?;
        match &r.instruments[i] {
            Instrument::Gauge { value, set, .. } => set.then_some(*value),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// Declares histogram `name` with the given ascending bucket upper
    /// bounds (an implicit overflow bucket catches everything above the
    /// last bound). Declaring twice with different bounds panics.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn declare_histogram(&self, name: &str, bounds: &[f64]) {
        assert!(!bounds.is_empty(), "histogram '{name}' needs buckets");
        for w in bounds.windows(2) {
            assert!(
                w[0] < w[1],
                "histogram '{name}' bounds must be strictly ascending"
            );
        }
        let mut r = self.reg.borrow_mut();
        let i = r.index(name, || Instrument::Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        });
        if let Instrument::Histogram { bounds: b, .. } = &r.instruments[i] {
            assert_eq!(b, bounds, "histogram '{name}' re-declared with different bounds");
        } else {
            panic!("metric '{name}' is not a histogram");
        }
    }

    /// Records `v` into histogram `name` (must be declared first). A
    /// value lands in the first bucket whose upper bound is `>= v`;
    /// values above every bound land in the overflow bucket.
    pub fn record(&self, name: &str, v: f64) {
        let mut r = self.reg.borrow_mut();
        let i = r
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("histogram '{name}' not declared"));
        if let Instrument::Histogram { bounds, counts, count, sum } = &mut r.instruments[i] {
            let b = bounds
                .iter()
                .position(|&ub| v <= ub)
                .unwrap_or(bounds.len());
            counts[b] += 1;
            *count += 1;
            *sum += v;
        } else {
            panic!("metric '{name}' is not a histogram");
        }
    }

    /// `(bucket counts including overflow, total count, sum)` of
    /// histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<(Vec<u64>, u64, f64)> {
        let r = self.reg.borrow();
        let i = r.names.iter().position(|n| n == name)?;
        match &r.instruments[i] {
            Instrument::Histogram { counts, count, sum, .. } => {
                Some((counts.clone(), *count, *sum))
            }
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.reg.borrow().names.is_empty()
    }

    /// Insertion-ordered snapshot of every counter whose name starts
    /// with `prefix` (empty prefix = all counters). Lets a subsystem
    /// export just its own namespace — the serve frontends print
    /// `counters("serve.")` for `--stats`.
    pub fn counters(&self, prefix: &str) -> Vec<(String, u64)> {
        let r = self.reg.borrow();
        r.names
            .iter()
            .zip(r.instruments.iter())
            .filter(|(name, _)| name.starts_with(prefix))
            .filter_map(|(name, inst)| match inst {
                Instrument::Counter { value } => Some((name.clone(), *value)),
                _ => None,
            })
            .collect()
    }

    /// Plain-text summary, one line per instrument, registration order.
    pub fn summary(&self) -> String {
        let r = self.reg.borrow();
        let mut out = String::new();
        for (name, inst) in r.names.iter().zip(r.instruments.iter()) {
            match inst {
                Instrument::Counter { value } => {
                    out.push_str(&format!("counter {name} = {value}\n"));
                }
                Instrument::Gauge { value, min, max, set } => {
                    if *set {
                        out.push_str(&format!(
                            "gauge   {name} = {value} (min {min}, max {max})\n"
                        ));
                    }
                }
                Instrument::Histogram { bounds, counts, count, sum } => {
                    let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                    out.push_str(&format!(
                        "histo   {name}: n={count} mean={mean:.4}"
                    ));
                    for (i, c) in counts.iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        if i < bounds.len() {
                            out.push_str(&format!(" le{}={c}", bounds[i]));
                        } else {
                            out.push_str(&format!(" overflow={c}"));
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// The registry as a JSON object, registration order.
    pub fn to_json(&self) -> Json {
        let r = self.reg.borrow();
        let mut pairs = Vec::new();
        for (name, inst) in r.names.iter().zip(r.instruments.iter()) {
            let v = match inst {
                Instrument::Counter { value } => Json::Int(*value as i64),
                Instrument::Gauge { value, min, max, set } => {
                    if !*set {
                        continue;
                    }
                    Json::obj(vec![
                        ("value", Json::Num(*value)),
                        ("min", Json::Num(*min)),
                        ("max", Json::Num(*max)),
                    ])
                }
                Instrument::Histogram { bounds, counts, count, sum } => Json::obj(vec![
                    ("bounds", Json::Arr(bounds.iter().map(|&b| Json::Num(b)).collect())),
                    (
                        "counts",
                        Json::Arr(counts.iter().map(|&c| Json::Int(c as i64)).collect()),
                    ),
                    ("count", Json::Int(*count as i64)),
                    ("sum", Json::Num(*sum)),
                ]),
            };
            pairs.push((name.clone(), v));
        }
        Json::Obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let m = Metrics::new();
        m.count("events", 2);
        m.count("events", 3);
        assert_eq!(m.counter("events"), 5);
        m.count("events", u64::MAX);
        assert_eq!(m.counter("events"), u64::MAX, "saturates, never wraps");
        m.count("events", 1);
        assert_eq!(m.counter("events"), u64::MAX);
    }

    #[test]
    fn gauges_track_range() {
        let m = Metrics::new();
        assert_eq!(m.gauge_value("util"), None);
        m.gauge("util", 0.5);
        m.gauge("util", 0.9);
        m.gauge("util", 0.2);
        assert_eq!(m.gauge_value("util"), Some(0.2));
        assert!(m.summary().contains("min 0.2, max 0.9"));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let m = Metrics::new();
        m.declare_histogram("lat", &[1.0, 2.0, 4.0]);
        // Exactly on a bound lands in that bucket (le semantics).
        for v in [0.5, 1.0, 1.5, 2.0, 4.0, 4.000001, 100.0] {
            m.record("lat", v);
        }
        let (counts, n, sum) = m.histogram("lat").unwrap();
        assert_eq!(counts, vec![2, 2, 1, 2]); // le1, le2, le4, overflow
        assert_eq!(n, 7);
        assert!((sum - 113.000001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn recording_undeclared_histogram_panics() {
        Metrics::new().record("nope", 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        Metrics::new().declare_histogram("h", &[2.0, 1.0]);
    }

    #[test]
    fn summary_is_registration_ordered() {
        let m = Metrics::new();
        m.count("z_first", 1);
        m.gauge("a_second", 2.0);
        let s = m.summary();
        let zi = s.find("z_first").unwrap();
        let ai = s.find("a_second").unwrap();
        assert!(zi < ai, "insertion order, not alphabetical");
    }

    #[test]
    fn counters_snapshot_filters_by_prefix_in_order() {
        let m = Metrics::new();
        m.count("serve.cache.hit", 2);
        m.gauge("serve.queue", 1.0); // not a counter: excluded
        m.count("other.total", 9);
        m.count("serve.cache.miss", 1);
        assert_eq!(
            m.counters("serve."),
            vec![
                ("serve.cache.hit".to_string(), 2),
                ("serve.cache.miss".to_string(), 1),
            ]
        );
        assert_eq!(m.counters("").len(), 3, "empty prefix = every counter");
    }

    #[test]
    fn json_rendering_has_all_kinds() {
        let m = Metrics::new();
        m.count("c", 1);
        m.gauge("g", 0.5);
        m.declare_histogram("h", &[1.0]);
        m.record("h", 0.5);
        let j = m.to_json().pretty();
        assert!(j.contains("\"c\": 1"));
        assert!(j.contains("\"value\": 0.5"));
        assert!(j.contains("\"counts\""));
    }
}

//! Metrics registry: counters, gauges, fixed-bucket histograms — plus
//! quantile estimation, deterministic snapshot/delta semantics and a
//! Prometheus-style text exposition.
//!
//! Every rendered output (summary, JSON, exposition, snapshots) is
//! **sorted by metric name** using plain byte order — never hash order,
//! never locale-dependent collation — so two registries that saw the
//! same updates render byte-identical text regardless of registration
//! order. Like [`crate::Tracer`], the registry is a cheap cloneable
//! handle sharing one buffer; a disabled registry is not needed — an
//! unused `Metrics` simply stays empty.
//!
//! ## Ambient sink
//!
//! Low layers (the `pvc-simrt` flow solver and event queue) export
//! their work counters without any API plumbing through a thread-local
//! **ambient sink** stack: a caller that wants the counters installs
//! its registry with [`Metrics::install_ambient`] (RAII guard) and
//! every export inside the guard's scope lands in it. With no sink
//! installed the export is a single thread-local check — the disabled
//! path stays bit-non-perturbing.

use pvc_core::Json;
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone, PartialEq)]
enum Instrument {
    /// Monotonic count; saturates at `u64::MAX` instead of wrapping.
    Counter { value: u64 },
    /// Last-set value plus observed range.
    Gauge { value: f64, min: f64, max: f64, set: bool },
    /// Fixed upper-bound buckets plus an overflow bucket.
    Histogram {
        bounds: Vec<f64>,
        counts: Vec<u64>,
        count: u64,
        sum: f64,
    },
}

#[derive(Debug, Default)]
struct Registry {
    names: Vec<String>,
    instruments: Vec<Instrument>,
}

impl Registry {
    fn index(&mut self, name: &str, make: impl FnOnce() -> Instrument) -> usize {
        match self.names.iter().position(|n| n == name) {
            Some(i) => i,
            None => {
                self.names.push(name.to_string());
                self.instruments.push(make());
                self.names.len() - 1
            }
        }
    }

    /// Indices sorted by metric name, byte order (locale-independent).
    fn sorted_indices(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.names.len()).collect();
        idx.sort_by(|&a, &b| self.names[a].as_bytes().cmp(self.names[b].as_bytes()));
        idx
    }
}

/// Typed gauge observation: distinguishes a gauge nobody ever set from
/// one explicitly set to NaN (both answer `None`-ish through float
/// plumbing, but mean different things to a dashboard).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GaugeState {
    /// No value was ever recorded under this name.
    Unset,
    /// The gauge was set; the payload may be NaN.
    Set(f64),
}

impl GaugeState {
    /// True when a value (including NaN) was recorded.
    pub fn is_set(&self) -> bool {
        matches!(self, GaugeState::Set(_))
    }
}

thread_local! {
    /// The ambient sink stack (see module docs). A stack, not a slot,
    /// so nested observed scopes (chaos delta runs inside a serve atom)
    /// each receive the counters exported inside them.
    static AMBIENT: RefCell<Vec<Metrics>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard from [`Metrics::install_ambient`]; uninstalls the sink
/// when dropped. Not `Send` — the sink is thread-local by design.
#[must_use = "the ambient sink is uninstalled when the guard drops"]
pub struct AmbientGuard {
    _thread_local: std::marker::PhantomData<Rc<()>>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// The metrics registry handle.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    reg: Rc<RefCell<Registry>>,
}

impl Metrics {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs this registry as the innermost ambient sink on the
    /// current thread until the returned guard drops.
    pub fn install_ambient(&self) -> AmbientGuard {
        AMBIENT.with(|s| s.borrow_mut().push(self.clone()));
        AmbientGuard {
            _thread_local: std::marker::PhantomData,
        }
    }

    /// Calls `f` once per installed ambient sink (outermost first).
    /// `f` must not install or uninstall sinks. No sink, no calls —
    /// the disabled path is one thread-local borrow.
    pub fn with_ambient(mut f: impl FnMut(&Metrics)) {
        AMBIENT.with(|s| {
            for m in s.borrow().iter() {
                f(m);
            }
        });
    }

    /// True when at least one ambient sink is installed on this thread.
    pub fn ambient_installed() -> bool {
        AMBIENT.with(|s| !s.borrow().is_empty())
    }

    /// Adds `n` to counter `name` (created at 0 on first use),
    /// saturating at `u64::MAX`.
    pub fn count(&self, name: &str, n: u64) {
        let mut r = self.reg.borrow_mut();
        let i = r.index(name, || Instrument::Counter { value: 0 });
        if let Instrument::Counter { value } = &mut r.instruments[i] {
            *value = value.saturating_add(n);
        } else {
            panic!("metric '{name}' is not a counter");
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let r = self.reg.borrow();
        match r.names.iter().position(|n| n == name) {
            Some(i) => match &r.instruments[i] {
                Instrument::Counter { value } => *value,
                _ => panic!("metric '{name}' is not a counter"),
            },
            None => 0,
        }
    }

    /// Sets gauge `name` to `v`, tracking the observed min/max. NaN is
    /// a legal observation (recorded, excluded from the range); ±∞ is
    /// rejected — an infinite gauge is always a model bug.
    pub fn gauge(&self, name: &str, v: f64) {
        assert!(!v.is_infinite(), "gauge '{name}' set to infinite {v}");
        let mut r = self.reg.borrow_mut();
        let i = r.index(name, || Instrument::Gauge {
            value: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            set: false,
        });
        if let Instrument::Gauge { value, min, max, set } = &mut r.instruments[i] {
            *value = v;
            if !v.is_nan() {
                *min = min.min(v);
                *max = max.max(v);
            }
            *set = true;
        } else {
            panic!("metric '{name}' is not a gauge");
        }
    }

    /// Last-set value of gauge `name`; `None` when never set. A gauge
    /// set to NaN answers `Some(NaN)` — use [`gauge_state`] when the
    /// distinction must be typed rather than smuggled through a float.
    ///
    /// [`gauge_state`]: Self::gauge_state
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.gauge_state(name) {
            GaugeState::Set(v) => Some(v),
            GaugeState::Unset => None,
        }
    }

    /// Typed gauge observation: [`GaugeState::Unset`] when nothing was
    /// ever recorded, [`GaugeState::Set`] (possibly NaN) otherwise.
    pub fn gauge_state(&self, name: &str) -> GaugeState {
        let r = self.reg.borrow();
        let Some(i) = r.names.iter().position(|n| n == name) else {
            return GaugeState::Unset;
        };
        match &r.instruments[i] {
            Instrument::Gauge { value, set, .. } => {
                if *set {
                    GaugeState::Set(*value)
                } else {
                    GaugeState::Unset
                }
            }
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// Declares histogram `name` with the given ascending bucket upper
    /// bounds (an implicit overflow bucket catches everything above the
    /// last bound). Declaring twice with the same bounds is a no-op.
    ///
    /// # Panics
    /// Panics if `bounds` is empty, not strictly ascending, or the
    /// name was already declared with different bounds.
    pub fn declare_histogram(&self, name: &str, bounds: &[f64]) {
        assert!(!bounds.is_empty(), "histogram '{name}' needs buckets");
        for w in bounds.windows(2) {
            assert!(
                w[0] < w[1],
                "histogram '{name}' bounds must be strictly ascending"
            );
        }
        let mut r = self.reg.borrow_mut();
        let i = r.index(name, || Instrument::Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        });
        if let Instrument::Histogram { bounds: b, .. } = &r.instruments[i] {
            assert_eq!(b, bounds, "histogram '{name}' re-declared with different bounds");
        } else {
            panic!("metric '{name}' is not a histogram");
        }
    }

    /// True when histogram `name` is declared.
    pub fn has_histogram(&self, name: &str) -> bool {
        let r = self.reg.borrow();
        match r.names.iter().position(|n| n == name) {
            Some(i) => matches!(&r.instruments[i], Instrument::Histogram { .. }),
            None => false,
        }
    }

    /// Records `v` into histogram `name` (must be declared first). A
    /// value lands in the first bucket whose upper bound is `>= v`;
    /// values above every bound land in the overflow bucket.
    pub fn record(&self, name: &str, v: f64) {
        let mut r = self.reg.borrow_mut();
        let i = r
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("histogram '{name}' not declared"));
        if let Instrument::Histogram { bounds, counts, count, sum } = &mut r.instruments[i] {
            let b = bounds
                .iter()
                .position(|&ub| v <= ub)
                .unwrap_or(bounds.len());
            counts[b] += 1;
            *count += 1;
            *sum += v;
        } else {
            panic!("metric '{name}' is not a histogram");
        }
    }

    /// `(bucket counts including overflow, total count, sum)` of
    /// histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<(Vec<u64>, u64, f64)> {
        let r = self.reg.borrow();
        let i = r.names.iter().position(|n| n == name)?;
        match &r.instruments[i] {
            Instrument::Histogram { counts, count, sum, .. } => {
                Some((counts.clone(), *count, *sum))
            }
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) of histogram `name` by
    /// linear interpolation inside the covering bucket, the same
    /// estimator as Prometheus' `histogram_quantile`. `None` when the
    /// histogram is undeclared or empty. Values in the overflow bucket
    /// clamp to the last finite bound. Monotone in `q` by construction:
    /// p50 ≤ p90 ≤ p99 always holds.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        let (counts, count, _) = self.histogram(name)?;
        let r = self.reg.borrow();
        let i = r.names.iter().position(|n| n == name)?;
        let Instrument::Histogram { bounds, .. } = &r.instruments[i] else {
            unreachable!("histogram() checked the kind");
        };
        bucket_quantile(bounds, &counts, count, q)
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.reg.borrow().names.is_empty()
    }

    /// Name-sorted snapshot of every counter whose name starts with
    /// `prefix` (empty prefix = all counters). Lets a subsystem export
    /// just its own namespace — the serve frontends print
    /// `counters("serve.")` for `--stats`.
    pub fn counters(&self, prefix: &str) -> Vec<(String, u64)> {
        let r = self.reg.borrow();
        let mut out: Vec<(String, u64)> = Vec::new();
        for i in r.sorted_indices() {
            if !r.names[i].starts_with(prefix) {
                continue;
            }
            if let Instrument::Counter { value } = &r.instruments[i] {
                out.push((r.names[i].clone(), *value));
            }
        }
        out
    }

    /// Name-sorted `(name, last value)` of every **set** gauge whose
    /// name starts with `prefix`.
    pub fn gauges(&self, prefix: &str) -> Vec<(String, f64)> {
        let r = self.reg.borrow();
        let mut out: Vec<(String, f64)> = Vec::new();
        for i in r.sorted_indices() {
            if !r.names[i].starts_with(prefix) {
                continue;
            }
            if let Instrument::Gauge { value, set: true, .. } = &r.instruments[i] {
                out.push((r.names[i].clone(), *value));
            }
        }
        out
    }

    /// Name-sorted names of every declared histogram whose name starts
    /// with `prefix`.
    pub fn histogram_names(&self, prefix: &str) -> Vec<String> {
        let r = self.reg.borrow();
        let mut out: Vec<String> = Vec::new();
        for i in r.sorted_indices() {
            if !r.names[i].starts_with(prefix) {
                continue;
            }
            if matches!(&r.instruments[i], Instrument::Histogram { .. }) {
                out.push(r.names[i].clone());
            }
        }
        out
    }

    /// Plain-text summary, one line per instrument, name-sorted.
    pub fn summary(&self) -> String {
        let r = self.reg.borrow();
        let mut out = String::new();
        for i in r.sorted_indices() {
            let name = &r.names[i];
            match &r.instruments[i] {
                Instrument::Counter { value } => {
                    out.push_str(&format!("counter {name} = {value}\n"));
                }
                Instrument::Gauge { value, min, max, set } => {
                    if *set {
                        out.push_str(&format!(
                            "gauge   {name} = {value} (min {min}, max {max})\n"
                        ));
                    }
                }
                Instrument::Histogram { bounds, counts, count, sum } => {
                    let mean = if *count > 0 { sum / *count as f64 } else { 0.0 };
                    out.push_str(&format!(
                        "histo   {name}: n={count} mean={mean:.4}"
                    ));
                    for (i, c) in counts.iter().enumerate() {
                        if *c == 0 {
                            continue;
                        }
                        if i < bounds.len() {
                            out.push_str(&format!(" le{}={c}", bounds[i]));
                        } else {
                            out.push_str(&format!(" overflow={c}"));
                        }
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// The registry as a JSON object, name-sorted.
    pub fn to_json(&self) -> Json {
        let r = self.reg.borrow();
        let mut pairs = Vec::new();
        for i in r.sorted_indices() {
            let v = match &r.instruments[i] {
                Instrument::Counter { value } => Json::Int(*value as i64),
                Instrument::Gauge { value, min, max, set } => {
                    if !*set {
                        continue;
                    }
                    Json::obj(vec![
                        ("value", Json::Num(*value)),
                        ("min", Json::Num(*min)),
                        ("max", Json::Num(*max)),
                    ])
                }
                Instrument::Histogram { bounds, counts, count, sum } => Json::obj(vec![
                    ("bounds", Json::Arr(bounds.iter().map(|&b| Json::Num(b)).collect())),
                    (
                        "counts",
                        Json::Arr(counts.iter().map(|&c| Json::Int(c as i64)).collect()),
                    ),
                    ("count", Json::Int(*count as i64)),
                    ("sum", Json::Num(*sum)),
                ]),
            };
            pairs.push((r.names[i].clone(), v));
        }
        Json::Obj(pairs)
    }

    /// A deterministic point-in-time copy of every instrument,
    /// name-sorted. Snapshots support [`MetricsSnapshot::delta`] for
    /// "what changed during this request" attribution.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let r = self.reg.borrow();
        let mut entries = Vec::new();
        for i in r.sorted_indices() {
            let inst = match &r.instruments[i] {
                Instrument::Counter { value } => InstrumentSnapshot::Counter(*value),
                Instrument::Gauge { value, min, max, set } => {
                    if !*set {
                        continue;
                    }
                    InstrumentSnapshot::Gauge {
                        value: *value,
                        min: *min,
                        max: *max,
                    }
                }
                Instrument::Histogram { bounds, counts, count, sum } => {
                    InstrumentSnapshot::Histogram {
                        bounds: bounds.clone(),
                        counts: counts.clone(),
                        count: *count,
                        sum: *sum,
                    }
                }
            };
            entries.push((r.names[i].clone(), inst));
        }
        MetricsSnapshot { entries }
    }

    /// Prometheus-style text exposition of the current state; see
    /// [`MetricsSnapshot::expose_text`].
    pub fn expose_text(&self) -> String {
        self.snapshot().expose_text()
    }
}

/// One instrument inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstrumentSnapshot {
    /// Counter value at snapshot time.
    Counter(u64),
    /// Set gauge (unset gauges are omitted from snapshots).
    Gauge {
        /// Last-set value (may be NaN).
        value: f64,
        /// Smallest non-NaN observation.
        min: f64,
        /// Largest non-NaN observation.
        max: f64,
    },
    /// Histogram state at snapshot time.
    Histogram {
        /// Declared ascending bucket upper bounds.
        bounds: Vec<f64>,
        /// Per-bucket counts, overflow bucket last.
        counts: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
    },
}

/// A name-sorted, point-in-time copy of a [`Metrics`] registry. Two
/// snapshots of registries that saw the same updates are equal and
/// render byte-identical text, regardless of registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, instrument)` pairs, sorted by name (byte order).
    pub entries: Vec<(String, InstrumentSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up one instrument by name.
    pub fn get(&self, name: &str) -> Option<&InstrumentSnapshot> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, i)| i)
    }

    /// The change from `baseline` to `self`: counters and histogram
    /// buckets subtract (saturating at 0 — a restarted registry never
    /// yields negative deltas), gauges keep `self`'s last observation,
    /// instruments absent from `baseline` pass through unchanged, and
    /// instruments only in `baseline` are dropped. The result is
    /// name-sorted like every snapshot.
    pub fn delta(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, inst)| {
                let d = match (inst, baseline.get(name)) {
                    (
                        InstrumentSnapshot::Counter(v),
                        Some(InstrumentSnapshot::Counter(b)),
                    ) => InstrumentSnapshot::Counter(v.saturating_sub(*b)),
                    (
                        InstrumentSnapshot::Histogram { bounds, counts, count, sum },
                        Some(InstrumentSnapshot::Histogram {
                            bounds: bb,
                            counts: bc,
                            count: bn,
                            sum: bs,
                        }),
                    ) if bounds == bb => InstrumentSnapshot::Histogram {
                        bounds: bounds.clone(),
                        counts: counts
                            .iter()
                            .zip(bc)
                            .map(|(c, b)| c.saturating_sub(*b))
                            .collect(),
                        count: count.saturating_sub(*bn),
                        sum: sum - bs,
                    },
                    // Gauges, new instruments, or kind/bounds mismatches
                    // (a re-purposed name): keep the later observation.
                    (inst, _) => inst.clone(),
                };
                (name.clone(), d)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Estimated `q`-quantile of histogram `name`, same estimator as
    /// [`Metrics::quantile`].
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        match self.get(name)? {
            InstrumentSnapshot::Histogram { bounds, counts, count, .. } => {
                bucket_quantile(bounds, counts, *count, q)
            }
            _ => None,
        }
    }

    /// Prometheus-style text exposition: `# TYPE` comment per metric,
    /// cumulative `_bucket{le="…"}` series plus `_sum`/`_count` for
    /// histograms, one sample line per counter/gauge. Metric names are
    /// sanitised to `[a-zA-Z0-9_:]` (every other byte becomes `_`), and
    /// lines are emitted in snapshot (name-sorted) order, so the text
    /// is stable across runs and platforms.
    pub fn expose_text(&self) -> String {
        let mut out = String::new();
        for (name, inst) in &self.entries {
            let n = prom_name(name);
            match inst {
                InstrumentSnapshot::Counter(v) => {
                    out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
                }
                InstrumentSnapshot::Gauge { value, .. } => {
                    out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", prom_num(*value)));
                }
                InstrumentSnapshot::Histogram { bounds, counts, count, sum } => {
                    out.push_str(&format!("# TYPE {n} histogram\n"));
                    let mut cum = 0u64;
                    for (b, c) in bounds.iter().zip(counts) {
                        cum += c;
                        out.push_str(&format!(
                            "{n}_bucket{{le=\"{}\"}} {cum}\n",
                            prom_num(*b)
                        ));
                    }
                    out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {count}\n"));
                    out.push_str(&format!("{n}_sum {}\n", prom_num(*sum)));
                    out.push_str(&format!("{n}_count {count}\n"));
                }
            }
        }
        out
    }

    /// The snapshot as a JSON object, same shape as
    /// [`Metrics::to_json`].
    pub fn to_json(&self) -> Json {
        let pairs = self
            .entries
            .iter()
            .map(|(name, inst)| {
                let v = match inst {
                    InstrumentSnapshot::Counter(v) => Json::Int(*v as i64),
                    InstrumentSnapshot::Gauge { value, min, max } => Json::obj(vec![
                        ("value", Json::Num(*value)),
                        ("min", Json::Num(*min)),
                        ("max", Json::Num(*max)),
                    ]),
                    InstrumentSnapshot::Histogram { bounds, counts, count, sum } => {
                        Json::obj(vec![
                            (
                                "bounds",
                                Json::Arr(bounds.iter().map(|&b| Json::Num(b)).collect()),
                            ),
                            (
                                "counts",
                                Json::Arr(counts.iter().map(|&c| Json::Int(c as i64)).collect()),
                            ),
                            ("count", Json::Int(*count as i64)),
                            ("sum", Json::Num(*sum)),
                        ])
                    }
                };
                (name.clone(), v)
            })
            .collect();
        Json::Obj(pairs)
    }
}

/// Sanitises a metric name for exposition: every byte outside
/// `[a-zA-Z0-9_:]` becomes `_`, and a leading digit gains a `_` prefix.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// f64 rendered for exposition text: shortest-roundtrip Rust `{}`
/// formatting (deterministic across platforms), `NaN` spelled out.
fn prom_num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// The shared bucket-quantile estimator (see [`Metrics::quantile`]).
/// The first bucket's lower edge is `min(0, bounds[0])`; the overflow
/// bucket clamps to the last finite bound.
fn bucket_quantile(bounds: &[f64], counts: &[u64], count: u64, q: f64) -> Option<f64> {
    if count == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let target = q * count as f64;
    let mut cum = 0u64;
    for (b, c) in counts.iter().enumerate() {
        cum += c;
        if cum as f64 >= target && (*c > 0 || b == 0) {
            if b == bounds.len() {
                // Overflow bucket: no finite upper edge to interpolate
                // toward; clamp to the last declared bound.
                return Some(*bounds.last().expect("declared histograms have bounds"));
            }
            let lower = if b == 0 {
                bounds[0].min(0.0)
            } else {
                bounds[b - 1]
            };
            let upper = bounds[b];
            if *c == 0 {
                return Some(lower);
            }
            let before = (cum - c) as f64;
            let frac = ((target - before) / *c as f64).clamp(0.0, 1.0);
            return Some(lower + (upper - lower) * frac);
        }
    }
    // target == count and trailing zero buckets: the last non-empty
    // bucket already satisfied `cum >= target`, so this is unreachable
    // unless every count is zero, which `count == 0` excluded.
    Some(*bounds.last().expect("declared histograms have bounds"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let m = Metrics::new();
        m.count("events", 2);
        m.count("events", 3);
        assert_eq!(m.counter("events"), 5);
        m.count("events", u64::MAX);
        assert_eq!(m.counter("events"), u64::MAX, "saturates, never wraps");
        m.count("events", 1);
        assert_eq!(m.counter("events"), u64::MAX);
    }

    #[test]
    fn gauges_track_range() {
        let m = Metrics::new();
        assert_eq!(m.gauge_value("util"), None);
        m.gauge("util", 0.5);
        m.gauge("util", 0.9);
        m.gauge("util", 0.2);
        assert_eq!(m.gauge_value("util"), Some(0.2));
        assert!(m.summary().contains("min 0.2, max 0.9"));
    }

    #[test]
    fn gauge_state_distinguishes_unset_from_nan() {
        let m = Metrics::new();
        assert_eq!(m.gauge_state("phase"), GaugeState::Unset);
        assert!(!m.gauge_state("phase").is_set());
        m.gauge("phase", f64::NAN);
        match m.gauge_state("phase") {
            GaugeState::Set(v) => assert!(v.is_nan()),
            GaugeState::Unset => panic!("NaN observation must read as Set"),
        }
        assert!(m.gauge_value("phase").unwrap().is_nan());
        // NaN never contaminates the observed range.
        m.gauge("phase", 2.0);
        assert!(m.summary().contains("min 2, max 2"));
    }

    #[test]
    #[should_panic(expected = "infinite")]
    fn infinite_gauge_rejected() {
        Metrics::new().gauge("g", f64::INFINITY);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let m = Metrics::new();
        m.declare_histogram("lat", &[1.0, 2.0, 4.0]);
        // Exactly on a bound lands in that bucket (le semantics).
        for v in [0.5, 1.0, 1.5, 2.0, 4.0, 4.000001, 100.0] {
            m.record("lat", v);
        }
        let (counts, n, sum) = m.histogram("lat").unwrap();
        assert_eq!(counts, vec![2, 2, 1, 2]); // le1, le2, le4, overflow
        assert_eq!(n, 7);
        assert!((sum - 113.000001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn recording_undeclared_histogram_panics() {
        Metrics::new().record("nope", 1.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_rejected() {
        Metrics::new().declare_histogram("h", &[2.0, 1.0]);
    }

    #[test]
    fn summary_is_name_sorted() {
        let m = Metrics::new();
        m.count("z_first", 1);
        m.gauge("a_second", 2.0);
        let s = m.summary();
        let zi = s.find("z_first").unwrap();
        let ai = s.find("a_second").unwrap();
        assert!(ai < zi, "name-sorted, not registration order");
    }

    #[test]
    fn counters_snapshot_filters_by_prefix_sorted() {
        let m = Metrics::new();
        m.count("serve.cache.miss", 1);
        m.gauge("serve.queue", 1.0); // not a counter: excluded
        m.count("other.total", 9);
        m.count("serve.cache.hit", 2);
        assert_eq!(
            m.counters("serve."),
            vec![
                ("serve.cache.hit".to_string(), 2),
                ("serve.cache.miss".to_string(), 1),
            ],
            "sorted by name even though hit registered last"
        );
        assert_eq!(m.counters("").len(), 3, "empty prefix = every counter");
        assert_eq!(m.gauges(""), vec![("serve.queue".to_string(), 1.0)]);
    }

    #[test]
    fn json_rendering_has_all_kinds_sorted() {
        let m = Metrics::new();
        m.gauge("g", 0.5);
        m.count("c", 1);
        m.declare_histogram("h", &[1.0]);
        m.record("h", 0.5);
        let j = m.to_json().pretty();
        assert!(j.contains("\"c\": 1"));
        assert!(j.contains("\"value\": 0.5"));
        assert!(j.contains("\"counts\""));
        assert!(j.find("\"c\"").unwrap() < j.find("\"g\"").unwrap());
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let m = Metrics::new();
        m.declare_histogram("h", &[10.0, 20.0, 40.0]);
        for v in [5.0, 15.0, 15.0, 35.0] {
            m.record("h", v);
        }
        // p50: target 2.0 of 4; second bucket (10,20] holds cum 3 ≥ 2.
        let p50 = m.quantile("h", 0.5).unwrap();
        assert!((p50 - 15.0).abs() < 1e-9, "{p50}");
        // p100 lands in the (20,40] bucket's upper edge.
        assert_eq!(m.quantile("h", 1.0), Some(40.0));
        // q=0 is the lower edge of the first non-empty bucket region.
        assert_eq!(m.quantile("h", 0.0), Some(0.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let m = Metrics::new();
        m.declare_histogram("empty", &[1.0]);
        assert_eq!(m.quantile("empty", 0.5), None, "empty histogram");
        assert_eq!(m.quantile("missing", 0.5), None, "undeclared histogram");

        m.declare_histogram("single", &[8.0]);
        m.record("single", 3.0);
        let p50 = m.quantile("single", 0.5).unwrap();
        assert!(p50 > 0.0 && p50 <= 8.0, "{p50}");

        m.declare_histogram("over", &[1.0, 2.0]);
        m.record("over", 100.0);
        assert_eq!(
            m.quantile("over", 0.99),
            Some(2.0),
            "overflow clamps to last finite bound"
        );
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_buckets() {
        let m = Metrics::new();
        m.count("reqs", 2);
        m.declare_histogram("cost", &[1.0, 4.0]);
        m.record("cost", 1.0);
        let before = m.snapshot();
        m.count("reqs", 3);
        m.record("cost", 3.0);
        m.gauge("depth", 7.0);
        let after = m.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.get("reqs"), Some(&InstrumentSnapshot::Counter(3)));
        match d.get("cost").unwrap() {
            InstrumentSnapshot::Histogram { counts, count, sum, .. } => {
                assert_eq!(counts, &vec![0, 1, 0]);
                assert_eq!(*count, 1);
                assert!((sum - 3.0).abs() < 1e-12);
            }
            other => panic!("expected histogram delta, got {other:?}"),
        }
        assert_eq!(
            d.get("depth"),
            Some(&InstrumentSnapshot::Gauge { value: 7.0, min: 7.0, max: 7.0 }),
            "gauges pass through the later observation"
        );
        // Identical snapshots delta to zero counters.
        let z = after.delta(&after);
        assert_eq!(z.get("reqs"), Some(&InstrumentSnapshot::Counter(0)));
    }

    #[test]
    fn exposition_is_sorted_sanitised_and_cumulative() {
        let m = Metrics::new();
        m.count("serve.requests", 3);
        m.gauge("queue depth", 2.0);
        m.declare_histogram("serve.cost.run", &[1.0, 4.0]);
        m.record("serve.cost.run", 1.0);
        m.record("serve.cost.run", 3.0);
        m.record("serve.cost.run", 99.0);
        let text = m.expose_text();
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 3\n"));
        assert!(text.contains("# TYPE queue_depth gauge\nqueue_depth 2\n"));
        assert!(text.contains("serve_cost_run_bucket{le=\"1\"} 1\n"));
        assert!(
            text.contains("serve_cost_run_bucket{le=\"4\"} 2\n"),
            "buckets are cumulative:\n{text}"
        );
        assert!(text.contains("serve_cost_run_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("serve_cost_run_sum 103\n"));
        assert!(text.contains("serve_cost_run_count 3\n"));
        // Sorted: queue_depth before serve_*.
        assert!(text.find("queue_depth").unwrap() < text.find("serve_cost").unwrap());
        // Byte-stable across identically-updated registries with a
        // different registration order.
        let m2 = Metrics::new();
        m2.declare_histogram("serve.cost.run", &[1.0, 4.0]);
        for v in [1.0, 3.0, 99.0] {
            m2.record("serve.cost.run", v);
        }
        m2.gauge("queue depth", 2.0);
        m2.count("serve.requests", 3);
        assert_eq!(text, m2.expose_text());
        assert_eq!(m.snapshot(), m2.snapshot());
    }

    #[test]
    fn ambient_sink_stacks_and_uninstalls() {
        assert!(!Metrics::ambient_installed());
        let outer = Metrics::new();
        let inner = Metrics::new();
        {
            let _g1 = outer.install_ambient();
            {
                let _g2 = inner.install_ambient();
                let mut seen = 0;
                Metrics::with_ambient(|m| {
                    m.count("work", 1);
                    seen += 1;
                });
                assert_eq!(seen, 2, "every installed sink receives the export");
            }
            Metrics::with_ambient(|m| m.count("work", 1));
        }
        assert!(!Metrics::ambient_installed());
        Metrics::with_ambient(|_| panic!("no sink installed"));
        assert_eq!(outer.counter("work"), 2);
        assert_eq!(inner.counter("work"), 1);
    }
}

//! The tracer: nestable spans and instant events on the virtual clock.
//!
//! A [`Tracer`] is a cheap cloneable handle. [`Tracer::disabled`] (the
//! default) carries no sink at all: every emit call is a single branch.
//! [`Tracer::recording`] shares one in-memory buffer among all clones,
//! so a workload can hand the same tracer to the flow network, the
//! fabric and its own phase loop and get one merged timeline.
//!
//! Spans may begin and end out of order with respect to buffer insertion
//! — virtual time is the only ordering that matters, and the exporter
//! sorts records by `(start, -duration)` so enclosing spans precede
//! their children regardless of emission order.

use std::cell::RefCell;
use std::rc::Rc;

/// A typed attribute value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    Int(i64),
    Num(f64),
    Str(String),
    Bool(bool),
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Num(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// Attribute list: static keys, typed values.
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// The stack layer a record belongs to. Each layer renders as its own
/// named thread lane in Perfetto, so contention across layers lines up
/// vertically on the shared virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Simulation runtime: event dispatch, flow rate segments.
    Simrt,
    /// Node fabric: PCIe/MDFI/Xe-Link transfers and collectives.
    Fabric,
    /// Architecture models: governor clock/power transitions.
    Arch,
    /// Workload phases: warmup/iteration/reduction, H2D/compute/D2H.
    Workload,
    /// Report generation diagnostics (dropped rows, truncations).
    Report,
}

impl Layer {
    /// Stable lane id used as the Chrome-trace `tid`.
    pub fn tid(self) -> i64 {
        match self {
            Layer::Workload => 1,
            Layer::Fabric => 2,
            Layer::Arch => 3,
            Layer::Simrt => 4,
            Layer::Report => 5,
        }
    }

    /// Category string used as the Chrome-trace `cat`.
    pub fn cat(self) -> &'static str {
        match self {
            Layer::Simrt => "simrt",
            Layer::Fabric => "fabric",
            Layer::Arch => "arch",
            Layer::Workload => "workload",
            Layer::Report => "report",
        }
    }

    /// All layers in lane order.
    pub const ALL: [Layer; 5] = [
        Layer::Workload,
        Layer::Fabric,
        Layer::Arch,
        Layer::Simrt,
        Layer::Report,
    ];
}

/// One recorded trace entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span `[t0, t1]`.
    Span {
        layer: Layer,
        name: String,
        t0: f64,
        t1: f64,
        attrs: Attrs,
        seq: u64,
    },
    /// An instant event at `t`.
    Instant {
        layer: Layer,
        name: String,
        t: f64,
        attrs: Attrs,
        seq: u64,
    },
    /// A counter-track sample (utilization, queue depth, clock state).
    Sample {
        layer: Layer,
        name: String,
        t: f64,
        value: f64,
        seq: u64,
    },
}

impl Record {
    /// Virtual start time of the record.
    pub fn start(&self) -> f64 {
        match self {
            Record::Span { t0, .. } => *t0,
            Record::Instant { t, .. } | Record::Sample { t, .. } => *t,
        }
    }

    /// Insertion sequence (tie-break).
    pub fn seq(&self) -> u64 {
        match self {
            Record::Span { seq, .. }
            | Record::Instant { seq, .. }
            | Record::Sample { seq, .. } => *seq,
        }
    }

    /// The lane the record belongs to.
    pub fn layer(&self) -> Layer {
        match self {
            Record::Span { layer, .. }
            | Record::Instant { layer, .. }
            | Record::Sample { layer, .. } => *layer,
        }
    }

    /// Record name.
    pub fn name(&self) -> &str {
        match self {
            Record::Span { name, .. }
            | Record::Instant { name, .. }
            | Record::Sample { name, .. } => name,
        }
    }
}

#[derive(Debug)]
struct OpenSpan {
    layer: Layer,
    name: String,
    t0: f64,
    attrs: Attrs,
}

#[derive(Debug, Default)]
struct TraceBuf {
    records: Vec<Record>,
    open: Vec<Option<OpenSpan>>,
    seq: u64,
}

impl TraceBuf {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }
}

/// Handle to a span begun with [`Tracer::begin`], finished by
/// [`Tracer::end`]. Ending a handle twice is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle(usize);

/// A cheap cloneable tracing handle. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<Rc<RefCell<TraceBuf>>>,
}

impl Tracer {
    /// The no-op sink: every emit call is one branch, nothing allocates.
    pub fn disabled() -> Self {
        Tracer { buf: None }
    }

    /// A recording tracer with a fresh shared buffer.
    pub fn recording() -> Self {
        Tracer {
            buf: Some(Rc::new(RefCell::new(TraceBuf::default()))),
        }
    }

    /// True when records are being captured. Hooks with non-trivial
    /// attribute construction should early-return on `!enabled()`.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// Records a completed span `[t0, t1]` on `layer`.
    ///
    /// # Panics
    /// Panics if either timestamp is not finite or `t1 < t0` — a broken
    /// virtual clock upstream must not silently corrupt the trace.
    pub fn span(
        &self,
        layer: Layer,
        name: impl Into<String>,
        t0: f64,
        t1: f64,
        attrs: Attrs,
    ) {
        let Some(buf) = &self.buf else { return };
        assert!(
            t0.is_finite() && t1.is_finite() && t1 >= t0,
            "invalid span interval [{t0}, {t1}]"
        );
        let mut b = buf.borrow_mut();
        let seq = b.next_seq();
        b.records.push(Record::Span {
            layer,
            name: name.into(),
            t0,
            t1,
            attrs,
            seq,
        });
    }

    /// Opens a span at `t0`; finish it with [`end`](Self::end). Spans on
    /// the same layer nest by time containment, so handles may be ended
    /// in any order.
    pub fn begin(
        &self,
        layer: Layer,
        name: impl Into<String>,
        t0: f64,
        attrs: Attrs,
    ) -> SpanHandle {
        let Some(buf) = &self.buf else {
            return SpanHandle(usize::MAX);
        };
        assert!(t0.is_finite(), "invalid span start {t0}");
        let mut b = buf.borrow_mut();
        b.open.push(Some(OpenSpan {
            layer,
            name: name.into(),
            t0,
            attrs,
        }));
        SpanHandle(b.open.len() - 1)
    }

    /// Closes a span opened with [`begin`](Self::begin) at `t1`.
    /// No-op on a disabled tracer or an already-ended handle.
    pub fn end(&self, handle: SpanHandle, t1: f64) {
        let Some(buf) = &self.buf else { return };
        if handle.0 == usize::MAX {
            return;
        }
        let mut b = buf.borrow_mut();
        let Some(open) = b.open.get_mut(handle.0).and_then(Option::take) else {
            return;
        };
        assert!(
            t1.is_finite() && t1 >= open.t0,
            "span '{}' ends at {t1} before it began at {}",
            open.name,
            open.t0
        );
        let seq = b.next_seq();
        b.records.push(Record::Span {
            layer: open.layer,
            name: open.name,
            t0: open.t0,
            t1,
            attrs: open.attrs,
            seq,
        });
    }

    /// Records an instant event at `t`.
    pub fn instant(&self, layer: Layer, name: impl Into<String>, t: f64, attrs: Attrs) {
        let Some(buf) = &self.buf else { return };
        assert!(t.is_finite(), "invalid instant timestamp {t}");
        let mut b = buf.borrow_mut();
        let seq = b.next_seq();
        b.records.push(Record::Instant {
            layer,
            name: name.into(),
            t,
            attrs,
            seq,
        });
    }

    /// Records a counter-track sample (renders as a stepped value graph
    /// in Perfetto — utilization, occupancy, clock state).
    pub fn sample(&self, layer: Layer, name: impl Into<String>, t: f64, value: f64) {
        let Some(buf) = &self.buf else { return };
        assert!(t.is_finite(), "invalid sample timestamp {t}");
        let mut b = buf.borrow_mut();
        let seq = b.next_seq();
        b.records.push(Record::Sample {
            layer,
            name: name.into(),
            t,
            value,
            seq,
        });
    }

    /// Snapshot of all records in insertion order. Open (un-ended)
    /// spans are not included.
    pub fn records(&self) -> Vec<Record> {
        match &self.buf {
            Some(buf) => buf.borrow().records.clone(),
            None => Vec::new(),
        }
    }

    /// Number of captured records (0 on a disabled tracer).
    pub fn len(&self) -> usize {
        self.buf.as_ref().map_or(0, |b| b.borrow().records.len())
    }

    /// True when no records have been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.span(Layer::Simrt, "s", 0.0, 1.0, vec![]);
        t.instant(Layer::Simrt, "i", 0.5, vec![]);
        t.sample(Layer::Simrt, "c", 0.5, 1.0);
        let h = t.begin(Layer::Simrt, "b", 0.0, vec![]);
        t.end(h, 2.0);
        assert!(t.is_empty());
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::recording();
        let u = t.clone();
        t.instant(Layer::Fabric, "a", 0.0, vec![]);
        u.instant(Layer::Fabric, "b", 1.0, vec![]);
        assert_eq!(t.len(), 2);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn begin_end_out_of_order_is_fine() {
        let t = Tracer::recording();
        let outer = t.begin(Layer::Workload, "outer", 0.0, vec![]);
        let inner = t.begin(Layer::Workload, "inner", 1.0, vec![]);
        // End outer first: virtual time, not emission order, defines
        // nesting.
        t.end(outer, 10.0);
        t.end(inner, 2.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn double_end_is_noop() {
        let t = Tracer::recording();
        let h = t.begin(Layer::Workload, "x", 0.0, vec![]);
        t.end(h, 1.0);
        t.end(h, 5.0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid span interval")]
    fn backwards_span_rejected() {
        let t = Tracer::recording();
        t.span(Layer::Simrt, "bad", 2.0, 1.0, vec![]);
    }

    #[test]
    fn attr_conversions() {
        assert_eq!(AttrValue::from(3i64), AttrValue::Int(3));
        assert_eq!(AttrValue::from(3u32), AttrValue::Int(3));
        assert_eq!(AttrValue::from(1.5), AttrValue::Num(1.5));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".into()));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
    }
}
